//! Umbrella crate for the BOND reproduction.
//!
//! The actual functionality lives in the workspace crates; this crate only
//! re-exports them under one roof so that the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/` have a
//! single, convenient dependency. Library users should depend on the
//! individual crates (`bond-core`, `vdstore`, …) directly.

#![warn(missing_docs)]

pub use bond;
pub use bond_baselines as baselines;
pub use bond_datagen as datagen;
pub use bond_exec as exec;
pub use bond_metrics as metrics;
pub use bond_obs as obs;
pub use bond_relalg as relalg;
pub use vdstore;

pub use bond_exec::{
    AdaptivePlanner, CostModel, Engine, EngineBuilder, FeedbackSnapshot, PlannerKind, Priority,
    QuerySpec, RequestBatch, RuleKind, ScanMode, SegmentFeedbackSnapshot, Server, ServerBuilder,
    Ticket,
};

pub use bond_exec::{
    MetricsRegistry, PlanProvenance, QueryAnalysis, QueryExplain, SegmentAnalysis, SegmentExplain,
};

pub use vdstore::{Advice, PersistedStore, StorageBackend};

/// The unified error enum every layer of the workspace reports through:
/// storage errors wrap as [`BondError::Storage`], engine/builder validation
/// as the parameter variants, and the service layer as
/// [`BondError::ServiceUnavailable`].
pub use bond::BondError;
/// Convenience alias over [`BondError`].
pub use bond::Result;
