//! Umbrella crate for the BOND reproduction.
//!
//! The actual functionality lives in the workspace crates; this crate only
//! re-exports them under one roof so that the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/` have a
//! single, convenient dependency. Library users should depend on the
//! individual crates (`bond-core`, `vdstore`, …) directly.

#![warn(missing_docs)]

pub use bond;
pub use bond_baselines as baselines;
pub use bond_datagen as datagen;
pub use bond_exec as exec;
pub use bond_metrics as metrics;
pub use bond_obs as obs;
pub use bond_relalg as relalg;
pub use vdstore;

pub use bond_exec::{
    AdaptivePlanner, CostModel, Engine, EngineBuilder, FeedbackSnapshot, PlannerKind, Priority,
    QuerySpec, RequestBatch, RuleKind, ScanMode, SegmentFeedbackSnapshot, Server, ServerBuilder,
    Ticket,
};

pub use bond_exec::{
    MetricsRegistry, PlanProvenance, QueryAnalysis, QueryExplain, SegmentAnalysis, SegmentExplain,
};

/// The open query surface (PR 9): predicate-filtered k-NN, multi-feature
/// combination requests and relational programs as first-class
/// [`QuerySpec`]s.
///
/// A relational predicate rides along as an eligibility bitmap:
///
/// ```
/// use bond_repro::{Engine, QuerySpec};
/// use vdstore::{Bitmap, DecomposedTable};
///
/// let vectors: Vec<Vec<f64>> = (0..80)
///     .map(|i| vec![i as f64 / 80.0, 1.0 - i as f64 / 80.0])
///     .collect();
/// let engine = Engine::builder(DecomposedTable::from_vectors("demo", &vectors).unwrap())
///     .partitions(4)
///     .build()
///     .unwrap();
/// // only even rows compete for the top-3 …
/// let evens: Vec<u32> = (0..80).filter(|r| r % 2 == 0).collect();
/// let spec = QuerySpec::new(vec![0.5, 0.5], 3).filter(Bitmap::from_rows(80, &evens));
/// let outcome = engine.search_spec(&spec).unwrap();
/// assert!(outcome.hits.iter().all(|h| h.row % 2 == 0));
/// ```
///
/// A multi-feature request combines several collections under one
/// monotonic aggregate ([`QuerySpec::multi_feature`]):
///
/// ```
/// use bond_repro::{AggregateSpec, Engine, FeatureSpec, MultiFeatureSpec, QuerySpec};
/// use bond::FeatureMetricKind;
/// use vdstore::DecomposedTable;
///
/// let vectors: Vec<Vec<f64>> = (0..40)
///     .map(|i| vec![i as f64 / 40.0, 1.0 - i as f64 / 40.0])
///     .collect();
/// let engine = Engine::builder(DecomposedTable::from_vectors("demo", &vectors).unwrap())
///     .partitions(2)
///     .build()
///     .unwrap();
/// let spec = QuerySpec::multi_feature(
///     MultiFeatureSpec::new(
///         vec![
///             FeatureSpec::new(vec![0.3, 0.7], FeatureMetricKind::HistogramIntersection),
///             FeatureSpec::new(vec![0.3, 0.7], FeatureMetricKind::Euclidean),
///         ],
///         AggregateSpec::WeightedAverage(vec![0.5, 0.5]),
///     ),
///     5,
/// );
/// assert_eq!(engine.search_spec(&spec).unwrap().hits.len(), 5);
/// ```
///
/// And [`KnnProgram`] runs relational selects ahead of the k-NN operator,
/// pushing their conjunction down as exactly that filter bitmap.
pub use bond_exec::{
    AggregateSpec, FeatureSpec, KnnProgram, MultiFeatureSpec, QueryKind, RelationalRun, SelectStep,
};

pub use vdstore::{Advice, PersistedStore, StorageBackend};

/// The unified error enum every layer of the workspace reports through:
/// storage errors wrap as [`BondError::Storage`], engine/builder validation
/// as the parameter variants, and the service layer as
/// [`BondError::ServiceUnavailable`].
pub use bond::BondError;
/// Convenience alias over [`BondError`].
pub use bond::Result;
