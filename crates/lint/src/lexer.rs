//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The container this workspace builds in is offline, so `syn` is not an
//! option — and regexing Rust source is exactly the kind of shortcut that
//! reports an `unsafe` inside a string literal or misses an `unwrap()`
//! behind a block comment. This lexer tokenizes the constructs that decide
//! whether text is *code*: line and (nested) block comments, plain / raw /
//! byte string literals, character literals vs. lifetimes, identifiers,
//! numbers, and single-character punctuation. Everything a rule matches on
//! is therefore a real code token with an accurate line and column.
//!
//! Two deliberate simplifications, both safe for linting:
//!
//! - multi-character operators (`::`, `->`, `>>`) surface as runs of
//!   single-character [`TokenKind::Punct`] tokens — rules match the runs;
//! - numeric literals are lexed greedily (digits, `_`, suffixes, a decimal
//!   point followed by a digit, signed exponents) without validating the
//!   grammar — the linter never interprets their values.

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `Ordering`, …).
    Ident(String),
    /// One punctuation character (`::` arrives as two adjacent `Punct(':')`).
    Punct(char),
    /// A string literal (plain, raw, byte or raw-byte) holding the text
    /// between the quotes with escapes left as written.
    Str(String),
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A numeric literal, lexed greedily and never interpreted.
    Number,
    /// A line or block comment, doc or plain, including its delimiters.
    Comment(String),
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
    /// Set by the test-region pass for tokens inside `#[cfg(test)]` /
    /// `#[test]` items, which every rule skips.
    pub in_test: bool,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(t) if t == name)
    }

    /// The identifier text, when this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(t) => Some(t.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// What a source line holds, for walking comment blocks upwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LineKind {
    /// Nothing but whitespace.
    #[default]
    Blank,
    /// Only comment text (possibly the middle of a block comment).
    CommentOnly,
    /// A line opened by an attribute (`#[…]`), transparent when walking a
    /// comment block down toward its item.
    AttrOnly,
    /// At least one ordinary code token.
    Code,
}

/// A lexed file: the token stream plus per-line structure used by the
/// comment-adjacency checks.
#[derive(Debug)]
pub struct LexedSource {
    /// All tokens in source order, comments included.
    pub tokens: Vec<Token>,
    /// Per-line classification; index 0 is unused (lines are 1-based).
    pub lines: Vec<LineKind>,
    /// Per-line concatenated comment text (for every line a comment spans).
    pub line_comments: Vec<String>,
}

impl LexedSource {
    /// The comment text attached to the contiguous comment block directly
    /// above `line` (attribute-only lines are transparent; a blank or code
    /// line ends the block), plus any comment sharing `line` itself.
    pub fn comment_block_above(&self, line: usize) -> String {
        let mut collected: Vec<&str> = Vec::new();
        if let Some(text) = self.line_comments.get(line) {
            if !text.is_empty() {
                collected.push(text);
            }
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            match self.lines.get(l).copied().unwrap_or_default() {
                LineKind::CommentOnly => {
                    if let Some(text) = self.line_comments.get(l) {
                        collected.push(text);
                    }
                }
                LineKind::AttrOnly => {}
                LineKind::Blank | LineKind::Code => break,
            }
            l -= 1;
        }
        collected.reverse();
        collected.join("\n")
    }
}

/// Merges a token's contribution into its line's classification: `Code`
/// and `AttrOnly` are sticky (attribute arguments lex as ordinary idents
/// but stay attribute context), comments only claim blank lines.
fn note_line(lines: &mut [LineKind], l: usize, kind: LineKind) {
    if let Some(cur) = lines.get_mut(l) {
        *cur = match (*cur, kind) {
            (LineKind::AttrOnly, _) => LineKind::AttrOnly,
            (LineKind::Code, _) => LineKind::Code,
            (LineKind::CommentOnly, LineKind::CommentOnly) => LineKind::CommentOnly,
            (LineKind::CommentOnly, k) => k,
            (LineKind::Blank, k) => k,
        };
    }
}

/// Lexes `src` into tokens plus per-line structure. Never fails: malformed
/// trailing constructs (an unterminated string or comment) lex as a single
/// token running to end of file — the compiler is the arbiter of validity,
/// the linter only needs consistent classification.
pub fn lex(src: &str) -> LexedSource {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut tokens: Vec<Token> = Vec::new();

    let line_count = src.split('\n').count();
    let mut lines = vec![LineKind::Blank; line_count + 2];
    let mut line_comments = vec![String::new(); line_count + 2];

    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    // Advances one character, tracking line/col.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];
        let start_line = line;
        let start_col = col;

        if c.is_whitespace() {
            bump!();
            continue;
        }

        // comments
        if c == '/' && i + 1 < n && (chars[i + 1] == '/' || chars[i + 1] == '*') {
            let block = chars[i + 1] == '*';
            let mut text = String::new();
            if block {
                let mut depth = 0usize;
                while i < n {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        text.push_str("/*");
                        bump!();
                        bump!();
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        text.push_str("*/");
                        bump!();
                        bump!();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(chars[i]);
                        bump!();
                    }
                }
            } else {
                while i < n && chars[i] != '\n' {
                    text.push(chars[i]);
                    bump!();
                }
            }
            // distribute the text across the lines it spans
            for (off, chunk) in text.split('\n').enumerate() {
                let l = start_line + off;
                if l < line_comments.len() {
                    if !line_comments[l].is_empty() {
                        line_comments[l].push('\n');
                    }
                    line_comments[l].push_str(chunk);
                    note_line(&mut lines, l, LineKind::CommentOnly);
                }
            }
            tokens.push(Token {
                kind: TokenKind::Comment(text),
                line: start_line,
                col: start_col,
                in_test: false,
            });
            continue;
        }

        // string literals, including raw / byte prefixes
        if let Some((prefix_len, raw)) = str_prefix(&chars, i) {
            for _ in 0..prefix_len {
                bump!();
            }
            let mut hashes = 0usize;
            if raw {
                while i < n && chars[i] == '#' {
                    hashes += 1;
                    bump!();
                }
            }
            if i < n {
                bump!(); // opening quote
            }
            let mut content = String::new();
            while i < n {
                if !raw && chars[i] == '\\' {
                    content.push(chars[i]);
                    bump!();
                    if i < n {
                        content.push(chars[i]);
                        bump!();
                    }
                    continue;
                }
                if chars[i] == '"' && (1..=hashes).all(|h| i + h < n && chars[i + h] == '#') {
                    bump!();
                    for _ in 0..hashes {
                        bump!();
                    }
                    break;
                }
                content.push(chars[i]);
                bump!();
            }
            note_line(&mut lines, start_line, LineKind::Code);
            tokens.push(Token {
                kind: TokenKind::Str(content),
                line: start_line,
                col: start_col,
                in_test: false,
            });
            continue;
        }

        // character literal, byte literal or lifetime
        if c == '\'' || (c == 'b' && i + 1 < n && chars[i + 1] == '\'') {
            let byte = c == 'b';
            if byte {
                bump!();
            }
            // chars[i] is now the opening quote
            let is_lifetime = !byte
                && i + 1 < n
                && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                && !(i + 2 < n && chars[i + 2] == '\'');
            bump!();
            let kind = if is_lifetime {
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                TokenKind::Lifetime
            } else {
                while i < n {
                    if chars[i] == '\\' {
                        bump!();
                        if i < n {
                            bump!();
                        }
                        continue;
                    }
                    if chars[i] == '\'' {
                        bump!();
                        break;
                    }
                    bump!();
                }
                TokenKind::Char
            };
            note_line(&mut lines, start_line, LineKind::Code);
            tokens.push(Token { kind, line: start_line, col: start_col, in_test: false });
            continue;
        }

        // identifiers and keywords
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                bump!();
            }
            note_line(&mut lines, start_line, LineKind::Code);
            tokens.push(Token {
                kind: TokenKind::Ident(text),
                line: start_line,
                col: start_col,
                in_test: false,
            });
            continue;
        }

        // numbers (greedy, uninterpreted)
        if c.is_ascii_digit() {
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                let at_exponent_sign = (chars[i] == 'e' || chars[i] == 'E')
                    && i + 1 < n
                    && (chars[i + 1] == '+' || chars[i + 1] == '-')
                    && i + 2 < n
                    && chars[i + 2].is_ascii_digit();
                bump!();
                if at_exponent_sign {
                    bump!(); // the sign
                }
            }
            // a decimal point only when followed by a digit (so `0..n` and
            // `2.max(x)` stay separate tokens)
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                bump!();
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    let at_exponent_sign = (chars[i] == 'e' || chars[i] == 'E')
                        && i + 1 < n
                        && (chars[i + 1] == '+' || chars[i + 1] == '-')
                        && i + 2 < n
                        && chars[i + 2].is_ascii_digit();
                    bump!();
                    if at_exponent_sign {
                        bump!(); // the sign
                    }
                }
            }
            note_line(&mut lines, start_line, LineKind::Code);
            tokens.push(Token {
                kind: TokenKind::Number,
                line: start_line,
                col: start_col,
                in_test: false,
            });
            continue;
        }

        // single-character punctuation; `#` opening a line marks AttrOnly
        let line_kind =
            if c == '#' && lines.get(start_line).copied().unwrap_or_default() != LineKind::Code {
                LineKind::AttrOnly
            } else {
                LineKind::Code
            };
        note_line(&mut lines, start_line, line_kind);
        tokens.push(Token {
            kind: TokenKind::Punct(c),
            line: start_line,
            col: start_col,
            in_test: false,
        });
        bump!();
    }

    LexedSource { tokens, lines, line_comments }
}

/// Whether position `i` starts a string literal; returns
/// `(prefix_chars_before_hashes_or_quote, is_raw)` when it does.
fn str_prefix(chars: &[char], i: usize) -> Option<(usize, bool)> {
    let n = chars.len();
    let at = |k: usize| chars.get(i + k).copied();
    match chars[i] {
        '"' => Some((0, false)),
        'r' => {
            let mut k = 1;
            while i + k < n && chars[i + k] == '#' {
                k += 1;
            }
            // only #s may sit between `r` and the quote (else: raw ident)
            (at(k) == Some('"')).then_some((1, true))
        }
        'b' => match at(1) {
            Some('"') => Some((1, false)),
            Some('r') => {
                let mut k = 2;
                while i + k < n && chars[i + k] == '#' {
                    k += 1;
                }
                (at(k) == Some('"')).then_some((2, true))
            }
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident_names(lexed: &LexedSource) -> Vec<&str> {
        lexed.tokens.iter().filter_map(Token::ident).collect()
    }

    #[test]
    fn comments_and_strings_are_single_tokens() {
        let src =
            "let x = \"unsafe // not code\"; // trailing unsafe\n/* block\nunsafe */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(ident_names(&lexed), vec!["let", "x", "fn", "f"]);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str(content) => Some(content.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["unsafe // not code"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        let lexed = lex("r#\"a \"quoted\" b\"# b\"bytes\" br#\"raw bytes\"# r\"plain raw\"");
        let contents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str(content) => Some(content.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(contents, vec!["a \"quoted\" b", "bytes", "raw bytes", "plain raw"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; let l = 'label; }");
        let lifetimes =
            lexed.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Lifetime)).count();
        let chars = lexed.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Char)).count();
        assert_eq!(lifetimes, 3, "'a twice and 'label");
        assert_eq!(chars, 2, "'x' and the escaped quote");
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let lexed = lex("for i in 0..10 { let y = 1.5e-3; let z = 2.max(3); }");
        let numbers = lexed.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Number)).count();
        // 0, 10, 1.5e-3, 2, 3
        assert_eq!(numbers, 5);
        assert!(lexed.tokens.iter().any(|t| t.is_punct('.')));
        assert!(ident_names(&lexed).contains(&"max"));
    }

    #[test]
    fn line_kinds_and_comment_blocks() {
        let src = "\
// SAFETY: top comment
#[allow(dead_code)]
unsafe fn f() {}

let x = 1; // trailing
";
        let lexed = lex(src);
        assert_eq!(lexed.lines[1], LineKind::CommentOnly);
        assert_eq!(lexed.lines[2], LineKind::AttrOnly, "attr args never flip the line to Code");
        assert_eq!(lexed.lines[3], LineKind::Code);
        assert_eq!(lexed.lines[4], LineKind::Blank);
        assert_eq!(lexed.lines[5], LineKind::Code);
        let block = lexed.comment_block_above(3);
        assert!(block.contains("SAFETY:"), "{block:?}");
        assert!(lexed.comment_block_above(5).contains("trailing"), "own-line comments count");
        assert!(!lexed.comment_block_above(5).contains("SAFETY"), "blank+code break the block");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lexed = lex("/* outer /* inner */ still comment */ fn g() {}");
        assert_eq!(ident_names(&lexed), vec!["fn", "g"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
