//! Lint scope and per-rule allowlists.
//!
//! The defaults in [`Config::workspace`] describe this workspace: which
//! crates are linted, which modules may hold atomics, which files are
//! exempt from error-type hygiene, and where the metric-name registry and
//! README live. Fixture tests build their own `Config` instead.

/// Scope and allowlists for one lint run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names under `crates/` excluded from linting
    /// entirely (the linter itself is a dev tool, not shipped library
    /// code, so it is exempt from its own rules).
    pub exclude_crates: Vec<String>,
    /// Path prefixes (workspace-relative, `/` separators) where atomics
    /// are permitted. Everything here holds documented lock-free state:
    /// κ-sharing, feedback accumulators, metrics counters, span gating,
    /// and the engine's task-claim counter.
    pub atomics_allowed: Vec<String>,
    /// Files exempt from error-type hygiene. `bond-metrics` is a leaf
    /// crate (its only dependency is the vendored serde shim) and cannot
    /// name `BondError` without inverting the dependency graph; its
    /// `Result<_, String>` constructors are wrapped into `BondError` at
    /// the `bond-core` boundary.
    pub error_hygiene_allow: Vec<String>,
    /// The single module allowed to define dotted metric/stage name
    /// literals.
    pub names_module: Option<String>,
    /// The README whose metric documentation every registered name must
    /// appear in.
    pub readme: Option<String>,
}

impl Config {
    /// The configuration for this workspace.
    pub fn workspace() -> Self {
        Config {
            exclude_crates: vec!["lint".to_string()],
            atomics_allowed: vec![
                "crates/core/src/feedback.rs".to_string(),
                "crates/core/src/kappa.rs".to_string(),
                "crates/exec/src/kappa.rs".to_string(),
                "crates/exec/src/engine.rs".to_string(),
                "crates/obs/src/".to_string(),
            ],
            error_hygiene_allow: vec!["crates/metrics/src/metric.rs".to_string()],
            names_module: Some("crates/obs/src/names.rs".to_string()),
            readme: Some("README.md".to_string()),
        }
    }
}
