//! The bond-lint CLI.
//!
//! ```text
//! cargo run -p bond-lint -- check              # lint the workspace
//! cargo run -p bond-lint -- update-baseline    # regenerate lint-baseline.toml
//! ```
//!
//! `check` exits 0 when every finding is baselined, 1 on any error-level
//! finding, 2 on environmental failure (unreadable files, bad baseline).

use std::path::PathBuf;
use std::process::ExitCode;

use bond_lint::{compute_baseline, run_check, Baseline, Config, Level};

const BASELINE_FILE: &str = "lint-baseline.toml";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root_arg = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" => command = Some("check"),
            "update-baseline" | "--update-baseline" => command = Some("update-baseline"),
            "--root" => match iter.next() {
                Some(path) => root_arg = Some(PathBuf::from(path)),
                None => return usage("--root requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let command = command.unwrap_or("check");

    let root = match root_arg.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(root) => root,
        Err(message) => return fail(&message),
    };
    let config = Config::workspace();

    match command {
        "update-baseline" => {
            let baseline = match compute_baseline(&root, &config) {
                Ok(baseline) => baseline,
                Err(e) => return fail(&format!("walking workspace: {e}")),
            };
            let path = root.join(BASELINE_FILE);
            if let Err(e) = std::fs::write(&path, baseline.render()) {
                return fail(&format!("writing {}: {e}", path.display()));
            }
            let total: usize = baseline.panic_paths.values().sum();
            println!(
                "bond-lint: baseline updated — {total} panic path(s) across {} file(s) frozen \
                 in {BASELINE_FILE}",
                baseline.panic_paths.len()
            );
            ExitCode::SUCCESS
        }
        _ => {
            let baseline_path = root.join(BASELINE_FILE);
            let baseline = if baseline_path.is_file() {
                let text = match std::fs::read_to_string(&baseline_path) {
                    Ok(text) => text,
                    Err(e) => return fail(&format!("reading {BASELINE_FILE}: {e}")),
                };
                match Baseline::parse(&text) {
                    Ok(baseline) => baseline,
                    Err(message) => return fail(&message),
                }
            } else {
                Baseline::default()
            };
            let findings = match run_check(&root, &config, &baseline) {
                Ok(findings) => findings,
                Err(e) => return fail(&format!("walking workspace: {e}")),
            };
            let mut errors = 0usize;
            let mut notes = 0usize;
            for finding in &findings {
                match finding.level {
                    Level::Error => errors += 1,
                    Level::Note => notes += 1,
                }
                println!("{}", finding.render());
            }
            println!("bond-lint: {errors} error(s), {notes} note(s)");
            if errors > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}

/// Walks up from the current directory to the workspace root (the first
/// directory whose `Cargo.toml` declares `[workspace]`).
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory; \
                        pass --root <path>"
                .to_string());
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("bond-lint: {message}");
    eprintln!("usage: bond-lint [check | update-baseline] [--root <path>]");
    ExitCode::from(2)
}

fn fail(message: &str) -> ExitCode {
    eprintln!("bond-lint: {message}");
    ExitCode::from(2)
}
