//! The ratchet baseline: frozen panic-path debt, per file.
//!
//! `lint-baseline.toml` is written and read by a hand-rolled parser for
//! the tiny TOML subset it uses — one `[rule-id]` section holding
//! `"path" = count` lines — because the container is offline and the
//! linter is dependency-free by design. The ratchet direction is
//! one-way: a file's count may only go down; dropping below baseline
//! produces a note suggesting `update-baseline` to lock in the gain.

use std::collections::BTreeMap;

/// Per-rule frozen debt counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `no-panic-paths-in-lib`: path → allowed panic-path count.
    pub panic_paths: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the baseline file's TOML subset. Unknown sections are
    /// preserved-by-ignoring (forward compatibility); malformed lines are
    /// errors so a hand-edited baseline cannot silently drop entries.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut baseline = Baseline::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("baseline line {lineno}: expected `\"path\" = count`"));
            };
            let key = key.trim();
            let key = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("baseline line {lineno}: path must be quoted"))?;
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("baseline line {lineno}: count must be an integer"))?;
            if section == "no-panic-paths-in-lib" {
                baseline.panic_paths.insert(key.to_string(), count);
            }
        }
        Ok(baseline)
    }

    /// Renders the baseline back to its TOML subset, sorted by path so
    /// regeneration produces minimal diffs.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Ratchet baseline for `cargo run -p bond-lint -- check`.\n\
             # Frozen per-file debt: counts may only decrease. Regenerate with\n\
             # `cargo run -p bond-lint -- update-baseline` after paying debt down.\n\
             \n[no-panic-paths-in-lib]\n",
        );
        for (path, count) in &self.panic_paths {
            out.push_str(&format!("\"{path}\" = {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut baseline = Baseline::default();
        baseline.panic_paths.insert("crates/core/src/searcher.rs".to_string(), 15);
        baseline.panic_paths.insert("src/lib.rs".to_string(), 2);
        let rendered = baseline.render();
        assert_eq!(Baseline::parse(&rendered).unwrap(), baseline);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("[no-panic-paths-in-lib]\nnot a kv line").is_err());
        assert!(Baseline::parse("[no-panic-paths-in-lib]\nbare/path = 3").is_err());
        assert!(Baseline::parse("[no-panic-paths-in-lib]\n\"p\" = many").is_err());
    }

    #[test]
    fn ignores_unknown_sections_and_comments() {
        let parsed = Baseline::parse("# header\n[future-rule]\n\"x\" = 9\n").unwrap();
        assert!(parsed.panic_paths.is_empty());
    }
}
