//! The five invariant rules bond-lint enforces.
//!
//! Each rule matches token patterns from [`crate::lexer`] — never raw text
//! — so comments and string literals can neither trigger nor hide a
//! finding. Code inside `#[cfg(test)]` / `#[test]` items is exempt from
//! every rule (the guarantees the linter protects are about shipped
//! library code; tests unwrap freely and build naive `unsafe impl`s on
//! purpose).

use crate::baseline::Baseline;
use crate::config::Config;
use crate::lexer::{lex, LexedSource, Token, TokenKind};

/// Every `unsafe` block / fn / impl must sit directly under a `// SAFETY:`
/// comment stating the invariant that makes it sound.
pub const RULE_UNSAFE: &str = "unsafe-needs-safety-comment";
/// Every atomic `Ordering::…` use site must carry a `// ordering:`
/// justification (on the statement or its enclosing function), and atomics
/// may only appear in allowlisted concurrency modules.
pub const RULE_ATOMICS: &str = "atomics-need-ordering-justification";
/// `unwrap()` / `expect(` / `panic!` / `unimplemented!` in library code are
/// ratcheted: per-file counts may only go down relative to the baseline.
pub const RULE_PANIC: &str = "no-panic-paths-in-lib";
/// Dotted metric/stage name literals must live in the single
/// `bond_obs::names` registry module, and registered names must appear in
/// the README metric documentation.
pub const RULE_METRIC: &str = "metric-name-registry";
/// Public `Result`-returning functions in library crates must use the
/// workspace error types (`BondError` / `VdError`), not ad-hoc ones.
pub const RULE_ERROR: &str = "error-type-hygiene";

/// The memory-ordering variants of `std::sync::atomic::Ordering` (the
/// `cmp::Ordering` variants differ, so this set alone identifies atomics).
const ORDERING_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic type names whose mere presence marks a file as using atomics.
const ATOMIC_TYPES: [&str; 9] = [
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
];

/// Registry / span entry points whose first argument names a metric or
/// stage — a direct dotted literal there bypasses the names registry.
const REGISTRY_CALLS: [&str; 8] = [
    "counter",
    "gauge",
    "histogram",
    "counter_value",
    "gauge_value",
    "histogram_snapshot",
    "begin",
    "record",
];

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Fails the run (non-zero exit).
    Error,
    /// Informational (e.g. a stale baseline entry that can be ratcheted
    /// down); never fails the run.
    Note,
}

/// One diagnostic, rendered rustc-style as
/// `path:line:col: error[rule-id]: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Whether the finding fails the run.
    pub level: Level,
}

impl Finding {
    /// Renders the diagnostic in rustc's `file:line:col` style.
    pub fn render(&self) -> String {
        let level = match self.level {
            Level::Error => "error",
            Level::Note => "note",
        };
        format!(
            "{}:{}:{}: {level}[{}]: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Marks every token belonging to a `#[cfg(test)]` / `#[test]` item (the
/// attribute itself, any stacked attributes after it, and the item's body
/// through its matching close brace or terminating semicolon).
pub fn mark_test_regions(lexed: &mut LexedSource) {
    let code: Vec<usize> = (0..lexed.tokens.len())
        .filter(|&i| !matches!(lexed.tokens[i].kind, TokenKind::Comment(_)))
        .collect();
    let tok = |k: usize| -> Option<&Token> { code.get(k).map(|&i| &lexed.tokens[i]) };

    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        if !(tok(k).is_some_and(|t| t.is_punct('#')) && tok(k + 1).is_some_and(|t| t.is_punct('[')))
        {
            k += 1;
            continue;
        }
        // find the attribute's matching `]` and collect its identifiers
        let attr_start = k;
        let mut depth = 0usize;
        let mut m = k + 1;
        let mut names: Vec<&str> = Vec::new();
        while let Some(t) = tok(m) {
            match &t.kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(name) => names.push(name),
                _ => {}
            }
            m += 1;
        }
        let attr_close = m;
        let is_test_attr = names.contains(&"test") && !names.contains(&"not");
        if !is_test_attr {
            k = attr_close + 1;
            continue;
        }
        // skip stacked attributes between this one and the item
        let mut item = attr_close + 1;
        while tok(item).is_some_and(|t| t.is_punct('#'))
            && tok(item + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut d = 0usize;
            while let Some(t) = tok(item) {
                match t.kind {
                    TokenKind::Punct('[') => d += 1,
                    TokenKind::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                item += 1;
            }
            item += 1;
        }
        // the item runs to its body's matching `}`, or to `;` if bodyless
        let mut end = item;
        let mut brace_depth = 0usize;
        let mut saw_brace = false;
        while let Some(t) = tok(end) {
            match t.kind {
                TokenKind::Punct(';') if !saw_brace => break,
                TokenKind::Punct('{') => {
                    saw_brace = true;
                    brace_depth += 1;
                }
                TokenKind::Punct('}') => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let raw_start = code[attr_start];
        let raw_end = code.get(end).copied().unwrap_or(lexed.tokens.len() - 1);
        ranges.push((raw_start, raw_end));
        k = end + 1;
    }
    for (start, end) in ranges {
        for t in &mut lexed.tokens[start..=end] {
            t.in_test = true;
        }
    }
}

/// A function item's position: used to let one `// ordering:` comment above
/// a function justify every atomic access in its body.
#[derive(Debug)]
struct FnSpan {
    /// Raw token range of the body (open brace ..= close brace).
    body: (usize, usize),
    /// Whether the comment block above the `fn` contains `ordering:`.
    ordering_justified: bool,
}

/// One lexed file prepared for rule matching.
pub struct FileLint<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    lexed: &'a LexedSource,
    /// Indices of non-comment tokens, in order.
    code: Vec<usize>,
    fns: Vec<FnSpan>,
}

impl<'a> FileLint<'a> {
    /// Prepares `lexed` (already test-marked) for rule matching.
    pub fn new(rel_path: &'a str, lexed: &'a LexedSource) -> Self {
        let code: Vec<usize> = (0..lexed.tokens.len())
            .filter(|&i| !matches!(lexed.tokens[i].kind, TokenKind::Comment(_)))
            .collect();
        let mut fns = Vec::new();
        for (k, &i) in code.iter().enumerate() {
            if !lexed.tokens[i].is_ident("fn") {
                continue;
            }
            let fn_line = lexed.tokens[i].line;
            // find the body's opening brace (a `;` first means a bodyless
            // trait-method declaration)
            let mut m = k + 1;
            let mut open = None;
            while let Some(&j) = code.get(m) {
                match lexed.tokens[j].kind {
                    TokenKind::Punct('{') => {
                        open = Some(m);
                        break;
                    }
                    TokenKind::Punct(';') => break,
                    _ => {}
                }
                m += 1;
            }
            let Some(open) = open else { continue };
            let mut depth = 0usize;
            let mut close = open;
            while let Some(&j) = code.get(close) {
                match lexed.tokens[j].kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            let justified = lexed.comment_block_above(fn_line).contains("ordering:");
            fns.push(FnSpan {
                body: (code[open], code.get(close).copied().unwrap_or(code[open])),
                ordering_justified: justified,
            });
        }
        FileLint { rel_path, lexed, code, fns }
    }

    fn token(&self, k: usize) -> Option<&Token> {
        self.code.get(k).map(|&i| &self.lexed.tokens[i])
    }

    fn finding(&self, rule: &'static str, t: &Token, message: String) -> Finding {
        Finding {
            rule,
            path: self.rel_path.to_string(),
            line: t.line,
            col: t.col,
            message,
            level: Level::Error,
        }
    }

    /// Whether any enclosing function of raw token index `raw` carries an
    /// `ordering:` justification above its signature.
    fn in_justified_fn(&self, raw: usize) -> bool {
        self.fns.iter().any(|f| f.ordering_justified && f.body.0 < raw && raw < f.body.1)
    }

    /// Rule 1: `unsafe` needs a `// SAFETY:` comment directly above.
    pub fn check_unsafe(&self, out: &mut Vec<Finding>) {
        for k in 0..self.code.len() {
            let Some(t) = self.token(k) else { break };
            if t.in_test || !t.is_ident("unsafe") {
                continue;
            }
            if !self.lexed.comment_block_above(t.line).contains("SAFETY:") {
                out.push(self.finding(
                    RULE_UNSAFE,
                    t,
                    "`unsafe` without an immediately preceding `// SAFETY:` comment stating the \
                     invariant that makes it sound"
                        .to_string(),
                ));
            }
        }
    }

    /// Rule 2: atomic `Ordering::…` sites need `// ordering:` justification
    /// and may only live in allowlisted concurrency modules.
    pub fn check_atomics(&self, config: &Config, out: &mut Vec<Finding>) {
        let allowed = config.atomics_allowed.iter().any(|p| self.rel_path.starts_with(p.as_str()));
        for k in 0..self.code.len() {
            let Some(t) = self.token(k) else { break };
            if t.in_test {
                continue;
            }
            let is_site = t.is_ident("Ordering")
                && self.token(k + 1).is_some_and(|t| t.is_punct(':'))
                && self.token(k + 2).is_some_and(|t| t.is_punct(':'))
                && self
                    .token(k + 3)
                    .and_then(Token::ident)
                    .is_some_and(|v| ORDERING_VARIANTS.contains(&v));
            let is_atomic_type = t.ident().is_some_and(|n| ATOMIC_TYPES.contains(&n));
            if (is_site || is_atomic_type) && !allowed {
                out.push(self.finding(
                    RULE_ATOMICS,
                    t,
                    format!(
                        "atomics are only permitted in allowlisted concurrency modules \
                         ({}); move the shared state there or extend the allowlist with a \
                         justification",
                        config.atomics_allowed.join(", ")
                    ),
                ));
                continue;
            }
            if is_site {
                let variant = self.token(k + 3).and_then(Token::ident).unwrap_or_default();
                let statement_justified =
                    self.lexed.comment_block_above(t.line).contains("ordering:");
                if !statement_justified && !self.in_justified_fn(self.code[k]) {
                    out.push(self.finding(
                        RULE_ATOMICS,
                        t,
                        format!(
                            "`Ordering::{variant}` without an `// ordering:` justification on \
                             the statement or its enclosing function"
                        ),
                    ));
                }
            }
        }
    }

    /// Rule 3: the panic-path sites of this file (line/col per site).
    pub fn panic_sites(&self) -> Vec<(usize, usize)> {
        let mut sites = Vec::new();
        for k in 0..self.code.len() {
            let Some(t) = self.token(k) else { break };
            if t.in_test {
                continue;
            }
            let Some(name) = t.ident() else { continue };
            let hit = match name {
                "unwrap" | "expect" => {
                    k > 0
                        && self.token(k - 1).is_some_and(|p| p.is_punct('.'))
                        && self.token(k + 1).is_some_and(|n| n.is_punct('('))
                }
                "panic" | "unimplemented" => self.token(k + 1).is_some_and(|n| n.is_punct('!')),
                _ => false,
            };
            if hit {
                sites.push((t.line, t.col));
            }
        }
        sites
    }

    /// Rule 3: ratchets this file's panic-path count against the baseline.
    pub fn check_panic_paths(&self, baseline: &Baseline, out: &mut Vec<Finding>) {
        let sites = self.panic_sites();
        let allowed = baseline.panic_paths.get(self.rel_path).copied().unwrap_or(0);
        if sites.len() > allowed {
            let (line, col) = sites[allowed.min(sites.len() - 1)];
            out.push(Finding {
                rule: RULE_PANIC,
                path: self.rel_path.to_string(),
                line,
                col,
                message: format!(
                    "{} panic path(s) (unwrap/expect/panic!/unimplemented!) in library code, \
                     baseline allows {allowed}; handle the error instead, or lower the count \
                     elsewhere in this file (the baseline only ratchets down)",
                    sites.len()
                ),
                level: Level::Error,
            });
        } else if sites.len() < allowed {
            out.push(Finding {
                rule: RULE_PANIC,
                path: self.rel_path.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "panic paths improved ({} now, baseline {allowed}); run \
                     `cargo run -p bond-lint -- update-baseline` to lock in the gain",
                    sites.len()
                ),
                level: Level::Note,
            });
        }
    }

    /// Rule 4 (per-file part): dotted metric/stage literals outside the
    /// names registry module.
    pub fn check_metric_literals(&self, config: &Config, out: &mut Vec<Finding>) {
        if Some(self.rel_path) == config.names_module.as_deref() {
            return; // the registry module is where the literals belong
        }
        let mut reported = vec![false; self.code.len()];
        for k in 0..self.code.len() {
            let Some(t) = self.token(k) else { break };
            if t.in_test {
                continue;
            }
            // a) direct literals handed to registry/span entry points
            let is_registry_call = t.ident().is_some_and(|n| REGISTRY_CALLS.contains(&n))
                && self.token(k + 1).is_some_and(|n| n.is_punct('('));
            if is_registry_call {
                if let Some(arg) = self.token(k + 2) {
                    if let TokenKind::Str(content) = &arg.kind {
                        if content.contains('.') {
                            out.push(self.finding(
                                RULE_METRIC,
                                arg,
                                format!(
                                    "metric/stage name literal \"{content}\" at a registration \
                                     site; use a constant from bond_obs::names instead"
                                ),
                            ));
                            reported[k + 2] = true;
                            continue;
                        }
                    }
                }
            }
            // b) any metric-shaped literal (≥ 2 dots, lowercase dotted path)
            if let TokenKind::Str(content) = &t.kind {
                if !reported[k] && is_metric_shaped(content) {
                    out.push(self.finding(
                        RULE_METRIC,
                        t,
                        format!(
                            "dotted name literal \"{content}\" outside the bond_obs::names \
                             registry module; define it there and reference the constant"
                        ),
                    ));
                }
            }
        }
    }

    /// Rule 5: public `Result`-returning functions must use the workspace
    /// error types.
    pub fn check_error_hygiene(&self, config: &Config, out: &mut Vec<Finding>) {
        if config.error_hygiene_allow.iter().any(|p| self.rel_path == p.as_str()) {
            return;
        }
        for k in 0..self.code.len() {
            let Some(t) = self.token(k) else { break };
            if t.in_test || !t.is_ident("pub") {
                continue;
            }
            // `pub(crate)` / `pub(super)` are not public API
            if self.token(k + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            // allow modifiers between pub and fn: const/unsafe/async/extern "C"
            let mut m = k + 1;
            while self
                .token(m)
                .and_then(Token::ident)
                .is_some_and(|n| matches!(n, "const" | "unsafe" | "async" | "extern"))
                || self.token(m).is_some_and(|t| matches!(t.kind, TokenKind::Str(_)))
            {
                m += 1;
            }
            if !self.token(m).is_some_and(|t| t.is_ident("fn")) {
                continue;
            }
            if let Some(finding) = self.check_fn_signature(m) {
                out.push(finding);
            }
        }
    }

    /// Examines one function signature starting at the `fn` token (code
    /// index `fn_k`) for an explicit non-workspace error type.
    fn check_fn_signature(&self, fn_k: usize) -> Option<Finding> {
        let fn_name = self.token(fn_k + 1).and_then(Token::ident).unwrap_or("?").to_string();
        // collect the signature up to the body / terminator
        let mut sig_end = fn_k + 1;
        while let Some(t) = self.token(sig_end) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            sig_end += 1;
        }
        // find `->` (two adjacent puncts)
        let mut arrow = None;
        for k in fn_k..sig_end {
            if self.token(k).is_some_and(|t| t.is_punct('-'))
                && self.token(k + 1).is_some_and(|t| t.is_punct('>'))
            {
                arrow = Some(k + 2);
                break;
            }
        }
        let ret_start = arrow?;
        // find `Result` in the return type (stop at `where` / body)
        let mut k = ret_start;
        while k < sig_end {
            let t = self.token(k)?;
            if t.is_ident("where") {
                return None;
            }
            if t.is_ident("Result") && self.token(k + 1).is_some_and(|n| n.is_punct('<')) {
                // scan the generic arguments for a top-level comma
                let mut angle = 1usize;
                let mut paren = 0usize;
                let mut bracket = 0usize;
                let mut m = k + 2;
                let mut err_idents: Vec<String> = Vec::new();
                let mut after_comma = false;
                while angle > 0 {
                    let t = self.token(m)?;
                    match &t.kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle -= 1,
                        TokenKind::Punct('(') => paren += 1,
                        TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                        TokenKind::Punct('[') => bracket += 1,
                        TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                        TokenKind::Punct(',') if angle == 1 && paren == 0 && bracket == 0 => {
                            after_comma = true;
                        }
                        TokenKind::Ident(name) if after_comma && angle >= 1 => {
                            err_idents.push(name.clone());
                        }
                        _ => {}
                    }
                    m += 1;
                }
                if !after_comma {
                    return None; // crate `Result<T>` alias — fine
                }
                let ok = err_idents.iter().any(|n| n == "BondError" || n == "VdError");
                if !ok {
                    let t = self.token(k)?;
                    return Some(self.finding(
                        RULE_ERROR,
                        t,
                        format!(
                            "public fn `{fn_name}` returns Result with ad-hoc error type \
                             `{}`; library crates must surface BondError/VdError (or the \
                             crate Result alias)",
                            err_idents.join("::")
                        ),
                    ));
                }
                return None;
            }
            k += 1;
        }
        None
    }
}

/// Whether a string literal looks like a dotted metric name: at least two
/// dots, non-empty lowercase segments of `[a-z0-9_{}]` (the `{}` admits
/// `format!` templates like `engine.rule.{name}.searches`), starting with a
/// letter. File names (`main.rs`), version strings (`0.1.0`) and prose
/// never match.
pub fn is_metric_shaped(s: &str) -> bool {
    if s.matches('.').count() < 2 || !s.starts_with(|c: char| c.is_ascii_lowercase()) {
        return false;
    }
    s.split('.').all(|seg| {
        !seg.is_empty()
            && seg.chars().all(|c| {
                c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '{' || c == '}'
            })
    })
}

/// Lints one file's source against every per-file rule.
pub fn lint_file(rel_path: &str, src: &str, config: &Config, baseline: &Baseline) -> Vec<Finding> {
    let mut lexed = lex(src);
    mark_test_regions(&mut lexed);
    let file = FileLint::new(rel_path, &lexed);
    let mut out = Vec::new();
    file.check_unsafe(&mut out);
    file.check_atomics(config, &mut out);
    file.check_panic_paths(baseline, &mut out);
    file.check_metric_literals(config, &mut out);
    file.check_error_hygiene(config, &mut out);
    out
}

/// Counts the panic-path sites of one file (for baseline generation).
pub fn count_panic_sites(rel_path: &str, src: &str) -> usize {
    let mut lexed = lex(src);
    mark_test_regions(&mut lexed);
    FileLint::new(rel_path, &lexed).panic_sites().len()
}
