//! bond-lint: a dependency-free, workspace-aware invariant checker.
//!
//! The engine's guarantees — bit-identical parallel answers, rank-correct
//! merges, never-wrong quantized filtering — rest on invariants the
//! compiler cannot see: hand-picked atomic orderings, `unsafe` mmap
//! contracts, conservative bounds. This crate enforces the documentation
//! and containment of those invariants mechanically:
//!
//! - [`rules::RULE_UNSAFE`] — `unsafe` needs a `// SAFETY:` comment;
//! - [`rules::RULE_ATOMICS`] — `Ordering::…` needs `// ordering:`
//!   justification, atomics only in allowlisted modules;
//! - [`rules::RULE_PANIC`] — panic paths in lib code ratchet down against
//!   `lint-baseline.toml`;
//! - [`rules::RULE_METRIC`] — metric names live in `bond_obs::names` and
//!   are documented in the README;
//! - [`rules::RULE_ERROR`] — public `Result` fns use `BondError`/`VdError`.
//!
//! Run it as `cargo run -p bond-lint -- check`. See the README's "Static
//! analysis & invariants" section for rule-by-rule guidance.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use config::Config;
pub use rules::{Finding, Level};

use lexer::{lex, Token, TokenKind};

/// Collects the workspace-relative paths of every `.rs` file in scope:
/// `src/` and each `crates/<name>/src/` (minus excluded crates). Shims,
/// tests, benches and examples live outside these roots and are therefore
/// excluded structurally, not by filename convention.
pub fn collect_files(root: &Path, config: &Config) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, Path::new("src"), &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        entries.sort();
        for entry in entries {
            let Some(name) = entry.file_name().and_then(|n| n.to_str()) else { continue };
            if config.exclude_crates.iter().any(|x| x == name) {
                continue;
            }
            let src = entry.join("src");
            if src.is_dir() {
                let rel = PathBuf::from("crates").join(name).join("src");
                walk_rs(&src, &rel, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, rel: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        let Some(name) = entry.file_name().and_then(|n| n.to_str()) else { continue };
        let rel_child = rel.join(name);
        if entry.is_dir() {
            walk_rs(&entry, &rel_child, out)?;
        } else if name.ends_with(".rs") {
            // normalize to `/` so paths match the baseline on any host
            let unix = rel_child
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(unix);
        }
    }
    Ok(())
}

/// Runs every rule over the workspace and returns all findings, sorted by
/// path, line and column.
pub fn run_check(root: &Path, config: &Config, baseline: &Baseline) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in collect_files(root, config)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(rules::lint_file(&rel, &src, config, baseline));
    }
    findings.extend(check_name_registry(root, config)?);
    findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(findings)
}

/// The `metric-name-registry` workspace-level half: every `pub const` name
/// in the registry module must be unique and documented in the README.
fn check_name_registry(root: &Path, config: &Config) -> io::Result<Vec<Finding>> {
    let (Some(names_rel), Some(readme_rel)) = (&config.names_module, &config.readme) else {
        return Ok(Vec::new());
    };
    let mut findings = Vec::new();
    let names_path = root.join(names_rel);
    if !names_path.is_file() {
        findings.push(Finding {
            rule: rules::RULE_METRIC,
            path: names_rel.clone(),
            line: 1,
            col: 1,
            message: "metric-name registry module is missing".to_string(),
            level: Level::Error,
        });
        return Ok(findings);
    }
    let src = std::fs::read_to_string(&names_path)?;
    let readme = std::fs::read_to_string(root.join(readme_rel)).unwrap_or_default();
    let mut seen: BTreeMap<String, String> = BTreeMap::new();
    for (const_name, value, line) in registry_constants(&src) {
        if let Some(previous) = seen.insert(value.clone(), const_name.clone()) {
            findings.push(Finding {
                rule: rules::RULE_METRIC,
                path: names_rel.clone(),
                line,
                col: 1,
                message: format!(
                    "duplicate registered name \"{value}\" (`{const_name}` repeats `{previous}`)"
                ),
                level: Level::Error,
            });
        }
        if !readme.contains(&value) {
            findings.push(Finding {
                rule: rules::RULE_METRIC,
                path: names_rel.clone(),
                line,
                col: 1,
                message: format!(
                    "registered name \"{value}\" (`{const_name}`) is not documented in \
                     {readme_rel}; add it to the metrics/spans tables"
                ),
                level: Level::Error,
            });
        }
    }
    Ok(findings)
}

/// Extracts `(const_name, string_value, line)` for every
/// `const NAME: … = "…";` in the registry module, via the same lexer the
/// rules use (bond-lint cannot link `bond_obs` — it is dependency-free).
pub fn registry_constants(src: &str) -> Vec<(String, String, usize)> {
    let lexed = lex(src);
    let code: Vec<&Token> =
        lexed.tokens.iter().filter(|t| !matches!(t.kind, TokenKind::Comment(_))).collect();
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        if code[k].is_ident("const") {
            if let Some(name) = code.get(k + 1).and_then(|t| t.ident()) {
                // scan the declaration for `= "…" ;`
                let mut m = k + 2;
                while m < code.len() && !code[m].is_punct(';') {
                    if code[m].is_punct('=') {
                        if let Some(TokenKind::Str(value)) = code.get(m + 1).map(|t| &t.kind) {
                            out.push((name.to_string(), value.clone(), code[k].line));
                        }
                        break;
                    }
                    m += 1;
                }
            }
        }
        k += 1;
    }
    out
}

/// Computes a fresh baseline from the tree's current panic-path counts.
pub fn compute_baseline(root: &Path, config: &Config) -> io::Result<Baseline> {
    let mut baseline = Baseline::default();
    for rel in collect_files(root, config)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let count = rules::count_panic_sites(&rel, &src);
        if count > 0 {
            baseline.panic_paths.insert(rel, count);
        }
    }
    Ok(baseline)
}
