//! Fixture: one undocumented `unsafe`, one correctly documented.

pub fn read(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

pub fn read_ok(ptr: *const u8) -> u8 {
    // SAFETY: `ptr` is valid for reads by the caller's contract.
    unsafe { *ptr }
}
