//! Fixture: one unjustified `Ordering` site, two justified ones.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

// ordering: relaxed — fixture justification on the enclosing function.
pub fn bump_fn_justified(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn bump_stmt_justified(counter: &AtomicU64) {
    // ordering: seqcst — fixture justification on the statement.
    counter.fetch_add(1, Ordering::SeqCst);
}
