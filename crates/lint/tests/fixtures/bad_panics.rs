//! Fixture: two library panic paths, plus test code that must not count.

pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn second(v: &[u64]) -> u64 {
    *v.get(1).expect("fixture has two elements")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
        let _ = v.get(0).expect("present");
        if v.is_empty() {
            panic!("unreachable in the fixture");
        }
    }
}
