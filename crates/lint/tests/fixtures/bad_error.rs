//! Fixture: one ad-hoc public error type, plus shapes that must pass.

pub fn parse(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad".to_string())
}

pub fn alias_ok(s: &str) -> Result<u32> {
    parse(s)
}

pub fn bond_ok(s: &str) -> Result<u32, BondError> {
    parse(s).map_err(BondError::InvalidParams)
}

pub fn tuple_ok(s: &str) -> Result<(u32, f64), VdError> {
    let _ = s;
    Err(VdError::Corrupt)
}

pub fn tuple_bad(s: &str) -> Result<(u32, f64), Vec<String>> {
    let _ = s;
    Err(Vec::new())
}

pub(crate) fn crate_private(s: &str) -> Result<u32, String> {
    parse(s)
}

fn private(s: &str) -> Result<u32, String> {
    parse(s)
}
