//! Fixture: a file every rule accepts.

use std::sync::atomic::{AtomicU64, Ordering};

// ordering: relaxed — fixture counter, no cross-variable publication.
pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn read(ptr: *const u8) -> u8 {
    // SAFETY: `ptr` is valid for reads by the caller's contract.
    unsafe { *ptr }
}

pub fn checked(v: &[u64]) -> Result<u64, BondError> {
    v.first().copied().ok_or_else(|| BondError::InvalidParams("empty".to_string()))
}
