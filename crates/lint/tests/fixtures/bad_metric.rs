//! Fixture: a dotted metric literal at a registration site and a stray
//! metric-shaped literal elsewhere.

pub fn register(registry: &bond_obs::MetricsRegistry) -> bond_obs::Counter {
    registry.counter("engine.fixture.count")
}

pub fn stray() -> &'static str {
    "another.dotted.name"
}

pub fn not_metric_shaped() -> (&'static str, &'static str, &'static str) {
    // one dot, a version, and a file name — none may trip the rule
    ("engine.plan", "0.1.0", "main.rs")
}
