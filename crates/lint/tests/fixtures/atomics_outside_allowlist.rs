//! Fixture: atomics in a module that is not on the concurrency allowlist —
//! a justification comment alone must not make this pass.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn flip(flag: &AtomicBool) {
    // ordering: relaxed — justified, but the module is not allowlisted.
    flag.store(true, Ordering::Relaxed);
}
