//! Fixture tests: every rule is exercised against known-good and
//! known-bad snippets with exact rule IDs and line numbers, plus an
//! `update-baseline` round trip on a synthetic workspace.

use std::collections::BTreeMap;
use std::path::PathBuf;

use bond_lint::baseline::Baseline;
use bond_lint::config::Config;
use bond_lint::rules::{lint_file, RULE_ATOMICS, RULE_ERROR, RULE_METRIC, RULE_PANIC, RULE_UNSAFE};
use bond_lint::{compute_baseline, run_check, Finding, Level};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// A config whose allowlists admit the fixture directory itself, so the
/// per-rule bad fixtures only trip the rule under test.
fn fixture_config() -> Config {
    Config {
        exclude_crates: Vec::new(),
        atomics_allowed: vec![
            "fixtures/bad_atomics.rs".to_string(),
            "fixtures/good.rs".to_string(),
        ],
        error_hygiene_allow: Vec::new(),
        names_module: None,
        readme: None,
    }
}

fn errors(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.level == Level::Error).collect()
}

#[test]
fn good_fixture_is_clean() {
    let findings =
        lint_file("fixtures/good.rs", &fixture("good.rs"), &fixture_config(), &Baseline::default());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn undocumented_unsafe_is_reported_with_line() {
    let findings = lint_file(
        "fixtures/bad_unsafe.rs",
        &fixture("bad_unsafe.rs"),
        &fixture_config(),
        &Baseline::default(),
    );
    let errs = errors(&findings);
    assert_eq!(errs.len(), 1, "{findings:?}");
    assert_eq!(errs[0].rule, RULE_UNSAFE);
    assert_eq!(errs[0].line, 4, "the undocumented unsafe block, not the documented one");
}

#[test]
fn unjustified_ordering_is_reported_with_line() {
    let findings = lint_file(
        "fixtures/bad_atomics.rs",
        &fixture("bad_atomics.rs"),
        &fixture_config(),
        &Baseline::default(),
    );
    let errs = errors(&findings);
    assert_eq!(errs.len(), 1, "{findings:?}");
    assert_eq!(errs[0].rule, RULE_ATOMICS);
    assert_eq!(errs[0].line, 6, "only the unjustified site; fn- and stmt-level pass");
}

#[test]
fn atomics_outside_the_allowlist_are_reported_even_when_justified() {
    let findings = lint_file(
        "fixtures/atomics_outside_allowlist.rs",
        &fixture("atomics_outside_allowlist.rs"),
        &fixture_config(),
        &Baseline::default(),
    );
    let errs = errors(&findings);
    assert!(!errs.is_empty());
    assert!(errs.iter().all(|f| f.rule == RULE_ATOMICS), "{findings:?}");
    assert!(errs.iter().any(|f| f.line == 8), "the justified store still fires: {findings:?}");
}

#[test]
fn panic_paths_ratchet_against_the_baseline() {
    let config = fixture_config();
    let src = fixture("bad_panics.rs");

    // no baseline: both sites over, anchored at the first non-baselined one
    let findings = lint_file("fixtures/bad_panics.rs", &src, &config, &Baseline::default());
    let errs = errors(&findings);
    assert_eq!(errs.len(), 1, "{findings:?}");
    assert_eq!(errs[0].rule, RULE_PANIC);
    assert_eq!(errs[0].line, 4, "anchored at the first over-baseline site");

    // baseline 1: the second site is the first over-baseline one
    let mut baseline = Baseline::default();
    baseline.panic_paths.insert("fixtures/bad_panics.rs".to_string(), 1);
    let findings = lint_file("fixtures/bad_panics.rs", &src, &config, &baseline);
    assert_eq!(errors(&findings).len(), 1);
    assert_eq!(errors(&findings)[0].line, 8);

    // baseline 2: exactly at baseline — clean (test-module unwraps/panic
    // never counted)
    baseline.panic_paths.insert("fixtures/bad_panics.rs".to_string(), 2);
    let findings = lint_file("fixtures/bad_panics.rs", &src, &config, &baseline);
    assert!(errors(&findings).is_empty(), "{findings:?}");

    // baseline 3: improved — a note, never an error
    baseline.panic_paths.insert("fixtures/bad_panics.rs".to_string(), 3);
    let findings = lint_file("fixtures/bad_panics.rs", &src, &config, &baseline);
    assert!(errors(&findings).is_empty(), "{findings:?}");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].level, Level::Note);
}

#[test]
fn metric_literals_are_reported_once_per_site() {
    let findings = lint_file(
        "fixtures/bad_metric.rs",
        &fixture("bad_metric.rs"),
        &fixture_config(),
        &Baseline::default(),
    );
    let errs = errors(&findings);
    assert_eq!(errs.len(), 2, "{findings:?}");
    assert!(errs.iter().all(|f| f.rule == RULE_METRIC));
    assert_eq!(errs[0].line, 5, "registration-site literal");
    assert_eq!(errs[1].line, 9, "stray metric-shaped literal");
}

#[test]
fn adhoc_public_error_types_are_reported() {
    let findings = lint_file(
        "fixtures/bad_error.rs",
        &fixture("bad_error.rs"),
        &fixture_config(),
        &Baseline::default(),
    );
    let errs: Vec<&Finding> =
        errors(&findings).into_iter().filter(|f| f.rule == RULE_ERROR).collect();
    assert_eq!(errs.len(), 2, "{findings:?}");
    assert_eq!(errs[0].line, 3, "pub fn with Result<u32, String>");
    assert_eq!(errs[1].line, 20, "a tuple Ok type must not hide the ad-hoc error behind it");
}

#[test]
fn error_hygiene_allowlist_exempts_a_file() {
    let mut config = fixture_config();
    config.error_hygiene_allow.push("fixtures/bad_error.rs".to_string());
    let findings =
        lint_file("fixtures/bad_error.rs", &fixture("bad_error.rs"), &config, &Baseline::default());
    assert!(errors(&findings).iter().all(|f| f.rule != RULE_ERROR), "{findings:?}");
}

/// Builds a throwaway workspace under the target-level temp dir, returning
/// its root. Cleaned up by the caller.
fn scratch_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("bond-lint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("src")).unwrap();
    root
}

#[test]
fn update_baseline_round_trips_to_a_clean_run() {
    let root = scratch_workspace("roundtrip");
    std::fs::write(
        root.join("src/lib.rs"),
        "pub fn f(v: &[u64]) -> u64 {\n    *v.first().unwrap()\n}\n\
         pub fn g(v: &[u64]) -> u64 {\n    *v.get(1).expect(\"two\")\n}\n",
    )
    .unwrap();
    let config = Config {
        exclude_crates: Vec::new(),
        atomics_allowed: Vec::new(),
        error_hygiene_allow: Vec::new(),
        names_module: None,
        readme: None,
    };

    // without a baseline the scratch tree fails
    let findings = run_check(&root, &config, &Baseline::default()).unwrap();
    assert_eq!(errors(&findings).len(), 1);
    assert_eq!(errors(&findings)[0].rule, RULE_PANIC);

    // compute → render → parse → re-check: clean
    let computed = compute_baseline(&root, &config).unwrap();
    assert_eq!(computed.panic_paths, BTreeMap::from([("src/lib.rs".to_string(), 2usize)]));
    let reparsed = Baseline::parse(&computed.render()).unwrap();
    assert_eq!(reparsed, computed);
    let findings = run_check(&root, &config, &reparsed).unwrap();
    assert!(errors(&findings).is_empty(), "{findings:?}");

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn workspace_tree_is_lint_clean() {
    // the shipped tree must pass its own linter with the shipped baseline
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap();
    let baseline = Baseline::parse(&baseline_text).unwrap();
    let findings = run_check(&root, &Config::workspace(), &baseline).unwrap();
    let errs = errors(&findings);
    assert!(errs.is_empty(), "shipped tree has lint errors:\n{:#?}", errs);
}
