//! The algebraic (MIL) formulation and the direct BOND engine must return
//! identical answers: Section 6 claims BOND is "easily integrated in a
//! relational database system", and this test backs the claim by checking
//! the two code paths against each other (and both against a brute-force
//! scan) on generated histogram collections.

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering};
use bond_datagen::CorelLikeConfig;
use bond_relalg::BondHqProgram;
use proptest::prelude::*;
use vdstore::DecomposedTable;

fn sorted_scores(scores: impl IntoIterator<Item = f64>) -> Vec<f64> {
    let mut v: Vec<f64> = scores.into_iter().collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

#[test]
fn mil_plan_matches_engine_on_corel_like_data() {
    let table = CorelLikeConfig::small(500, 32).generate();
    let searcher = BondSearcher::new(&table);
    for (qi, k, m) in [(0u32, 10usize, 8usize), (100, 5, 4), (250, 1, 16), (499, 20, 2)] {
        let query = table.row(qi).unwrap();
        let params = BondParams {
            schedule: BlockSchedule::Fixed(m),
            ordering: DimensionOrdering::QueryValueDescending,
            ..BondParams::default()
        };
        let engine = searcher.histogram_intersection_hq(&query, k, &params).unwrap();
        let mil = BondHqProgram::new(k, m).unwrap().execute(&table, &query).unwrap();
        let engine_scores = sorted_scores(engine.hits.iter().map(|h| h.score));
        let mil_scores = sorted_scores(mil.hits.iter().map(|h| h.score));
        assert_eq!(engine_scores.len(), mil_scores.len());
        for (a, b) in engine_scores.iter().zip(&mil_scores) {
            assert!((a - b).abs() < 1e-9, "qi={qi} k={k} m={m}: {a} vs {b}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mil_plan_matches_engine_on_random_histograms(
        raw in proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, 8), 40),
        qi in 0usize..40,
        k in 1usize..=10,
        m in 1usize..=8,
    ) {
        let vectors: Vec<Vec<f64>> = raw
            .into_iter()
            .map(|mut v| {
                let total: f64 = v.iter().sum();
                for x in &mut v {
                    *x /= total;
                }
                v
            })
            .collect();
        let table = DecomposedTable::from_vectors("h", &vectors).unwrap();
        let query = vectors[qi].clone();
        let searcher = BondSearcher::new(&table);
        let params = BondParams {
            schedule: BlockSchedule::Fixed(m),
            ordering: DimensionOrdering::QueryValueDescending,
            ..BondParams::default()
        };
        let engine = searcher.histogram_intersection_hq(&query, k, &params).unwrap();
        let mil = BondHqProgram::new(k, m).unwrap().execute(&table, &query).unwrap();
        let engine_scores = sorted_scores(engine.hits.iter().map(|h| h.score));
        let mil_scores = sorted_scores(mil.hits.iter().map(|h| h.score));
        prop_assert_eq!(engine_scores.len(), mil_scores.len());
        for (a, b) in engine_scores.iter().zip(&mil_scores) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
