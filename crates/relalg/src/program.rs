//! The iterative BOND-Hq plan, executed through the BAT operators only.
//!
//! [`BondHqProgram::execute`] runs Algorithm 2 for histogram intersection
//! with criterion Hq exactly the way the Monet implementation of Section 6.1
//! does: it never touches the data except through the algebraic operators of
//! [`crate::ops`], and it logs every MIL statement it issues, so the
//! generated "script" can be inspected (and asserted on) by callers. The
//! only piece of logic outside the operators is scalar arithmetic on bounds
//! and the composition of candidate lists across iterations, both of which
//! MIL performs with ordinary scalar expressions.

use vdstore::bat::{Bat, OidBat};
use vdstore::topk::Scored;
use vdstore::{DecomposedTable, Result, RowId, TopKLargest, VdError};

use crate::ops;

/// The result of running the algebraic BOND-Hq plan.
#[derive(Debug, Clone, PartialEq)]
pub struct MilRun {
    /// The k best rows (original OIDs) with their exact similarities, best
    /// first.
    pub hits: Vec<Scored>,
    /// The MIL statements executed, in order.
    pub script: Vec<String>,
    /// Surviving candidates after each pruning step.
    pub candidates_per_step: Vec<usize>,
}

/// The BOND-Hq plan: k nearest neighbours under histogram intersection,
/// pruning every `m` dimensions with the query-only criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BondHqProgram {
    /// Number of results requested.
    pub k: usize,
    /// Dimensions scanned between pruning steps.
    pub m: usize,
}

impl BondHqProgram {
    /// Creates the plan. `k` and `m` must be positive.
    pub fn new(k: usize, m: usize) -> Result<Self> {
        if k == 0 {
            return Err(VdError::InvalidK { k, rows: 0 });
        }
        if m == 0 {
            return Err(VdError::InvalidArgument("m must be positive".into()));
        }
        Ok(BondHqProgram { k, m })
    }

    /// Executes the plan against the dimensional fragments of `table`,
    /// processing the dimensions in decreasing order of the query values
    /// (the paper's default ordering).
    pub fn execute(&self, table: &DecomposedTable, query: &[f64]) -> Result<MilRun> {
        let dims = table.dims();
        let rows = table.rows();
        if query.len() != dims {
            return Err(VdError::DimensionMismatch { expected: dims, actual: query.len() });
        }
        if self.k > rows {
            return Err(VdError::InvalidK { k: self.k, rows });
        }

        // Dimension order: decreasing query value.
        let mut order: Vec<usize> = (0..dims).collect();
        order
            .sort_by(|&a, &b| query[b].partial_cmp(&query[a]).unwrap_or(std::cmp::Ordering::Equal));

        let mut script = Vec::new();
        let mut candidates_per_step = Vec::new();

        // The base fragments as dense BATs (Figure 3a).
        let mut fragments: Vec<Bat> =
            table.columns().iter().map(|c| Bat::dense(c.values().to_vec())).collect();
        // Candidate list: dense result position -> original OID.
        let mut candidates = OidBat::dense((0..rows as RowId).collect());
        // Accumulated partial similarity, aligned with the candidate list.
        let mut smin = Bat::dense(vec![0.0; rows]);

        let mut processed = 0usize;
        while processed < dims {
            let block: Vec<usize> = order[processed..(processed + self.m).min(dims)].to_vec();
            // Step 1: Di := [min](Hi, const Qi);  Smin := [+](Smin, D1, ..., Dm)
            let mut summands: Vec<Bat> = Vec::with_capacity(block.len());
            for &d in &block {
                script.push(format!("D{d} := [min](H{d}, const {:.6});", query[d]));
                summands.push(ops::map_min_const(&fragments[d], query[d]));
            }
            let mut inputs: Vec<&Bat> = vec![&smin];
            inputs.extend(summands.iter());
            script.push(format!(
                "Smin := [+](Smin, {});",
                block.iter().map(|d| format!("D{d}")).collect::<Vec<_>>().join(", ")
            ));
            smin = ops::map_add(&inputs)?;
            processed += block.len();

            if candidates.len() <= self.k || processed >= dims {
                break;
            }

            // Step 2: sk := Smin.kfetch(k); maxbound := sk - T(q+);
            //         C := Smin.uselect(maxbound, 1.0);
            // (For a normalized query, T(q+) = 1 - sumQ, so maxbound is the
            //  paper's `sk + sumQ - 1`.)
            let sk = ops::kfetch_largest(&smin, self.k)?;
            let remaining_query: f64 = order[processed..].iter().map(|&d| query[d]).sum();
            let maxbound = sk - remaining_query;
            script.push(format!("sk := Smin.kfetch({});", self.k));
            script.push(format!("maxbound := sk - {remaining_query:.6};"));
            script.push("C := Smin.uselect(maxbound, 1.0);".to_string());
            let selected = ops::uselect_range(&smin, maxbound, f64::INFINITY);

            // Compose the selection (positions within the current candidate
            // list) with the existing candidate list to recover original OIDs.
            let new_oids: Vec<RowId> =
                selected.tail().iter().map(|&pos| candidates.tail()[pos as usize]).collect();
            candidates = OidBat::dense(new_oids);
            candidates_per_step.push(candidates.len());

            // Step 3: Hi := C.reverse.join(Hi) for the remaining fragments,
            // and the same reduction for the accumulated Smin.
            script.push("Smin := C.reverse.join(Smin);".to_string());
            smin = ops::positional_join(&selected, &smin)?;
            for &d in &order[processed..] {
                script.push(format!("H{d} := C.reverse.join(H{d});"));
                fragments[d] = ops::positional_join(&selected, &fragments[d])?;
            }
            if candidates.len() <= self.k {
                break;
            }
        }

        // Finish: complete the exact similarity of the surviving candidates
        // over any unprocessed dimensions, then rank.
        if processed < dims {
            let mut inputs: Vec<Bat> = Vec::new();
            for &d in &order[processed..] {
                script.push(format!("D{d} := [min](H{d}, const {:.6});", query[d]));
                inputs.push(ops::map_min_const(&fragments[d], query[d]));
            }
            let mut refs: Vec<&Bat> = vec![&smin];
            refs.extend(inputs.iter());
            script.push("Smin := [+](Smin, ...);".to_string());
            smin = ops::map_add(&refs)?;
        }

        let mut heap = TopKLargest::new(self.k);
        for (pos, &score) in smin.tail().iter().enumerate() {
            heap.push(candidates.tail()[pos], score);
        }
        Ok(MilRun { hits: heap.into_sorted_vec(), script, candidates_per_step })
    }
}

/// Convenience wrapper: run the algebraic BOND-Hq plan with the paper's
/// default block size (`m = 8`).
pub fn run_bond_hq(table: &DecomposedTable, query: &[f64], k: usize) -> Result<MilRun> {
    BondHqProgram::new(k, 8)?.execute(table, query)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_table() -> DecomposedTable {
        DecomposedTable::from_vectors(
            "table2",
            &[
                vec![0.1, 0.3, 0.4, 0.2],
                vec![0.05, 0.05, 0.9, 0.0],
                vec![0.8, 0.1, 0.05, 0.05],
                vec![0.2, 0.6, 0.1, 0.1],
                vec![0.7, 0.15, 0.15, 0.0],
                vec![0.925, 0.0, 0.0, 0.025],
                vec![0.55, 0.2, 0.15, 0.1],
                vec![0.05, 0.1, 0.05, 0.8],
                vec![0.45, 0.5, 0.05, 0.05],
            ],
        )
        .unwrap()
    }

    #[test]
    fn plan_finds_the_paper_example_answer() {
        let table = example_table();
        let query = vec![0.7, 0.15, 0.1, 0.05];
        let program = BondHqProgram::new(3, 2).unwrap();
        let run = program.execute(&table, &query).unwrap();
        let mut rows: Vec<RowId> = run.hits.iter().map(|h| h.row).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![2, 4, 6]);
        // the first pruning step leaves 5 candidates (Section 4.2, rule Hq)
        assert_eq!(run.candidates_per_step.first().copied(), Some(5));
    }

    #[test]
    fn script_contains_the_mil_statements_of_section_6_1() {
        let table = example_table();
        let query = vec![0.7, 0.15, 0.1, 0.05];
        let run = BondHqProgram::new(3, 2).unwrap().execute(&table, &query).unwrap();
        let script = run.script.join("\n");
        assert!(script.contains("[min](H0, const 0.700000)"));
        assert!(script.contains("Smin := [+]"));
        assert!(script.contains("Smin.kfetch(3)"));
        assert!(script.contains("C := Smin.uselect(maxbound, 1.0);"));
        assert!(script.contains("C.reverse.join(H"));
    }

    #[test]
    fn validation() {
        let table = example_table();
        assert!(BondHqProgram::new(0, 2).is_err());
        assert!(BondHqProgram::new(2, 0).is_err());
        let p = BondHqProgram::new(3, 2).unwrap();
        assert!(p.execute(&table, &[0.5; 3]).is_err());
        let p = BondHqProgram::new(99, 2).unwrap();
        assert!(p.execute(&table, &[0.25; 4]).is_err());
    }

    #[test]
    fn run_bond_hq_defaults_work_on_single_block() {
        let table = example_table();
        let query = vec![0.7, 0.15, 0.1, 0.05];
        // m = 8 > 4 dims: degenerates into one full scan, still correct
        let run = run_bond_hq(&table, &query, 1).unwrap();
        assert_eq!(run.hits[0].row, 4);
        assert!((run.hits[0].score - 0.95).abs() < 1e-12);
    }
}
