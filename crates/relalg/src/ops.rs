//! Physical BAT operators used by the MIL formulation of BOND.
//!
//! These mirror the Monet operators named in Section 6.1. All of them
//! preserve the dense-head property where the original system does, so the
//! positional joins of step 3 stay cheap.

use vdstore::bat::{Bat, Head, OidBat};
use vdstore::ops as kernels;
use vdstore::{Bitmap, Result, VdError};

/// `[min](Hi, const q)` — the multi-join map that takes the element-wise
/// minimum of a dimensional fragment and a query constant.
pub fn map_min_const(input: &Bat, constant: f64) -> Bat {
    input.map_tail(|v| v.min(constant))
}

/// `[+](D1, ..., Dm)` — the multi-join map that adds aligned fragments
/// element-wise. All inputs must have the same length; the head of the
/// first input is reused (the join is positional because the fragments are
/// aligned).
pub fn map_add(inputs: &[&Bat]) -> Result<Bat> {
    let first = inputs.first().ok_or(VdError::Empty("input list"))?;
    let tails: Vec<&[f64]> = inputs.iter().map(|b| b.tail()).collect();
    let summed = kernels::map_add(&tails)?;
    // Property propagation (Section 6): the result of a positional multi-join
    // map over aligned fragments keeps the head of its first input, so a
    // dense head stays dense and later positional joins remain cheap.
    Ok(match first.head() {
        Head::VirtualDense { base } => Bat::dense_from(*base, summed),
        Head::Materialized(_) => {
            Bat::materialized(first.head_oids(), summed).expect("aligned inputs")
        }
    })
}

/// `Smin.kfetch(k)` — the k-th largest tail value.
pub fn kfetch_largest(input: &Bat, k: usize) -> Result<f64> {
    kernels::kfetch_largest(input.tail(), k)
}

/// `Smin.uselect(lo, hi)` — the unary range select. Returns an [`OidBat`]
/// mapping a dense result head to the head OIDs of qualifying tuples, which
/// is exactly the candidate list `C` of step 2.
pub fn uselect_range(input: &Bat, lo: f64, hi: f64) -> OidBat {
    let mut qualifying = Vec::new();
    for (idx, &v) in input.tail().iter().enumerate() {
        if v >= lo && v <= hi {
            qualifying.push(input.head_oids()[idx]);
        }
    }
    OidBat::dense(qualifying)
}

/// `C.reverse.join(Hi)` — the positional join that restricts a remaining
/// fragment to the candidate set.
pub fn positional_join(candidates: &OidBat, fragment: &Bat) -> Result<Bat> {
    candidates.join(fragment)
}

/// `C.bitmap(n)` — materialises a candidate list as an eligibility bitmap
/// over an `n`-row table: the handoff from relational selects to the k-NN
/// operator (Section 6.1's "combined with prior relational predicates"),
/// which the execution engine consumes as a query filter.
///
/// # Errors
///
/// [`VdError::InvalidArgument`] when a candidate OID is outside `0..rows`.
pub fn candidates_to_bitmap(candidates: &OidBat, rows: usize) -> Result<Bitmap> {
    let mut bitmap = Bitmap::new(rows);
    for &oid in candidates.tail() {
        if oid as usize >= rows {
            return Err(VdError::InvalidArgument(format!(
                "candidate OID {oid} is outside the {rows}-row table"
            )));
        }
        bitmap.set(oid);
    }
    Ok(bitmap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_min_const_clamps() {
        let h = Bat::dense(vec![0.8, 0.05, 0.2]);
        let d = map_min_const(&h, 0.1);
        assert_eq!(d.tail(), &[0.1, 0.05, 0.1]);
        assert!(d.head().is_dense());
    }

    #[test]
    fn map_add_aligns_positionally() {
        let a = Bat::dense(vec![0.1, 0.2]);
        let b = Bat::dense(vec![0.3, 0.4]);
        let s = map_add(&[&a, &b]).unwrap();
        assert_eq!(s.tail(), &[0.4, 0.6000000000000001]);
        assert!(map_add(&[]).is_err());
        let short = Bat::dense(vec![0.1]);
        assert!(map_add(&[&a, &short]).is_err());
    }

    #[test]
    fn kfetch_is_kth_largest() {
        let s = Bat::dense(vec![0.25, 0.8, 0.1, 0.85, 0.7]);
        assert_eq!(kfetch_largest(&s, 1).unwrap(), 0.85);
        assert_eq!(kfetch_largest(&s, 3).unwrap(), 0.7);
        assert!(kfetch_largest(&s, 6).is_err());
    }

    #[test]
    fn uselect_returns_candidate_oids() {
        let s = Bat::dense(vec![0.25, 0.8, 0.1, 0.85, 0.7]);
        let c = uselect_range(&s, 0.7, 1.0);
        assert_eq!(c.tail(), &[1, 3, 4]);
        // works on materialized heads too
        let m = Bat::materialized(vec![10, 20, 30], vec![0.5, 0.9, 0.2]).unwrap();
        let c = uselect_range(&m, 0.6, 1.0);
        assert_eq!(c.tail(), &[20]);
    }

    #[test]
    fn candidates_materialise_as_bitmaps() {
        let c = OidBat::dense(vec![1, 3, 4]);
        let bitmap = candidates_to_bitmap(&c, 6).unwrap();
        assert_eq!(bitmap.to_rows(), vec![1, 3, 4]);
        assert_eq!(bitmap.len(), 6);
        assert!(candidates_to_bitmap(&c, 4).is_err());
        assert_eq!(candidates_to_bitmap(&OidBat::dense(vec![]), 3).unwrap().count(), 0);
    }

    #[test]
    fn positional_join_restricts_fragments() {
        let fragment = Bat::dense(vec![0.4, 0.3, 0.2, 0.1]);
        let candidates = OidBat::dense(vec![2, 0]);
        let reduced = positional_join(&candidates, &fragment).unwrap();
        assert_eq!(reduced.tail(), &[0.2, 0.4]);
    }
}
