//! # bond-relalg — BOND expressed in relational algebra
//!
//! Section 6 of the paper stresses that BOND "can be expressed in standard
//! relational algebra; it does not require user-defined types or advanced
//! indexing structures" and lists the MIL (Monet Interpreter Language)
//! program that implements criterion Hq:
//!
//! ```text
//! 1. for i in 1 .. m do
//!        Di := [min](Hi, const Qi);
//!    Smin := [+](D1, ..., Dm);
//! 2. sumQ := Q1 + .. + Qm;
//!    sk := Smin.kfetch( k );
//!    maxbound := sk + sumQ - 1;
//!    C := Smin.uselect(maxbound, 1.0);
//! 3. for i in m+1 .. N do
//!        Hi := C.reverse.join(Hi);
//! ```
//!
//! This crate reproduces that formulation on top of the BAT types of
//! `vdstore`: [`ops`] provides the physical operators (`[min]`, `[+]`,
//! `kfetch`, `uselect`, positional join), and [`program`] drives the
//! iterative BOND-Hq plan using *only* those operators, recording the MIL
//! statements it executes along the way. The tests check that the algebraic
//! formulation returns exactly the same answers as the direct implementation
//! in `bond-core`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ops;
pub mod program;

pub use ops::{
    candidates_to_bitmap, kfetch_largest, map_add, map_min_const, positional_join, uselect_range,
};
pub use program::{run_bond_hq, BondHqProgram, MilRun};
