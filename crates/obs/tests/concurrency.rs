//! The registry under contention: 8 threads hammer one counter, one gauge
//! and one histogram; counts must be exact and histogram totals conserved.

use bond_obs::MetricsRegistry;

const THREADS: usize = 8;
const OPS: usize = 10_000;

#[test]
fn eight_threads_counts_exact_and_histogram_totals_conserved() {
    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                // half the threads pre-register handles, half go through the
                // registry every time — both paths must count exactly
                let counter = registry.counter("test.ops");
                let histogram = registry.histogram("test.value");
                for i in 0..OPS {
                    if t % 2 == 0 {
                        counter.inc();
                        histogram.record((t * OPS + i) as u64);
                    } else {
                        registry.counter("test.ops").inc();
                        registry.histogram("test.value").record((t * OPS + i) as u64);
                    }
                    registry.gauge("test.level").add(1);
                }
            });
        }
    });

    let total = (THREADS * OPS) as u64;
    assert_eq!(registry.counter_value("test.ops"), Some(total));
    assert_eq!(registry.gauge_value("test.level"), Some(total as i64));

    let snap = registry.histogram_snapshot("test.value").unwrap();
    assert_eq!(snap.count, total, "histogram count is exact");
    assert_eq!(snap.buckets.iter().sum::<u64>(), total, "bucket totals conserve every observation");
    // sum of 0..THREADS*OPS
    assert_eq!(snap.sum, total * (total - 1) / 2);
    // quantiles are monotone in q
    assert!(snap.quantile(0.5) <= snap.quantile(0.95));
    assert!(snap.quantile(0.95) <= snap.quantile(0.99));
}
