//! # bond-obs — observability for the BOND reproduction
//!
//! A dependency-free (shims-only workspace, like `vdstore::mmap`)
//! observability layer shared by every crate of the reproduction:
//!
//! * [`registry`] — a [`MetricsRegistry`] of lock-free atomic
//!   [`Counter`]s, [`Gauge`]s and log-scale [`Histogram`]s registered
//!   under stable dotted names (`engine.query.latency_us`,
//!   `engine.segment.skipped`, `service.queue.depth`, …), with snapshot
//!   export as both a Prometheus-style text page
//!   ([`MetricsRegistry::render_text`]) and a single machine-readable JSON
//!   object ([`MetricsRegistry::render_json`], the `BENCH_JSON`
//!   convention the benches already print).
//! * [`span`] — stage-level tracing: [`Span`] guards measure
//!   plan-derivation, per-segment scans, warmups, merges, persist/open and
//!   service queue-wait with monotonic clocks into a thread-safe ring
//!   buffer. The whole subsystem costs one relaxed atomic load per span
//!   site while the global subscriber is disabled ([`span::set_enabled`]),
//!   so instrumented hot loops stay hot.
//!
//! The registry is *instantiable* (each engine owns a fresh one by
//! default and can be handed a shared one), so concurrent
//! engines — and concurrent unit tests asserting exact counts — never
//! share counters by accident. The tracing subscriber switch, by contrast,
//! is deliberately process-global: it only gates whether clocks are read,
//! never where measurements go.
//!
//! ```
//! use bond_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let served = registry.counter("service.query.served");
//! served.inc();
//! let latency = registry.histogram("engine.query.latency_us");
//! latency.record(180);
//! assert!(registry.render_text().contains("service_query_served 1"));
//! assert!(registry.render_json().contains("\"service.query.served\":1"));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod names;
pub mod registry;
pub mod span;

pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use span::{enabled, set_enabled, take_spans, Span, SpanRecord};
