//! The metrics registry: named lock-free counters, gauges and log-scale
//! histograms with Prometheus-text and JSON-line snapshot export.
//!
//! Registration (name → handle) takes a short mutex; every *update* after
//! that is a single relaxed atomic RMW on a pre-registered handle, so hot
//! loops hold handles and never touch the registry lock. Handles are
//! cheaply clonable (`Arc` bumps) and stay live independently of the
//! registry that minted them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets a [`Histogram`] holds: bucket 0 counts zero
/// values, bucket `i ≥ 1` counts values whose bit length is `i` (the range
/// `[2^(i-1), 2^i − 1]`), so the full `u64` domain is covered.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    // ordering: relaxed — an independent monotone event count; no other
    // memory is published through it and exports tolerate being a few
    // increments behind.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    // ordering: relaxed — a monitoring read; staleness only shifts when an
    // increment becomes visible, never what value it has.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, warm-segment count).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Replaces the level.
    // ordering: relaxed — the gauge is an instantaneous level read only by
    // monitoring; last-writer-wins with no release obligation.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    // ordering: relaxed — atomic RMW keeps concurrent deltas lossless; no
    // cross-variable visibility is needed.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    // ordering: relaxed — monitoring read, same as Counter::get.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log-scale (power-of-two bucket) histogram of `u64` observations —
/// latencies in microseconds, scanned-cell counts, percent errors.
///
/// Recording is three relaxed atomic adds; quantiles are estimated from
/// the fixed buckets at snapshot time (each reported quantile is the upper
/// bound `2^i − 1` of the bucket the quantile falls in, i.e. exact to
/// within a factor of two — plenty for latency monitoring).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Bucket index of one observation: 0 for 0, otherwise the bit length.
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The largest value bucket `i` can hold (its `le` bound).
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    // ordering: relaxed — three independent monotone accumulators; snapshot
    // derives its count from the bucket sum, so no inter-field ordering is
    // relied upon (see `snapshot`).
    pub fn record(&self, v: u64) {
        self.0.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations recorded so far.
    // ordering: relaxed — monitoring read of a monotone count.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on `u64` overflow).
    // ordering: relaxed — monitoring read of a monotone sum.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy (individual bucket loads are
    /// relaxed; totals conserve because every record updates the bucket
    /// before the count is read back by callers that first observe quiesce).
    // ordering: relaxed — the count is recomputed from the bucket loads
    // (never read from the racing `count` field), so the snapshot is
    // internally consistent without acquire fences; `sum` may trail by
    // in-flight records, which monitoring tolerates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = buckets.iter().sum();
        let sum = self.0.sum.load(Ordering::Relaxed);
        HistogramSnapshot { buckets, count, sum }
    }
}

/// A point-in-time copy of one histogram's buckets with quantile lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: Vec<u64>,
    /// Total observations (the sum of `buckets`).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// the `⌈q·count⌉`-th smallest observation fell into (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Histogram::bucket_bound(i);
            }
        }
        Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// The mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A named collection of [`Counter`]s, [`Gauge`]s and [`Histogram`]s.
///
/// Cloning shares the underlying metrics (an `Arc` bump): an engine, the
/// server fronting it and a bench harness can all hold the same registry.
/// Names are stable dotted paths (`engine.segment.skipped`); a name is one
/// metric kind forever — asking for an existing name with a different kind
/// returns a *distinct* metric that renders under a `_gauge`-style suffix
/// would be surprising, so callers simply keep kinds per name consistent
/// (all call sites in this workspace register through typed constants).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("registry mutex never poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("registry mutex never poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("registry mutex never poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The current value of the counter `name`, if one is registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .counters
            .lock()
            .expect("registry mutex never poisoned")
            .get(name)
            .map(Counter::get)
    }

    /// The current value of the gauge `name`, if one is registered.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.inner.gauges.lock().expect("registry mutex never poisoned").get(name).map(Gauge::get)
    }

    /// A snapshot of the histogram `name`, if one is registered.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner
            .histograms
            .lock()
            .expect("registry mutex never poisoned")
            .get(name)
            .map(Histogram::snapshot)
    }

    /// Renders every metric as a Prometheus-style text page: dotted names
    /// flatten to underscores, counters and gauges as single samples,
    /// histograms as cumulative `_bucket{le="…"}` series plus `_sum` and
    /// `_count`. Deterministic order (names sort lexicographically).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.inner.counters.lock().expect("registry mutex never poisoned").iter() {
            let flat = flatten(name);
            out.push_str(&format!("# TYPE {flat} counter\n{flat} {}\n", c.get()));
        }
        for (name, g) in self.inner.gauges.lock().expect("registry mutex never poisoned").iter() {
            let flat = flatten(name);
            out.push_str(&format!("# TYPE {flat} gauge\n{flat} {}\n", g.get()));
        }
        for (name, h) in self.inner.histograms.lock().expect("registry mutex never poisoned").iter()
        {
            let flat = flatten(name);
            let snap = h.snapshot();
            out.push_str(&format!("# TYPE {flat} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &n) in snap.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                out.push_str(&format!(
                    "{flat}_bucket{{le=\"{}\"}} {cumulative}\n",
                    Histogram::bucket_bound(i)
                ));
            }
            out.push_str(&format!("{flat}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
            out.push_str(&format!("{flat}_sum {}\n", snap.sum));
            out.push_str(&format!("{flat}_count {}\n", snap.count));
        }
        out
    }

    /// Renders every metric as one JSON object (no trailing newline) in the
    /// shape the benches' `BENCH_JSON` lines use: counters and gauges as
    /// plain numbers keyed by their dotted names, histograms as
    /// `{count, sum, p50, p95, p99}` sub-objects. Deterministic key order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let counters = self.inner.counters.lock().expect("registry mutex never poisoned");
        out.push_str(
            &counters
                .iter()
                .map(|(name, c)| format!("\"{name}\":{}", c.get()))
                .collect::<Vec<_>>()
                .join(","),
        );
        drop(counters);
        out.push_str("},\"gauges\":{");
        let gauges = self.inner.gauges.lock().expect("registry mutex never poisoned");
        out.push_str(
            &gauges
                .iter()
                .map(|(name, g)| format!("\"{name}\":{}", g.get()))
                .collect::<Vec<_>>()
                .join(","),
        );
        drop(gauges);
        out.push_str("},\"histograms\":{");
        let histograms = self.inner.histograms.lock().expect("registry mutex never poisoned");
        out.push_str(
            &histograms
                .iter()
                .map(|(name, h)| {
                    let s = h.snapshot();
                    format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        s.count,
                        s.sum,
                        s.quantile(0.50),
                        s.quantile(0.95),
                        s.quantile(0.99)
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("}}");
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; dotted paths flatten to
/// underscores (hyphens too, defensively).
fn flatten(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_state() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("x.count"), Some(3));
        assert_eq!(r.counter_value("missing"), None);

        let g = r.gauge("x.depth");
        g.set(5);
        g.add(-2);
        assert_eq!(r.gauge_value("x.depth"), Some(3));
    }

    #[test]
    fn registry_clones_share_metrics() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.counter("shared").inc();
        r2.counter("shared").inc();
        assert_eq!(r.counter_value("shared"), Some(2));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);

        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 101_106);
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        // p50 falls into the bucket holding 3 (values [2,3]) → bound 3
        assert_eq!(s.quantile(0.5), 3);
        // p99 falls into the bucket holding 100_000 → bound 2^17-1
        assert_eq!(s.quantile(0.99), (1 << 17) - 1);
        assert!(s.mean() > 0.0);
        assert_eq!(HistogramSnapshot { buckets: vec![0; 65], count: 0, sum: 0 }.quantile(0.5), 0);
    }

    #[test]
    fn text_render_is_prometheus_shaped() {
        let r = MetricsRegistry::new();
        r.counter("engine.segment.skipped").add(7);
        r.gauge("service.queue.depth").set(2);
        r.histogram("engine.query.latency_us").record(900);
        let text = r.render_text();
        assert!(text.contains("# TYPE engine_segment_skipped counter"));
        assert!(text.contains("engine_segment_skipped 7"));
        assert!(text.contains("# TYPE service_queue_depth gauge"));
        assert!(text.contains("service_queue_depth 2"));
        assert!(text.contains("# TYPE engine_query_latency_us histogram"));
        assert!(text.contains("engine_query_latency_us_bucket{le=\"1023\"} 1"));
        assert!(text.contains("engine_query_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("engine_query_latency_us_sum 900"));
        assert!(text.contains("engine_query_latency_us_count 1"));
    }

    #[test]
    fn json_render_is_one_deterministic_object() {
        let r = MetricsRegistry::new();
        r.counter("b.count").inc();
        r.counter("a.count").add(4);
        r.histogram("lat_us").record(10);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'));
        // BTreeMap order: a before b
        let a = json.find("\"a.count\":4").unwrap();
        let b = json.find("\"b.count\":1").unwrap();
        assert!(a < b);
        assert!(
            json.contains("\"lat_us\":{\"count\":1,\"sum\":10,\"p50\":15,\"p95\":15,\"p99\":15}")
        );
        assert_eq!(json, r.render_json(), "stable across renders");
    }
}
