//! Stage-level tracing: lightweight spans into a global ring buffer.
//!
//! A [`Span`] measures one stage of a query's life — plan derivation, one
//! segment's scan, its warmup, the merge, a store persist/open, a
//! request's queue wait — with a monotonic clock and records it into a
//! fixed-capacity, thread-safe ring buffer when dropped. The whole
//! subsystem is gated by one process-global flag: while tracing is
//! disabled (the default), [`Span::begin`] is a single relaxed atomic load
//! and **no clock is read**, so instrumenting per-task hot paths costs
//! nanoseconds. Enable with [`set_enabled`], drain with [`take_spans`].
//!
//! The ring buffer keeps the most recent [`RING_CAPACITY`] records and
//! silently overwrites older ones — tracing answers "where did *recent*
//! time go", not long-term accounting (that is the metrics registry's
//! job).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many [`SpanRecord`]s the global ring buffer retains.
pub const RING_CAPACITY: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-start anchor all span timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring { records: Vec::new(), next: 0 }))
}

struct Ring {
    records: Vec<SpanRecord>,
    /// Overwrite cursor once `records` reached [`RING_CAPACITY`].
    next: usize,
}

impl Ring {
    fn push(&mut self, record: SpanRecord) {
        if self.records.len() < RING_CAPACITY {
            self.records.push(record);
        } else {
            self.records[self.next] = record;
            self.next = (self.next + 1) % RING_CAPACITY;
        }
    }

    fn drain(&mut self) -> Vec<SpanRecord> {
        let mut out = std::mem::take(&mut self.records);
        // rotate so the oldest surviving record comes first
        let pivot = self.next.min(out.len());
        out.rotate_left(pivot);
        self.next = 0;
        out
    }
}

/// Turns the global tracing subscriber on or off. Spans created while
/// disabled never read a clock and never touch the ring buffer.
// ordering: relaxed — the flag only gates whether clocks are read; span
// data itself travels through the ring's mutex, so a racing reader that
// misses the flip merely records (or skips) one more span.
pub fn set_enabled(on: bool) {
    if on {
        // pin the epoch before the first record so timestamps start small
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the tracing subscriber is currently enabled — one relaxed
/// atomic load; instrumented code uses this to gate *other* per-stage
/// costs (extra clock reads, per-stage histograms) too.
// ordering: relaxed — this load is the hot path's entire cost while
// disabled; it synchronizes nothing (see `set_enabled`).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Removes and returns every record currently in the ring buffer, oldest
/// first (up to [`RING_CAPACITY`]; older records were overwritten).
pub fn take_spans() -> Vec<SpanRecord> {
    ring().lock().expect("span ring mutex never poisoned").drain()
}

/// One completed stage measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The stage name (`"engine.scan"`, `"service.queue_wait"`, …) —
    /// static so recording never allocates for it.
    pub stage: &'static str,
    /// A stage-specific detail value: the segment index of a scan, the
    /// query index of a merge, 0 where nothing fits.
    pub detail: u64,
    /// Microseconds from the process's tracing epoch to the span's start.
    pub start_us: u64,
    /// The span's duration in microseconds.
    pub duration_us: u64,
}

/// An in-flight stage measurement; records into the ring buffer on drop.
///
/// ```
/// bond_obs::span::set_enabled(true);
/// {
///     let _span = bond_obs::Span::begin("engine.scan").detail(3);
///     // … the work being measured …
/// }
/// let spans = bond_obs::span::take_spans();
/// assert!(spans.iter().any(|s| s.stage == "engine.scan" && s.detail == 3));
/// bond_obs::span::set_enabled(false);
/// ```
#[derive(Debug)]
pub struct Span {
    stage: &'static str,
    detail: u64,
    /// `None` while tracing is disabled — the drop is then free.
    start: Option<Instant>,
}

impl Span {
    /// Starts measuring `stage` — a no-op (one relaxed load, no clock
    /// read) while tracing is disabled.
    pub fn begin(stage: &'static str) -> Span {
        let start = enabled().then(Instant::now);
        Span { stage, detail: 0, start }
    }

    /// Attaches a stage-specific detail value (segment index, query
    /// index); chainable.
    #[must_use]
    pub fn detail(mut self, detail: u64) -> Span {
        self.detail = detail;
        self
    }

    /// Whether this span is live (tracing was enabled when it began).
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }

    /// Discards the span without recording anything — for measurements
    /// that turn out not to apply (e.g. a warmup span when no pruning
    /// attempt ever removed a candidate).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

/// Records an externally measured duration as a span — for stages whose
/// start and end live on different threads (e.g. a request's queue wait,
/// measured between submit and drain). A no-op while tracing is disabled.
pub fn record(stage: &'static str, detail: u64, duration_us: u64) {
    if !enabled() {
        return;
    }
    let now_us = Instant::now().duration_since(epoch()).as_micros() as u64;
    let record =
        SpanRecord { stage, detail, start_us: now_us.saturating_sub(duration_us), duration_us };
    ring().lock().expect("span ring mutex never poisoned").push(record);
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let record = SpanRecord {
                stage: self.stage,
                detail: self.detail,
                start_us: start.duration_since(epoch()).as_micros() as u64,
                duration_us: start.elapsed().as_micros() as u64,
            };
            ring().lock().expect("span ring mutex never poisoned").push(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests below share the process-global subscriber and ring, so they
    // run as one test (the harness runs tests in parallel threads).
    #[test]
    fn spans_record_only_while_enabled() {
        set_enabled(false);
        drop(Span::begin("off.stage"));
        assert!(!Span::begin("off.stage").is_recording());

        set_enabled(true);
        assert!(enabled());
        {
            let _a = Span::begin("test.stage.a").detail(7);
            let _b = Span::begin("test.stage.b");
        }
        Span::begin("test.cancelled").cancel();
        record("test.manual", 3, 1500);
        set_enabled(false);

        let spans = take_spans();
        assert!(spans.iter().any(|s| s.stage == "test.stage.a" && s.detail == 7));
        assert!(spans.iter().any(|s| s.stage == "test.stage.b"));
        assert!(!spans.iter().any(|s| s.stage == "off.stage"));
        assert!(!spans.iter().any(|s| s.stage == "test.cancelled"));
        assert!(spans
            .iter()
            .any(|s| s.stage == "test.manual" && s.detail == 3 && s.duration_us == 1500));

        // ring overwrite: capacity + 10 spans keep only the newest CAPACITY
        set_enabled(true);
        for _ in 0..RING_CAPACITY + 10 {
            drop(Span::begin("test.ring"));
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), RING_CAPACITY);
        assert!(take_spans().is_empty(), "drain empties the ring");
    }
}
