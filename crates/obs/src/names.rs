//! The single registry of metric and span-stage names.
//!
//! Every dotted name the workspace registers — counters, gauges,
//! histograms, span stages — is a constant here, and only here:
//! `bond-lint`'s `metric-name-registry` rule rejects dotted name literals
//! anywhere else, and cross-checks that every constant below is documented
//! in the README's metrics/spans tables. That closes the drift triangle
//! between code, docs and dashboards: a name cannot change in one place
//! without the linter pointing at the other two.

// --- engine metrics ------------------------------------------------------

/// Counter: engine passes executed.
pub const ENGINE_BATCH_COUNT: &str = "engine.batch.count";
/// Counter: queries merged to completion.
pub const ENGINE_QUERY_COUNT: &str = "engine.query.count";
/// Histogram: batch wall time, recorded per query (µs).
pub const ENGINE_QUERY_LATENCY_US: &str = "engine.query.latency_us";
/// Histogram: `(candidate, dimension)` cells evaluated per query.
pub const ENGINE_QUERY_SCANNED_CELLS: &str = "engine.query.scanned_cells";
/// Counter: segment scans actually run.
pub const ENGINE_SEGMENT_SEARCHED: &str = "engine.segment.searched";
/// Counter: segments skipped via the zone-map envelope bound.
pub const ENGINE_SEGMENT_SKIPPED: &str = "engine.segment.skipped";
/// Counter: zone-map misses (the bound couldn't beat κ).
pub const ENGINE_SEGMENT_MISSED: &str = "engine.segment.missed";
/// Counter: u8 code cells swept by the quantized first pass.
pub const ENGINE_QUANT_FILTER_CELLS: &str = "engine.quant.filter_cells";
/// Counter: rows surviving the code filter into the exact scan.
pub const ENGINE_QUANT_REFINE_ROWS: &str = "engine.quant.refine_rows";
/// Histogram: surviving fraction per query, in percent.
pub const ENGINE_QUANT_FILTER_SELECTIVITY: &str = "engine.quant.filter_selectivity";
/// Counter: rows eligible under predicate filters, summed over scanned segments.
pub const ENGINE_FILTER_ELIGIBLE_ROWS: &str = "engine.filter.eligible_rows";
/// Counter: segments skipped because a filter left no row eligible.
pub const ENGINE_FILTER_SEGMENTS_EMPTY: &str = "engine.filter.segments_empty";
/// Counter: synchronized multi-feature segment scans executed.
pub const ENGINE_MULTIFEATURE_SEARCHES: &str = "engine.multifeature.searches";
/// Counter: quantized sweeps dispatched to the portable scalar kernel.
pub const ENGINE_KERNEL_SCALAR_SWEEPS: &str = "engine.kernel.scalar.sweeps";
/// Counter: quantized sweeps dispatched to the AVX2 kernel.
pub const ENGINE_KERNEL_AVX2_SWEEPS: &str = "engine.kernel.avx2.sweeps";
/// Counter: quantized sweeps dispatched to the NEON kernel.
pub const ENGINE_KERNEL_NEON_SWEEPS: &str = "engine.kernel.neon.sweeps";

// --- planner metrics -----------------------------------------------------

/// Gauge: segments planned from observed traces last batch.
pub const PLANNER_FEEDBACK_WARM_SEGMENTS: &str = "planner.feedback.warm_segments";
/// Histogram: per-query |estimate − scanned| / scanned, in percent.
pub const PLANNER_COST_ABS_REL_ERROR: &str = "planner.cost.abs_rel_error";

// --- store metrics -------------------------------------------------------

/// Histogram: persistent-store cold-open time (µs).
pub const STORE_OPEN_COLD_US: &str = "store.open.cold_us";
/// Histogram: store write time (µs).
pub const STORE_PERSIST_US: &str = "store.persist.us";
/// Counter: store bytes written.
pub const STORE_PERSIST_BYTES: &str = "store.persist.bytes";

// --- service metrics -----------------------------------------------------

/// Counter: server batches executed.
pub const SERVICE_BATCH_EXECUTED: &str = "service.batch.executed";
/// Counter: queries served to completion.
pub const SERVICE_QUERY_SERVED: &str = "service.query.served";
/// Counter: requests rejected at admission.
pub const SERVICE_ADMISSION_REJECTED: &str = "service.admission.rejected";
/// Gauge: requests currently queued.
pub const SERVICE_QUEUE_DEPTH: &str = "service.queue.depth";
/// Histogram: admission-to-drain wait per request (µs).
pub const SERVICE_QUEUE_WAIT_US: &str = "service.queue.wait_us";

// --- span stages ---------------------------------------------------------

/// Span stage: plan derivation for one batch.
pub const SPAN_ENGINE_PLAN: &str = "engine.plan";
/// Span stage: one segment-task scan.
pub const SPAN_ENGINE_SCAN: &str = "engine.scan";
/// Span stage: per-batch rank-correct merge.
pub const SPAN_ENGINE_MERGE: &str = "engine.merge";
/// Span stage: building quantized code columns.
pub const SPAN_ENGINE_CODES_BUILD: &str = "engine.codes.build";
/// Span stage: one segment's dimension warmup.
pub const SPAN_SEGMENT_WARMUP: &str = "segment.warmup";
/// Span stage: writing the persistent store.
pub const SPAN_STORE_PERSIST: &str = "store.persist";
/// Span stage: a request's admission-to-drain queue wait.
pub const SPAN_SERVICE_QUEUE_WAIT: &str = "service.queue_wait";
/// Span stage: one server batch execution.
pub const SPAN_SERVICE_EXECUTE: &str = "service.execute";

/// The per-rule segment-search counter family: one counter per pruning
/// rule tag (`Hq`, `Hh`, `Eq`, `Ev`, `WHq`, `WEv`), documented in the
/// README as `engine.rule.<tag>.searches`.
pub fn engine_rule_searches(rule_tag: &str) -> String {
    format!("engine.rule.{rule_tag}.searches")
}

/// Every registered constant name, for uniqueness/docs checks and tests.
pub const ALL: &[&str] = &[
    ENGINE_BATCH_COUNT,
    ENGINE_QUERY_COUNT,
    ENGINE_QUERY_LATENCY_US,
    ENGINE_QUERY_SCANNED_CELLS,
    ENGINE_SEGMENT_SEARCHED,
    ENGINE_SEGMENT_SKIPPED,
    ENGINE_SEGMENT_MISSED,
    ENGINE_QUANT_FILTER_CELLS,
    ENGINE_QUANT_REFINE_ROWS,
    ENGINE_QUANT_FILTER_SELECTIVITY,
    ENGINE_FILTER_ELIGIBLE_ROWS,
    ENGINE_FILTER_SEGMENTS_EMPTY,
    ENGINE_MULTIFEATURE_SEARCHES,
    ENGINE_KERNEL_SCALAR_SWEEPS,
    ENGINE_KERNEL_AVX2_SWEEPS,
    ENGINE_KERNEL_NEON_SWEEPS,
    PLANNER_FEEDBACK_WARM_SEGMENTS,
    PLANNER_COST_ABS_REL_ERROR,
    STORE_OPEN_COLD_US,
    STORE_PERSIST_US,
    STORE_PERSIST_BYTES,
    SERVICE_BATCH_EXECUTED,
    SERVICE_QUERY_SERVED,
    SERVICE_ADMISSION_REJECTED,
    SERVICE_QUEUE_DEPTH,
    SERVICE_QUEUE_WAIT_US,
    SPAN_ENGINE_PLAN,
    SPAN_ENGINE_SCAN,
    SPAN_ENGINE_MERGE,
    SPAN_ENGINE_CODES_BUILD,
    SPAN_SEGMENT_WARMUP,
    SPAN_STORE_PERSIST,
    SPAN_SERVICE_QUEUE_WAIT,
    SPAN_SERVICE_EXECUTE,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique() {
        let set: BTreeSet<&str> = ALL.iter().copied().collect();
        assert_eq!(set.len(), ALL.len());
    }

    #[test]
    fn names_are_dotted_lowercase() {
        for name in ALL {
            assert!(name.contains('.'), "{name}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{name}"
            );
            assert!(name.split('.').all(|seg| !seg.is_empty()), "{name}");
        }
    }

    #[test]
    fn rule_family_renders() {
        assert_eq!(engine_rule_searches("Hq"), "engine.rule.Hq.searches");
    }
}
