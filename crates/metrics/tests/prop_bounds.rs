//! Property-based tests for the pruning bounds.
//!
//! The single invariant everything in BOND rests on is *bound correctness*:
//! for any query, any data vector, any scanned/remaining split of the
//! dimensions and any weights, the rule's lower bound must not exceed the
//! true final score and its upper bound must not fall below it. A violation
//! would make pruning unsafe (BOND could drop a true nearest neighbour), so
//! these properties are exercised aggressively here.

use bond_metrics::{
    CandidateState, DecomposableMetric, EqRule, EvRule, HhRule, HistogramIntersection, HqRule,
    PruningRule, SquaredEuclidean, WeightedEvRule, WeightedHqRule, WeightedSquaredEuclidean,
};
use proptest::prelude::*;

const DIMS: usize = 12;

/// A random vector in the unit hypercube.
fn unit_vector() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, DIMS)
}

/// A random normalized histogram (non-negative, sums to 1).
fn histogram() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, DIMS).prop_map(|mut v| {
        let total: f64 = v.iter().sum();
        if total <= 0.0 {
            v[0] = 1.0;
        } else {
            for x in &mut v {
                *x /= total;
            }
        }
        v
    })
}

/// Non-negative weights, some possibly zero.
fn weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(prop_oneof![Just(0.0f64), 0.01f64..=5.0], DIMS)
}

/// A split point m in [0, DIMS].
fn split() -> impl Strategy<Value = usize> {
    0..=DIMS
}

fn scanned_remaining(m: usize) -> (Vec<usize>, Vec<usize>) {
    ((0..m).collect(), (m..DIMS).collect())
}

fn state_for(v: &[f64], metric: &dyn DecomposableMetric, q: &[f64], m: usize) -> CandidateState {
    let (scanned, _) = scanned_remaining(m);
    CandidateState {
        partial: metric.partial_score(&scanned, v, q),
        scanned_mass: v[..m].iter().sum(),
        total_mass: v.iter().sum(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn hq_bounds_are_correct(h in histogram(), q in histogram(), m in split()) {
        let metric = HistogramIntersection;
        let (_, remaining) = scanned_remaining(m);
        let mut rule = HqRule::new();
        rule.prepare(&q, &remaining);
        let state = state_for(&h, &metric, &q, m);
        let (lo, hi) = rule.bounds(&state);
        let full = metric.score(&h, &q);
        prop_assert!(lo <= full + 1e-9);
        prop_assert!(hi >= full - 1e-9);
    }

    #[test]
    fn hh_bounds_are_correct_and_tighter(h in histogram(), q in histogram(), m in split()) {
        let metric = HistogramIntersection;
        let (_, remaining) = scanned_remaining(m);
        let mut hh = HhRule::new();
        let mut hq = HqRule::new();
        hh.prepare(&q, &remaining);
        hq.prepare(&q, &remaining);
        let state = state_for(&h, &metric, &q, m);
        let (lo, hi) = hh.bounds(&state);
        let full = metric.score(&h, &q);
        prop_assert!(lo <= full + 1e-9, "Hh lower {} vs {}", lo, full);
        prop_assert!(hi >= full - 1e-9, "Hh upper {} vs {}", hi, full);
        let (lo_q, hi_q) = hq.bounds(&state);
        prop_assert!(lo >= lo_q - 1e-9);
        prop_assert!(hi <= hi_q + 1e-9);
    }

    #[test]
    fn eq_bounds_are_correct(v in unit_vector(), q in unit_vector(), m in split()) {
        let metric = SquaredEuclidean;
        let (_, remaining) = scanned_remaining(m);
        let mut rule = EqRule::new();
        rule.prepare(&q, &remaining);
        let state = state_for(&v, &metric, &q, m);
        let (lo, hi) = rule.bounds(&state);
        let full = metric.score(&v, &q);
        prop_assert!(lo <= full + 1e-9);
        prop_assert!(hi >= full - 1e-9);
    }

    #[test]
    fn ev_bounds_are_correct_and_tighter_upper(v in unit_vector(), q in unit_vector(), m in split()) {
        let metric = SquaredEuclidean;
        let (_, remaining) = scanned_remaining(m);
        let mut ev = EvRule::new();
        let mut eq = EqRule::new();
        ev.prepare(&q, &remaining);
        eq.prepare(&q, &remaining);
        let state = state_for(&v, &metric, &q, m);
        let (lo, hi) = ev.bounds(&state);
        let full = metric.score(&v, &q);
        prop_assert!(lo <= full + 1e-9, "Ev lower {} vs true {}", lo, full);
        prop_assert!(hi >= full - 1e-9, "Ev upper {} vs true {}", hi, full);
        // Ev's lower bound is at least Eq's (which is just the partial score).
        let (lo_q, _) = eq.bounds(&state);
        prop_assert!(lo >= lo_q - 1e-9);
    }

    #[test]
    fn weighted_ev_bounds_are_correct(
        v in unit_vector(),
        q in unit_vector(),
        w in weights(),
        m in split(),
    ) {
        let metric = match WeightedSquaredEuclidean::new(w.clone()) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        let (_, remaining) = scanned_remaining(m);
        let mut rule = WeightedEvRule::new(w);
        rule.prepare(&q, &remaining);
        let state = state_for(&v, &metric, &q, m);
        let (lo, hi) = rule.bounds(&state);
        let full = metric.score(&v, &q);
        prop_assert!(lo <= full + 1e-9, "WEv lower {} vs true {}", lo, full);
        prop_assert!(hi >= full - 1e-9, "WEv upper {} vs true {}", hi, full);
    }

    #[test]
    fn weighted_hq_bounds_are_correct(
        h in histogram(),
        q in histogram(),
        w in weights(),
        m in split(),
    ) {
        let (_, remaining) = scanned_remaining(m);
        let mut rule = WeightedHqRule::new(w.clone());
        rule.prepare(&q, &remaining);
        let scanned: Vec<usize> = (0..m).collect();
        let partial: f64 = scanned.iter().map(|&d| w[d] * h[d].min(q[d])).sum();
        let full: f64 = (0..DIMS).map(|d| w[d] * h[d].min(q[d])).sum();
        let (lo, hi) = rule.bounds(&CandidateState::partial_only(partial));
        prop_assert!(lo <= full + 1e-9);
        prop_assert!(hi >= full - 1e-9);
    }

    #[test]
    fn bounds_shrink_as_more_dimensions_are_scanned(h in histogram(), q in histogram()) {
        // The Hq bound interval at m+1 is contained in the interval at m
        // for the same histogram (monotone refinement).
        let metric = HistogramIntersection;
        let mut rule = HqRule::new();
        let mut prev_width = f64::INFINITY;
        for m in 0..=DIMS {
            let (_, remaining) = scanned_remaining(m);
            rule.prepare(&q, &remaining);
            let state = state_for(&h, &metric, &q, m);
            let (lo, hi) = rule.bounds(&state);
            let width = hi - lo;
            prop_assert!(width <= prev_width + 1e-9);
            prev_width = width;
        }
    }

    #[test]
    fn euclidean_similarity_transform_is_monotone(d1 in 0.0f64..16.0, d2 in 0.0f64..16.0) {
        let s1 = SquaredEuclidean::similarity_from_distance(d1, 16);
        let s2 = SquaredEuclidean::similarity_from_distance(d2, 16);
        if d1 < d2 {
            prop_assert!(s1 >= s2);
        }
    }
}
