//! Pruning bounds (Section 4 and Appendix A).
//!
//! After BOND has scanned the first `m` dimensional fragments, every
//! surviving candidate `x` has a known partial score `S(x⁻, q⁻)` and —
//! depending on the rule — the mass `T(x⁻)` it has shown so far and/or its
//! total mass `T(x)`. A [`PruningRule`] turns that per-candidate state into
//! a lower and an upper bound on the *final* score. The engine then
//! computes κ (the k-th best "safe" bound) and discards every candidate
//! whose "optimistic" bound cannot reach κ:
//!
//! * similarity metrics (maximize): κ_min = k-th largest `S_min`; prune
//!   candidates with `S_max < κ_min` (step 4 of Algorithm 2);
//! * distance metrics (minimize): κ_max = k-th smallest `S_max`; prune
//!   candidates with `S_min > κ_max`.
//!
//! The concrete rules live in [`histogram`] (Hq, Hh), [`euclid`] (Eq, Ev)
//! and [`weighted`] (weighted Euclidean / weighted histogram intersection).

pub mod euclid;
pub mod histogram;
pub mod weighted;

use crate::metric::Objective;

/// Per-candidate bookkeeping a rule may require from the engine.
///
/// Hq and Eq need nothing beyond the partial score (that is their selling
/// point: "computationally cheaper and requires less bookkeeping"); Hh needs
/// the scanned mass `T(x⁻)`; Ev additionally needs the total mass `T(x)`
/// which the engine materialises once per search (Section 4.3: "a simple
/// solution materializes and uses this extra table").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Requirements {
    /// The rule reads [`CandidateState::scanned_mass`].
    pub needs_scanned_mass: bool,
    /// The rule reads [`CandidateState::total_mass`].
    pub needs_total_mass: bool,
}

/// The per-candidate state available when bounds are evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateState {
    /// Partial score `S(x⁻, q⁻)` accumulated over the scanned dimensions.
    pub partial: f64,
    /// Scanned mass `T(x⁻) = Σ_{scanned} x_i` (0 if the rule does not need it).
    pub scanned_mass: f64,
    /// Total mass `T(x) = Σ_i x_i` (0 if the rule does not need it).
    pub total_mass: f64,
}

impl CandidateState {
    /// Convenience constructor for rules that only need the partial score.
    pub fn partial_only(partial: f64) -> Self {
        CandidateState { partial, scanned_mass: 0.0, total_mass: 0.0 }
    }

    /// Remaining (unseen) mass `T(x⁺) = T(x) − T(x⁻)`, clamped at zero to be
    /// robust against floating-point drift.
    #[inline]
    pub fn remaining_mass(&self) -> f64 {
        (self.total_mass - self.scanned_mass).max(0.0)
    }
}

/// A branch-and-bound pruning rule: bounds on the final score given the
/// partial state of a candidate.
pub trait PruningRule: Send + Sync {
    /// Whether the final ranking maximizes or minimizes the score.
    fn objective(&self) -> Objective;

    /// Which per-candidate bookkeeping this rule needs.
    fn requirements(&self) -> Requirements;

    /// Re-derives the query-side constants for the given set of *remaining*
    /// (not yet scanned) dimensions. Called once per pruning attempt, before
    /// any [`PruningRule::bounds`] calls for that attempt.
    fn prepare(&mut self, query: &[f64], remaining_dims: &[usize]);

    /// Lower and upper bounds `(S_min, S_max)` on the candidate's final
    /// score. Must satisfy `S_min ≤ S(x, q) ≤ S_max` for every vector `x`
    /// consistent with the candidate state.
    fn bounds(&self, candidate: &CandidateState) -> (f64, f64);

    /// A short name used in experiment reports ("Hq", "Ev", ...).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_mass_clamps_at_zero() {
        let c = CandidateState { partial: 0.1, scanned_mass: 1.0 + 1e-9, total_mass: 1.0 };
        assert_eq!(c.remaining_mass(), 0.0);
        let c = CandidateState { partial: 0.1, scanned_mass: 0.25, total_mass: 1.0 };
        assert!((c.remaining_mass() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn partial_only_state() {
        let c = CandidateState::partial_only(0.5);
        assert_eq!(c.partial, 0.5);
        assert_eq!(c.scanned_mass, 0.0);
        assert_eq!(c.total_mass, 0.0);
    }

    #[test]
    fn requirements_default_is_none() {
        let r = Requirements::default();
        assert!(!r.needs_scanned_mass);
        assert!(!r.needs_total_mass);
    }
}
