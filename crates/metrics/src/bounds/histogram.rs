//! Pruning bounds for histogram intersection (Section 4.1).

use crate::bounds::{CandidateState, PruningRule, Requirements};
use crate::metric::Objective;

/// Criterion **Hq** (Equations 5–6): bounds that depend only on the query.
///
/// For the unseen dimensions, `0 ≤ S(h⁺, q⁺) ≤ T(q⁺)`, so
/// `S_min = S(h⁻, q⁻)` and `S_max = S(h⁻, q⁻) + T(q⁺)`. Because the added
/// bounds are the same constant for every histogram, Hq needs no
/// per-candidate bookkeeping beyond the partial score — which is why the
/// paper finds it the best criterion in practice despite pruning slightly
/// less than Hh.
#[derive(Debug, Clone, Default)]
pub struct HqRule {
    remaining_query_sum: f64,
}

impl HqRule {
    /// Creates the rule. Constants are filled in by `prepare`.
    pub fn new() -> Self {
        HqRule { remaining_query_sum: 0.0 }
    }

    /// The current `T(q⁺)` (exposed for tests and the relational-algebra
    /// formulation, whose `maxbound` is `κ + T(q⁺) − 1` rearranged).
    pub fn remaining_query_sum(&self) -> f64 {
        self.remaining_query_sum
    }
}

impl PruningRule for HqRule {
    fn objective(&self) -> Objective {
        Objective::Maximize
    }

    fn requirements(&self) -> Requirements {
        Requirements::default()
    }

    fn prepare(&mut self, query: &[f64], remaining_dims: &[usize]) {
        self.remaining_query_sum = remaining_dims.iter().map(|&d| query[d]).sum();
    }

    #[inline]
    fn bounds(&self, candidate: &CandidateState) -> (f64, f64) {
        (candidate.partial, candidate.partial + self.remaining_query_sum)
    }

    fn name(&self) -> &'static str {
        "Hq"
    }
}

/// Criterion **Hh** (Equations 7–9): stricter bounds that additionally use
/// the mass `T(h⁻)` each histogram has shown in the scanned dimensions.
///
/// With `T(h⁺) = T(h) − T(h⁻)` (for normalized histograms `T(h) = 1`):
///
/// * upper: `S(h⁺, q⁺) ≤ min(T(h⁺), T(q⁺))`
/// * lower: `S(h⁺, q⁺) ≥ min(q⁺_min, T(h⁺))`, where `q⁺_min` is the smallest
///   query value among the remaining dimensions.
///
/// The stricter bounds prune more vectors, at the cost of maintaining
/// `T(h⁻)` per candidate (the bookkeeping the paper finds not to pay off in
/// runtime, Table 3).
#[derive(Debug, Clone, Default)]
pub struct HhRule {
    remaining_query_sum: f64,
    remaining_query_min: f64,
}

impl HhRule {
    /// Creates the rule. Constants are filled in by `prepare`.
    pub fn new() -> Self {
        HhRule { remaining_query_sum: 0.0, remaining_query_min: 0.0 }
    }
}

impl PruningRule for HhRule {
    fn objective(&self) -> Objective {
        Objective::Maximize
    }

    fn requirements(&self) -> Requirements {
        Requirements { needs_scanned_mass: true, needs_total_mass: true }
    }

    fn prepare(&mut self, query: &[f64], remaining_dims: &[usize]) {
        self.remaining_query_sum = remaining_dims.iter().map(|&d| query[d]).sum();
        self.remaining_query_min =
            remaining_dims.iter().map(|&d| query[d]).fold(f64::INFINITY, f64::min);
        if remaining_dims.is_empty() {
            self.remaining_query_min = 0.0;
        }
    }

    #[inline]
    fn bounds(&self, candidate: &CandidateState) -> (f64, f64) {
        let remaining_mass = candidate.remaining_mass();
        let upper = candidate.partial + remaining_mass.min(self.remaining_query_sum);
        let lower = candidate.partial + self.remaining_query_min.min(remaining_mass);
        (lower, upper)
    }

    fn name(&self) -> &'static str {
        "Hh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{DecomposableMetric, HistogramIntersection};

    /// The query and collection of the worked example (Table 2 / Section 4.2).
    fn example() -> (Vec<f64>, Vec<Vec<f64>>) {
        let q = vec![0.7, 0.15, 0.1, 0.05];
        let h = vec![
            vec![0.1, 0.3, 0.4, 0.2], // h1 (values chosen so S(h1-,q-)=0.25 as in the table)
            vec![0.05, 0.05, 0.9, 0.0], // h2
            vec![0.8, 0.1, 0.05, 0.05], // h3
            vec![0.2, 0.6, 0.1, 0.1], // h4
            vec![0.7, 0.15, 0.15, 0.0], // h5
            vec![0.925, 0.0, 0.0, 0.025], // h6
            vec![0.55, 0.2, 0.15, 0.1], // h7
            vec![0.05, 0.1, 0.05, 0.8], // h8
            vec![0.45, 0.5, 0.05, 0.05], // h9
        ];
        (q, h)
    }

    #[test]
    fn hq_bounds_bracket_true_score_on_example() {
        let (q, hs) = example();
        let metric = HistogramIntersection;
        let mut rule = HqRule::new();
        let scanned = [0usize, 1];
        let remaining = [2usize, 3];
        rule.prepare(&q, &remaining);
        assert!((rule.remaining_query_sum() - 0.15).abs() < 1e-12);
        for h in &hs {
            let partial = metric.partial_score(&scanned, h, &q);
            let (lo, hi) = rule.bounds(&CandidateState::partial_only(partial));
            let full = metric.score(h, &q);
            assert!(lo <= full + 1e-12, "Hq lower bound violated");
            assert!(hi >= full - 1e-12, "Hq upper bound violated");
        }
    }

    #[test]
    fn hq_prunes_the_paper_example() {
        // With m = 2 and k = 3, κ_min = 0.7 and the pruning threshold is
        // κ_min − T(q⁺) = 0.55; histograms {h1, h2, h4, h8} are pruned.
        let (q, hs) = example();
        let metric = HistogramIntersection;
        let mut rule = HqRule::new();
        rule.prepare(&q, &[2, 3]);
        let partials: Vec<f64> = hs.iter().map(|h| metric.partial_score(&[0, 1], h, &q)).collect();
        // κ_min = 3rd largest lower bound = 3rd largest partial
        let mut lows: Vec<f64> =
            partials.iter().map(|&p| rule.bounds(&CandidateState::partial_only(p)).0).collect();
        lows.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let kappa = lows[2];
        assert!((kappa - 0.7).abs() < 1e-9);
        let pruned: Vec<usize> = partials
            .iter()
            .enumerate()
            .filter(|(_, &p)| rule.bounds(&CandidateState::partial_only(p)).1 < kappa)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(pruned, vec![0, 1, 3, 7], "h1, h2, h4, h8 are pruned");
    }

    #[test]
    fn hh_prunes_more_than_hq_on_example() {
        // Hh additionally removes h6 and h9, identifying the three best
        // results after the first iteration (Section 4.2).
        let (q, hs) = example();
        let metric = HistogramIntersection;
        let scanned = [0usize, 1];
        let remaining = [2usize, 3];
        let mut hh = HhRule::new();
        hh.prepare(&q, &remaining);

        let states: Vec<CandidateState> = hs
            .iter()
            .map(|h| CandidateState {
                partial: metric.partial_score(&scanned, h, &q),
                scanned_mass: h[0] + h[1],
                // h6 in the paper's Table 2 sums to 0.95, not 1.0; the rule
                // must use the vector's true mass for the lower bound to hold.
                total_mass: h.iter().sum(),
            })
            .collect();
        let mut lows: Vec<f64> = states.iter().map(|s| hh.bounds(s).0).collect();
        lows.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let kappa = lows[2];
        assert!((kappa - 0.75).abs() < 1e-9, "κ_min = 0.75 in the paper example, got {kappa}");
        let survivors: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| hh.bounds(s).1 >= kappa)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(survivors, vec![2, 4, 6], "only h3, h5, h7 survive under Hh");
    }

    #[test]
    fn hh_bounds_are_tighter_than_hq() {
        let (q, hs) = example();
        let metric = HistogramIntersection;
        let scanned = [0usize, 1];
        let remaining = [2usize, 3];
        let mut hq = HqRule::new();
        let mut hh = HhRule::new();
        hq.prepare(&q, &remaining);
        hh.prepare(&q, &remaining);
        for h in &hs {
            let partial = metric.partial_score(&scanned, h, &q);
            let state =
                CandidateState { partial, scanned_mass: h[0] + h[1], total_mass: h.iter().sum() };
            let (lo_q, hi_q) = hq.bounds(&CandidateState::partial_only(partial));
            let (lo_h, hi_h) = hh.bounds(&state);
            let full = metric.score(h, &q);
            assert!(lo_h <= full + 1e-12 && hi_h >= full - 1e-12);
            assert!(lo_h >= lo_q - 1e-12, "Hh lower bound at least as tight");
            assert!(hi_h <= hi_q + 1e-12, "Hh upper bound at least as tight");
        }
    }

    #[test]
    fn empty_remaining_dims_collapse_bounds() {
        let q = vec![0.5, 0.5];
        let mut hq = HqRule::new();
        hq.prepare(&q, &[]);
        let (lo, hi) = hq.bounds(&CandidateState::partial_only(0.42));
        assert_eq!((lo, hi), (0.42, 0.42));

        let mut hh = HhRule::new();
        hh.prepare(&q, &[]);
        let state = CandidateState { partial: 0.42, scanned_mass: 1.0, total_mass: 1.0 };
        let (lo, hi) = hh.bounds(&state);
        assert!((lo - 0.42).abs() < 1e-12 && (hi - 0.42).abs() < 1e-12);
    }

    #[test]
    fn names_and_requirements() {
        assert_eq!(HqRule::new().name(), "Hq");
        assert_eq!(HhRule::new().name(), "Hh");
        assert!(!HqRule::new().requirements().needs_scanned_mass);
        assert!(HhRule::new().requirements().needs_scanned_mass);
        assert!(HhRule::new().requirements().needs_total_mass);
        assert_eq!(HqRule::new().objective(), Objective::Maximize);
        assert_eq!(HhRule::new().objective(), Objective::Maximize);
    }
}
