//! Pruning bounds for squared Euclidean distance (Section 4.3).
//!
//! The data are assumed to live in the unit hypercube (`0 ≤ v_i ≤ 1`), the
//! setting of Definition 2. Under a distance metric BOND keeps the k
//! *smallest* scores, so the roles of the bounds flip: κ_max is the k-th
//! smallest upper bound `S_max`, and a candidate is pruned when its lower
//! bound `S_min` exceeds κ_max.

use crate::bounds::{CandidateState, PruningRule, Requirements};
use crate::metric::Objective;

/// Criterion **Eq** (Equation 10): bounds that depend only on the query.
///
/// The distance already accumulated can never decrease, so
/// `S_min = S(v⁻, q⁻)`; the worst case for the remaining dimensions is the
/// farthest corner of the remaining hyperbox, giving
/// `S_max = S(v⁻, q⁻) + Σ_{remaining} max(q_i, 1 − q_i)²`.
///
/// The paper finds Eq prunes "hardly any image" because that upper bound is
/// far too loose without knowledge of `T(v⁺)`; it is included for the
/// Figure 5 comparison.
#[derive(Debug, Clone, Default)]
pub struct EqRule {
    remaining_corner_sum: f64,
}

impl EqRule {
    /// Creates the rule. Constants are filled in by `prepare`.
    pub fn new() -> Self {
        EqRule { remaining_corner_sum: 0.0 }
    }
}

impl PruningRule for EqRule {
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    fn requirements(&self) -> Requirements {
        Requirements::default()
    }

    fn prepare(&mut self, query: &[f64], remaining_dims: &[usize]) {
        self.remaining_corner_sum = remaining_dims
            .iter()
            .map(|&d| {
                let q = query[d];
                let far = q.max(1.0 - q);
                far * far
            })
            .sum();
    }

    #[inline]
    fn bounds(&self, candidate: &CandidateState) -> (f64, f64) {
        (candidate.partial, candidate.partial + self.remaining_corner_sum)
    }

    fn name(&self) -> &'static str {
        "Eq"
    }
}

/// Criterion **Ev** (Lemmas 1 and 2): per-vector bounds using the remaining
/// mass `T(v⁺) = T(v) − T(v⁻)`.
///
/// * **Upper bound (Lemma 1).** Among all ways of distributing the mass
///   `T(v⁺)` over the remaining dimensions (each value in `[0, 1]`), the
///   distance is maximized by assigning full 1s to the dimensions with the
///   *smallest* query values, a single fractional remainder to the next
///   dimension, and 0 elsewhere. With the remaining query values sorted in
///   decreasing order and prefix sums precomputed in [`PruningRule::prepare`],
///   each candidate's bound is evaluated in O(1).
/// * **Lower bound (Lemma 2).** The distance increase is minimized when the
///   remaining differences are all equal, giving
///   `(T(v⁺) − T(q⁺))² / (N − m)` (a Cauchy–Schwarz argument; the bound is
///   valid irrespective of the box constraints).
#[derive(Debug, Clone, Default)]
pub struct EvRule {
    /// Remaining query values sorted in decreasing order.
    sorted_q: Vec<f64>,
    /// `prefix_q2[j] = Σ_{i < j} sorted_q[i]²` (dims that receive value 0).
    prefix_q2: Vec<f64>,
    /// `suffix_one_minus_q2[j] = Σ_{i ≥ j} (1 − sorted_q[i])²` (dims that
    /// receive value 1).
    suffix_one_minus_q2: Vec<f64>,
    /// `T(q⁺)`.
    remaining_query_sum: f64,
}

impl EvRule {
    /// Creates the rule. Constants are filled in by `prepare`.
    pub fn new() -> Self {
        EvRule::default()
    }

    /// Number of remaining dimensions after the last `prepare` call.
    fn remaining(&self) -> usize {
        self.sorted_q.len()
    }

    /// Lemma 1 upper bound on the *additional* distance for a vector with
    /// remaining mass `remaining_mass`.
    fn upper_extra(&self, remaining_mass: f64) -> f64 {
        let r = self.remaining();
        if r == 0 {
            return 0.0;
        }
        // Mass cannot exceed r (each coordinate is at most 1) nor be negative.
        let mass = remaining_mass.clamp(0.0, r as f64);
        let full = mass.floor() as usize;
        if full >= r {
            // every remaining coordinate is 1
            return self.suffix_one_minus_q2[0];
        }
        let frac = mass - full as f64;
        // indices [r - full, r) get value 1; index r - full - 1 gets `frac`;
        // indices [0, r - full - 1) get value 0.
        let frac_idx = r - full - 1;
        let zeros = self.prefix_q2[frac_idx];
        let ones = self.suffix_one_minus_q2[frac_idx + 1];
        let q_frac = self.sorted_q[frac_idx];
        let d = frac - q_frac;
        zeros + d * d + ones
    }

    /// Lemma 2 lower bound on the *additional* distance.
    fn lower_extra(&self, remaining_mass: f64) -> f64 {
        let r = self.remaining();
        if r == 0 {
            return 0.0;
        }
        let diff = remaining_mass - self.remaining_query_sum;
        diff * diff / r as f64
    }
}

impl PruningRule for EvRule {
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    fn requirements(&self) -> Requirements {
        Requirements { needs_scanned_mass: true, needs_total_mass: true }
    }

    fn prepare(&mut self, query: &[f64], remaining_dims: &[usize]) {
        self.sorted_q = remaining_dims.iter().map(|&d| query[d]).collect();
        self.sorted_q.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        self.remaining_query_sum = self.sorted_q.iter().sum();
        let r = self.sorted_q.len();
        self.prefix_q2 = vec![0.0; r + 1];
        for i in 0..r {
            self.prefix_q2[i + 1] = self.prefix_q2[i] + self.sorted_q[i] * self.sorted_q[i];
        }
        self.suffix_one_minus_q2 = vec![0.0; r + 1];
        for i in (0..r).rev() {
            let d = 1.0 - self.sorted_q[i];
            self.suffix_one_minus_q2[i] = self.suffix_one_minus_q2[i + 1] + d * d;
        }
    }

    #[inline]
    fn bounds(&self, candidate: &CandidateState) -> (f64, f64) {
        let mass = candidate.remaining_mass();
        (candidate.partial + self.lower_extra(mass), candidate.partial + self.upper_extra(mass))
    }

    fn name(&self) -> &'static str {
        "Ev"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{DecomposableMetric, SquaredEuclidean};

    fn brute_force_max_extra(q_remaining: &[f64], mass: f64, steps: usize) -> f64 {
        // Exhaustive-ish check for 2 remaining dims: sweep the simplex.
        assert_eq!(q_remaining.len(), 2);
        let mut best = 0.0f64;
        for i in 0..=steps {
            let a = (i as f64 / steps as f64).min(1.0);
            let b = mass - a;
            if !(0.0..=1.0).contains(&b) {
                continue;
            }
            let d = (a - q_remaining[0]).powi(2) + (b - q_remaining[1]).powi(2);
            best = best.max(d);
        }
        best
    }

    #[test]
    fn eq_bounds_bracket_true_distance() {
        let q = vec![0.2, 0.8, 0.5, 0.9];
        let v = vec![0.1, 0.4, 0.7, 0.3];
        let metric = SquaredEuclidean;
        let scanned = [0usize, 1];
        let remaining = [2usize, 3];
        let mut rule = EqRule::new();
        rule.prepare(&q, &remaining);
        let partial = metric.partial_score(&scanned, &v, &q);
        let (lo, hi) = rule.bounds(&CandidateState::partial_only(partial));
        let full = metric.score(&v, &q);
        assert!(lo <= full + 1e-12);
        assert!(hi >= full - 1e-12);
        // corner sum: max(0.5,0.5)² + max(0.9,0.1)² = 0.25 + 0.81
        assert!((hi - lo - 1.06).abs() < 1e-12);
        assert_eq!(rule.objective(), Objective::Minimize);
        assert_eq!(rule.name(), "Eq");
    }

    #[test]
    fn ev_upper_matches_lemma_examples() {
        // Example from the analysis: q+ = [0.9, 0.1] (descending), R = 1.
        // Max extra distance = (0 − 0.9)² + (1 − 0.1)² = 1.62.
        let q = vec![0.9, 0.1];
        let mut rule = EvRule::new();
        rule.prepare(&q, &[0, 1]);
        let state = CandidateState { partial: 0.0, scanned_mass: 0.0, total_mass: 1.0 };
        let (_, hi) = rule.bounds(&state);
        assert!((hi - 1.62).abs() < 1e-12);
        // R = 0.5: fractional 0.5 on the dim with q = 0.1, 0 on q = 0.9
        let state = CandidateState { partial: 0.0, scanned_mass: 0.0, total_mass: 0.5 };
        let (_, hi) = rule.bounds(&state);
        assert!((hi - (0.81 + 0.16)).abs() < 1e-12);
        // R = 2: both coordinates are 1
        let state = CandidateState { partial: 0.0, scanned_mass: 0.0, total_mass: 2.0 };
        let (_, hi) = rule.bounds(&state);
        assert!((hi - (0.01 + 0.81)).abs() < 1e-12);
    }

    #[test]
    fn ev_upper_dominates_brute_force() {
        let mut rule = EvRule::new();
        for (qa, qb) in [(0.9, 0.1), (0.5, 0.45), (0.2, 0.1), (0.8, 0.7), (0.0, 1.0)] {
            let q = vec![qa, qb];
            rule.prepare(&q, &[0, 1]);
            for mass in [0.0, 0.3, 0.5, 1.0, 1.2, 1.7, 2.0] {
                let state = CandidateState { partial: 0.0, scanned_mass: 0.0, total_mass: mass };
                let (_, hi) = rule.bounds(&state);
                let brute = brute_force_max_extra(&q, mass, 2000);
                assert!(
                    hi >= brute - 1e-6,
                    "Lemma 1 bound {hi} below brute force {brute} for q={q:?}, mass={mass}"
                );
            }
        }
    }

    #[test]
    fn ev_lower_bound_is_cauchy_schwarz() {
        let q = vec![0.3, 0.4, 0.1];
        let mut rule = EvRule::new();
        rule.prepare(&q, &[0, 1, 2]);
        // T(q+) = 0.8; with T(v+) = 0.2 the lower bound is (0.2-0.8)²/3 = 0.12
        let state = CandidateState { partial: 0.5, scanned_mass: 0.0, total_mass: 0.2 };
        let (lo, _) = rule.bounds(&state);
        assert!((lo - (0.5 + 0.36 / 3.0)).abs() < 1e-12);
        // equal masses -> lower bound adds nothing
        let state = CandidateState { partial: 0.5, scanned_mass: 0.0, total_mass: 0.8 };
        let (lo, _) = rule.bounds(&state);
        assert!((lo - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ev_bounds_bracket_true_distance_randomized() {
        // deterministic pseudo-random sweep (no external RNG needed)
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let metric = SquaredEuclidean;
        let dims = 8;
        for _ in 0..200 {
            let q: Vec<f64> = (0..dims).map(|_| next()).collect();
            let v: Vec<f64> = (0..dims).map(|_| next()).collect();
            let m = 3;
            let scanned: Vec<usize> = (0..m).collect();
            let remaining: Vec<usize> = (m..dims).collect();
            let mut rule = EvRule::new();
            rule.prepare(&q, &remaining);
            let state = CandidateState {
                partial: metric.partial_score(&scanned, &v, &q),
                scanned_mass: v[..m].iter().sum(),
                total_mass: v.iter().sum(),
            };
            let (lo, hi) = rule.bounds(&state);
            let full = metric.score(&v, &q);
            assert!(lo <= full + 1e-9, "Ev lower bound violated: {lo} > {full}");
            assert!(hi >= full - 1e-9, "Ev upper bound violated: {hi} < {full}");
        }
    }

    #[test]
    fn ev_empty_remaining_collapses() {
        let mut rule = EvRule::new();
        rule.prepare(&[0.5], &[]);
        let state = CandidateState { partial: 1.5, scanned_mass: 0.5, total_mass: 0.5 };
        assert_eq!(rule.bounds(&state), (1.5, 1.5));
        assert!(rule.requirements().needs_total_mass);
        assert_eq!(rule.name(), "Ev");
    }

    #[test]
    fn ev_tighter_than_eq_for_small_mass() {
        // A vector that has already shown nearly all of its mass can hardly
        // add distance in the remaining dims when the query is small there;
        // Ev exploits this, Eq cannot.
        let q = vec![0.8, 0.7, 0.05, 0.1];
        let remaining = [2usize, 3];
        let mut ev = EvRule::new();
        let mut eq = EqRule::new();
        ev.prepare(&q, &remaining);
        eq.prepare(&q, &remaining);
        let state = CandidateState { partial: 0.1, scanned_mass: 0.95, total_mass: 1.0 };
        let (_, hi_ev) = ev.bounds(&state);
        let (_, hi_eq) = eq.bounds(&CandidateState::partial_only(0.1));
        assert!(hi_ev < hi_eq, "Ev ({hi_ev}) should beat Eq ({hi_eq}) here");
    }
}
