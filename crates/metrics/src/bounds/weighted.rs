//! Pruning bounds for weighted search (Section 8.1 and Appendix A).
//!
//! ## A note on Equation 14
//!
//! The appendix derives the weighted upper bound by ordering the remaining
//! dimensions by decreasing `w_i · q_i²` and then reusing the assignment of
//! Lemma 1. That ordering is **not safe in general**: with
//! `w = (1, 0.1)`, `q = (0.4, 0.9)` and remaining mass `T(v⁺) = 1`, the
//! printed formula yields `w_1 q_1² + w_2 (1 − q_2)² = 0.161`, but the vector
//! `v⁺ = (1, 0)` — which is feasible — has weighted distance
//! `1·(1−0.4)² + 0.1·0.9² = 0.441 > 0.161`. Pruning with such a bound could
//! discard true nearest neighbours.
//!
//! We therefore implement a *provably safe* upper bound that follows the
//! same vertex argument as Lemma 1 but decouples the two choices it has to
//! make (which dimensions receive a full 1, and which receives the
//! fractional remainder) and bounds each by its maximum:
//!
//! * writing `Σ w_i (v_i − q_i)²` at a vertex as
//!   `Σ w_i q_i² + Σ_{i: v_i = 1} w_i (1 − 2 q_i) + w_j u (u − 2 q_j)`,
//! * the best set of full dimensions is bounded by the sum of the
//!   `⌊T(v⁺)⌋` largest *gains* `g_i = w_i (1 − 2 q_i)` (prefix sums are
//!   precomputed, so the per-candidate cost stays O(1)),
//! * the fractional term is bounded by
//!   `max(0, u² · max_i w_i − 2u · min_i w_i q_i)`.
//!
//! Both relaxations only increase the bound, so it dominates the true
//! maximum and pruning stays safe; for uniform weights it coincides with
//! Lemma 1's bound up to the decoupling of the fractional dimension.

use crate::bounds::{CandidateState, PruningRule, Requirements};
use crate::metric::Objective;

/// Query-only pruning bound for **weighted histogram intersection**:
/// `Σ w_i min(h_i, q_i) ≤ Σ_{remaining} w_i q_i`, lower bound 0.
///
/// This is the weighted analogue of Hq; a subspace query (weights 0/1) makes
/// the sum range only over the selected remaining dimensions.
#[derive(Debug, Clone)]
pub struct WeightedHqRule {
    weights: Vec<f64>,
    remaining_weighted_query_sum: f64,
}

impl WeightedHqRule {
    /// Creates the rule for the given per-dimension weights.
    pub fn new(weights: Vec<f64>) -> Self {
        WeightedHqRule { weights, remaining_weighted_query_sum: 0.0 }
    }
}

impl PruningRule for WeightedHqRule {
    fn objective(&self) -> Objective {
        Objective::Maximize
    }

    fn requirements(&self) -> Requirements {
        Requirements::default()
    }

    fn prepare(&mut self, query: &[f64], remaining_dims: &[usize]) {
        self.remaining_weighted_query_sum =
            remaining_dims.iter().map(|&d| self.weights[d] * query[d]).sum();
    }

    #[inline]
    fn bounds(&self, candidate: &CandidateState) -> (f64, f64) {
        (candidate.partial, candidate.partial + self.remaining_weighted_query_sum)
    }

    fn name(&self) -> &'static str {
        "WHq"
    }
}

/// Per-vector pruning bound for **weighted squared Euclidean distance**
/// (criterion `E_v` with weights; used for Figure 11 and subspace search).
#[derive(Debug, Clone)]
pub struct WeightedEvRule {
    weights: Vec<f64>,
    /// Σ_{remaining} w_i q_i² — the distance when every remaining v_i = 0.
    const_zero_mass: f64,
    /// Gains `w_i (1 − 2 q_i)` sorted descending; `prefix_gain[f]` = sum of
    /// the `f` largest gains.
    prefix_gain: Vec<f64>,
    /// max over remaining dims of w_i.
    max_weight: f64,
    /// min over remaining dims of w_i q_i.
    min_weight_q: f64,
    /// Σ_{remaining} 1 / w_i, or +∞ if any remaining weight is 0.
    sum_inv_weight: f64,
    /// Σ_{remaining} q_i.
    remaining_query_sum: f64,
    remaining: usize,
}

impl WeightedEvRule {
    /// Creates the rule for the given per-dimension weights.
    pub fn new(weights: Vec<f64>) -> Self {
        WeightedEvRule {
            weights,
            const_zero_mass: 0.0,
            prefix_gain: vec![0.0],
            max_weight: 0.0,
            min_weight_q: 0.0,
            sum_inv_weight: 0.0,
            remaining_query_sum: 0.0,
            remaining: 0,
        }
    }

    fn upper_extra(&self, remaining_mass: f64) -> f64 {
        let r = self.remaining;
        if r == 0 {
            return 0.0;
        }
        let mass = remaining_mass.clamp(0.0, r as f64);
        let full = mass.floor() as usize;
        if full >= r {
            return self.const_zero_mass + self.prefix_gain[r];
        }
        let frac = mass - full as f64;
        let frac_term = (self.max_weight * frac * frac - 2.0 * self.min_weight_q * frac).max(0.0);
        self.const_zero_mass + self.prefix_gain[full] + frac_term
    }

    fn lower_extra(&self, remaining_mass: f64) -> f64 {
        if self.remaining == 0 || !self.sum_inv_weight.is_finite() || self.sum_inv_weight <= 0.0 {
            return 0.0;
        }
        let diff = remaining_mass - self.remaining_query_sum;
        diff * diff / self.sum_inv_weight
    }
}

impl PruningRule for WeightedEvRule {
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    fn requirements(&self) -> Requirements {
        Requirements { needs_scanned_mass: true, needs_total_mass: true }
    }

    fn prepare(&mut self, query: &[f64], remaining_dims: &[usize]) {
        self.remaining = remaining_dims.len();
        self.const_zero_mass = 0.0;
        self.max_weight = 0.0;
        self.min_weight_q = f64::INFINITY;
        self.sum_inv_weight = 0.0;
        self.remaining_query_sum = 0.0;
        let mut gains = Vec::with_capacity(remaining_dims.len());
        for &d in remaining_dims {
            let w = self.weights[d];
            let q = query[d];
            self.const_zero_mass += w * q * q;
            self.max_weight = self.max_weight.max(w);
            self.min_weight_q = self.min_weight_q.min(w * q);
            self.remaining_query_sum += q;
            if w > 0.0 {
                self.sum_inv_weight += 1.0 / w;
            } else {
                self.sum_inv_weight = f64::INFINITY;
            }
            gains.push(w * (1.0 - 2.0 * q));
        }
        if remaining_dims.is_empty() {
            self.min_weight_q = 0.0;
        }
        gains.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        self.prefix_gain = vec![0.0; gains.len() + 1];
        for (i, g) in gains.iter().enumerate() {
            self.prefix_gain[i + 1] = self.prefix_gain[i] + g;
        }
    }

    #[inline]
    fn bounds(&self, candidate: &CandidateState) -> (f64, f64) {
        let mass = candidate.remaining_mass();
        (candidate.partial + self.lower_extra(mass), candidate.partial + self.upper_extra(mass))
    }

    fn name(&self) -> &'static str {
        "WEv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{DecomposableMetric, WeightedSquaredEuclidean};

    #[test]
    fn paper_equation_14_counterexample_is_handled_safely() {
        // The scenario from the module docs: the printed Eq. 14 bound would
        // be 0.161, below the feasible distance 0.441. Our bound dominates it.
        let weights = vec![1.0, 0.1];
        let q = vec![0.4, 0.9];
        let mut rule = WeightedEvRule::new(weights.clone());
        rule.prepare(&q, &[0, 1]);
        let state = CandidateState { partial: 0.0, scanned_mass: 0.0, total_mass: 1.0 };
        let (_, hi) = rule.bounds(&state);
        let metric = WeightedSquaredEuclidean::new(weights).unwrap();
        let worst_feasible = metric.score(&[1.0, 0.0], &q);
        assert!((worst_feasible - 0.441).abs() < 1e-12);
        assert!(hi >= worst_feasible - 1e-12, "safe bound {hi} must cover {worst_feasible}");
    }

    #[test]
    fn weighted_ev_brackets_true_distance_randomized() {
        let mut seed = 0xDEADBEEFCAFEBABEu64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let dims = 10;
        for round in 0..300 {
            let weights: Vec<f64> = (0..dims)
                .map(|_| if round % 5 == 0 { (next() * 3.0).floor() } else { next() * 4.0 })
                .collect();
            let q: Vec<f64> = (0..dims).map(|_| next()).collect();
            let v: Vec<f64> = (0..dims).map(|_| next()).collect();
            let metric = WeightedSquaredEuclidean::new(weights.clone()).unwrap();
            let m = 4;
            let scanned: Vec<usize> = (0..m).collect();
            let remaining: Vec<usize> = (m..dims).collect();
            let mut rule = WeightedEvRule::new(weights);
            rule.prepare(&q, &remaining);
            let state = CandidateState {
                partial: metric.partial_score(&scanned, &v, &q),
                scanned_mass: v[..m].iter().sum(),
                total_mass: v.iter().sum(),
            };
            let (lo, hi) = rule.bounds(&state);
            let full = metric.score(&v, &q);
            assert!(lo <= full + 1e-9, "WEv lower bound violated: {lo} > {full}");
            assert!(hi >= full - 1e-9, "WEv upper bound violated: {hi} < {full}");
        }
    }

    #[test]
    fn uniform_weights_match_unweighted_lower_bound() {
        // With w_i = 1 the lower bound must equal Lemma 2's (D²/r).
        let weights = vec![1.0; 4];
        let q = vec![0.2, 0.3, 0.1, 0.4];
        let mut rule = WeightedEvRule::new(weights);
        rule.prepare(&q, &[0, 1, 2, 3]);
        let state = CandidateState { partial: 0.0, scanned_mass: 0.0, total_mass: 2.0 };
        let (lo, _) = rule.bounds(&state);
        let d: f64 = 2.0 - 1.0;
        assert!((lo - d * d / 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_make_lower_bound_vacuous() {
        // A zero-weight dimension can absorb any mass difference for free.
        let weights = vec![0.0, 1.0];
        let q = vec![0.9, 0.1];
        let mut rule = WeightedEvRule::new(weights);
        rule.prepare(&q, &[0, 1]);
        let state = CandidateState { partial: 0.3, scanned_mass: 0.0, total_mass: 1.5 };
        let (lo, hi) = rule.bounds(&state);
        assert_eq!(lo, 0.3);
        assert!(hi >= lo);
    }

    #[test]
    fn weighted_hq_brackets_weighted_intersection() {
        let weights: Vec<f64> = vec![2.0, 1.0, 0.5, 0.0];
        let q: Vec<f64> = vec![0.7, 0.15, 0.1, 0.05];
        let h: Vec<f64> = vec![0.55, 0.2, 0.15, 0.1];
        let scanned = [0usize, 1];
        let remaining = [2usize, 3];
        let mut rule = WeightedHqRule::new(weights.clone());
        rule.prepare(&q, &remaining);
        let partial: f64 = scanned.iter().map(|&d| weights[d] * h[d].min(q[d])).sum();
        let full: f64 = (0..4).map(|d| weights[d] * h[d].min(q[d])).sum();
        let (lo, hi) = rule.bounds(&CandidateState::partial_only(partial));
        assert!(lo <= full + 1e-12 && hi >= full - 1e-12);
        // upper bound adds Σ w_i q_i over remaining = 0.5*0.1 + 0 = 0.05
        assert!((hi - partial - 0.05).abs() < 1e-12);
        assert_eq!(rule.name(), "WHq");
        assert_eq!(rule.objective(), Objective::Maximize);
    }

    #[test]
    fn empty_remaining_collapses() {
        let mut rule = WeightedEvRule::new(vec![1.0, 2.0]);
        rule.prepare(&[0.5, 0.5], &[]);
        let state = CandidateState { partial: 0.7, scanned_mass: 1.0, total_mass: 1.0 };
        assert_eq!(rule.bounds(&state), (0.7, 0.7));
        assert_eq!(rule.name(), "WEv");
    }

    #[test]
    fn subspace_weights_ignore_unselected_dims() {
        // dims 0 and 1 are irrelevant (weight 0): pruning bound on the
        // remaining relevant dim must still bracket the true subspace score.
        let weights = vec![0.0, 0.0, 1.0, 1.0];
        let metric = WeightedSquaredEuclidean::new(weights.clone()).unwrap();
        let q = vec![0.9, 0.9, 0.2, 0.3];
        let v = vec![0.0, 0.0, 0.25, 0.35];
        let mut rule = WeightedEvRule::new(weights);
        rule.prepare(&q, &[2, 3]);
        let state = CandidateState { partial: 0.0, scanned_mass: 0.0, total_mass: v[2] + v[3] };
        let (lo, hi) = rule.bounds(&state);
        let full = metric.score(&v, &q);
        assert!(lo <= full + 1e-12 && hi >= full - 1e-12);
    }
}
