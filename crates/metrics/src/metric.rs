//! Similarity and distance metrics (Section 3.2 and Appendix A).
//!
//! BOND only requires the aggregate to be *associative, monotonic and
//! commutative* in its per-dimension contributions; the
//! [`DecomposableMetric`] trait captures exactly that: a metric is a sum of
//! per-dimension contributions, and the best matches are either the largest
//! (similarity) or the smallest (distance) sums.

use serde::{Deserialize, Serialize};

/// Whether the best matches have the largest or the smallest scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Top-k = the k largest scores (similarity metrics).
    Maximize,
    /// Top-k = the k smallest scores (distance metrics).
    Minimize,
}

impl Objective {
    /// `true` when `a` is a strictly better score than `b` under this
    /// objective.
    #[inline]
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self {
            Objective::Maximize => a > b,
            Objective::Minimize => a < b,
        }
    }
}

/// The closed set of per-dimension contribution shapes the vectorized scan
/// kernels in `bond-core` know how to compute without a virtual call per
/// cell. A metric that matches one of these shapes advertises it through
/// [`DecomposableMetric::kernel_op`]; everything else (including user
/// metrics) keeps the `None` default and runs the portable per-contribution
/// loop.
///
/// The shapes mirror the four concrete metrics of the paper: `min(v, q)`
/// for histogram intersection, `(v − q)²` for squared Euclidean, and their
/// per-dimension-weighted variants. The borrowed weight slices keep the
/// enum allocation-free on the query path.
#[derive(Debug, Clone, Copy)]
pub enum KernelOp<'a> {
    /// `min(value, query)` — histogram intersection (Definition 1).
    Min,
    /// `(value − query)²` — squared Euclidean distance (Definition 2).
    SquaredDiff,
    /// `w_dim · min(value, query)` — weighted histogram intersection.
    WeightedMin(&'a [f64]),
    /// `w_dim · (value − query)²` — weighted squared Euclidean
    /// (Definition 3).
    WeightedSquaredDiff(&'a [f64]),
}

impl KernelOp<'_> {
    /// Evaluates the shape for one dimension — the scalar reference the
    /// vector kernels must match bit for bit.
    #[inline]
    pub fn apply(&self, dim: usize, value: f64, query: f64) -> f64 {
        match self {
            KernelOp::Min => value.min(query),
            KernelOp::SquaredDiff => {
                let d = value - query;
                d * d
            }
            KernelOp::WeightedMin(w) => w[dim] * value.min(query),
            KernelOp::WeightedSquaredDiff(w) => {
                let d = value - query;
                w[dim] * d * d
            }
        }
    }
}

/// A metric that decomposes into a sum of per-dimension contributions:
/// `S(x, q) = Σ_i contribution(i, x_i, q_i)`.
///
/// This is the "associative and monotonic aggregate function S" of the
/// paper's Section 3.1; commutativity over the dimensions is what lets BOND
/// process them in any order (Section 5.1).
pub trait DecomposableMetric: Send + Sync {
    /// Whether larger or smaller scores are better.
    fn objective(&self) -> Objective;

    /// The contribution of a single dimension to the total score.
    fn contribution(&self, dim: usize, value: f64, query: f64) -> f64;

    /// The exact score between a stored vector and the query.
    ///
    /// The default implementation sums [`DecomposableMetric::contribution`]
    /// over all dimensions; metrics may override it with a tighter loop.
    fn score(&self, vector: &[f64], query: &[f64]) -> f64 {
        debug_assert_eq!(vector.len(), query.len());
        vector.iter().zip(query).enumerate().map(|(d, (&v, &q))| self.contribution(d, v, q)).sum()
    }

    /// The score restricted to a subset of dimensions (used to accumulate
    /// partial scores `S(x⁻, q⁻)` over the scanned prefix).
    fn partial_score(&self, dims: &[usize], vector: &[f64], query: &[f64]) -> f64 {
        dims.iter().map(|&d| self.contribution(d, vector[d], query[d])).sum()
    }

    /// The *best* contribution dimension `dim` can make for any value in
    /// `[lo, hi]`: the maximum over the interval for a similarity metric,
    /// the minimum for a distance metric.
    ///
    /// This is the per-dimension building block of zone-map-style
    /// whole-segment bounds ([`DecomposableMetric::envelope_best_score`]).
    /// The default is deliberately vacuous (`+∞` / `0`), which makes
    /// envelope pruning a no-op rather than unsafe for metrics that do not
    /// override it.
    fn best_contribution(&self, dim: usize, lo: f64, hi: f64, query: f64) -> f64 {
        let _ = (dim, lo, hi, query);
        match self.objective() {
            Objective::Maximize => f64::INFINITY,
            Objective::Minimize => 0.0,
        }
    }

    /// The *worst* contribution dimension `dim` can make for any value in
    /// `[lo, hi]`: the minimum over the interval for a similarity metric,
    /// the maximum for a distance metric.
    ///
    /// Together with [`DecomposableMetric::best_contribution`] this brackets
    /// the exact contribution of any value known only up to an interval —
    /// the building block of safe pruning on quantized codes, where a cell
    /// index stands for the interval `[cell_lower, cell_upper]`. The default
    /// is vacuous in the *pessimistic* direction (`−∞` / `+∞`), which makes
    /// interval filters degenerate to "keep everything" rather than unsafe
    /// for metrics that do not override it.
    fn worst_contribution(&self, dim: usize, lo: f64, hi: f64, query: f64) -> f64 {
        let _ = (dim, lo, hi, query);
        match self.objective() {
            Objective::Maximize => f64::NEG_INFINITY,
            Objective::Minimize => f64::INFINITY,
        }
    }

    /// Fills `pairs` with the interleaved `[best, worst]` contribution of
    /// every quantization cell of one dimension: `pairs[2*c]` and
    /// `pairs[2*c + 1]` bracket the contribution any value inside
    /// `bounds[c] = (lo, hi)` can make. Exactly the values of calling
    /// [`DecomposableMetric::best_contribution`] /
    /// [`DecomposableMetric::worst_contribution`] per cell — but as **one**
    /// virtual call per dimension instead of two per cell: inside this
    /// provided body `self` is the concrete metric, so the per-cell bound
    /// math inlines. The quantized filter builds its per-level LUTs
    /// through this for every dimension of every segment scan.
    fn fill_contribution_pairs(
        &self,
        dim: usize,
        bounds: &[(f64, f64)],
        query: f64,
        pairs: &mut [f64],
    ) {
        debug_assert_eq!(bounds.len() * 2, pairs.len());
        for (pair, &(lo, hi)) in pairs.chunks_exact_mut(2).zip(bounds) {
            pair[0] = self.best_contribution(dim, lo, hi, query);
            pair[1] = self.worst_contribution(dim, lo, hi, query);
        }
    }

    /// An *optimistic* bound on the score of any vector inside the
    /// per-dimension value envelope `[mins_i, maxs_i]`: no vector in the box
    /// can score better than this under the metric's objective. Comparing it
    /// against the current pruning bound κ decides whether a whole segment
    /// can be skipped without touching its data (zone-map pruning).
    fn envelope_best_score(&self, query: &[f64], mins: &[f64], maxs: &[f64]) -> f64 {
        debug_assert_eq!(query.len(), mins.len());
        debug_assert_eq!(query.len(), maxs.len());
        query.iter().enumerate().map(|(d, &q)| self.best_contribution(d, mins[d], maxs[d], q)).sum()
    }

    /// An optimistic score bound derived from the *total-mass* envelope
    /// alone: no vector whose coordinate sum `T(x)` lies in
    /// `[mass_lo, mass_hi]` can score better than this against a query with
    /// coordinate sum `query_sum` over `dims` dimensions. `None` when the
    /// metric admits no such bound (the default).
    ///
    /// Zone-map segment skipping combines this with
    /// [`DecomposableMetric::envelope_best_score`]; the tighter of the two
    /// wins.
    fn mass_best_score(
        &self,
        query_sum: f64,
        mass_lo: f64,
        mass_hi: f64,
        dims: usize,
    ) -> Option<f64> {
        let _ = (query_sum, mass_lo, mass_hi, dims);
        None
    }

    /// A short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// The vectorizable shape of [`DecomposableMetric::contribution`], when
    /// it has one. Metrics that return `Some` promise that
    /// [`KernelOp::apply`] computes *exactly* the same `f64` as
    /// `contribution` for every `(dim, value, query)` — the SIMD kernels
    /// rely on that to stay bit-identical to the scalar path. The default
    /// is `None`: opaque metrics always take the portable loop.
    fn kernel_op(&self) -> Option<KernelOp<'_>> {
        None
    }
}

/// Histogram intersection (Definition 1):
/// `Sim(h, q) = Σ_i min(h_i, q_i)`, a similarity in `[0, 1]` for normalized
/// histograms. Reported in the paper (after Swain & Ballard) to be superior
/// to Euclidean distance for color histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramIntersection;

impl DecomposableMetric for HistogramIntersection {
    fn objective(&self) -> Objective {
        Objective::Maximize
    }

    #[inline]
    fn contribution(&self, _dim: usize, value: f64, query: f64) -> f64 {
        value.min(query)
    }

    fn score(&self, vector: &[f64], query: &[f64]) -> f64 {
        vector.iter().zip(query).map(|(&v, &q)| v.min(q)).sum()
    }

    #[inline]
    fn best_contribution(&self, _dim: usize, _lo: f64, hi: f64, query: f64) -> f64 {
        // min(v, q) is non-decreasing in v, so the interval's top is best.
        hi.min(query)
    }

    #[inline]
    fn worst_contribution(&self, _dim: usize, lo: f64, _hi: f64, query: f64) -> f64 {
        // ... and the interval's bottom is worst.
        lo.min(query)
    }

    fn mass_best_score(
        &self,
        query_sum: f64,
        _mass_lo: f64,
        mass_hi: f64,
        _dims: usize,
    ) -> Option<f64> {
        // Σ min(h_i, q_i) ≤ min(T(h), T(q)) ≤ min(mass_hi, T(q)).
        Some(mass_hi.min(query_sum))
    }

    fn name(&self) -> &'static str {
        "histogram_intersection"
    }

    fn kernel_op(&self) -> Option<KernelOp<'_>> {
        Some(KernelOp::Min)
    }
}

/// Squared Euclidean distance (Definition 2):
/// `δ(v, q) = Σ_i (v_i − q_i)²`, a distance (smaller is better). The paper
/// uses the squared form to avoid the square root; the ranking is identical
/// because the square root is monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SquaredEuclidean;

impl DecomposableMetric for SquaredEuclidean {
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    #[inline]
    fn contribution(&self, _dim: usize, value: f64, query: f64) -> f64 {
        let d = value - query;
        d * d
    }

    fn score(&self, vector: &[f64], query: &[f64]) -> f64 {
        vector
            .iter()
            .zip(query)
            .map(|(&v, &q)| {
                let d = v - q;
                d * d
            })
            .sum()
    }

    #[inline]
    fn best_contribution(&self, _dim: usize, lo: f64, hi: f64, query: f64) -> f64 {
        // (v − q)² is minimized at the point of [lo, hi] closest to q.
        // `max`/`min` instead of `clamp`: identical for the ordered cell
        // bounds this receives, but free of `clamp`'s panicking assert —
        // which would keep the batched LUT build from vectorizing.
        let d = query.max(lo).min(hi) - query;
        d * d
    }

    #[inline]
    fn worst_contribution(&self, _dim: usize, lo: f64, hi: f64, query: f64) -> f64 {
        // ... and maximized at the endpoint farthest from q.
        let dl = lo - query;
        let dh = hi - query;
        (dl * dl).max(dh * dh)
    }

    fn mass_best_score(
        &self,
        query_sum: f64,
        mass_lo: f64,
        mass_hi: f64,
        dims: usize,
    ) -> Option<f64> {
        if dims == 0 {
            return None;
        }
        // Cauchy–Schwarz (the paper's Lemma 2 over all dimensions):
        // δ(v, q) ≥ (T(v) − T(q))² / N, minimized at the T(v) in
        // [mass_lo, mass_hi] closest to T(q).
        let d = query_sum.clamp(mass_lo, mass_hi) - query_sum;
        Some(d * d / dims as f64)
    }

    fn name(&self) -> &'static str {
        "squared_euclidean"
    }

    fn kernel_op(&self) -> Option<KernelOp<'_>> {
        Some(KernelOp::SquaredDiff)
    }
}

impl SquaredEuclidean {
    /// The similarity form of Equation 3: `Sim(v, q) = 1 − sqrt(δ(v, q)/N)`.
    /// Used by multi-feature queries to put Euclidean components on the same
    /// `[0, 1]` similarity scale as histogram intersection.
    pub fn similarity_from_distance(distance: f64, dims: usize) -> f64 {
        if dims == 0 {
            return 1.0;
        }
        1.0 - (distance / dims as f64).sqrt()
    }

    /// Inverse of [`SquaredEuclidean::similarity_from_distance`].
    pub fn distance_from_similarity(similarity: f64, dims: usize) -> f64 {
        let s = 1.0 - similarity;
        s * s * dims as f64
    }
}

/// A weighted-histogram-intersection metric: `Σ w_i · min(h_i, q_i)`.
///
/// The paper's weighted examples use Euclidean distance; this metric rounds
/// out the weighted story for the similarity side and powers weighted
/// multi-feature color queries.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedHistogramIntersection {
    weights: Vec<f64>,
}

impl WeightedHistogramIntersection {
    /// Creates the metric; weights must be non-negative and finite.
    pub fn new(weights: Vec<f64>) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("weight vector must not be empty".into());
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err("weights must be finite and non-negative".into());
        }
        Ok(WeightedHistogramIntersection { weights })
    }

    /// The per-dimension weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl DecomposableMetric for WeightedHistogramIntersection {
    fn objective(&self) -> Objective {
        Objective::Maximize
    }

    #[inline]
    fn contribution(&self, dim: usize, value: f64, query: f64) -> f64 {
        self.weights[dim] * value.min(query)
    }

    #[inline]
    fn best_contribution(&self, dim: usize, _lo: f64, hi: f64, query: f64) -> f64 {
        self.weights[dim] * hi.min(query)
    }

    #[inline]
    fn worst_contribution(&self, dim: usize, lo: f64, _hi: f64, query: f64) -> f64 {
        self.weights[dim] * lo.min(query)
    }

    fn name(&self) -> &'static str {
        "weighted_histogram_intersection"
    }

    fn kernel_op(&self) -> Option<KernelOp<'_>> {
        Some(KernelOp::WeightedMin(&self.weights))
    }
}

/// Weighted squared Euclidean distance (Definition 3, Appendix A):
/// `δ_w(v, q) = Σ_i w_i (v_i − q_i)²`.
///
/// A query in a dimensional subspace is the special case where the weights
/// of the irrelevant dimensions are zero (Section 8.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedSquaredEuclidean {
    weights: Vec<f64>,
}

impl WeightedSquaredEuclidean {
    /// Creates the metric from per-dimension weights. Negative weights are
    /// rejected (they would break monotonicity of the aggregate).
    pub fn new(weights: Vec<f64>) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("weight vector must not be empty".into());
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err("weights must be finite and non-negative".into());
        }
        Ok(WeightedSquaredEuclidean { weights })
    }

    /// Weights normalized so that they sum to the dimensionality `N`, the
    /// convention under which Equation 3 still defines a similarity.
    pub fn normalized(weights: Vec<f64>) -> Result<Self, String> {
        let n = weights.len() as f64;
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err("weights must have a positive sum".into());
        }
        let scaled = weights.iter().map(|w| w * n / total).collect();
        WeightedSquaredEuclidean::new(scaled)
    }

    /// A subspace query: weight 1 on the selected dimensions, 0 elsewhere.
    pub fn subspace(dims: usize, selected: &[usize]) -> Result<Self, String> {
        let mut weights = vec![0.0; dims];
        for &d in selected {
            if d >= dims {
                return Err(format!("subspace dimension {d} out of range {dims}"));
            }
            weights[d] = 1.0;
        }
        WeightedSquaredEuclidean::new(weights)
    }

    /// The per-dimension weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl DecomposableMetric for WeightedSquaredEuclidean {
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    #[inline]
    fn contribution(&self, dim: usize, value: f64, query: f64) -> f64 {
        let d = value - query;
        self.weights[dim] * d * d
    }

    #[inline]
    fn best_contribution(&self, dim: usize, lo: f64, hi: f64, query: f64) -> f64 {
        // `max`/`min` instead of `clamp` — see `SquaredEuclidean`
        let d = query.max(lo).min(hi) - query;
        self.weights[dim] * d * d
    }

    #[inline]
    fn worst_contribution(&self, dim: usize, lo: f64, hi: f64, query: f64) -> f64 {
        let dl = lo - query;
        let dh = hi - query;
        self.weights[dim] * (dl * dl).max(dh * dh)
    }

    fn name(&self) -> &'static str {
        "weighted_squared_euclidean"
    }

    fn kernel_op(&self) -> Option<KernelOp<'_>> {
        Some(KernelOp::WeightedSquaredDiff(&self.weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_better() {
        assert!(Objective::Maximize.better(0.9, 0.1));
        assert!(!Objective::Maximize.better(0.1, 0.9));
        assert!(Objective::Minimize.better(0.1, 0.9));
        assert!(!Objective::Minimize.better(0.2, 0.2));
    }

    #[test]
    fn histogram_intersection_paper_example() {
        // h3 and q from the worked example in Section 4.2.
        let q = [0.7, 0.15, 0.1, 0.05];
        let h3 = [0.8, 0.1, 0.05, 0.05];
        let m = HistogramIntersection;
        let s = m.score(&h3, &q);
        assert!((s - 0.9).abs() < 1e-12);
        assert_eq!(m.objective(), Objective::Maximize);
        // identical histograms intersect to T(h) = 1
        assert!((m.score(&q, &q) - 1.0).abs() < 1e-12);
        // partial score over the first two dims: min(0.8,0.7)+min(0.1,0.15)
        assert!((m.partial_score(&[0, 1], &h3, &q) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn squared_euclidean_basics() {
        let m = SquaredEuclidean;
        assert_eq!(m.objective(), Objective::Minimize);
        let v = [0.0, 0.5, 1.0];
        let q = [0.0, 0.0, 0.0];
        assert!((m.score(&v, &q) - 1.25).abs() < 1e-12);
        assert_eq!(m.score(&v, &v), 0.0);
        assert!((m.contribution(1, 0.5, 0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn similarity_transform_round_trips() {
        let dims = 16;
        for d in [0.0, 0.5, 4.0, 16.0] {
            let s = SquaredEuclidean::similarity_from_distance(d, dims);
            let back = SquaredEuclidean::distance_from_similarity(s, dims);
            assert!((back - d).abs() < 1e-9);
        }
        assert_eq!(SquaredEuclidean::similarity_from_distance(0.0, 0), 1.0);
        // zero distance -> similarity 1, max distance N -> similarity 0
        assert_eq!(SquaredEuclidean::similarity_from_distance(0.0, 8), 1.0);
        assert_eq!(SquaredEuclidean::similarity_from_distance(8.0, 8), 0.0);
    }

    #[test]
    fn weighted_euclidean_reduces_to_unweighted() {
        let w = WeightedSquaredEuclidean::new(vec![1.0; 4]).unwrap();
        let v = [0.1, 0.2, 0.3, 0.4];
        let q = [0.4, 0.3, 0.2, 0.1];
        assert!((w.score(&v, &q) - SquaredEuclidean.score(&v, &q)).abs() < 1e-12);
    }

    #[test]
    fn weighted_euclidean_validation_and_normalization() {
        assert!(WeightedSquaredEuclidean::new(vec![]).is_err());
        assert!(WeightedSquaredEuclidean::new(vec![-1.0]).is_err());
        assert!(WeightedSquaredEuclidean::new(vec![f64::NAN]).is_err());
        assert!(WeightedSquaredEuclidean::normalized(vec![0.0, 0.0]).is_err());

        let w = WeightedSquaredEuclidean::normalized(vec![1.0, 3.0]).unwrap();
        assert!((w.weights().iter().sum::<f64>() - 2.0).abs() < 1e-12);
        assert!((w.weights()[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn subspace_is_zero_one_weights() {
        let w = WeightedSquaredEuclidean::subspace(4, &[1, 3]).unwrap();
        assert_eq!(w.weights(), &[0.0, 1.0, 0.0, 1.0]);
        let v = [9.0, 0.5, 9.0, 0.25];
        let q = [0.0, 0.0, 0.0, 0.0];
        // only dims 1 and 3 count
        assert!((w.score(&v, &q) - (0.25 + 0.0625)).abs() < 1e-12);
        assert!(WeightedSquaredEuclidean::subspace(4, &[4]).is_err());
    }

    #[test]
    fn envelope_bounds_dominate_every_boxed_vector() {
        // deterministic pseudo-random boxes + vectors inside them
        let mut seed = 0xA5A5_5A5A_1234_5678u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let dims = 6;
        let weighted = WeightedSquaredEuclidean::new(vec![2.0, 0.5, 1.0, 0.0, 3.0, 1.0]).unwrap();
        for _ in 0..200 {
            let q: Vec<f64> = (0..dims).map(|_| next()).collect();
            let mins: Vec<f64> = (0..dims).map(|_| next() * 0.5).collect();
            let maxs: Vec<f64> = mins.iter().map(|&m| m + next() * 0.5).collect();
            let v: Vec<f64> =
                mins.iter().zip(&maxs).map(|(&lo, &hi)| lo + next() * (hi - lo)).collect();
            let hist_bound = HistogramIntersection.envelope_best_score(&q, &mins, &maxs);
            assert!(HistogramIntersection.score(&v, &q) <= hist_bound + 1e-12);
            let euclid_bound = SquaredEuclidean.envelope_best_score(&q, &mins, &maxs);
            assert!(SquaredEuclidean.score(&v, &q) >= euclid_bound - 1e-12);
            let weighted_bound = weighted.envelope_best_score(&q, &mins, &maxs);
            assert!(weighted.score(&v, &q) >= weighted_bound - 1e-12);
        }
    }

    #[test]
    fn interval_contributions_bracket_every_boxed_value() {
        // for any value v in [lo, hi]:
        //   worst ≤ contribution(v) ≤ best   (Maximize)
        //   best ≤ contribution(v) ≤ worst   (Minimize)
        let mut seed = 0x1357_9BDF_2468_ACE0u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let w_hist = WeightedHistogramIntersection::new(vec![2.0, 0.5, 0.0, 3.0]).unwrap();
        let w_euc = WeightedSquaredEuclidean::new(vec![2.0, 0.5, 0.0, 3.0]).unwrap();
        for _ in 0..500 {
            let d = (next() * 4.0) as usize % 4;
            let q = next() * 2.0 - 0.5;
            let lo = next() * 2.0 - 0.5;
            let hi = lo + next();
            let v = lo + next() * (hi - lo);
            let eps = 1e-12;
            let h = HistogramIntersection.contribution(d, v, q);
            assert!(HistogramIntersection.worst_contribution(d, lo, hi, q) <= h + eps);
            assert!(h <= HistogramIntersection.best_contribution(d, lo, hi, q) + eps);
            let e = SquaredEuclidean.contribution(d, v, q);
            assert!(SquaredEuclidean.best_contribution(d, lo, hi, q) <= e + eps);
            assert!(e <= SquaredEuclidean.worst_contribution(d, lo, hi, q) + eps);
            let wh = w_hist.contribution(d, v, q);
            assert!(w_hist.worst_contribution(d, lo, hi, q) <= wh + eps);
            assert!(wh <= w_hist.best_contribution(d, lo, hi, q) + eps);
            let we = w_euc.contribution(d, v, q);
            assert!(w_euc.best_contribution(d, lo, hi, q) <= we + eps);
            assert!(we <= w_euc.worst_contribution(d, lo, hi, q) + eps);
        }
        // the default is vacuous per objective
        struct Opaque(Objective);
        impl DecomposableMetric for Opaque {
            fn objective(&self) -> Objective {
                self.0
            }
            fn contribution(&self, _d: usize, v: f64, q: f64) -> f64 {
                v * q
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        assert_eq!(
            Opaque(Objective::Maximize).worst_contribution(0, 0.0, 1.0, 0.5),
            f64::NEG_INFINITY
        );
        assert_eq!(Opaque(Objective::Minimize).worst_contribution(0, 0.0, 1.0, 0.5), f64::INFINITY);
    }

    #[test]
    fn mass_bounds_dominate_every_vector_in_the_mass_range() {
        // histogram intersection: score ≤ min(T(h), T(q))
        let q = [0.5, 0.3, 0.2];
        let q_sum: f64 = q.iter().sum();
        let h = [0.1, 0.2, 0.1]; // T(h) = 0.4
        let bound = HistogramIntersection.mass_best_score(q_sum, 0.0, 0.4, 3).unwrap();
        assert!((bound - 0.4).abs() < 1e-12);
        assert!(HistogramIntersection.score(&h, &q) <= bound + 1e-12);
        // squared Euclidean: δ ≥ (T(v) − T(q))² / N
        let v = [0.0, 0.1, 0.0]; // T(v) = 0.1
        let bound = SquaredEuclidean.mass_best_score(q_sum, 0.0, 0.2, 3).unwrap();
        assert!((bound - (0.8 * 0.8) / 3.0).abs() < 1e-12);
        assert!(SquaredEuclidean.score(&v, &q) >= bound - 1e-12);
        // T(q) inside the mass range: the Euclidean mass bound is vacuous
        assert_eq!(SquaredEuclidean.mass_best_score(q_sum, 0.5, 2.0, 3), Some(0.0));
        assert_eq!(SquaredEuclidean.mass_best_score(q_sum, 0.5, 2.0, 0), None);
        // weighted metrics keep the conservative default
        let w = WeightedSquaredEuclidean::new(vec![1.0; 3]).unwrap();
        assert_eq!(w.mass_best_score(q_sum, 0.0, 0.2, 3), None);
    }

    #[test]
    fn envelope_bound_is_tight_at_the_box_boundary() {
        // query inside the box: best distance 0, best intersection min(max, q)
        let q = [0.5, 0.2];
        let mins = [0.4, 0.0];
        let maxs = [0.6, 0.1];
        assert!((SquaredEuclidean.envelope_best_score(&q, &mins, &maxs) - 0.01).abs() < 1e-12);
        assert!((HistogramIntersection.envelope_best_score(&q, &mins, &maxs) - 0.6).abs() < 1e-12);
        // default implementation is vacuous per objective
        struct Opaque(Objective);
        impl DecomposableMetric for Opaque {
            fn objective(&self) -> Objective {
                self.0
            }
            fn contribution(&self, _d: usize, v: f64, q: f64) -> f64 {
                v * q
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        assert_eq!(
            Opaque(Objective::Maximize).envelope_best_score(&q, &mins, &maxs),
            f64::INFINITY
        );
        assert_eq!(Opaque(Objective::Minimize).envelope_best_score(&q, &mins, &maxs), 0.0);
    }

    #[test]
    fn kernel_ops_match_contributions_exactly() {
        // KernelOp::apply must be *bit-identical* to contribution — the
        // SIMD kernels inherit their correctness proof from this.
        let wh = WeightedHistogramIntersection::new(vec![2.0, 0.5, 0.0, 3.0]).unwrap();
        let we = WeightedSquaredEuclidean::new(vec![2.0, 0.5, 0.0, 3.0]).unwrap();
        let metrics: Vec<&dyn DecomposableMetric> =
            vec![&HistogramIntersection, &SquaredEuclidean, &wh, &we];
        let mut seed = 0xDEAD_BEEF_CAFE_1234u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for m in metrics {
            let op = m.kernel_op().expect("all four concrete metrics vectorize");
            for _ in 0..200 {
                let d = (next() * 4.0) as usize % 4;
                let v = next() * 2.0 - 0.5;
                let q = next() * 2.0 - 0.5;
                assert_eq!(
                    op.apply(d, v, q).to_bits(),
                    m.contribution(d, v, q).to_bits(),
                    "{}: kernel op diverges at dim {d}, v={v}, q={q}",
                    m.name()
                );
            }
        }
        // opaque metrics keep the None default
        struct Opaque;
        impl DecomposableMetric for Opaque {
            fn objective(&self) -> Objective {
                Objective::Maximize
            }
            fn contribution(&self, _d: usize, v: f64, q: f64) -> f64 {
                v * q
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        assert!(Opaque.kernel_op().is_none());
    }

    #[test]
    fn weighted_skew_changes_ranking() {
        // Under uniform weights v1 is closer; with weight on dim 0, v2 wins.
        let q = [0.0, 0.0];
        let v1 = [0.3, 0.1];
        let v2 = [0.1, 0.4];
        let uniform = WeightedSquaredEuclidean::new(vec![1.0, 1.0]).unwrap();
        assert!(uniform.score(&v1, &q) < uniform.score(&v2, &q));
        let skewed = WeightedSquaredEuclidean::new(vec![10.0, 0.1]).unwrap();
        assert!(skewed.score(&v2, &q) < skewed.score(&v1, &q));
    }
}
