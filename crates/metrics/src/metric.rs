//! Similarity and distance metrics (Section 3.2 and Appendix A).
//!
//! BOND only requires the aggregate to be *associative, monotonic and
//! commutative* in its per-dimension contributions; the
//! [`DecomposableMetric`] trait captures exactly that: a metric is a sum of
//! per-dimension contributions, and the best matches are either the largest
//! (similarity) or the smallest (distance) sums.

use serde::{Deserialize, Serialize};

/// Whether the best matches have the largest or the smallest scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Top-k = the k largest scores (similarity metrics).
    Maximize,
    /// Top-k = the k smallest scores (distance metrics).
    Minimize,
}

impl Objective {
    /// `true` when `a` is a strictly better score than `b` under this
    /// objective.
    #[inline]
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self {
            Objective::Maximize => a > b,
            Objective::Minimize => a < b,
        }
    }
}

/// A metric that decomposes into a sum of per-dimension contributions:
/// `S(x, q) = Σ_i contribution(i, x_i, q_i)`.
///
/// This is the "associative and monotonic aggregate function S" of the
/// paper's Section 3.1; commutativity over the dimensions is what lets BOND
/// process them in any order (Section 5.1).
pub trait DecomposableMetric: Send + Sync {
    /// Whether larger or smaller scores are better.
    fn objective(&self) -> Objective;

    /// The contribution of a single dimension to the total score.
    fn contribution(&self, dim: usize, value: f64, query: f64) -> f64;

    /// The exact score between a stored vector and the query.
    ///
    /// The default implementation sums [`DecomposableMetric::contribution`]
    /// over all dimensions; metrics may override it with a tighter loop.
    fn score(&self, vector: &[f64], query: &[f64]) -> f64 {
        debug_assert_eq!(vector.len(), query.len());
        vector.iter().zip(query).enumerate().map(|(d, (&v, &q))| self.contribution(d, v, q)).sum()
    }

    /// The score restricted to a subset of dimensions (used to accumulate
    /// partial scores `S(x⁻, q⁻)` over the scanned prefix).
    fn partial_score(&self, dims: &[usize], vector: &[f64], query: &[f64]) -> f64 {
        dims.iter().map(|&d| self.contribution(d, vector[d], query[d])).sum()
    }

    /// A short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;
}

/// Histogram intersection (Definition 1):
/// `Sim(h, q) = Σ_i min(h_i, q_i)`, a similarity in `[0, 1]` for normalized
/// histograms. Reported in the paper (after Swain & Ballard) to be superior
/// to Euclidean distance for color histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramIntersection;

impl DecomposableMetric for HistogramIntersection {
    fn objective(&self) -> Objective {
        Objective::Maximize
    }

    #[inline]
    fn contribution(&self, _dim: usize, value: f64, query: f64) -> f64 {
        value.min(query)
    }

    fn score(&self, vector: &[f64], query: &[f64]) -> f64 {
        vector.iter().zip(query).map(|(&v, &q)| v.min(q)).sum()
    }

    fn name(&self) -> &'static str {
        "histogram_intersection"
    }
}

/// Squared Euclidean distance (Definition 2):
/// `δ(v, q) = Σ_i (v_i − q_i)²`, a distance (smaller is better). The paper
/// uses the squared form to avoid the square root; the ranking is identical
/// because the square root is monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SquaredEuclidean;

impl DecomposableMetric for SquaredEuclidean {
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    #[inline]
    fn contribution(&self, _dim: usize, value: f64, query: f64) -> f64 {
        let d = value - query;
        d * d
    }

    fn score(&self, vector: &[f64], query: &[f64]) -> f64 {
        vector
            .iter()
            .zip(query)
            .map(|(&v, &q)| {
                let d = v - q;
                d * d
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "squared_euclidean"
    }
}

impl SquaredEuclidean {
    /// The similarity form of Equation 3: `Sim(v, q) = 1 − sqrt(δ(v, q)/N)`.
    /// Used by multi-feature queries to put Euclidean components on the same
    /// `[0, 1]` similarity scale as histogram intersection.
    pub fn similarity_from_distance(distance: f64, dims: usize) -> f64 {
        if dims == 0 {
            return 1.0;
        }
        1.0 - (distance / dims as f64).sqrt()
    }

    /// Inverse of [`SquaredEuclidean::similarity_from_distance`].
    pub fn distance_from_similarity(similarity: f64, dims: usize) -> f64 {
        let s = 1.0 - similarity;
        s * s * dims as f64
    }
}

/// Weighted squared Euclidean distance (Definition 3, Appendix A):
/// `δ_w(v, q) = Σ_i w_i (v_i − q_i)²`.
///
/// A query in a dimensional subspace is the special case where the weights
/// of the irrelevant dimensions are zero (Section 8.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedSquaredEuclidean {
    weights: Vec<f64>,
}

impl WeightedSquaredEuclidean {
    /// Creates the metric from per-dimension weights. Negative weights are
    /// rejected (they would break monotonicity of the aggregate).
    pub fn new(weights: Vec<f64>) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("weight vector must not be empty".into());
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err("weights must be finite and non-negative".into());
        }
        Ok(WeightedSquaredEuclidean { weights })
    }

    /// Weights normalized so that they sum to the dimensionality `N`, the
    /// convention under which Equation 3 still defines a similarity.
    pub fn normalized(weights: Vec<f64>) -> Result<Self, String> {
        let n = weights.len() as f64;
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err("weights must have a positive sum".into());
        }
        let scaled = weights.iter().map(|w| w * n / total).collect();
        WeightedSquaredEuclidean::new(scaled)
    }

    /// A subspace query: weight 1 on the selected dimensions, 0 elsewhere.
    pub fn subspace(dims: usize, selected: &[usize]) -> Result<Self, String> {
        let mut weights = vec![0.0; dims];
        for &d in selected {
            if d >= dims {
                return Err(format!("subspace dimension {d} out of range {dims}"));
            }
            weights[d] = 1.0;
        }
        WeightedSquaredEuclidean::new(weights)
    }

    /// The per-dimension weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl DecomposableMetric for WeightedSquaredEuclidean {
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    #[inline]
    fn contribution(&self, dim: usize, value: f64, query: f64) -> f64 {
        let d = value - query;
        self.weights[dim] * d * d
    }

    fn name(&self) -> &'static str {
        "weighted_squared_euclidean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_better() {
        assert!(Objective::Maximize.better(0.9, 0.1));
        assert!(!Objective::Maximize.better(0.1, 0.9));
        assert!(Objective::Minimize.better(0.1, 0.9));
        assert!(!Objective::Minimize.better(0.2, 0.2));
    }

    #[test]
    fn histogram_intersection_paper_example() {
        // h3 and q from the worked example in Section 4.2.
        let q = [0.7, 0.15, 0.1, 0.05];
        let h3 = [0.8, 0.1, 0.05, 0.05];
        let m = HistogramIntersection;
        let s = m.score(&h3, &q);
        assert!((s - 0.9).abs() < 1e-12);
        assert_eq!(m.objective(), Objective::Maximize);
        // identical histograms intersect to T(h) = 1
        assert!((m.score(&q, &q) - 1.0).abs() < 1e-12);
        // partial score over the first two dims: min(0.8,0.7)+min(0.1,0.15)
        assert!((m.partial_score(&[0, 1], &h3, &q) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn squared_euclidean_basics() {
        let m = SquaredEuclidean;
        assert_eq!(m.objective(), Objective::Minimize);
        let v = [0.0, 0.5, 1.0];
        let q = [0.0, 0.0, 0.0];
        assert!((m.score(&v, &q) - 1.25).abs() < 1e-12);
        assert_eq!(m.score(&v, &v), 0.0);
        assert!((m.contribution(1, 0.5, 0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn similarity_transform_round_trips() {
        let dims = 16;
        for d in [0.0, 0.5, 4.0, 16.0] {
            let s = SquaredEuclidean::similarity_from_distance(d, dims);
            let back = SquaredEuclidean::distance_from_similarity(s, dims);
            assert!((back - d).abs() < 1e-9);
        }
        assert_eq!(SquaredEuclidean::similarity_from_distance(0.0, 0), 1.0);
        // zero distance -> similarity 1, max distance N -> similarity 0
        assert_eq!(SquaredEuclidean::similarity_from_distance(0.0, 8), 1.0);
        assert_eq!(SquaredEuclidean::similarity_from_distance(8.0, 8), 0.0);
    }

    #[test]
    fn weighted_euclidean_reduces_to_unweighted() {
        let w = WeightedSquaredEuclidean::new(vec![1.0; 4]).unwrap();
        let v = [0.1, 0.2, 0.3, 0.4];
        let q = [0.4, 0.3, 0.2, 0.1];
        assert!((w.score(&v, &q) - SquaredEuclidean.score(&v, &q)).abs() < 1e-12);
    }

    #[test]
    fn weighted_euclidean_validation_and_normalization() {
        assert!(WeightedSquaredEuclidean::new(vec![]).is_err());
        assert!(WeightedSquaredEuclidean::new(vec![-1.0]).is_err());
        assert!(WeightedSquaredEuclidean::new(vec![f64::NAN]).is_err());
        assert!(WeightedSquaredEuclidean::normalized(vec![0.0, 0.0]).is_err());

        let w = WeightedSquaredEuclidean::normalized(vec![1.0, 3.0]).unwrap();
        assert!((w.weights().iter().sum::<f64>() - 2.0).abs() < 1e-12);
        assert!((w.weights()[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn subspace_is_zero_one_weights() {
        let w = WeightedSquaredEuclidean::subspace(4, &[1, 3]).unwrap();
        assert_eq!(w.weights(), &[0.0, 1.0, 0.0, 1.0]);
        let v = [9.0, 0.5, 9.0, 0.25];
        let q = [0.0, 0.0, 0.0, 0.0];
        // only dims 1 and 3 count
        assert!((w.score(&v, &q) - (0.25 + 0.0625)).abs() < 1e-12);
        assert!(WeightedSquaredEuclidean::subspace(4, &[4]).is_err());
    }

    #[test]
    fn weighted_skew_changes_ranking() {
        // Under uniform weights v1 is closer; with weight on dim 0, v2 wins.
        let q = [0.0, 0.0];
        let v1 = [0.3, 0.1];
        let v2 = [0.1, 0.4];
        let uniform = WeightedSquaredEuclidean::new(vec![1.0, 1.0]).unwrap();
        assert!(uniform.score(&v1, &q) < uniform.score(&v2, &q));
        let skewed = WeightedSquaredEuclidean::new(vec![10.0, 0.1]).unwrap();
        assert!(skewed.score(&v2, &q) < skewed.score(&v1, &q));
    }
}
