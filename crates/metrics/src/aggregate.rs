//! Monotonic aggregate functions for multi-feature queries (Section 8.2).
//!
//! A complex query asks for the k images with the best *combination* of
//! per-feature similarities — e.g. "similar to image A in color and to
//! image B in texture". The paper requires only that the global similarity
//! is a monotonic function of the component similarities; it names the
//! arithmetic aggregates of Güntzer et al. (weighted average) and the fuzzy
//! logic aggregates of Fagin (min, max). Monotonicity is what lets the
//! synchronized BOND search combine per-feature score *bounds* into global
//! bounds: evaluate the aggregate on the component lower bounds and on the
//! component upper bounds.

use serde::{Deserialize, Serialize};

/// A monotonically increasing aggregate over per-feature similarity scores.
pub trait ScoreAggregate: Send + Sync {
    /// Combines per-feature similarities into a global similarity.
    fn combine(&self, scores: &[f64]) -> f64;

    /// Combines per-feature `(lower, upper)` bounds into global bounds.
    ///
    /// Valid for any monotonically increasing aggregate: the global lower
    /// bound is the aggregate of the lower bounds, and likewise for the
    /// upper bounds.
    fn combine_bounds(&self, lowers: &[f64], uppers: &[f64]) -> (f64, f64) {
        (self.combine(lowers), self.combine(uppers))
    }

    /// A short name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Weighted arithmetic mean of the component similarities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedAverage {
    weights: Vec<f64>,
}

impl WeightedAverage {
    /// Creates the aggregate; weights are normalized to sum to 1.
    ///
    /// Returns `None` when no weight is positive.
    pub fn new(weights: Vec<f64>) -> Option<Self> {
        let total: f64 = weights.iter().sum();
        if weights.is_empty() || total <= 0.0 || weights.iter().any(|&w| w < 0.0) {
            return None;
        }
        Some(WeightedAverage { weights: weights.into_iter().map(|w| w / total).collect() })
    }

    /// Uniform weights over `n` features.
    pub fn uniform(n: usize) -> Option<Self> {
        WeightedAverage::new(vec![1.0; n])
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl ScoreAggregate for WeightedAverage {
    fn combine(&self, scores: &[f64]) -> f64 {
        debug_assert_eq!(scores.len(), self.weights.len());
        scores.iter().zip(&self.weights).map(|(&s, &w)| s * w).sum()
    }

    fn name(&self) -> &'static str {
        "weighted_average"
    }
}

/// Fuzzy-logic conjunction: the global similarity is the *minimum* component
/// similarity ("similar to A in color AND to B in texture").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzyMin;

impl ScoreAggregate for FuzzyMin {
    fn combine(&self, scores: &[f64]) -> f64 {
        scores.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn name(&self) -> &'static str {
        "fuzzy_min"
    }
}

/// Fuzzy-logic disjunction: the global similarity is the *maximum* component
/// similarity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzyMax;

impl ScoreAggregate for FuzzyMax {
    fn combine(&self, scores: &[f64]) -> f64 {
        scores.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    fn name(&self) -> &'static str {
        "fuzzy_max"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_average_normalizes() {
        let a = WeightedAverage::new(vec![2.0, 2.0]).unwrap();
        assert_eq!(a.weights(), &[0.5, 0.5]);
        assert!((a.combine(&[0.8, 0.4]) - 0.6).abs() < 1e-12);
        let skewed = WeightedAverage::new(vec![3.0, 1.0]).unwrap();
        assert!((skewed.combine(&[1.0, 0.0]) - 0.75).abs() < 1e-12);
        assert_eq!(a.name(), "weighted_average");
    }

    #[test]
    fn weighted_average_rejects_bad_weights() {
        assert!(WeightedAverage::new(vec![]).is_none());
        assert!(WeightedAverage::new(vec![0.0, 0.0]).is_none());
        assert!(WeightedAverage::new(vec![1.0, -1.0]).is_none());
        assert!(WeightedAverage::uniform(3).is_some());
        assert!(WeightedAverage::uniform(0).is_none());
    }

    #[test]
    fn fuzzy_aggregates() {
        assert_eq!(FuzzyMin.combine(&[0.9, 0.2, 0.5]), 0.2);
        assert_eq!(FuzzyMax.combine(&[0.9, 0.2, 0.5]), 0.9);
        assert_eq!(FuzzyMin.name(), "fuzzy_min");
        assert_eq!(FuzzyMax.name(), "fuzzy_max");
    }

    #[test]
    fn bound_combination_brackets_true_value_for_monotone_aggregates() {
        let lowers = [0.2, 0.1];
        let uppers = [0.6, 0.9];
        let actual = [0.5, 0.3];
        for agg in
            [&WeightedAverage::uniform(2).unwrap() as &dyn ScoreAggregate, &FuzzyMin, &FuzzyMax]
        {
            let (lo, hi) = agg.combine_bounds(&lowers, &uppers);
            let truth = agg.combine(&actual);
            assert!(lo <= truth + 1e-12, "{} lower bound", agg.name());
            assert!(hi >= truth - 1e-12, "{} upper bound", agg.name());
        }
    }

    #[test]
    fn combine_bounds_is_monotone_in_inputs() {
        let agg = WeightedAverage::new(vec![1.0, 2.0]).unwrap();
        let (lo1, hi1) = agg.combine_bounds(&[0.1, 0.1], &[0.5, 0.5]);
        let (lo2, hi2) = agg.combine_bounds(&[0.2, 0.2], &[0.6, 0.6]);
        assert!(lo2 > lo1);
        assert!(hi2 > hi1);
    }
}
