//! # bond-metrics — similarity metrics and pruning bounds for BOND
//!
//! This crate contains the *mathematics* of the paper:
//!
//! * the two similarity metrics used throughout — **histogram
//!   intersection** (Definition 1) and **(squared) Euclidean distance**
//!   (Definition 2) — plus the weighted Euclidean distance of the appendix
//!   (Definition 3), all exposed through the [`DecomposableMetric`] trait,
//! * the pruning bounds that drive the branch-and-bound iteration:
//!   * `Hq` — histogram intersection, query-only bound (Equations 5–6),
//!   * `Hh` — histogram intersection, per-vector bound using the scanned
//!     mass `T(h⁻)` (Equations 7–9),
//!   * `Eq` — Euclidean, query-only bound (Equation 10),
//!   * `Ev` — Euclidean, per-vector bound using the remaining mass `T(v⁺)`
//!     (Lemmas 1 and 2),
//!   * weighted variants of the above (Appendix A, with a corrected — and
//!     provably safe — upper bound, see [`bounds::weighted`]),
//! * the monotonic aggregate functions used by multi-feature queries
//!   (Section 8.2): weighted average and the fuzzy-logic `min`/`max`.
//!
//! All bounds implement [`bounds::PruningRule`]; the BOND engine in
//! `bond-core` is generic over that trait, so new metrics only need a new
//! rule implementation.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod bounds;
pub mod metric;

pub use aggregate::{FuzzyMax, FuzzyMin, ScoreAggregate, WeightedAverage};
pub use bounds::{
    euclid::{EqRule, EvRule},
    histogram::{HhRule, HqRule},
    weighted::{WeightedEvRule, WeightedHqRule},
    CandidateState, PruningRule, Requirements,
};
pub use metric::{
    DecomposableMetric, HistogramIntersection, KernelOp, Objective, SquaredEuclidean,
    WeightedHistogramIntersection, WeightedSquaredEuclidean,
};
