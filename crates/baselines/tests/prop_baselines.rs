//! Property-based tests for the baselines: the VA-File filter may never lose
//! a true neighbour (whatever the bit width), the early-abandoning scan must
//! agree with the plain scan, and stream merging must agree with a brute
//! force evaluation of the aggregate whenever it certifies completeness.

use bond_baselines::{
    merge_streams, sequential_scan, sequential_scan_early_abandon, RankedStream, VaFile,
};
use bond_metrics::{
    DecomposableMetric, FuzzyMin, HistogramIntersection, ScoreAggregate, SquaredEuclidean,
    WeightedAverage,
};
use proptest::prelude::*;
use vdstore::topk::Scored;
use vdstore::DecomposedTable;

const DIMS: usize = 8;
const ROWS: usize = 50;

fn collection() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, DIMS), ROWS), 0..ROWS)
}

fn sorted_scores(hits: &[Scored]) -> Vec<f64> {
    let mut v: Vec<f64> = hits.iter().map(|h| h.score).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn vafile_filter_never_loses_a_true_neighbor(
        (vectors, qi) in collection(),
        k in 1usize..=10,
        bits in 2u8..=8,
    ) {
        let table = DecomposedTable::from_vectors("t", &vectors).unwrap();
        let matrix = table.to_row_matrix();
        let query = vectors[qi].clone();
        let va = VaFile::build(&table, bits).unwrap();

        let truth_e = sequential_scan(&matrix, &query, k, &SquaredEuclidean);
        let (candidates, _) = va.filter_euclidean(&query, k);
        for hit in &truth_e.hits {
            prop_assert!(candidates.contains(&hit.row));
        }
        let full = va.search_euclidean(&matrix, &query, k);
        for (a, b) in sorted_scores(&full.hits).iter().zip(sorted_scores(&truth_e.hits)) {
            prop_assert!((a - b).abs() < 1e-9);
        }

        let truth_h = sequential_scan(&matrix, &query, k, &HistogramIntersection);
        let (candidates, _) = va.filter_histogram(&query, k);
        for hit in &truth_h.hits {
            prop_assert!(candidates.contains(&hit.row));
        }
    }

    #[test]
    fn early_abandon_scan_agrees_with_full_scan(
        (vectors, qi) in collection(),
        k in 1usize..=10,
        check_every in 1usize..=DIMS,
    ) {
        let table = DecomposedTable::from_vectors("t", &vectors).unwrap();
        let matrix = table.to_row_matrix();
        let query = vectors[qi].clone();
        for metric in [&HistogramIntersection as &dyn DecomposableMetric, &SquaredEuclidean] {
            let full = sequential_scan(&matrix, &query, k, metric);
            let fast = sequential_scan_early_abandon(&matrix, &query, k, metric, check_every);
            for (a, b) in sorted_scores(&fast.hits).iter().zip(sorted_scores(&full.hits)) {
                prop_assert!((a - b).abs() < 1e-9);
            }
            prop_assert!(fast.dims_touched <= full.dims_touched);
        }
    }

    #[test]
    fn stream_merge_is_correct_when_complete(
        sims in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 30),
            2..4
        ),
        k in 1usize..=5,
        use_min in proptest::bool::ANY,
    ) {
        let rows = sims[0].len();
        let streams: Vec<RankedStream> = sims
            .iter()
            .map(|per_feature| {
                RankedStream::new(
                    per_feature
                        .iter()
                        .enumerate()
                        .map(|(r, &s)| Scored { row: r as u32, score: s })
                        .collect(),
                )
            })
            .collect();
        let aggregate: Box<dyn ScoreAggregate> = if use_min {
            Box::new(FuzzyMin)
        } else {
            Box::new(WeightedAverage::uniform(sims.len()).unwrap())
        };
        let ra = |f: usize, row: u32| sims[f][row as usize];
        let result = merge_streams(&streams, &ra, aggregate.as_ref(), k);
        prop_assert!(result.complete, "full-depth streams must certify the result");

        // brute force
        let mut scored: Vec<(u32, f64)> = (0..rows)
            .map(|r| {
                let component: Vec<f64> = sims.iter().map(|s| s[r]).collect();
                (r as u32, aggregate.combine(&component))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let expected: Vec<f64> = {
            let mut v: Vec<f64> = scored.iter().take(k).map(|(_, s)| *s).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        for (a, b) in sorted_scores(&result.hits).iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
