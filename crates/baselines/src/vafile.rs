//! The Vector-Approximation File (Weber, Schek & Blott, VLDB 1998).
//!
//! The VA-File is the paper's strongest sequential competitor (Table 4): a
//! small approximation (typically 8 bits per dimension) of every vector is
//! scanned in a *filter* step that produces a candidate set with safe
//! score bounds; a *refinement* step then looks up the exact vectors of the
//! candidates and resolves the true top k. We implement the filter for both
//! metrics the paper uses:
//!
//! * squared Euclidean distance — per-dimension lower/upper distances from
//!   the query to the candidate's quantization cell;
//! * histogram intersection — per-dimension bounds `min(cell_lo, q)` /
//!   `min(cell_hi, q)`.
//!
//! The filter keeps a running k-th best *pessimistic* bound and retains
//! every vector whose *optimistic* bound beats it, which is precisely the
//! VA-SSA variant of the original paper.
//!
//! The per-cell bounds are *not* implemented here: the filter asks the
//! metric itself for the best and worst contribution any value inside a
//! quantization cell can make
//! ([`DecomposableMetric::best_contribution`] /
//! [`DecomposableMetric::worst_contribution`]) — the same single bound
//! implementation the compressed BOND searcher and the execution engine's
//! quantized first-pass filter build on, so baseline and engine are
//! guaranteed to agree on what the codes prove.

use bond_metrics::{DecomposableMetric, HistogramIntersection, Objective, SquaredEuclidean};
use vdstore::topk::Scored;
use vdstore::{
    DecomposedTable, QuantizedTable, Result, RowId, RowMatrix, TopKLargest, TopKSmallest,
};

/// The result of a complete VA-File search (filter + refinement).
#[derive(Debug, Clone, PartialEq)]
pub struct VaSearchResult {
    /// The k best rows, best first, with exact scores.
    pub hits: Vec<Scored>,
    /// Number of vectors surviving the filter step (those needing exact
    /// refinement) — the quantity Table 4 compares against BOND-on-codes.
    pub candidates_after_filter: usize,
    /// Per-dimension code inspections performed in the filter step.
    pub filter_dims_touched: usize,
    /// Per-dimension exact-value inspections performed in the refinement.
    pub refine_dims_touched: usize,
}

/// A vector-approximation file over a decomposed table.
#[derive(Debug, Clone)]
pub struct VaFile {
    quantized: QuantizedTable,
}

impl VaFile {
    /// Builds the approximation with the given number of bits per dimension
    /// (the paper and the original VA-File use 8).
    pub fn build(table: &DecomposedTable, bits: u8) -> Result<Self> {
        Ok(VaFile { quantized: QuantizedTable::from_table(table, bits)? })
    }

    /// The underlying quantized table.
    pub fn quantized(&self) -> &QuantizedTable {
        &self.quantized
    }

    /// Approximate size of the approximation file in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.quantized.approx_bytes()
    }

    /// Filter step under any decomposable metric: accumulates, per row, the
    /// optimistic and pessimistic full-score bounds the metric derives from
    /// each quantization cell, proves the k-th best pessimistic bound τ and
    /// keeps every row whose optimistic bound can still reach it. Returns
    /// the candidate rows and the number of code inspections.
    ///
    /// Metrics that leave the default (vacuous) interval bounds degenerate
    /// the filter to "keep everything" — never to a wrong answer.
    pub fn filter_metric(
        &self,
        metric: &dyn DecomposableMetric,
        query: &[f64],
        k: usize,
    ) -> (Vec<RowId>, usize) {
        let rows = self.quantized.rows();
        let dims = self.quantized.dims();
        assert_eq!(query.len(), dims, "query dimensionality mismatch");
        assert!(k > 0, "k must be positive");
        let mut opt = vec![0.0f64; rows];
        let mut pes = vec![0.0f64; rows];
        for (d, &q) in query.iter().enumerate() {
            let col = self.quantized.column(d).expect("dimension in range");
            for r in 0..rows {
                let lo = col.cell_lower(r as RowId);
                let hi = col.cell_upper(r as RowId);
                opt[r] += metric.best_contribution(d, lo, hi, q);
                pes[r] += metric.worst_contribution(d, lo, hi, q);
            }
        }
        let tau = match metric.objective() {
            Objective::Maximize => {
                let mut heap = TopKLargest::new(k.min(rows));
                for (r, &p) in pes.iter().enumerate() {
                    heap.push(r as RowId, p);
                }
                heap.kth()
            }
            Objective::Minimize => {
                let mut heap = TopKSmallest::new(k.min(rows));
                for (r, &p) in pes.iter().enumerate() {
                    heap.push(r as RowId, p);
                }
                heap.kth()
            }
        };
        // a vacuous (infinite) pessimistic bound proves nothing
        let candidates: Vec<RowId> = match tau.filter(|t| t.is_finite()) {
            None => (0..rows as RowId).collect(),
            Some(tau) => (0..rows as RowId)
                .filter(|&r| match metric.objective() {
                    Objective::Maximize => opt[r as usize] >= tau - 1e-12,
                    Objective::Minimize => opt[r as usize] <= tau + 1e-12,
                })
                .collect(),
        };
        (candidates, rows * dims)
    }

    /// Filter step for squared Euclidean distance: returns the candidate
    /// rows (those whose lower-bound distance does not exceed the k-th
    /// smallest upper-bound distance) and the number of code inspections.
    pub fn filter_euclidean(&self, query: &[f64], k: usize) -> (Vec<RowId>, usize) {
        self.filter_metric(&SquaredEuclidean, query, k)
    }

    /// Filter step for histogram intersection: returns the candidate rows
    /// (those whose upper-bound similarity reaches the k-th largest
    /// lower-bound similarity) and the number of code inspections.
    pub fn filter_histogram(&self, query: &[f64], k: usize) -> (Vec<RowId>, usize) {
        self.filter_metric(&HistogramIntersection, query, k)
    }

    /// Complete search (filter + exact refinement) under any decomposable
    /// metric. `exact` must hold the original vectors.
    pub fn search_metric(
        &self,
        exact: &RowMatrix,
        metric: &dyn DecomposableMetric,
        query: &[f64],
        k: usize,
    ) -> VaSearchResult {
        let (candidates, filter_work) = self.filter_metric(metric, query, k);
        let cap = k.min(candidates.len().max(1));
        let hits = match metric.objective() {
            Objective::Maximize => {
                let mut heap = TopKLargest::new(cap);
                for &r in &candidates {
                    heap.push(r, metric.score(exact.row(r), query));
                }
                heap.into_sorted_vec()
            }
            Objective::Minimize => {
                let mut heap = TopKSmallest::new(cap);
                for &r in &candidates {
                    heap.push(r, metric.score(exact.row(r), query));
                }
                heap.into_sorted_vec()
            }
        };
        VaSearchResult {
            hits,
            candidates_after_filter: candidates.len(),
            filter_dims_touched: filter_work,
            refine_dims_touched: candidates.len() * exact.dims(),
        }
    }

    /// Complete search (filter + exact refinement) under squared Euclidean
    /// distance. `exact` must hold the original vectors.
    pub fn search_euclidean(&self, exact: &RowMatrix, query: &[f64], k: usize) -> VaSearchResult {
        self.search_metric(exact, &SquaredEuclidean, query, k)
    }

    /// Complete search (filter + exact refinement) under histogram
    /// intersection.
    pub fn search_histogram(&self, exact: &RowMatrix, query: &[f64], k: usize) -> VaSearchResult {
        self.search_metric(exact, &HistogramIntersection, query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqscan::sequential_scan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_table(rows: usize, dims: usize, seed: u64) -> DecomposedTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let vectors: Vec<Vec<f64>> = (0..rows)
            .map(|_| {
                let mut v: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
                let s: f64 = v.iter().sum();
                for x in &mut v {
                    *x /= s;
                }
                v
            })
            .collect();
        DecomposedTable::from_vectors("rand", &vectors).unwrap()
    }

    #[test]
    fn euclidean_search_matches_sequential_scan() {
        let table = random_table(400, 12, 3);
        let exact = table.to_row_matrix();
        let va = VaFile::build(&table, 8).unwrap();
        for (qi, k) in [(0u32, 1usize), (5, 5), (17, 10)] {
            let query = table.row(qi).unwrap();
            let truth = sequential_scan(&exact, &query, k, &SquaredEuclidean);
            let result = va.search_euclidean(&exact, &query, k);
            let rows = |hits: &[Scored]| {
                let mut v: Vec<RowId> = hits.iter().map(|s| s.row).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(rows(&truth.hits), rows(&result.hits), "query {qi}, k {k}");
            assert!(result.candidates_after_filter >= k);
            assert!(result.candidates_after_filter < exact.rows());
        }
    }

    #[test]
    fn histogram_search_matches_sequential_scan() {
        let table = random_table(400, 12, 7);
        let exact = table.to_row_matrix();
        let va = VaFile::build(&table, 8).unwrap();
        for (qi, k) in [(3u32, 1usize), (42, 5), (99, 10)] {
            let query = table.row(qi).unwrap();
            let truth = sequential_scan(&exact, &query, k, &HistogramIntersection);
            let result = va.search_histogram(&exact, &query, k);
            let rows = |hits: &[Scored]| {
                let mut v: Vec<RowId> = hits.iter().map(|s| s.row).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(rows(&truth.hits), rows(&result.hits), "query {qi}, k {k}");
        }
    }

    #[test]
    fn fewer_bits_mean_more_candidates() {
        let table = random_table(500, 8, 11);
        let query = table.row(0).unwrap();
        let va8 = VaFile::build(&table, 8).unwrap();
        let va2 = VaFile::build(&table, 2).unwrap();
        let (c8, _) = va8.filter_euclidean(&query, 10);
        let (c2, _) = va2.filter_euclidean(&query, 10);
        assert!(
            c2.len() >= c8.len(),
            "coarser quantization cannot produce fewer candidates ({} vs {})",
            c2.len(),
            c8.len()
        );
        assert!(va2.approx_bytes() <= va8.approx_bytes());
    }

    #[test]
    fn filter_never_discards_a_true_neighbor() {
        let table = random_table(300, 10, 13);
        let exact = table.to_row_matrix();
        let va = VaFile::build(&table, 4).unwrap();
        for qi in [1u32, 50, 200] {
            let query = table.row(qi).unwrap();
            let truth = sequential_scan(&exact, &query, 10, &SquaredEuclidean);
            let (candidates, _) = va.filter_euclidean(&query, 10);
            for hit in &truth.hits {
                assert!(
                    candidates.contains(&hit.row),
                    "true neighbour {} missing from the candidate set",
                    hit.row
                );
            }
        }
    }

    /// The generic filter serves metrics the hand-rolled filters never
    /// knew: weighted Euclidean flows through the same shared
    /// `best/worst_contribution` bounds and matches the sequential truth.
    #[test]
    fn weighted_metrics_flow_through_the_shared_bounds() {
        use bond_metrics::WeightedSquaredEuclidean;
        let table = random_table(300, 8, 23);
        let exact = table.to_row_matrix();
        let va = VaFile::build(&table, 8).unwrap();
        let metric =
            WeightedSquaredEuclidean::new(vec![2.0, 0.5, 1.0, 3.0, 1.0, 0.0, 1.5, 1.0]).unwrap();
        for qi in [4u32, 120, 250] {
            let query = table.row(qi).unwrap();
            let truth = sequential_scan(&exact, &query, 10, &metric);
            let result = va.search_metric(&exact, &metric, &query, 10);
            let rows = |hits: &[Scored]| {
                let mut v: Vec<RowId> = hits.iter().map(|s| s.row).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(rows(&truth.hits), rows(&result.hits), "query {qi}");
            assert!(result.candidates_after_filter < exact.rows());
        }
    }

    #[test]
    fn work_accounting_is_reported() {
        let table = random_table(100, 6, 17);
        let exact = table.to_row_matrix();
        let va = VaFile::build(&table, 8).unwrap();
        let query = table.row(9).unwrap();
        let r = va.search_euclidean(&exact, &query, 3);
        assert_eq!(r.filter_dims_touched, 600);
        assert_eq!(r.refine_dims_touched, r.candidates_after_filter * 6);
        assert_eq!(r.hits.len(), 3);
        assert_eq!(va.quantized().bits(), 8);
    }
}
