//! Stream merging for multi-feature queries (Section 8.2's baseline).
//!
//! The classical way to answer "find the k images with the best combined
//! color and texture similarity" is to obtain, per feature, a ranked stream
//! of the most similar objects (e.g. by running a k'-NN search in each
//! feature collection), then merge the streams with a threshold-style
//! algorithm (Fagin's algorithm / Güntzer et al.'s quick-combine): objects
//! popped from any stream are completed by *random accesses* into the other
//! features, a bounded heap keeps the best aggregates seen, and the merge
//! stops once no unseen object can beat the current k-th best — the
//! *threshold* computed from the current stream positions.
//!
//! The difficulty the paper points out is choosing the per-stream depth k':
//! too small and the merge cannot terminate correctly, too large and the
//! per-feature searches dominate the cost. [`MergeResult::complete`] reports
//! whether the streams were deep enough, so a caller can re-run with deeper
//! streams (the experiment harness grants the baseline the *optimal* depth,
//! as the paper does).

use std::collections::HashSet;

use bond_metrics::ScoreAggregate;
use vdstore::topk::Scored;
use vdstore::{RowId, TopKLargest};

/// A per-feature ranked stream: entries sorted by descending similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedStream {
    entries: Vec<Scored>,
}

impl RankedStream {
    /// Creates a stream from (row, similarity) entries; they are sorted by
    /// descending similarity internally.
    pub fn new(mut entries: Vec<Scored>) -> Self {
        entries.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.row.cmp(&b.row))
        });
        RankedStream { entries }
    }

    /// Number of entries available for sorted access.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The i-th best entry, if present.
    pub fn get(&self, i: usize) -> Option<Scored> {
        self.entries.get(i).copied()
    }
}

/// Outcome of a stream merge.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeResult {
    /// The k best rows by aggregate similarity, best first.
    pub hits: Vec<Scored>,
    /// Number of sorted accesses performed (stream pops).
    pub sorted_accesses: usize,
    /// Number of random accesses performed (completions in other features).
    pub random_accesses: usize,
    /// Whether the threshold condition was met before any stream ran dry.
    /// If `false` the result may be incorrect and the caller should retry
    /// with deeper streams.
    pub complete: bool,
}

/// Merges per-feature ranked streams with the threshold algorithm.
///
/// `random_access(feature, row)` must return the exact similarity of `row`
/// in `feature`. The aggregate must be monotonically increasing (all the
/// aggregates of Section 8.2 are).
pub fn merge_streams(
    streams: &[RankedStream],
    random_access: &dyn Fn(usize, RowId) -> f64,
    aggregate: &dyn ScoreAggregate,
    k: usize,
) -> MergeResult {
    assert!(!streams.is_empty(), "need at least one stream");
    assert!(k > 0, "k must be positive");
    let features = streams.len();
    let mut heap = TopKLargest::new(k);
    let mut seen: HashSet<RowId> = HashSet::new();
    let mut positions = vec![0usize; features];
    let mut last_scores: Vec<f64> =
        streams.iter().map(|s| s.get(0).map(|e| e.score).unwrap_or(0.0)).collect();
    let mut sorted_accesses = 0usize;
    let mut random_accesses = 0usize;
    let mut complete = false;

    loop {
        let mut any_progress = false;
        for f in 0..features {
            let Some(entry) = streams[f].get(positions[f]) else { continue };
            positions[f] += 1;
            sorted_accesses += 1;
            last_scores[f] = entry.score;
            any_progress = true;
            if seen.insert(entry.row) {
                // complete the object with random accesses into the other features
                let mut scores = vec![0.0; features];
                for (g, score) in scores.iter_mut().enumerate() {
                    if g == f {
                        *score = entry.score;
                    } else {
                        *score = random_access(g, entry.row);
                        random_accesses += 1;
                    }
                }
                heap.push(entry.row, aggregate.combine(&scores));
            }
        }
        // Threshold: the best aggregate any unseen object could still reach.
        let threshold = aggregate.combine(&last_scores);
        if let Some(kth) = heap.kth() {
            if kth >= threshold {
                complete = true;
                break;
            }
        }
        if !any_progress {
            // All streams are exhausted without the threshold ever being
            // reached. We cannot know here whether the streams covered the
            // whole collection, so stay conservative: the caller should
            // retry with deeper streams.
            break;
        }
    }

    MergeResult { hits: heap.into_sorted_vec(), sorted_accesses, random_accesses, complete }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bond_metrics::{FuzzyMin, WeightedAverage};

    /// Two features over five objects with known similarities.
    fn toy() -> (Vec<Vec<f64>>, Vec<RankedStream>) {
        // feature-major: sims[f][row]
        let sims = vec![vec![0.9, 0.8, 0.1, 0.4, 0.3], vec![0.2, 0.7, 0.9, 0.5, 0.1]];
        let streams = sims
            .iter()
            .map(|s| {
                RankedStream::new(
                    s.iter()
                        .enumerate()
                        .map(|(r, &v)| Scored { row: r as RowId, score: v })
                        .collect(),
                )
            })
            .collect();
        (sims, streams)
    }

    fn brute_force_top_k(
        sims: &[Vec<f64>],
        aggregate: &dyn ScoreAggregate,
        k: usize,
    ) -> Vec<RowId> {
        let rows = sims[0].len();
        let mut scored: Vec<(RowId, f64)> = (0..rows)
            .map(|r| {
                let component: Vec<f64> = sims.iter().map(|s| s[r]).collect();
                (r as RowId, aggregate.combine(&component))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        scored.into_iter().take(k).map(|(r, _)| r).collect()
    }

    #[test]
    fn merge_matches_brute_force_for_average() {
        let (sims, streams) = toy();
        let agg = WeightedAverage::uniform(2).unwrap();
        let ra = |f: usize, r: RowId| sims[f][r as usize];
        for k in 1..=3 {
            let result = merge_streams(&streams, &ra, &agg, k);
            assert!(result.complete);
            let got: Vec<RowId> = result.hits.iter().map(|s| s.row).collect();
            assert_eq!(got, brute_force_top_k(&sims, &agg, k), "k={k}");
        }
    }

    #[test]
    fn merge_matches_brute_force_for_min() {
        let (sims, streams) = toy();
        let agg = FuzzyMin;
        let ra = |f: usize, r: RowId| sims[f][r as usize];
        let result = merge_streams(&streams, &ra, &agg, 2);
        assert!(result.complete);
        let got: Vec<RowId> = result.hits.iter().map(|s| s.row).collect();
        assert_eq!(got, brute_force_top_k(&sims, &agg, 2));
    }

    #[test]
    fn shallow_streams_are_reported_incomplete() {
        let (sims, _) = toy();
        // streams truncated to depth 1: the merge cannot certify the answer
        let streams: Vec<RankedStream> = sims
            .iter()
            .map(|s| {
                let mut entries: Vec<Scored> = s
                    .iter()
                    .enumerate()
                    .map(|(r, &v)| Scored { row: r as RowId, score: v })
                    .collect();
                entries.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
                entries.truncate(1);
                RankedStream::new(entries)
            })
            .collect();
        let agg = WeightedAverage::uniform(2).unwrap();
        let ra = |f: usize, r: RowId| sims[f][r as usize];
        let result = merge_streams(&streams, &ra, &agg, 3);
        assert!(!result.complete);
    }

    #[test]
    fn accounting_counts_accesses() {
        let (sims, streams) = toy();
        let agg = WeightedAverage::uniform(2).unwrap();
        let ra = |f: usize, r: RowId| sims[f][r as usize];
        let result = merge_streams(&streams, &ra, &agg, 1);
        assert!(result.sorted_accesses > 0);
        assert!(result.random_accesses > 0);
        // every random access completes a newly seen object in one other feature
        assert!(result.random_accesses <= result.sorted_accesses);
    }

    #[test]
    fn ranked_stream_sorts_and_exposes_entries() {
        let s = RankedStream::new(vec![
            Scored { row: 2, score: 0.1 },
            Scored { row: 0, score: 0.9 },
            Scored { row: 1, score: 0.5 },
        ]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.get(0).unwrap().row, 0);
        assert_eq!(s.get(2).unwrap().row, 2);
        assert!(s.get(3).is_none());
    }

    #[test]
    #[should_panic(expected = "need at least one stream")]
    fn empty_stream_list_panics() {
        let agg = FuzzyMin;
        let _ = merge_streams(&[], &|_, _| 0.0, &agg, 1);
    }
}
