//! # bond-baselines — the methods BOND is compared against
//!
//! Three baselines appear in the paper's evaluation:
//!
//! * **Sequential scan** ([`seqscan`]) — "an optimized implementation of
//!   sequentially scanning a single table with all vectors", maintaining a
//!   heap of the k best matches. The histogram-intersection and Euclidean
//!   instantiations are the SSH and SSE rows of Table 3. The paper also
//!   mentions (footnote 6) a "more sophisticated" early-abandoning variant
//!   that turned out to be slower on average; it is provided too.
//! * **VA-File** ([`vafile`]) — Weber, Schek & Blott's vector-approximation
//!   file: an 8-bit-per-dimension approximation is scanned to produce a
//!   candidate set with safe lower/upper bounds, and an exact refinement
//!   step resolves the final answer. Used in Table 4.
//! * **Stream merging** ([`stream_merge`]) — the classical way to evaluate
//!   multi-feature queries (Fagin; Güntzer et al.): obtain a ranked stream
//!   of results per feature and merge them with a threshold-style algorithm
//!   that performs random accesses into the other features. Used as the
//!   comparison point for synchronized BOND search in Section 8.2.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod seqscan;
pub mod stream_merge;
pub mod vafile;

pub use seqscan::{sequential_scan, sequential_scan_early_abandon, ScanResult};
pub use stream_merge::{merge_streams, MergeResult, RankedStream};
pub use vafile::{VaFile, VaSearchResult};
