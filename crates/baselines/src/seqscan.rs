//! Optimized sequential scan (Algorithm 1; the SSH / SSE rows of Table 3).
//!
//! The scan walks the row-major matrix once, computes the exact score of
//! every vector against the query and keeps the k best in a bounded heap.
//! [`sequential_scan_early_abandon`] is the "more sophisticated approach"
//! of footnote 6 — the partial score of a vector is checked against the
//! current k-th best every few dimensions and the vector is abandoned when
//! it can no longer qualify. The paper found this variant *slower* on
//! average because of the comparison overhead and its inability to choose a
//! good dimension order; both observations can be reproduced with the
//! benchmark harness.

use bond_metrics::{DecomposableMetric, Objective};
use vdstore::topk::Scored;
use vdstore::{RowMatrix, TopKLargest, TopKSmallest};

/// The outcome of a sequential scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// The k best rows, best first.
    pub hits: Vec<Scored>,
    /// Number of vectors whose score was (at least partially) computed.
    pub vectors_scanned: usize,
    /// Total number of per-dimension contribution evaluations performed —
    /// the CPU-work measure the paper's "avoided work" argument is about.
    pub dims_touched: usize,
}

/// Scans all vectors, computing full scores (SSH when `metric` is histogram
/// intersection, SSE when it is squared Euclidean distance).
///
/// # Panics
/// Panics if `k` is zero or the query dimensionality differs from the data.
pub fn sequential_scan(
    data: &RowMatrix,
    query: &[f64],
    k: usize,
    metric: &dyn DecomposableMetric,
) -> ScanResult {
    assert!(k > 0, "k must be positive");
    assert_eq!(query.len(), data.dims(), "query dimensionality mismatch");
    let dims = data.dims();
    match metric.objective() {
        Objective::Maximize => {
            let mut heap = TopKLargest::new(k);
            for (row, v) in data.iter() {
                heap.push(row, metric.score(v, query));
            }
            ScanResult {
                hits: heap.into_sorted_vec(),
                vectors_scanned: data.rows(),
                dims_touched: data.rows() * dims,
            }
        }
        Objective::Minimize => {
            let mut heap = TopKSmallest::new(k);
            for (row, v) in data.iter() {
                heap.push(row, metric.score(v, query));
            }
            ScanResult {
                hits: heap.into_sorted_vec(),
                vectors_scanned: data.rows(),
                dims_touched: data.rows() * dims,
            }
        }
    }
}

/// Sequential scan that abandons a vector as soon as its partial score can
/// no longer reach the current k-th best (footnote 6 of the paper).
///
/// For a similarity metric the abandonment test needs an optimistic bound on
/// the remaining contribution; for histogram intersection that is the
/// remaining query mass, and in general the per-dimension maximum possible
/// contribution is supplied by `max_remaining_contribution`, evaluated on
/// suffix sums of the query. The check is performed every `check_every`
/// dimensions.
pub fn sequential_scan_early_abandon(
    data: &RowMatrix,
    query: &[f64],
    k: usize,
    metric: &dyn DecomposableMetric,
    check_every: usize,
) -> ScanResult {
    assert!(k > 0, "k must be positive");
    assert!(check_every > 0, "check_every must be positive");
    assert_eq!(query.len(), data.dims(), "query dimensionality mismatch");
    let dims = data.dims();
    // Optimistic remaining contribution after having processed dims [0, d):
    // for Maximize, the most a vector could still add; for Minimize, zero
    // (distance only grows), so the partial score itself is the bound.
    let optimistic_suffix: Vec<f64> = match metric.objective() {
        Objective::Maximize => {
            // suffix sums of the per-dimension maximum contribution, using
            // the query value itself as the per-dimension cap, which is
            // correct for histogram intersection (min(h, q) ≤ q) and safe
            // for any metric whose contribution is bounded by q.
            let mut suffix = vec![0.0; dims + 1];
            for d in (0..dims).rev() {
                suffix[d] = suffix[d + 1] + query[d];
            }
            suffix
        }
        Objective::Minimize => vec![0.0; dims + 1],
    };

    let mut dims_touched = 0usize;
    match metric.objective() {
        Objective::Maximize => {
            let mut heap = TopKLargest::new(k);
            for (row, v) in data.iter() {
                let mut partial = 0.0;
                let mut abandoned = false;
                for d in 0..dims {
                    partial += metric.contribution(d, v[d], query[d]);
                    dims_touched += 1;
                    if (d + 1) % check_every == 0 {
                        if let Some(kth) = heap.kth() {
                            if partial + optimistic_suffix[d + 1] < kth {
                                abandoned = true;
                                break;
                            }
                        }
                    }
                }
                if !abandoned {
                    heap.push(row, partial);
                }
            }
            ScanResult { hits: heap.into_sorted_vec(), vectors_scanned: data.rows(), dims_touched }
        }
        Objective::Minimize => {
            let mut heap = TopKSmallest::new(k);
            for (row, v) in data.iter() {
                let mut partial = 0.0;
                let mut abandoned = false;
                for d in 0..dims {
                    partial += metric.contribution(d, v[d], query[d]);
                    dims_touched += 1;
                    if (d + 1) % check_every == 0 {
                        if let Some(kth) = heap.kth() {
                            if partial > kth {
                                abandoned = true;
                                break;
                            }
                        }
                    }
                }
                if !abandoned {
                    heap.push(row, partial);
                }
            }
            ScanResult { hits: heap.into_sorted_vec(), vectors_scanned: data.rows(), dims_touched }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bond_metrics::{HistogramIntersection, SquaredEuclidean};

    fn sample_matrix() -> RowMatrix {
        RowMatrix::from_vectors(&[
            vec![0.1, 0.3, 0.4, 0.2],
            vec![0.05, 0.05, 0.9, 0.0],
            vec![0.8, 0.1, 0.05, 0.05],
            vec![0.2, 0.6, 0.1, 0.1],
            vec![0.7, 0.15, 0.15, 0.0],
            vec![0.925, 0.0, 0.0, 0.075],
            vec![0.55, 0.2, 0.15, 0.1],
            vec![0.05, 0.1, 0.05, 0.8],
            vec![0.45, 0.5, 0.05, 0.05],
        ])
        .unwrap()
    }

    #[test]
    fn ssh_finds_paper_example_top3() {
        let q = [0.7, 0.15, 0.1, 0.05];
        let data = sample_matrix();
        let result = sequential_scan(&data, &q, 3, &HistogramIntersection);
        let mut rows: Vec<u32> = result.hits.iter().map(|s| s.row).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![2, 4, 6], "top 3 are h3, h5, h7");
        assert_eq!(result.vectors_scanned, 9);
        assert_eq!(result.dims_touched, 36);
        // best first
        assert!(result.hits[0].score >= result.hits[1].score);
    }

    #[test]
    fn sse_finds_nearest_by_distance() {
        let q = [0.7, 0.15, 0.1, 0.05];
        let data = sample_matrix();
        let result = sequential_scan(&data, &q, 1, &SquaredEuclidean);
        // h5 = (0.7, 0.15, 0.15, 0.0) is the closest to q
        assert_eq!(result.hits[0].row, 4);
    }

    #[test]
    fn early_abandon_returns_same_top_k() {
        let q = [0.7, 0.15, 0.1, 0.05];
        let data = sample_matrix();
        for k in [1, 3, 5] {
            for metric in [&HistogramIntersection as &dyn DecomposableMetric, &SquaredEuclidean] {
                let full = sequential_scan(&data, &q, k, metric);
                let abandoning = sequential_scan_early_abandon(&data, &q, k, metric, 2);
                let rows = |r: &ScanResult| {
                    let mut v: Vec<u32> = r.hits.iter().map(|s| s.row).collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(rows(&full), rows(&abandoning), "k={k}");
                assert!(abandoning.dims_touched <= full.dims_touched);
            }
        }
    }

    #[test]
    fn early_abandon_skips_work_on_easy_data() {
        // one perfect match plus many hopeless vectors: after the heap is
        // warm, hopeless vectors are abandoned early
        let mut vectors = vec![vec![1.0, 0.0, 0.0, 0.0]; 3];
        vectors.extend(vec![vec![0.0, 0.0, 0.0, 1.0]; 50]);
        let data = RowMatrix::from_vectors(&vectors).unwrap();
        let q = [1.0, 0.0, 0.0, 0.0];
        let result = sequential_scan_early_abandon(&data, &q, 1, &HistogramIntersection, 1);
        assert!(result.dims_touched < data.rows() * data.dims());
        assert_eq!(result.hits[0].score, 1.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = sample_matrix();
        let _ = sequential_scan(&data, &[0.25; 4], 0, &HistogramIntersection);
    }

    #[test]
    #[should_panic(expected = "query dimensionality mismatch")]
    fn wrong_query_dims_panics() {
        let data = sample_matrix();
        let _ = sequential_scan(&data, &[0.5; 3], 1, &HistogramIntersection);
    }
}
