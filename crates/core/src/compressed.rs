//! BOND on compressed (8-bit quantized) dimensional fragments
//! (Section 7.4, Figure 9 and Table 4).
//!
//! The approximation idea of the VA-File combines transparently with BOND:
//! the pruning iterations read the small per-dimension *codes* instead of
//! the exact doubles, which cuts the scanned volume by a factor of eight,
//! and a final refinement step computes exact scores only for the candidates
//! that survive. Because a code only brackets the original value, the
//! partial "score" of a candidate becomes an interval
//! `[partial_worst, partial_best]` built from
//! [`DecomposableMetric::worst_contribution`] /
//! [`DecomposableMetric::best_contribution`] over the row's cell bounds;
//! pruning compares a candidate's optimistic full-score bound against the
//! k-th best pessimistic one — exactly the exact-value criteria with the
//! quantization slack folded in, so no true neighbour can be lost.
//!
//! The paper runs this experiment with histogram intersection (criterion
//! Hq); [`compressed_filter`] generalizes the same interval argument to
//! every decomposable metric (Eq/Ev and the weighted variants included),
//! which is the single bound implementation the execution engine's
//! quantized filter ([`crate::quantfilter`]) and the VA-File baseline
//! share. The Hq-only entry points remain as thin wrappers.

use bond_metrics::{DecomposableMetric, HistogramIntersection, Objective};
use vdstore::{DecomposedTable, QuantizedTable, RowId, TopKLargest, TopKSmallest};

use crate::error::{BondError, Result};
use crate::ordering::DimensionOrdering;
use crate::schedule::BlockSchedule;
use crate::searcher::{BondParams, SearchOutcome};
use crate::trace::{PruneTrace, TraceCheckpoint};

/// The result of the compressed filter phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedFilter {
    /// Rows that survived pruning on the quantized fragments.
    pub candidates: Vec<RowId>,
    /// The pruning trace over the compressed fragments.
    pub trace: PruneTrace,
}

/// Runs the BOND pruning loop on quantized fragments under any decomposable
/// metric, returning the surviving candidate set (guaranteed to contain the
/// true top k).
///
/// Per scanned dimension a candidate accumulates the best- and worst-case
/// contribution its value interval admits; the unscanned remainder is
/// bounded by the columns' `[min, max]` envelopes. κ is the k-th best
/// pessimistic full-score bound; a candidate is pruned when its optimistic
/// full-score bound cannot reach κ. Metrics whose
/// [`DecomposableMetric::worst_contribution`] keeps the vacuous default
/// degrade to an unpruned scan, never to a wrong answer.
pub fn compressed_filter(
    quantized: &QuantizedTable,
    metric: &dyn DecomposableMetric,
    query: &[f64],
    k: usize,
    schedule: BlockSchedule,
    ordering: &DimensionOrdering,
) -> Result<CompressedFilter> {
    let dims = quantized.dims();
    let rows = quantized.rows();
    if query.len() != dims {
        return Err(BondError::QueryDimensionMismatch { expected: dims, actual: query.len() });
    }
    if k == 0 || k > rows {
        return Err(BondError::InvalidK { k, rows });
    }
    let order = ordering.order(query, None, dims);
    if !DimensionOrdering::is_valid_permutation(&order, dims) {
        return Err(BondError::InvalidParams(
            "dimension ordering is not a permutation of the table's dimensions".into(),
        ));
    }
    let objective = metric.objective();

    let mut partial_best = vec![0.0f64; rows];
    let mut partial_worst = vec![0.0f64; rows];
    let mut alive: Vec<RowId> = (0..rows as RowId).collect();
    let mut trace = PruneTrace::default();

    let mut processed = 0usize;
    let mut attempts = 0usize;
    loop {
        let block = schedule.next_block(processed, dims, attempts);
        if block == 0 {
            break;
        }
        for &d in &order[processed..processed + block] {
            let column = quantized.column(d)?;
            let q = query[d];
            for &row in &alive {
                let (lo, hi) = (column.cell_lower(row), column.cell_upper(row));
                partial_best[row as usize] += metric.best_contribution(d, lo, hi, q);
                partial_worst[row as usize] += metric.worst_contribution(d, lo, hi, q);
            }
        }
        trace.contributions_evaluated += (block * alive.len()) as u64;
        processed += block;
        trace.dims_accessed = processed;
        if alive.len() <= k {
            break;
        }

        // The unscanned dimensions contribute at best/worst what their
        // whole column envelope admits.
        let mut remaining_best = 0.0f64;
        let mut remaining_worst = 0.0f64;
        for &d in &order[processed..] {
            let column = quantized.column(d)?;
            let (min, max) = (column.min(), column.max());
            remaining_best += metric.best_contribution(d, min, max, query[d]);
            remaining_worst += metric.worst_contribution(d, min, max, query[d]);
        }
        let kappa = match objective {
            Objective::Maximize => {
                let mut heap = TopKLargest::new(k);
                for &row in &alive {
                    heap.push(row, partial_worst[row as usize] + remaining_worst);
                }
                heap.kth()
            }
            Objective::Minimize => {
                let mut heap = TopKSmallest::new(k);
                for &row in &alive {
                    heap.push(row, partial_worst[row as usize] + remaining_worst);
                }
                heap.kth()
            }
        };
        attempts += 1;
        trace.pruning_attempts = attempts;
        let mut pruned_now = 0;
        // an infinite pessimistic bound (vacuous metric default) proves
        // nothing — skip the pruning attempt entirely
        if let Some(kappa) = kappa.filter(|v| v.is_finite()) {
            let slack = crate::searcher::prune_slack(kappa);
            let before = alive.len();
            alive.retain(|&row| {
                let optimistic = partial_best[row as usize] + remaining_best;
                match objective {
                    Objective::Maximize => optimistic >= kappa - slack,
                    Objective::Minimize => optimistic <= kappa + slack,
                }
            });
            pruned_now = before - alive.len();
        }
        trace.checkpoints.push(TraceCheckpoint {
            dims_processed: processed,
            candidates: alive.len(),
            pruned_now,
        });
        if alive.len() <= k {
            break;
        }
    }

    Ok(CompressedFilter { candidates: alive, trace })
}

/// Complete compressed search under any decomposable metric: filter on the
/// quantized fragments, then refine the candidates with exact values from
/// the original table.
pub fn search_compressed(
    exact: &DecomposedTable,
    quantized: &QuantizedTable,
    metric: &dyn DecomposableMetric,
    query: &[f64],
    k: usize,
    params: &BondParams,
) -> Result<SearchOutcome> {
    if exact.rows() != quantized.rows() || exact.dims() != quantized.dims() {
        return Err(BondError::InvalidParams(
            "exact table and quantized table must describe the same collection".into(),
        ));
    }
    let filter = compressed_filter(quantized, metric, query, k, params.schedule, &params.ordering)?;
    let mut trace = filter.trace;
    trace.contributions_evaluated += (filter.candidates.len() * exact.dims()) as u64;
    let hits = match metric.objective() {
        Objective::Maximize => {
            let mut heap = TopKLargest::new(k);
            for &row in &filter.candidates {
                heap.push(row, metric.score(&exact.row(row)?, query));
            }
            heap.into_sorted_vec()
        }
        Objective::Minimize => {
            let mut heap = TopKSmallest::new(k);
            for &row in &filter.candidates {
                heap.push(row, metric.score(&exact.row(row)?, query));
            }
            heap.into_sorted_vec()
        }
    };
    Ok(SearchOutcome { hits, trace })
}

/// [`compressed_filter`] specialised to histogram intersection — the
/// configuration the paper's Section 7.4 experiment reports.
pub fn compressed_filter_histogram(
    quantized: &QuantizedTable,
    query: &[f64],
    k: usize,
    schedule: BlockSchedule,
    ordering: &DimensionOrdering,
) -> Result<CompressedFilter> {
    compressed_filter(quantized, &HistogramIntersection, query, k, schedule, ordering)
}

/// [`search_compressed`] specialised to histogram intersection.
pub fn search_compressed_histogram(
    exact: &DecomposedTable,
    quantized: &QuantizedTable,
    query: &[f64],
    k: usize,
    params: &BondParams,
) -> Result<SearchOutcome> {
    search_compressed(exact, quantized, &HistogramIntersection, query, k, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::BondSearcher;
    use bond_metrics::{SquaredEuclidean, WeightedHistogramIntersection, WeightedSquaredEuclidean};

    fn table() -> DecomposedTable {
        // 40 histograms over 8 bins with varying shapes
        let mut vectors = Vec::new();
        for i in 0..40usize {
            let mut v = vec![0.01; 8];
            v[i % 8] += 0.5;
            v[(i / 8) % 8] += 0.3 + 0.01 * i as f64;
            let total: f64 = v.iter().sum();
            for x in &mut v {
                *x /= total;
            }
            vectors.push(v);
        }
        DecomposedTable::from_vectors("hists", &vectors).unwrap()
    }

    /// Brute-force top-k row set under `metric`.
    fn brute_force(
        exact: &DecomposedTable,
        metric: &dyn DecomposableMetric,
        query: &[f64],
        k: usize,
    ) -> Vec<RowId> {
        let mut scored: Vec<(RowId, f64)> = (0..exact.rows() as RowId)
            .map(|r| (r, metric.score(&exact.row(r).unwrap(), query)))
            .collect();
        match metric.objective() {
            Objective::Maximize => scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap()),
            Objective::Minimize => scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap()),
        }
        let mut rows: Vec<RowId> = scored[..k].iter().map(|&(r, _)| r).collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn compressed_search_finds_the_exact_top_k() {
        let exact = table();
        let quantized = QuantizedTable::from_table(&exact, 8).unwrap();
        let searcher = BondSearcher::new(&exact);
        let params = BondParams { schedule: BlockSchedule::Fixed(2), ..BondParams::default() };
        for qi in [0u32, 7, 21] {
            let query = exact.row(qi).unwrap();
            for k in [1usize, 5, 10] {
                let truth = searcher.histogram_intersection_hq(&query, k, &params).unwrap();
                let compressed =
                    search_compressed_histogram(&exact, &quantized, &query, k, &params).unwrap();
                let rows = |o: &SearchOutcome| {
                    let mut v: Vec<RowId> = o.hits.iter().map(|h| h.row).collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(rows(&truth), rows(&compressed), "query {qi}, k {k}");
                // scores after refinement are exact
                for (a, b) in truth.hits.iter().zip(&compressed.hits) {
                    assert!((a.score - b.score).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn all_four_metric_families_filter_safely() {
        // property-style sweep: for every metric family, across bit widths
        // and queries, the filter never loses a true neighbour and the
        // refined search returns exactly the brute-force answer
        let exact = table();
        let w_hist = WeightedHistogramIntersection::new(
            (0..8).map(|d| 0.25 + 0.5 * (d % 3) as f64).collect(),
        )
        .unwrap();
        let w_euc =
            WeightedSquaredEuclidean::new((0..8).map(|d| 0.1 + 0.7 * (d % 4) as f64).collect())
                .unwrap();
        let metrics: Vec<&dyn DecomposableMetric> =
            vec![&HistogramIntersection, &SquaredEuclidean, &w_hist, &w_euc];
        let params = BondParams { schedule: BlockSchedule::Fixed(2), ..BondParams::default() };
        for metric in metrics {
            for bits in [4u8, 8] {
                let quantized = QuantizedTable::from_table(&exact, bits).unwrap();
                for qi in [2u32, 13, 30] {
                    let query = exact.row(qi).unwrap();
                    for k in [1usize, 4, 9] {
                        let truth = brute_force(&exact, metric, &query, k);
                        let filter = compressed_filter(
                            &quantized,
                            metric,
                            &query,
                            k,
                            BlockSchedule::Fixed(2),
                            &DimensionOrdering::QueryValueDescending,
                        )
                        .unwrap();
                        for row in &truth {
                            assert!(
                                filter.candidates.contains(row),
                                "{} bits={bits} q={qi} k={k}: filter lost true neighbour {row}",
                                metric.name()
                            );
                        }
                        let searched =
                            search_compressed(&exact, &quantized, metric, &query, k, &params)
                                .unwrap();
                        let mut got: Vec<RowId> = searched.hits.iter().map(|h| h.row).collect();
                        got.sort_unstable();
                        assert_eq!(got, truth, "{} bits={bits} q={qi} k={k}", metric.name());
                    }
                }
            }
        }
    }

    #[test]
    fn filter_candidates_superset_of_top_k() {
        let exact = table();
        let quantized = QuantizedTable::from_table(&exact, 4).unwrap();
        let searcher = BondSearcher::new(&exact);
        let query = exact.row(3).unwrap();
        let params = BondParams::default();
        let truth = searcher.histogram_intersection_hq(&query, 5, &params).unwrap();
        let filter = compressed_filter_histogram(
            &quantized,
            &query,
            5,
            BlockSchedule::Fixed(2),
            &DimensionOrdering::QueryValueDescending,
        )
        .unwrap();
        for hit in &truth.hits {
            assert!(filter.candidates.contains(&hit.row), "lost true neighbour {}", hit.row);
        }
        assert!(!filter.trace.checkpoints.is_empty());
    }

    #[test]
    fn coarser_codes_leave_more_candidates() {
        let exact = table();
        let q8 = QuantizedTable::from_table(&exact, 8).unwrap();
        let q2 = QuantizedTable::from_table(&exact, 2).unwrap();
        let query = exact.row(11).unwrap();
        let run = |qt: &QuantizedTable| {
            compressed_filter_histogram(
                qt,
                &query,
                3,
                BlockSchedule::Fixed(2),
                &DimensionOrdering::QueryValueDescending,
            )
            .unwrap()
            .candidates
            .len()
        };
        assert!(run(&q2) >= run(&q8));
    }

    #[test]
    fn vacuous_metrics_keep_every_candidate() {
        struct Opaque;
        impl DecomposableMetric for Opaque {
            fn objective(&self) -> Objective {
                Objective::Maximize
            }
            fn contribution(&self, _d: usize, v: f64, q: f64) -> f64 {
                v * q
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        let exact = table();
        let quantized = QuantizedTable::from_table(&exact, 8).unwrap();
        let query = exact.row(0).unwrap();
        let filter = compressed_filter(
            &quantized,
            &Opaque,
            &query,
            3,
            BlockSchedule::Fixed(2),
            &DimensionOrdering::Natural,
        )
        .unwrap();
        assert_eq!(filter.candidates.len(), exact.rows(), "no bound, no pruning");
    }

    #[test]
    fn validation() {
        let exact = table();
        let quantized = QuantizedTable::from_table(&exact, 8).unwrap();
        let params = BondParams::default();
        assert!(matches!(
            search_compressed_histogram(&exact, &quantized, &[0.5; 3], 1, &params),
            Err(BondError::QueryDimensionMismatch { .. })
        ));
        assert!(matches!(
            search_compressed_histogram(&exact, &quantized, &[0.125; 8], 0, &params),
            Err(BondError::InvalidK { .. })
        ));
        let other = DecomposedTable::from_vectors("other", &[vec![0.5, 0.5]]).unwrap();
        let other_q = QuantizedTable::from_table(&other, 8).unwrap();
        assert!(search_compressed_histogram(&exact, &other_q, &[0.125; 8], 1, &params).is_err());
    }
}
