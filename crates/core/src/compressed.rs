//! BOND on compressed (8-bit quantized) dimensional fragments
//! (Section 7.4, Figure 9 and Table 4).
//!
//! The approximation idea of the VA-File combines transparently with BOND:
//! the pruning iterations read the small per-dimension *codes* instead of
//! the exact doubles, which cuts the scanned volume by a factor of eight,
//! and a final refinement step computes exact scores only for the candidates
//! that survive. Because a code only brackets the original value, the
//! partial "score" of a candidate becomes an interval
//! `[partial_lo, partial_hi]`; pruning compares the candidate's optimistic
//! bound (`partial_hi + T(q⁺)`) against the k-th best pessimistic bound
//! (`partial_lo`), exactly like the exact-value criterion Hq but with the
//! quantization slack folded in — so no true neighbour can be lost.
//!
//! The paper runs this experiment with histogram intersection (criterion
//! Hq); that is what is implemented here.

use bond_metrics::{DecomposableMetric, HistogramIntersection};
use vdstore::{DecomposedTable, QuantizedTable, RowId, TopKLargest};

use crate::error::{BondError, Result};
use crate::ordering::DimensionOrdering;
use crate::schedule::BlockSchedule;
use crate::searcher::{BondParams, SearchOutcome};
use crate::trace::{PruneTrace, TraceCheckpoint};

/// The result of the compressed filter phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedFilter {
    /// Rows that survived pruning on the quantized fragments.
    pub candidates: Vec<RowId>,
    /// The pruning trace over the compressed fragments.
    pub trace: PruneTrace,
}

/// Runs the BOND pruning loop on quantized fragments under histogram
/// intersection with the query-only criterion Hq, returning the surviving
/// candidate set (which is guaranteed to contain the true top k).
pub fn compressed_filter_histogram(
    quantized: &QuantizedTable,
    query: &[f64],
    k: usize,
    schedule: BlockSchedule,
    ordering: &DimensionOrdering,
) -> Result<CompressedFilter> {
    let dims = quantized.dims();
    let rows = quantized.rows();
    if query.len() != dims {
        return Err(BondError::QueryDimensionMismatch { expected: dims, actual: query.len() });
    }
    if k == 0 || k > rows {
        return Err(BondError::InvalidK { k, rows });
    }
    let order = ordering.order(query, None, dims);
    if !DimensionOrdering::is_valid_permutation(&order, dims) {
        return Err(BondError::InvalidParams(
            "dimension ordering is not a permutation of the table's dimensions".into(),
        ));
    }

    let mut partial_lo = vec![0.0f64; rows];
    let mut partial_hi = vec![0.0f64; rows];
    let mut alive: Vec<RowId> = (0..rows as RowId).collect();
    let mut trace = PruneTrace::default();

    let mut processed = 0usize;
    let mut attempts = 0usize;
    loop {
        let block = schedule.next_block(processed, dims, attempts);
        if block == 0 {
            break;
        }
        for &d in &order[processed..processed + block] {
            let column = quantized.column(d)?;
            let q = query[d];
            for &row in &alive {
                partial_lo[row as usize] += column.cell_lower(row).min(q);
                partial_hi[row as usize] += column.cell_upper(row).min(q);
            }
        }
        trace.contributions_evaluated += (block * alive.len()) as u64;
        processed += block;
        trace.dims_accessed = processed;
        if alive.len() <= k {
            break;
        }

        // T(q+) over the remaining dims is the optimistic additional score.
        let remaining_query_sum: f64 = order[processed..].iter().map(|&d| query[d]).sum();
        let mut heap = TopKLargest::new(k);
        for &row in &alive {
            heap.push(row, partial_lo[row as usize]);
        }
        attempts += 1;
        trace.pruning_attempts = attempts;
        let mut pruned_now = 0;
        if let Some(kappa) = heap.kth() {
            let slack = crate::searcher::prune_slack(kappa);
            let before = alive.len();
            alive.retain(|&row| partial_hi[row as usize] + remaining_query_sum >= kappa - slack);
            pruned_now = before - alive.len();
        }
        trace.checkpoints.push(TraceCheckpoint {
            dims_processed: processed,
            candidates: alive.len(),
            pruned_now,
        });
        if alive.len() <= k {
            break;
        }
    }

    Ok(CompressedFilter { candidates: alive, trace })
}

/// Complete compressed search: filter on the quantized fragments, then
/// refine the candidates with exact values from the original table.
pub fn search_compressed_histogram(
    exact: &DecomposedTable,
    quantized: &QuantizedTable,
    query: &[f64],
    k: usize,
    params: &BondParams,
) -> Result<SearchOutcome> {
    if exact.rows() != quantized.rows() || exact.dims() != quantized.dims() {
        return Err(BondError::InvalidParams(
            "exact table and quantized table must describe the same collection".into(),
        ));
    }
    let filter =
        compressed_filter_histogram(quantized, query, k, params.schedule, &params.ordering)?;
    let metric = HistogramIntersection;
    let mut heap = TopKLargest::new(k);
    let mut trace = filter.trace;
    for &row in &filter.candidates {
        let v = exact.row(row)?;
        heap.push(row, metric.score(&v, query));
    }
    trace.contributions_evaluated += (filter.candidates.len() * exact.dims()) as u64;
    Ok(SearchOutcome { hits: heap.into_sorted_vec(), trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::BondSearcher;

    fn table() -> DecomposedTable {
        // 40 histograms over 8 bins with varying shapes
        let mut vectors = Vec::new();
        for i in 0..40usize {
            let mut v = vec![0.01; 8];
            v[i % 8] += 0.5;
            v[(i / 8) % 8] += 0.3 + 0.01 * i as f64;
            let total: f64 = v.iter().sum();
            for x in &mut v {
                *x /= total;
            }
            vectors.push(v);
        }
        DecomposedTable::from_vectors("hists", &vectors).unwrap()
    }

    #[test]
    fn compressed_search_finds_the_exact_top_k() {
        let exact = table();
        let quantized = QuantizedTable::from_table(&exact, 8).unwrap();
        let searcher = BondSearcher::new(&exact);
        let params = BondParams { schedule: BlockSchedule::Fixed(2), ..BondParams::default() };
        for qi in [0u32, 7, 21] {
            let query = exact.row(qi).unwrap();
            for k in [1usize, 5, 10] {
                let truth = searcher.histogram_intersection_hq(&query, k, &params).unwrap();
                let compressed =
                    search_compressed_histogram(&exact, &quantized, &query, k, &params).unwrap();
                let rows = |o: &SearchOutcome| {
                    let mut v: Vec<RowId> = o.hits.iter().map(|h| h.row).collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(rows(&truth), rows(&compressed), "query {qi}, k {k}");
                // scores after refinement are exact
                for (a, b) in truth.hits.iter().zip(&compressed.hits) {
                    assert!((a.score - b.score).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn filter_candidates_superset_of_top_k() {
        let exact = table();
        let quantized = QuantizedTable::from_table(&exact, 4).unwrap();
        let searcher = BondSearcher::new(&exact);
        let query = exact.row(3).unwrap();
        let params = BondParams::default();
        let truth = searcher.histogram_intersection_hq(&query, 5, &params).unwrap();
        let filter = compressed_filter_histogram(
            &quantized,
            &query,
            5,
            BlockSchedule::Fixed(2),
            &DimensionOrdering::QueryValueDescending,
        )
        .unwrap();
        for hit in &truth.hits {
            assert!(filter.candidates.contains(&hit.row), "lost true neighbour {}", hit.row);
        }
        assert!(!filter.trace.checkpoints.is_empty());
    }

    #[test]
    fn coarser_codes_leave_more_candidates() {
        let exact = table();
        let q8 = QuantizedTable::from_table(&exact, 8).unwrap();
        let q2 = QuantizedTable::from_table(&exact, 2).unwrap();
        let query = exact.row(11).unwrap();
        let run = |qt: &QuantizedTable| {
            compressed_filter_histogram(
                qt,
                &query,
                3,
                BlockSchedule::Fixed(2),
                &DimensionOrdering::QueryValueDescending,
            )
            .unwrap()
            .candidates
            .len()
        };
        assert!(run(&q2) >= run(&q8));
    }

    #[test]
    fn validation() {
        let exact = table();
        let quantized = QuantizedTable::from_table(&exact, 8).unwrap();
        let params = BondParams::default();
        assert!(matches!(
            search_compressed_histogram(&exact, &quantized, &[0.5; 3], 1, &params),
            Err(BondError::QueryDimensionMismatch { .. })
        ));
        assert!(matches!(
            search_compressed_histogram(&exact, &quantized, &[0.125; 8], 0, &params),
            Err(BondError::InvalidK { .. })
        ));
        let other = DecomposedTable::from_vectors("other", &[vec![0.5, 0.5]]).unwrap();
        let other_q = QuantizedTable::from_table(&other, 8).unwrap();
        assert!(search_compressed_histogram(&exact, &other_q, &[0.125; 8], 1, &params).is_err());
    }
}
