//! Dimension orderings (Section 5.1).
//!
//! The aggregates BOND uses are commutative over the dimensions, so the
//! fragments can be processed in any order without a correctness penalty —
//! a flexibility tree indexes do not have. A good order prunes a large
//! fraction of the candidates early. Without statistics about the data the
//! paper's heuristic is to process dimensions in *decreasing order of the
//! query values* (for Zipfian data such as color histograms the high query
//! dimensions are also the most selective); Figure 7 compares that order
//! against a random and an increasing order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the dimensional fragments are ordered before scanning.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum DimensionOrdering {
    /// Decreasing query value — the paper's default heuristic.
    #[default]
    QueryValueDescending,
    /// Increasing query value — the worst case of Figure 7.
    QueryValueAscending,
    /// A deterministic pseudo-random permutation.
    Random {
        /// Seed of the permutation.
        seed: u64,
    },
    /// Decreasing `w_i · q_i²` — the weighted analogue ("the most skewed
    /// query dimensions, after normalization using the weights, are chosen
    /// first", Section 8.2). Falls back to decreasing query value when no
    /// weights are supplied.
    WeightedQueryDescending,
    /// An explicit order supplied by the caller (must be a permutation of
    /// `0..dims`; validated by the searcher).
    Explicit(Vec<usize>),
    /// The natural storage order `0, 1, 2, …` (useful as a neutral baseline
    /// and for debugging).
    Natural,
}

impl DimensionOrdering {
    /// Produces the processing order for a query (and optional weights) over
    /// `dims` dimensions.
    pub fn order(&self, query: &[f64], weights: Option<&[f64]>, dims: usize) -> Vec<usize> {
        debug_assert_eq!(query.len(), dims);
        match self {
            DimensionOrdering::QueryValueDescending => {
                let mut idx: Vec<usize> = (0..dims).collect();
                idx.sort_by(|&a, &b| {
                    query[b].partial_cmp(&query[a]).unwrap_or(std::cmp::Ordering::Equal)
                });
                idx
            }
            DimensionOrdering::QueryValueAscending => {
                let mut idx: Vec<usize> = (0..dims).collect();
                idx.sort_by(|&a, &b| {
                    query[a].partial_cmp(&query[b]).unwrap_or(std::cmp::Ordering::Equal)
                });
                idx
            }
            DimensionOrdering::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut idx: Vec<usize> = (0..dims).collect();
                for i in (1..dims).rev() {
                    let j = rng.gen_range(0..=i);
                    idx.swap(i, j);
                }
                idx
            }
            DimensionOrdering::WeightedQueryDescending => {
                let mut idx: Vec<usize> = (0..dims).collect();
                let key = |d: usize| -> f64 {
                    match weights {
                        Some(w) => w[d] * query[d] * query[d],
                        None => query[d],
                    }
                };
                idx.sort_by(|&a, &b| {
                    key(b).partial_cmp(&key(a)).unwrap_or(std::cmp::Ordering::Equal)
                });
                idx
            }
            DimensionOrdering::Explicit(order) => order.clone(),
            DimensionOrdering::Natural => (0..dims).collect(),
        }
    }

    /// Checks that an order is a permutation of `0..dims`.
    pub fn is_valid_permutation(order: &[usize], dims: usize) -> bool {
        if order.len() != dims {
            return false;
        }
        let mut seen = vec![false; dims];
        for &d in order {
            if d >= dims || seen[d] {
                return false;
            }
            seen[d] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: [f64; 5] = [0.1, 0.5, 0.05, 0.3, 0.05];

    #[test]
    fn descending_order_follows_query() {
        let o = DimensionOrdering::QueryValueDescending.order(&Q, None, 5);
        assert_eq!(&o[..3], &[1, 3, 0]);
        assert!(DimensionOrdering::is_valid_permutation(&o, 5));
    }

    #[test]
    fn ascending_is_reverse_of_descending_on_distinct_values() {
        let q = [0.1, 0.5, 0.03, 0.3, 0.05];
        let desc = DimensionOrdering::QueryValueDescending.order(&q, None, 5);
        let asc = DimensionOrdering::QueryValueAscending.order(&q, None, 5);
        let mut rev = desc.clone();
        rev.reverse();
        assert_eq!(asc, rev);
    }

    #[test]
    fn random_is_a_deterministic_permutation() {
        let a = DimensionOrdering::Random { seed: 9 }.order(&Q, None, 5);
        let b = DimensionOrdering::Random { seed: 9 }.order(&Q, None, 5);
        let c = DimensionOrdering::Random { seed: 10 }.order(&Q, None, 5);
        assert_eq!(a, b);
        assert!(DimensionOrdering::is_valid_permutation(&a, 5));
        assert!(DimensionOrdering::is_valid_permutation(&c, 5));
    }

    #[test]
    fn weighted_order_uses_weights() {
        // dim 2 has a tiny query value (0.05) but a huge weight:
        // w2·q2² = 400·0.0025 = 1.0 beats w1·q1² = 0.25, so dim 2 comes first
        let w = [1.0, 1.0, 400.0, 1.0, 1.0];
        let o = DimensionOrdering::WeightedQueryDescending.order(&Q, Some(&w), 5);
        assert_eq!(&o[..2], &[2, 1]);
        // falls back to query order without weights
        let fallback = DimensionOrdering::WeightedQueryDescending.order(&Q, None, 5);
        assert_eq!(fallback, DimensionOrdering::QueryValueDescending.order(&Q, None, 5));
    }

    #[test]
    fn explicit_and_natural() {
        let e = DimensionOrdering::Explicit(vec![4, 3, 2, 1, 0]).order(&Q, None, 5);
        assert_eq!(e, vec![4, 3, 2, 1, 0]);
        let n = DimensionOrdering::Natural.order(&Q, None, 5);
        assert_eq!(n, vec![0, 1, 2, 3, 4]);
        assert_eq!(DimensionOrdering::default(), DimensionOrdering::QueryValueDescending);
    }

    #[test]
    fn permutation_validation() {
        assert!(DimensionOrdering::is_valid_permutation(&[2, 0, 1], 3));
        assert!(!DimensionOrdering::is_valid_permutation(&[0, 1], 3));
        assert!(!DimensionOrdering::is_valid_permutation(&[0, 0, 1], 3));
        assert!(!DimensionOrdering::is_valid_permutation(&[0, 1, 5], 3));
    }
}
