//! The BOND search engine (Algorithm 2).
//!
//! `BOND(X, k, m)`:
//!
//! 1. compute the partial scores `S⁻ = S(X⁻)` over the next block of
//!    dimensions,
//! 2. determine the per-candidate bounds `S_max` and `S_min`,
//! 3. determine κ from the "safe" bounds of the current candidates,
//! 4. remove every candidate whose optimistic bound cannot reach κ,
//! 5. repeat with a larger `m` until only `k` candidates remain or all
//!    dimensions have been processed.
//!
//! The engine is generic over the [`PruningRule`] (Hq, Hh, Eq, Ev and their
//! weighted variants) and the [`DecomposableMetric`]; convenience methods
//! instantiate the combinations the paper evaluates.

use bond_metrics::{CandidateState, DecomposableMetric, KernelOp, Objective, PruningRule};
use bond_metrics::{EqRule, EvRule, HhRule, HistogramIntersection, HqRule, SquaredEuclidean};
use vdstore::topk::Scored;
use vdstore::{
    Bitmap, DecomposedTable, RowId, Segment, SegmentCodesView, TopKLargest, TopKSmallest,
};

use crate::candidates::CandidateSet;
use crate::error::{BondError, Result};
use crate::kappa::KappaCell;
use crate::kernels::{self, Kernel};
use crate::ordering::DimensionOrdering;
use crate::plan::SegmentPlan;
use crate::schedule::BlockSchedule;
use crate::trace::{PruneTrace, TraceCheckpoint};

/// Relative tolerance applied to the pruning comparison. Bounds that are
/// analytically equal to κ can drift apart by a few ulps (e.g. a candidate
/// whose lower and upper bound coincide and which itself defines κ); pruning
/// strictly on `<`/`>` could then discard a true answer. The guard errs on
/// the side of keeping candidates, which never affects correctness.
pub(crate) const PRUNE_EPS: f64 = 1e-9;

/// Slack around κ below/above which a candidate (or, in the engine's
/// zone-map check, a whole segment) is *not* pruned.
pub fn prune_slack(kappa: f64) -> f64 {
    PRUNE_EPS * kappa.abs().max(1.0)
}

/// Minimum candidate density at which the dense vector kernels take the
/// bitmap path: they stream *every* row of the column (hole rows'
/// accumulators receive garbage that is provably never read), so below
/// this density the over-compute outweighs the lane parallelism and the
/// branchy per-candidate scalar loop wins.
const DENSE_KERNEL_MIN_DENSITY: f64 = 0.25;

/// Row-block length of the gathered kernel path: partial sums are copied
/// into a contiguous stack buffer once per block, accumulated across the
/// whole dimension block, and copied back — amortizing the copies over
/// all dimensions while keeping the accumulator resident in L1.
const GATHER_BLOCK_ROWS: usize = 64;

/// Dense kernel accumulate over a whole dimension block: every row of each
/// column is streamed through the ISA-pinned kernel. Per candidate row the
/// arithmetic is exactly the scalar loop's, in the same dimension order.
fn dense_accumulate_block(
    kernel: Kernel,
    op: KernelOp<'_>,
    segment: &Segment<'_>,
    dims_block: &[usize],
    query: &[f64],
    partial: &mut [f64],
    mut mass: Option<&mut [f64]>,
) -> Result<()> {
    for &d in dims_block {
        let values = segment.col_slice(d)?;
        kernels::accumulate(kernel, op, d, values, query[d], partial);
        if let Some(mass) = mass.as_deref_mut() {
            kernels::add_assign(kernel, values, mass);
        }
    }
    Ok(())
}

/// Gathered kernel accumulate over a whole dimension block for an explicit
/// row list: 64-row blocks are copied into a contiguous accumulator,
/// advanced through every dimension of the block (per row: same adds, same
/// order as the scalar loop), then copied back.
#[allow(clippy::too_many_arguments)]
fn gather_accumulate_block(
    kernel: Kernel,
    op: KernelOp<'_>,
    segment: &Segment<'_>,
    dims_block: &[usize],
    query: &[f64],
    rows: &[RowId],
    partial: &mut [f64],
    mut mass: Option<&mut [f64]>,
) -> Result<()> {
    let mut acc = [0.0f64; GATHER_BLOCK_ROWS];
    let mut mass_acc = [0.0f64; GATHER_BLOCK_ROWS];
    for chunk in rows.chunks(GATHER_BLOCK_ROWS) {
        let m = chunk.len();
        for (i, &row) in chunk.iter().enumerate() {
            acc[i] = partial[row as usize];
        }
        if let Some(mass) = mass.as_deref_mut() {
            for (i, &row) in chunk.iter().enumerate() {
                mass_acc[i] = mass[row as usize];
            }
        }
        for &d in dims_block {
            let values = segment.col_slice(d)?;
            kernels::accumulate_gather(kernel, op, d, values, chunk, query[d], &mut acc[..m]);
            if mass.is_some() {
                kernels::add_assign_gather(kernel, values, chunk, &mut mass_acc[..m]);
            }
        }
        for (i, &row) in chunk.iter().enumerate() {
            partial[row as usize] = acc[i];
        }
        if let Some(mass) = mass.as_deref_mut() {
            for (i, &row) in chunk.iter().enumerate() {
                mass[row as usize] = mass_acc[i];
            }
        }
    }
    Ok(())
}

/// Tuning knobs of a BOND search.
#[derive(Debug, Clone, PartialEq)]
pub struct BondParams {
    /// How many dimensions to scan between pruning attempts (Section 5.2).
    pub schedule: BlockSchedule,
    /// In which order to process the dimensional fragments (Section 5.1).
    pub ordering: DimensionOrdering,
    /// Candidate-set density at or below which the bitmap representation is
    /// materialised into an explicit row list (Section 6.1).
    pub materialize_threshold: f64,
    /// Whether the surviving candidates' exact scores are completed over the
    /// unscanned dimensions before ranking. Disabling this reproduces the
    /// paper's observation that once `|C| = k` the remaining fragments "need
    /// not be accessed at all" — the hits are then ranked by their partial
    /// scores.
    pub refine_survivors: bool,
}

impl Default for BondParams {
    fn default() -> Self {
        BondParams {
            schedule: BlockSchedule::default(),
            ordering: DimensionOrdering::default(),
            materialize_threshold: 0.05,
            refine_survivors: true,
        }
    }
}

/// The result of a BOND search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The k best rows, best first. Scores are exact when
    /// [`BondParams::refine_survivors`] is `true` (the default).
    pub hits: Vec<Scored>,
    /// The per-block pruning trace and work counters.
    pub trace: PruneTrace,
}

/// A BOND searcher bound to one decomposed table.
#[derive(Debug)]
pub struct BondSearcher<'a> {
    table: &'a DecomposedTable,
    row_sums: std::sync::OnceLock<Vec<f64>>,
}

impl<'a> BondSearcher<'a> {
    /// Creates a searcher over the given table.
    pub fn new(table: &'a DecomposedTable) -> Self {
        BondSearcher { table, row_sums: std::sync::OnceLock::new() }
    }

    /// The table this searcher reads.
    pub fn table(&self) -> &DecomposedTable {
        self.table
    }

    /// The materialised per-row total masses `T(x)` (computed on first use;
    /// the "extra table" of Section 4.3).
    pub fn row_sums(&self) -> &[f64] {
        self.row_sums.get_or_init(|| self.table.row_sums())
    }

    fn validate(&self, query: &[f64], k: usize) -> Result<()> {
        if query.len() != self.table.dims() {
            return Err(BondError::QueryDimensionMismatch {
                expected: self.table.dims(),
                actual: query.len(),
            });
        }
        let live = self.table.live_rows();
        if k == 0 || k > live {
            return Err(BondError::InvalidK { k, rows: live });
        }
        Ok(())
    }

    /// k-NN under histogram intersection with the query-only criterion Hq.
    pub fn histogram_intersection_hq(
        &self,
        query: &[f64],
        k: usize,
        params: &BondParams,
    ) -> Result<SearchOutcome> {
        let mut rule = HqRule::new();
        self.search_with_rule(query, &HistogramIntersection, &mut rule, k, None, params)
    }

    /// k-NN under histogram intersection with the per-vector criterion Hh.
    pub fn histogram_intersection_hh(
        &self,
        query: &[f64],
        k: usize,
        params: &BondParams,
    ) -> Result<SearchOutcome> {
        let mut rule = HhRule::new();
        self.search_with_rule(query, &HistogramIntersection, &mut rule, k, None, params)
    }

    /// k-NN under squared Euclidean distance with the query-only criterion Eq.
    pub fn euclidean_eq(
        &self,
        query: &[f64],
        k: usize,
        params: &BondParams,
    ) -> Result<SearchOutcome> {
        let mut rule = EqRule::new();
        self.search_with_rule(query, &SquaredEuclidean, &mut rule, k, None, params)
    }

    /// k-NN under squared Euclidean distance with the per-vector criterion Ev.
    pub fn euclidean_ev(
        &self,
        query: &[f64],
        k: usize,
        params: &BondParams,
    ) -> Result<SearchOutcome> {
        let mut rule = EvRule::new();
        self.search_with_rule(query, &SquaredEuclidean, &mut rule, k, None, params)
    }

    /// The generic branch-and-bound loop, usable with any metric / rule pair
    /// whose objectives agree. `weights` only influences the dimension
    /// ordering (pass the metric's weights for weighted search).
    pub fn search_with_rule(
        &self,
        query: &[f64],
        metric: &dyn DecomposableMetric,
        rule: &mut dyn PruningRule,
        k: usize,
        weights: Option<&[f64]>,
        params: &BondParams,
    ) -> Result<SearchOutcome> {
        self.validate(query, k)?;
        let segment = self.table.segment(0..self.table.rows())?;
        let requirements = rule.requirements();
        let ctx = SegmentContext {
            kappa: None,
            row_sums: requirements.needs_total_mass.then(|| self.row_sums()),
            plan: None,
            codes: None,
            filter: None,
        };
        search_segment(&segment, query, metric, rule, k, weights, params, &ctx)
    }
}

/// Shared context for a (possibly partitioned) BOND search.
///
/// [`BondSearcher::search_with_rule`] fills this in for the classic
/// single-threaded full-table search; the `bond-exec` engine fills it in
/// once per query and hands it to every segment worker, which is what
/// amortizes the per-query setup (dimension ordering, `T(x)` materialisation)
/// across partitions and lets segments pool their pruning bounds.
#[derive(Default)]
pub struct SegmentContext<'k> {
    /// Shared κ cell; `None` runs the segment in isolation (the classic
    /// sequential behaviour).
    pub kappa: Option<&'k dyn KappaCell>,
    /// Precomputed per-row total masses `T(x)` for the segment's rows, in
    /// segment-local order. Only consulted when the rule needs total mass;
    /// computed on the fly when absent.
    pub row_sums: Option<&'k [f64]>,
    /// The per-segment search plan (dimension order + block schedule).
    /// Derived from `params` when absent — the classic uniform behaviour.
    pub plan: Option<&'k SegmentPlan>,
    /// This segment's window of the store's quantized code companions.
    /// When present, a branch-free first pass sweeps the codes, proves a
    /// pessimistic κ and discards every row whose optimistic interval
    /// bound cannot reach it — only the survivors enter the exact scan
    /// loop. The answer stays bit-identical to a codeless search.
    pub codes: Option<SegmentCodesView<'k>>,
    /// Segment-local eligibility bitmap carrying a relational predicate
    /// ("photographs taken in 1992", Section 6.1) into the search. Bit `i`
    /// refers to the segment's `i`-th row; it is intersected with the
    /// segment's live bitmap, so tombstoned rows stay excluded either way.
    /// The quantized first pass, the exact scan and the κ proven here all
    /// range over eligible rows only. `None` searches every live row.
    pub filter: Option<&'k Bitmap>,
}

/// Runs one branch-and-bound BOND search restricted to a row segment.
///
/// This is [`BondSearcher::search_with_rule`] generalised along two axes:
/// the scan covers only `segment`'s rows, and an externally supplied
/// [`KappaCell`] may tighten κ with bounds proven by other segments of the
/// same query. Returned [`Scored::row`] ids are *global* table row ids, and
/// with [`BondParams::refine_survivors`] enabled the scores are exact — so
/// per-segment outcomes merge into the global top-k by score alone.
///
/// Unlike the full-table entry point, `k` may exceed the segment's row
/// count: the segment then simply reports everything it holds (the caller
/// is responsible for the global k).
#[allow(clippy::too_many_arguments)]
pub fn search_segment(
    segment: &Segment<'_>,
    query: &[f64],
    metric: &dyn DecomposableMetric,
    rule: &mut dyn PruningRule,
    k: usize,
    weights: Option<&[f64]>,
    params: &BondParams,
    ctx: &SegmentContext<'_>,
) -> Result<SearchOutcome> {
    let dims = segment.table().dims();
    if query.len() != dims {
        return Err(BondError::QueryDimensionMismatch { expected: dims, actual: query.len() });
    }
    if k == 0 {
        return Err(BondError::InvalidK { k, rows: segment.live_rows() });
    }
    if metric.objective() != rule.objective() {
        return Err(BondError::InvalidParams(format!(
            "metric {} maximizes/minimizes differently than rule {}",
            metric.name(),
            rule.name()
        )));
    }
    let derived_plan;
    let plan: &SegmentPlan = match ctx.plan {
        Some(plan) => plan,
        None => {
            derived_plan = SegmentPlan::uniform(params, query, weights, dims);
            &derived_plan
        }
    };
    if !plan.is_valid(dims) {
        return Err(BondError::InvalidParams(
            "dimension ordering is not a permutation of the table's dimensions".into(),
        ));
    }
    let order: &[usize] = &plan.order;

    let rows = segment.len();
    let requirements = rule.requirements();
    let computed_sums;
    let total_mass: Option<&[f64]> = if requirements.needs_total_mass {
        match ctx.row_sums {
            Some(sums) => {
                if sums.len() != rows {
                    return Err(BondError::InvalidParams(format!(
                        "precomputed row sums cover {} rows but the segment has {rows}",
                        sums.len()
                    )));
                }
                Some(sums)
            }
            None => {
                computed_sums = segment.row_sums();
                Some(&computed_sums)
            }
        }
    } else {
        None
    };
    let mut scanned_mass: Option<Vec<f64>> =
        if requirements.needs_scanned_mass { Some(vec![0.0; rows]) } else { None };

    // All bookkeeping below is in segment-local row ids; only the final
    // ranking translates back to global ids.
    let mut partial = vec![0.0f64; rows];
    let mut eligible = segment.live_bitmap();
    if let Some(filter) = ctx.filter {
        if filter.len() != rows {
            return Err(BondError::InvalidFilter(format!(
                "segment filter covers {} rows but the segment has {rows}",
                filter.len()
            )));
        }
        eligible.and_with(filter);
    }
    let mut trace = PruneTrace::default();
    let objective = metric.objective();
    // One dispatch decision per process (overridable with BOND_KERNEL);
    // metrics without a vectorizable contribution shape keep the portable
    // per-contribution loop regardless of the flavour.
    let kernel = Kernel::active();
    let op = metric.kernel_op();
    trace.kernel = Some(kernel.label());

    // Quantized first pass (Section 7.4 composed with the engine): sweep
    // the u8 code companions branch-free, prove a pessimistic κ from their
    // interval bounds, and hand the exact loop below only the rows whose
    // optimistic bound can still reach it. The κ proven here is also
    // published to the shared cell, so sibling segments prune with it.
    let mut candidates;
    if let Some(codes) = &ctx.codes {
        if codes.len() != rows || codes.dims() != dims {
            return Err(BondError::InvalidParams(format!(
                "segment codes cover {} rows x {} dims, segment has {rows} x {dims}",
                codes.len(),
                codes.dims()
            )));
        }
        let filter = crate::quantfilter::filter_segment_with_kernel(
            codes, metric, query, k, &eligible, ctx.kappa, kernel,
        )?;
        trace.filter_cells = filter.cells;
        trace.filter_bits = codes.bits();
        candidates = CandidateSet::from_bitmap(filter.survivors);
        trace.refine_rows = candidates.len() as u64;
        if candidates.maybe_materialize(params.materialize_threshold) {
            trace.switched_to_list = true;
        }
    } else {
        candidates = CandidateSet::from_bitmap(eligible);
    }

    let mut processed = 0usize;
    let mut attempts = 0usize;
    // Stage tracing: the time from scan start to the first pruning attempt
    // that actually removed candidates is the segment's *observed* warmup,
    // recorded as a `segment.warmup` span (detail: dimensions processed)
    // while the global subscriber is on. Off (the default), beginning the
    // span is one relaxed atomic load and no clock is read.
    let mut warmup_span = Some(bond_obs::Span::begin(bond_obs::names::SPAN_SEGMENT_WARMUP));
    loop {
        let block = plan.schedule.next_block(processed, dims, attempts);
        if block == 0 {
            break;
        }
        let alive = candidates.len();
        // Step 1: accumulate the partial scores over this block — via the
        // ISA-pinned kernels when the metric has a vectorizable shape. The
        // dense path streams whole columns (over-computing hole rows whose
        // accumulators are never read again) and is only worth it while
        // the candidate bitmap is dense; the materialised list takes the
        // gathered path; everything else keeps the per-candidate loop.
        let dims_block = &order[processed..processed + block];
        let dense_ok = rows > 0 && alive as f64 / rows as f64 >= DENSE_KERNEL_MIN_DENSITY;
        match (op, candidates.as_list()) {
            (Some(op), Some(list)) => gather_accumulate_block(
                kernel,
                op,
                segment,
                dims_block,
                query,
                list,
                &mut partial,
                scanned_mass.as_deref_mut(),
            )?,
            (Some(op), None) if dense_ok => dense_accumulate_block(
                kernel,
                op,
                segment,
                dims_block,
                query,
                &mut partial,
                scanned_mass.as_deref_mut(),
            )?,
            _ => {
                for &d in dims_block {
                    let values = segment.col_slice(d)?;
                    let q = query[d];
                    match &mut scanned_mass {
                        Some(mass) => candidates.for_each(|row| {
                            let v = values[row as usize];
                            partial[row as usize] += metric.contribution(d, v, q);
                            mass[row as usize] += v;
                        }),
                        None => candidates.for_each(|row| {
                            let v = values[row as usize];
                            partial[row as usize] += metric.contribution(d, v, q);
                        }),
                    }
                }
            }
        }
        trace.contributions_evaluated += (block * alive) as u64;
        processed += block;
        trace.dims_accessed = processed;

        if candidates.len() <= k {
            // Step 5's termination: the candidate set already is the
            // answer set; no pruning attempt can shrink it further.
            break;
        }

        // Steps 2–4: bounds, κ, prune.
        rule.prepare(query, &order[processed..]);
        let mut bounds: Vec<(RowId, f64, f64)> = Vec::with_capacity(candidates.len());
        candidates.for_each(|row| {
            let idx = row as usize;
            let state = CandidateState {
                partial: partial[idx],
                scanned_mass: scanned_mass.as_ref().map_or(0.0, |m| m[idx]),
                total_mass: total_mass.map_or(0.0, |t| t[idx]),
            };
            let (lo, hi) = rule.bounds(&state);
            bounds.push((row, lo, hi));
        });
        let local_kappa = match objective {
            Objective::Maximize => {
                // κ_min: the k-th largest lower bound
                let mut heap = TopKLargest::new(k);
                for &(row, lo, _) in &bounds {
                    heap.push(row, lo);
                }
                heap.kth()
            }
            Objective::Minimize => {
                // κ_max: the k-th smallest upper bound
                let mut heap = TopKSmallest::new(k);
                for &(row, _, hi) in &bounds {
                    heap.push(row, hi);
                }
                heap.kth()
            }
        };
        // κ sharing: publish the locally proven bound and adopt the
        // tightest one any segment of this query has proven so far.
        let kappa = match ctx.kappa {
            None => local_kappa,
            Some(cell) => match local_kappa {
                Some(local) => Some(cell.tighten(local)),
                None => cell.current(),
            },
        };
        attempts += 1;
        trace.pruning_attempts = attempts;
        let mut pruned_now = 0usize;
        if let Some(kappa) = kappa {
            let slack = prune_slack(kappa);
            let mut doomed: Vec<RowId> = Vec::new();
            for &(row, lo, hi) in &bounds {
                let prune = match objective {
                    Objective::Maximize => hi < kappa - slack,
                    Objective::Minimize => lo > kappa + slack,
                };
                if prune {
                    doomed.push(row);
                }
            }
            if !doomed.is_empty() {
                let doomed_set: std::collections::HashSet<RowId> = doomed.iter().copied().collect();
                pruned_now = candidates.retain(|row| !doomed_set.contains(&row));
            }
        }
        trace.checkpoints.push(TraceCheckpoint {
            dims_processed: processed,
            candidates: candidates.len(),
            pruned_now,
        });
        if pruned_now > 0 {
            if let Some(span) = warmup_span.take() {
                drop(span.detail(processed as u64));
            }
        }
        if candidates.maybe_materialize(params.materialize_threshold) {
            trace.switched_to_list = true;
        }
        if candidates.len() <= k {
            break;
        }
    }

    // No pruning attempt removed anything: there was no effective warmup
    // boundary to measure, so the span is discarded rather than recorded.
    if let Some(span) = warmup_span {
        span.cancel();
    }

    // Final step: complete the survivors' scores over the unscanned
    // dimensions (cheap: only |C| vectors are touched), then rank.
    let survivors = candidates.to_rows();
    if params.refine_survivors && processed < dims {
        match op {
            Some(op) => gather_accumulate_block(
                kernel,
                op,
                segment,
                &order[processed..],
                query,
                &survivors,
                &mut partial,
                None,
            )?,
            None => {
                for &d in &order[processed..] {
                    let values = segment.col_slice(d)?;
                    let q = query[d];
                    for &row in &survivors {
                        partial[row as usize] += metric.contribution(d, values[row as usize], q);
                    }
                }
            }
        }
        trace.contributions_evaluated += ((dims - processed) * survivors.len()) as u64;
        trace.dims_accessed = dims;
    }

    let hits = rank(segment, &survivors, &partial, objective, k);
    Ok(SearchOutcome { hits, trace })
}

/// Ranks the surviving (segment-local) rows by score under the objective
/// and returns the k best, best first, with *global* row ids.
fn rank(
    segment: &Segment<'_>,
    survivors: &[RowId],
    partial: &[f64],
    objective: Objective,
    k: usize,
) -> Vec<Scored> {
    match objective {
        Objective::Maximize => {
            let mut heap = TopKLargest::new(k);
            for &row in survivors {
                heap.push(segment.to_global(row), partial[row as usize]);
            }
            heap.into_sorted_vec()
        }
        Objective::Minimize => {
            let mut heap = TopKSmallest::new(k);
            for &row in survivors {
                heap.push(segment.to_global(row), partial[row as usize]);
            }
            heap.into_sorted_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2's collection (h6 kept exactly as printed, mass 0.95).
    fn example_table() -> DecomposedTable {
        DecomposedTable::from_vectors(
            "table2",
            &[
                vec![0.1, 0.3, 0.4, 0.2],
                vec![0.05, 0.05, 0.9, 0.0],
                vec![0.8, 0.1, 0.05, 0.05],
                vec![0.2, 0.6, 0.1, 0.1],
                vec![0.7, 0.15, 0.15, 0.0],
                vec![0.925, 0.0, 0.0, 0.025],
                vec![0.55, 0.2, 0.15, 0.1],
                vec![0.05, 0.1, 0.05, 0.8],
                vec![0.45, 0.5, 0.05, 0.05],
            ],
        )
        .unwrap()
    }

    fn query() -> Vec<f64> {
        vec![0.7, 0.15, 0.1, 0.05]
    }

    fn params_m2() -> BondParams {
        BondParams {
            schedule: BlockSchedule::Fixed(2),
            ordering: DimensionOrdering::Natural,
            ..BondParams::default()
        }
    }

    #[test]
    fn finds_the_paper_example_top3_with_hq() {
        let table = example_table();
        let searcher = BondSearcher::new(&table);
        let outcome = searcher.histogram_intersection_hq(&query(), 3, &params_m2()).unwrap();
        let mut rows: Vec<RowId> = outcome.hits.iter().map(|h| h.row).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![2, 4, 6], "the three best matches are h3, h5, h7");
        // after the first block (m = 2) the candidate set shrinks to 5
        // (h1, h2, h4, h8 are pruned, Section 4.2)
        let first = outcome.trace.checkpoints[0];
        assert_eq!(first.dims_processed, 2);
        assert_eq!(first.candidates, 5);
        assert_eq!(first.pruned_now, 4);
    }

    #[test]
    fn hh_prunes_down_to_the_answer_after_one_block() {
        let table = example_table();
        let searcher = BondSearcher::new(&table);
        let outcome = searcher.histogram_intersection_hh(&query(), 3, &params_m2()).unwrap();
        let mut rows: Vec<RowId> = outcome.hits.iter().map(|h| h.row).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![2, 4, 6]);
        let first = outcome.trace.checkpoints[0];
        assert_eq!(first.candidates, 3, "Hh identifies the three best results immediately");
    }

    #[test]
    fn euclidean_rules_agree_with_each_other() {
        let table = example_table();
        let searcher = BondSearcher::new(&table);
        let q = query();
        let ev = searcher.euclidean_ev(&q, 3, &params_m2()).unwrap();
        let eq = searcher.euclidean_eq(&q, 3, &params_m2()).unwrap();
        let rows = |o: &SearchOutcome| {
            let mut v: Vec<RowId> = o.hits.iter().map(|h| h.row).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(rows(&ev), rows(&eq));
        // scores are exact distances, ascending
        assert!(ev.hits[0].score <= ev.hits[1].score);
    }

    #[test]
    fn exact_scores_match_direct_computation() {
        let table = example_table();
        let searcher = BondSearcher::new(&table);
        let q = query();
        let outcome = searcher.histogram_intersection_hq(&q, 3, &params_m2()).unwrap();
        use bond_metrics::DecomposableMetric;
        for hit in &outcome.hits {
            let v = table.row(hit.row).unwrap();
            let direct = HistogramIntersection.score(&v, &q);
            assert!((hit.score - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_errors() {
        let table = example_table();
        let searcher = BondSearcher::new(&table);
        let p = BondParams::default();
        assert!(matches!(
            searcher.histogram_intersection_hq(&[0.5; 3], 1, &p),
            Err(BondError::QueryDimensionMismatch { .. })
        ));
        assert!(matches!(
            searcher.histogram_intersection_hq(&query(), 0, &p),
            Err(BondError::InvalidK { .. })
        ));
        assert!(matches!(
            searcher.histogram_intersection_hq(&query(), 100, &p),
            Err(BondError::InvalidK { .. })
        ));
        // mismatched objective between metric and rule
        let mut rule = EvRule::new();
        assert!(matches!(
            searcher.search_with_rule(&query(), &HistogramIntersection, &mut rule, 1, None, &p),
            Err(BondError::InvalidParams(_))
        ));
        // bad explicit ordering
        let bad = BondParams {
            ordering: DimensionOrdering::Explicit(vec![0, 0, 1, 2]),
            ..BondParams::default()
        };
        assert!(matches!(
            searcher.histogram_intersection_hq(&query(), 1, &bad),
            Err(BondError::InvalidParams(_))
        ));
    }

    #[test]
    fn deleted_rows_never_appear_in_results() {
        let mut table = example_table();
        table.delete(2).unwrap(); // h3 was the best match
        let searcher = BondSearcher::new(&table);
        let outcome = searcher.histogram_intersection_hq(&query(), 3, &params_m2()).unwrap();
        let rows: Vec<RowId> = outcome.hits.iter().map(|h| h.row).collect();
        assert!(!rows.contains(&2));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn k_equal_to_collection_size_returns_everything() {
        let table = example_table();
        let searcher = BondSearcher::new(&table);
        let outcome = searcher.histogram_intersection_hq(&query(), 9, &params_m2()).unwrap();
        assert_eq!(outcome.hits.len(), 9);
        // best first
        for w in outcome.hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn unrefined_search_skips_remaining_fragments() {
        let table = example_table();
        let searcher = BondSearcher::new(&table);
        let refined = searcher.histogram_intersection_hh(&query(), 3, &params_m2()).unwrap();
        let params = BondParams { refine_survivors: false, ..params_m2() };
        let unrefined = searcher.histogram_intersection_hh(&query(), 3, &params).unwrap();
        // the answer set is identified after 2 of 4 dimensions; without
        // refinement the last fragments are never read
        assert_eq!(unrefined.trace.dims_accessed, 2);
        assert_eq!(refined.trace.dims_accessed, 4);
        let rows = |o: &SearchOutcome| {
            let mut v: Vec<RowId> = o.hits.iter().map(|h| h.row).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(rows(&refined), rows(&unrefined));
        assert!(unrefined.trace.contributions_evaluated < refined.trace.contributions_evaluated);
    }

    #[test]
    fn ordering_does_not_change_the_answer() {
        let table = example_table();
        let searcher = BondSearcher::new(&table);
        let q = query();
        let reference: Vec<RowId> = {
            let mut v: Vec<RowId> = searcher
                .histogram_intersection_hq(&q, 3, &params_m2())
                .unwrap()
                .hits
                .iter()
                .map(|h| h.row)
                .collect();
            v.sort_unstable();
            v
        };
        for ordering in [
            DimensionOrdering::QueryValueDescending,
            DimensionOrdering::QueryValueAscending,
            DimensionOrdering::Random { seed: 3 },
            DimensionOrdering::Natural,
        ] {
            let p = BondParams { ordering, ..params_m2() };
            let mut rows: Vec<RowId> = searcher
                .histogram_intersection_hq(&q, 3, &p)
                .unwrap()
                .hits
                .iter()
                .map(|h| h.row)
                .collect();
            rows.sort_unstable();
            assert_eq!(rows, reference);
        }
    }

    #[test]
    fn work_counter_reflects_pruning() {
        let table = example_table();
        let searcher = BondSearcher::new(&table);
        let outcome = searcher.histogram_intersection_hh(&query(), 3, &params_m2()).unwrap();
        // naive work would be 9 vectors × 4 dims = 36 contributions; BOND
        // scans 9×2 in the first block and only the 3 survivors afterwards
        assert!(outcome.trace.contributions_evaluated < 36);
        assert!(outcome.trace.work_fraction(9, 4) < 1.0);
    }
}
