//! Per-segment search plans.
//!
//! PR 1's engine applied one global [`DimensionOrdering`] and
//! [`BlockSchedule`] to every partition. Real collections are appended in
//! batches with drifting distributions, so per-segment statistics diverge —
//! exactly the regime where the *same* query wants a *different* fragment
//! order and pruning cadence in different row ranges. A [`SegmentPlan`] is
//! the value-level answer: the fully resolved "what order, what cadence"
//! decision for one `(query, segment)` pair, decoupled from engine-wide
//! configuration. The sequential searcher derives a plan from its
//! [`BondParams`] (the `Uniform` behaviour); planners in `bond-exec` derive
//! one per segment from [`vdstore::SegmentStats`].
//!
//! Plans are safe to vary per segment because BOND's aggregates are
//! commutative over dimensions: any permutation yields the same exact
//! scores up to floating-point summation order. The merge story for that
//! last caveat (re-verifying exact scores, tie-breaking on row id) lives in
//! the engine.

use crate::ordering::DimensionOrdering;
use crate::schedule::BlockSchedule;
use crate::searcher::BondParams;

/// A fully resolved per-segment search plan: the dimension processing order
/// and the scan-then-prune block schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentPlan {
    /// The dimension processing order (a permutation of `0..dims`).
    pub order: Vec<usize>,
    /// How the dimensions are grouped into scan-then-prune blocks.
    pub schedule: BlockSchedule,
}

impl SegmentPlan {
    /// The plan every segment shares under uniform planning: the order
    /// derived from `params.ordering` for this query (and optional metric
    /// weights) and the params' block schedule. This is exactly what the
    /// classic sequential searcher executes, which is what keeps the
    /// `Uniform` engine path bit-identical to it.
    pub fn uniform(
        params: &BondParams,
        query: &[f64],
        weights: Option<&[f64]>,
        dims: usize,
    ) -> Self {
        SegmentPlan {
            order: params.ordering.order(query, weights, dims),
            schedule: params.schedule,
        }
    }

    /// An explicit plan from a pre-computed order and schedule.
    pub fn new(order: Vec<usize>, schedule: BlockSchedule) -> Self {
        SegmentPlan { order, schedule }
    }

    /// Whether the plan's order is a valid permutation of `0..dims`.
    pub fn is_valid(&self, dims: usize) -> bool {
        DimensionOrdering::is_valid_permutation(&self.order, dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plan_mirrors_params() {
        let params = BondParams {
            ordering: DimensionOrdering::QueryValueDescending,
            schedule: BlockSchedule::Fixed(3),
            ..BondParams::default()
        };
        let q = [0.1, 0.5, 0.2, 0.2];
        let plan = SegmentPlan::uniform(&params, &q, None, 4);
        assert_eq!(plan.order[0], 1);
        assert_eq!(plan.schedule, BlockSchedule::Fixed(3));
        assert!(plan.is_valid(4));
    }

    #[test]
    fn validity_checks_the_permutation() {
        let good = SegmentPlan::new(vec![2, 0, 1], BlockSchedule::SingleBlock);
        assert!(good.is_valid(3));
        assert!(!good.is_valid(4));
        let bad = SegmentPlan::new(vec![0, 0, 1], BlockSchedule::SingleBlock);
        assert!(!bad.is_valid(3));
    }

    #[test]
    fn weighted_uniform_plans_use_the_weights() {
        let params = BondParams {
            ordering: DimensionOrdering::WeightedQueryDescending,
            ..Default::default()
        };
        let q = [0.1, 0.5, 0.05];
        let w = [1.0, 1.0, 400.0];
        let plan = SegmentPlan::uniform(&params, &q, Some(&w), 3);
        assert_eq!(plan.order[0], 2, "heavy weight promotes the tiny query dim");
    }
}
