//! Pruning schedules: how many dimensions to scan between pruning attempts
//! (the parameter `m` of Section 5.2).
//!
//! A small block prunes sooner but pays the κ-computation and
//! candidate-update overhead more often; a large block wastes scans on
//! vectors that could already have been discarded. The paper uses a fixed
//! `m = 8` for most experiments and observes that pruning can only start
//! once the accumulated query mass exceeds 0.5 (for Hq), which motivates the
//! [`BlockSchedule::WarmupThenFixed`] variant. [`BlockSchedule::Doubling`]
//! is the adaptive variant the paper lists as an open question.

/// How the dimensions are grouped into scan-then-prune blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockSchedule {
    /// Scan `m` dimensions between pruning attempts (the paper's setting;
    /// `m = 8` in the experiments).
    Fixed(usize),
    /// Scan `warmup` dimensions before the first pruning attempt, then `m`
    /// dimensions per block. Useful because Hq cannot prune anything until
    /// `T(q⁻) > 0.5` (Section 5.2), so early attempts are wasted work.
    WarmupThenFixed {
        /// Dimensions scanned before the first pruning attempt.
        warmup: usize,
        /// Dimensions per block afterwards.
        m: usize,
    },
    /// Start with `first` dimensions and double the block size after every
    /// pruning attempt (bounded exploration of the "adapt m dynamically"
    /// idea of Section 5.2).
    Doubling {
        /// Size of the first block.
        first: usize,
    },
    /// Scan everything in one go — BOND degenerates into a sequential scan
    /// over decomposed storage (useful as a sanity baseline).
    SingleBlock,
}

impl Default for BlockSchedule {
    fn default() -> Self {
        BlockSchedule::Fixed(8)
    }
}

impl BlockSchedule {
    /// The number of dimensions to scan in the next block, given how many
    /// have been processed so far, the total number of dimensions, and how
    /// many pruning attempts have already happened. Returns 0 when all
    /// dimensions have been processed.
    pub fn next_block(&self, processed: usize, total: usize, attempts: usize) -> usize {
        if processed >= total {
            return 0;
        }
        let remaining = total - processed;
        let desired = match *self {
            BlockSchedule::Fixed(m) => m.max(1),
            BlockSchedule::WarmupThenFixed { warmup, m } => {
                if processed == 0 {
                    warmup.max(1)
                } else {
                    m.max(1)
                }
            }
            BlockSchedule::Doubling { first } => first.max(1) << attempts.min(20),
            BlockSchedule::SingleBlock => remaining,
        };
        desired.min(remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_blocks() {
        let s = BlockSchedule::Fixed(8);
        assert_eq!(s.next_block(0, 166, 0), 8);
        assert_eq!(s.next_block(160, 166, 20), 6);
        assert_eq!(s.next_block(166, 166, 20), 0);
        // degenerate m = 0 is clamped to 1
        assert_eq!(BlockSchedule::Fixed(0).next_block(0, 10, 0), 1);
    }

    #[test]
    fn warmup_then_fixed() {
        let s = BlockSchedule::WarmupThenFixed { warmup: 16, m: 4 };
        assert_eq!(s.next_block(0, 166, 0), 16);
        assert_eq!(s.next_block(16, 166, 1), 4);
        assert_eq!(s.next_block(164, 166, 10), 2);
    }

    #[test]
    fn doubling() {
        let s = BlockSchedule::Doubling { first: 4 };
        assert_eq!(s.next_block(0, 166, 0), 4);
        assert_eq!(s.next_block(4, 166, 1), 8);
        assert_eq!(s.next_block(12, 166, 2), 16);
        assert_eq!(s.next_block(150, 166, 3), 16);
        // very large attempt counts must not overflow the shift
        assert_eq!(s.next_block(0, 166, 1000), 166);
    }

    #[test]
    fn single_block_consumes_everything() {
        let s = BlockSchedule::SingleBlock;
        assert_eq!(s.next_block(0, 166, 0), 166);
        assert_eq!(s.next_block(166, 166, 1), 0);
    }

    #[test]
    fn default_is_the_paper_setting() {
        assert_eq!(BlockSchedule::default(), BlockSchedule::Fixed(8));
    }

    #[test]
    fn schedule_always_terminates() {
        for schedule in [
            BlockSchedule::Fixed(7),
            BlockSchedule::WarmupThenFixed { warmup: 10, m: 3 },
            BlockSchedule::Doubling { first: 2 },
            BlockSchedule::SingleBlock,
        ] {
            let total = 131;
            let mut processed = 0;
            let mut attempts = 0;
            while processed < total {
                let b = schedule.next_block(processed, total, attempts);
                assert!(b > 0 && b <= total - processed);
                processed += b;
                attempts += 1;
                assert!(attempts < 1000, "schedule did not terminate");
            }
            assert_eq!(schedule.next_block(processed, total, attempts), 0);
        }
    }
}
