//! Execution feedback: what past searches learned about each segment.
//!
//! Every search already emits a [`PruneTrace`] — which dimensions were
//! scanned, where pruning first bit, how many candidates survived — and
//! until now that signal was thrown away after the figures were drawn. On
//! clustered collections a-priori moments mislead (a segment straddling two
//! clusters has wide, useless envelopes even though every query prunes it
//! the same way), so the observed prune behaviour is the better planning
//! input. [`ExecFeedback`] is the accumulator: one [`SegmentFeedback`] of
//! lock-free atomic counters per segment, folded in from each query's trace
//! on the worker threads themselves (relaxed ordering — a stale read merely
//! plans like yesterday, never wrongly), and snapshotted into the plain-data
//! [`FeedbackSnapshot`] for introspection, cost estimation and persistence
//! alongside the segment store footer.

use crate::error::{BondError, Result};
use crate::trace::PruneTrace;
use std::sync::atomic::{AtomicU64, Ordering};
use vdstore::VdError;

/// Fixed-point scale for fractional accumulators (prune credit, survival).
pub const FEEDBACK_SCALE: u64 = 1 << 20;

/// Magic prefix of the serialised [`FeedbackSnapshot`] (the learned-state
/// payload stored alongside the v2 store footer).
const FEEDBACK_MAGIC: &[u8; 8] = b"BONDFB01";

/// Lock-free feedback accumulator for one segment.
///
/// All counters are relaxed atomics: folds happen concurrently on the
/// engine's worker threads, reads happen while other queries are still
/// executing, and both directions tolerate staleness — feedback only tunes
/// *plans*, never answers.
#[derive(Debug)]
pub struct SegmentFeedback {
    /// Searches folded in (zone-map skips are counted separately).
    searches: AtomicU64,
    /// Times the segment was skipped outright by the zone-map check — a
    /// "skip hit": the envelope bound saved the whole scan.
    skips: AtomicU64,
    /// Times the segment was scanned but contributed nothing to the final
    /// top-k — a "skip miss": work the zone map failed to avoid.
    misses: AtomicU64,
    /// Sum of observed warmup lengths (dimensions scanned before the first
    /// pruning attempt that removed anything; the full scan when none did).
    warmup_sum: AtomicU64,
    /// Number of searches contributing to `warmup_sum`.
    warmup_count: AtomicU64,
    /// Σ final-survivor fraction × [`FEEDBACK_SCALE`].
    survival_sum: AtomicU64,
    /// Total `(candidate, dimension)` contribution evaluations folded in.
    contributions: AtomicU64,
    /// Total `(row, dimension)` code cells swept by the quantized
    /// first-pass filter. In-memory only: not part of the persisted
    /// learned-state payload (whose record length is fixed by `BONDFB01`);
    /// selectivity re-learns within a few queries after a cold open.
    filter_cells: AtomicU64,
    /// Total rows the quantized filter swept (the denominator of the
    /// observed filter selectivity). In-memory only, like `filter_cells`.
    filter_rows: AtomicU64,
    /// Total rows that survived the quantized filter into the exact
    /// search. In-memory only, like `filter_cells`.
    refine_rows: AtomicU64,
    /// Per-dimension prune credit: Σ (rows pruned ÷ block length) ×
    /// [`FEEDBACK_SCALE`] for every scan block the dimension was part of
    /// when a pruning attempt removed candidates. Indexed by dimension id.
    prune_credit: Vec<AtomicU64>,
}

impl SegmentFeedback {
    fn new(dims: usize) -> Self {
        SegmentFeedback {
            searches: AtomicU64::new(0),
            skips: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            warmup_sum: AtomicU64::new(0),
            warmup_count: AtomicU64::new(0),
            survival_sum: AtomicU64::new(0),
            contributions: AtomicU64::new(0),
            filter_cells: AtomicU64::new(0),
            filter_rows: AtomicU64::new(0),
            refine_rows: AtomicU64::new(0),
            prune_credit: (0..dims).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn from_snapshot(snap: &SegmentFeedbackSnapshot) -> Self {
        SegmentFeedback {
            searches: AtomicU64::new(snap.searches),
            skips: AtomicU64::new(snap.skips),
            misses: AtomicU64::new(snap.misses),
            warmup_sum: AtomicU64::new(snap.warmup_sum),
            warmup_count: AtomicU64::new(snap.warmup_count),
            survival_sum: AtomicU64::new(snap.survival_sum),
            contributions: AtomicU64::new(snap.contributions),
            filter_cells: AtomicU64::new(snap.filter_cells),
            filter_rows: AtomicU64::new(snap.filter_rows),
            refine_rows: AtomicU64::new(snap.refine_rows),
            prune_credit: snap.prune_credit.iter().map(|&c| AtomicU64::new(c)).collect(),
        }
    }

    /// Folds one executed (non-skipped) segment search into the
    /// accumulator. `order` is the dimension order the search actually
    /// scanned in (the plan's permutation) and `rows` the segment's row
    /// count; both come from the caller because a trace alone does not know
    /// which dimension sat at which scan position.
    ///
    /// Callers must not fold predicate-filtered searches: their survival
    /// and prune-depth signals describe the filter's eligible subset, not
    /// the segment's data distribution, and would poison the per-dimension
    /// credit used to plan unfiltered queries (the engine gates on
    /// `filter.is_none()` before calling this).
    // ordering: relaxed — every counter is an independent monotone
    // accumulator folded by racing workers via atomic RMW (no increment is
    // lost); readers consume snapshots that tune plans and cost estimates,
    // never answers, so cross-counter skew from unordered folds is benign.
    pub fn record_search(&self, order: &[usize], trace: &PruneTrace, rows: usize) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.contributions.fetch_add(trace.contributions_evaluated, Ordering::Relaxed);
        if trace.filter_cells > 0 {
            self.filter_cells.fetch_add(trace.filter_cells, Ordering::Relaxed);
            self.filter_rows.fetch_add(rows as u64, Ordering::Relaxed);
            self.refine_rows.fetch_add(trace.refine_rows, Ordering::Relaxed);
        }
        let dims = order.len();
        let mut prev = 0usize;
        let mut first_effective: Option<usize> = None;
        let mut final_candidates = rows;
        for cp in &trace.checkpoints {
            let end = cp.dims_processed.min(dims);
            if cp.pruned_now > 0 && end > prev {
                let block = &order[prev..end];
                let credit =
                    (cp.pruned_now as u64).saturating_mul(FEEDBACK_SCALE) / block.len() as u64;
                for &d in block {
                    self.prune_credit[d].fetch_add(credit, Ordering::Relaxed);
                }
                if first_effective.is_none() {
                    first_effective = Some(end);
                }
            }
            prev = end;
            final_candidates = cp.candidates;
        }
        self.warmup_sum.fetch_add(first_effective.unwrap_or(dims) as u64, Ordering::Relaxed);
        self.warmup_count.fetch_add(1, Ordering::Relaxed);
        if rows > 0 {
            let frac =
                (final_candidates.min(rows) as u64).saturating_mul(FEEDBACK_SCALE) / rows as u64;
            self.survival_sum.fetch_add(frac, Ordering::Relaxed);
        }
    }

    /// Records one zone-map skip (the envelope bound saved the scan).
    // ordering: relaxed — independent monotone event count (see
    // `record_search`).
    pub fn record_skip(&self) {
        self.skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that a scanned search contributed nothing to its query's
    /// final top-k (the work the zone map failed to avoid).
    // ordering: relaxed — independent monotone event count (see
    // `record_search`).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A credit-free copy of the scalar counters — everything
    /// [`crate::cost::CostModel::segment_cost`] consumes, without cloning
    /// the per-dimension credit vector. The cheap variant for admission
    /// hot paths that price many requests per second; `prune_credit` is
    /// left empty, so do not plan from this.
    // ordering: relaxed — loads race with in-flight folds; the copy only
    // staleness-shifts cost estimates, and each field alone is a valid
    // (monotone) reading, so no acquire pairing is needed.
    pub fn scalar_snapshot(&self) -> SegmentFeedbackSnapshot {
        SegmentFeedbackSnapshot {
            searches: self.searches.load(Ordering::Relaxed),
            skips: self.skips.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warmup_sum: self.warmup_sum.load(Ordering::Relaxed),
            warmup_count: self.warmup_count.load(Ordering::Relaxed),
            survival_sum: self.survival_sum.load(Ordering::Relaxed),
            contributions: self.contributions.load(Ordering::Relaxed),
            filter_cells: self.filter_cells.load(Ordering::Relaxed),
            filter_rows: self.filter_rows.load(Ordering::Relaxed),
            refine_rows: self.refine_rows.load(Ordering::Relaxed),
            prune_credit: Vec::new(),
        }
    }

    /// A plain-data copy of the counters (each counter is read atomically;
    /// concurrent folds may land between reads, which only staleness-shifts
    /// the snapshot — acceptable for planning).
    // ordering: relaxed — same contract as `scalar_snapshot`: planning
    // input may trail execution by a few folds, never an answer.
    pub fn snapshot(&self) -> SegmentFeedbackSnapshot {
        SegmentFeedbackSnapshot {
            searches: self.searches.load(Ordering::Relaxed),
            skips: self.skips.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warmup_sum: self.warmup_sum.load(Ordering::Relaxed),
            warmup_count: self.warmup_count.load(Ordering::Relaxed),
            survival_sum: self.survival_sum.load(Ordering::Relaxed),
            contributions: self.contributions.load(Ordering::Relaxed),
            filter_cells: self.filter_cells.load(Ordering::Relaxed),
            filter_rows: self.filter_rows.load(Ordering::Relaxed),
            refine_rows: self.refine_rows.load(Ordering::Relaxed),
            prune_credit: self.prune_credit.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A plain-data snapshot of one segment's feedback counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentFeedbackSnapshot {
    /// Searches folded in (excluding zone-map skips).
    pub searches: u64,
    /// Zone-map skips observed.
    pub skips: u64,
    /// Scanned searches that contributed nothing to the final top-k.
    pub misses: u64,
    /// Sum of observed warmup lengths, in dimensions.
    pub warmup_sum: u64,
    /// Number of searches contributing to `warmup_sum`.
    pub warmup_count: u64,
    /// Σ final-survivor fraction × [`FEEDBACK_SCALE`].
    pub survival_sum: u64,
    /// Total contribution evaluations folded in.
    pub contributions: u64,
    /// Total code cells swept by the quantized first-pass filter (zero
    /// when no search used codes). Not persisted with the learned state.
    pub filter_cells: u64,
    /// Total rows the quantized filter swept. Not persisted.
    pub filter_rows: u64,
    /// Total rows that survived the quantized filter. Not persisted.
    pub refine_rows: u64,
    /// Per-dimension prune credit (× [`FEEDBACK_SCALE`]), by dimension id.
    pub prune_credit: Vec<u64>,
}

impl SegmentFeedbackSnapshot {
    /// Whether enough observations have been folded in for the learned
    /// signals to outrank the a-priori statistics. Zone-map skips count:
    /// a segment the envelope check keeps skipping is thoroughly observed
    /// even though it is never scanned.
    pub fn is_warm(&self, min_observations: u64) -> bool {
        self.searches + self.skips >= min_observations
    }

    /// Mean observed warmup length in dimensions, when any search was
    /// folded in.
    pub fn mean_warmup(&self) -> Option<f64> {
        (self.warmup_count > 0).then(|| self.warmup_sum as f64 / self.warmup_count as f64)
    }

    /// Mean fraction of the segment's rows that survived to the end of the
    /// scan, when any search was folded in.
    pub fn mean_survival(&self) -> Option<f64> {
        (self.searches > 0)
            .then(|| self.survival_sum as f64 / (self.searches as f64 * FEEDBACK_SCALE as f64))
    }

    /// Fraction of this segment's encounters the zone-map check skipped.
    pub fn skip_rate(&self) -> f64 {
        let total = self.searches + self.skips;
        if total == 0 {
            0.0
        } else {
            self.skips as f64 / total as f64
        }
    }

    /// Mean observed selectivity of the quantized first-pass filter: the
    /// fraction of swept rows that survived into the exact search. `None`
    /// until a filtered search has been folded in. Lower is better — a
    /// selectivity of 0.1 means the exact scan touched a tenth of the rows.
    pub fn filter_selectivity(&self) -> Option<f64> {
        (self.filter_rows > 0).then(|| self.refine_rows as f64 / self.filter_rows as f64)
    }

    /// The per-dimension prune-credit distribution, normalised to sum to 1
    /// (all zeros when nothing has pruned yet).
    pub fn prune_rates(&self) -> Vec<f64> {
        let total: u64 = self.prune_credit.iter().sum();
        if total == 0 {
            return vec![0.0; self.prune_credit.len()];
        }
        self.prune_credit.iter().map(|&c| c as f64 / total as f64).collect()
    }
}

/// A plain-data snapshot of a whole engine's feedback store: one entry per
/// segment, in segment (row-range) order. This is what
/// `Engine::feedback_snapshot()` returns and what persists alongside the v2
/// store footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackSnapshot {
    /// The table dimensionality the credits are indexed by.
    pub dims: usize,
    /// Per-segment snapshots, parallel to the engine's segment specs.
    pub segments: Vec<SegmentFeedbackSnapshot>,
}

impl FeedbackSnapshot {
    /// Total searches folded in across all segments.
    pub fn total_searches(&self) -> u64 {
        self.segments.iter().map(|s| s.searches).sum()
    }

    /// Total zone-map skips observed across all segments.
    pub fn total_skips(&self) -> u64 {
        self.segments.iter().map(|s| s.skips).sum()
    }

    /// Serialises the snapshot into the opaque learned-state payload the
    /// store writer embeds in the v2 footer (all integers little-endian:
    /// magic, dims u32, segments u32, then per segment seven u64 counters
    /// followed by `dims` u64 prune credits).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.segments.len() * (56 + self.dims * 8));
        buf.extend_from_slice(FEEDBACK_MAGIC);
        buf.extend_from_slice(&(self.dims as u32).to_le_bytes());
        buf.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for s in &self.segments {
            for v in [
                s.searches,
                s.skips,
                s.misses,
                s.warmup_sum,
                s.warmup_count,
                s.survival_sum,
                s.contributions,
            ] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            for &c in &s.prune_credit {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        buf
    }

    /// Parses a payload produced by [`FeedbackSnapshot::to_bytes`],
    /// validating structure and counts.
    ///
    /// # Errors
    ///
    /// [`BondError::Storage`] wrapping [`VdError::Corrupt`] on any
    /// structural violation (bad magic, truncation, trailing bytes,
    /// allocation-attack counts, credits not matching `dims`).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
            if buf.len() < n {
                return Err(BondError::Storage(VdError::Corrupt(format!("truncated {what}"))));
            }
            let (head, tail) = buf.split_at(n);
            *buf = tail;
            Ok(head)
        }
        let corrupt = |msg: &str| BondError::Storage(VdError::Corrupt(msg.into()));
        let mut buf = bytes;
        if take(&mut buf, 8, "feedback magic")? != FEEDBACK_MAGIC {
            return Err(corrupt("bad feedback magic"));
        }
        let dims =
            u32::from_le_bytes(take(&mut buf, 4, "feedback dims")?.try_into().unwrap()) as usize;
        let n_segments =
            u32::from_le_bytes(take(&mut buf, 4, "feedback segment count")?.try_into().unwrap())
                as usize;
        if dims == 0 {
            return Err(corrupt("feedback payload has zero dimensions"));
        }
        let per_segment = 56usize
            .checked_add(dims.checked_mul(8).ok_or_else(|| corrupt("credit length overflows"))?)
            .ok_or_else(|| corrupt("segment record length overflows"))?;
        let expected = n_segments
            .checked_mul(per_segment)
            .ok_or_else(|| corrupt("feedback payload length overflows"))?;
        if buf.len() != expected {
            return Err(corrupt("feedback payload length disagrees with its header"));
        }
        let mut segments = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            let mut counters = [0u64; 7];
            for c in &mut counters {
                *c = u64::from_le_bytes(take(&mut buf, 8, "feedback counter")?.try_into().unwrap());
            }
            let mut prune_credit = Vec::with_capacity(dims);
            for _ in 0..dims {
                prune_credit.push(u64::from_le_bytes(
                    take(&mut buf, 8, "prune credit")?.try_into().unwrap(),
                ));
            }
            let [searches, skips, misses, warmup_sum, warmup_count, survival_sum, contributions] =
                counters;
            segments.push(SegmentFeedbackSnapshot {
                searches,
                skips,
                misses,
                warmup_sum,
                warmup_count,
                survival_sum,
                contributions,
                prune_credit,
                // the quantized-filter counters are in-memory-only signals;
                // a reopened store re-learns them within a few queries
                ..Default::default()
            });
        }
        Ok(FeedbackSnapshot { dims, segments })
    }
}

/// The engine-wide feedback store: one lock-free [`SegmentFeedback`] per
/// segment. Shared by every worker thread of every concurrently executing
/// batch; folding and reading never block.
#[derive(Debug)]
pub struct ExecFeedback {
    dims: usize,
    segments: Vec<SegmentFeedback>,
}

impl ExecFeedback {
    /// An empty store for `n_segments` segments of a `dims`-dimensional
    /// table.
    pub fn new(n_segments: usize, dims: usize) -> Self {
        ExecFeedback {
            dims,
            segments: (0..n_segments).map(|_| SegmentFeedback::new(dims)).collect(),
        }
    }

    /// Restores a store from persisted learned state.
    pub fn from_snapshot(snap: &FeedbackSnapshot) -> Self {
        ExecFeedback {
            dims: snap.dims,
            segments: snap.segments.iter().map(SegmentFeedback::from_snapshot).collect(),
        }
    }

    /// The table dimensionality the credits are indexed by.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of segments tracked.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the store tracks no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The accumulator of segment `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn segment(&self, index: usize) -> &SegmentFeedback {
        &self.segments[index]
    }

    /// A plain-data snapshot of every segment's counters.
    pub fn snapshot(&self) -> FeedbackSnapshot {
        FeedbackSnapshot {
            dims: self.dims,
            segments: self.segments.iter().map(SegmentFeedback::snapshot).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCheckpoint;

    fn trace(checkpoints: Vec<(usize, usize, usize)>) -> PruneTrace {
        PruneTrace {
            checkpoints: checkpoints
                .into_iter()
                .map(|(dims_processed, candidates, pruned_now)| TraceCheckpoint {
                    dims_processed,
                    candidates,
                    pruned_now,
                })
                .collect(),
            contributions_evaluated: 100,
            dims_accessed: 4,
            pruning_attempts: 2,
            switched_to_list: false,
            segment_skipped: false,
            filter_cells: 0,
            refine_rows: 0,
            filter_bits: 0,
            kernel: None,
            rule: None,
        }
    }

    #[test]
    fn record_search_attributes_credit_to_the_pruning_block() {
        let fb = SegmentFeedback::new(4);
        // order [2,0,3,1]; first block (dims 2,0) prunes 60 rows, second
        // block (dims 3,1) prunes nothing.
        fb.record_search(&[2, 0, 3, 1], &trace(vec![(2, 40, 60), (4, 40, 0)]), 100);
        let s = fb.snapshot();
        assert_eq!(s.searches, 1);
        assert_eq!(s.contributions, 100);
        let credit = 60 * FEEDBACK_SCALE / 2;
        assert_eq!(s.prune_credit, vec![credit, 0, credit, 0]);
        assert_eq!(s.mean_warmup(), Some(2.0));
        // final survival: 40 of 100 rows
        let survival = s.mean_survival().unwrap();
        assert!((survival - 0.4).abs() < 1e-5, "{survival}");
        let rates = s.prune_rates();
        assert_eq!(rates, vec![0.5, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn ineffective_searches_observe_a_full_scan_warmup() {
        let fb = SegmentFeedback::new(3);
        fb.record_search(&[0, 1, 2], &trace(vec![(3, 10, 0)]), 10);
        let s = fb.snapshot();
        assert_eq!(s.mean_warmup(), Some(3.0));
        assert!((s.mean_survival().unwrap() - 1.0).abs() < 1e-5);
        assert_eq!(s.prune_rates(), vec![0.0; 3]);
    }

    #[test]
    fn skips_and_misses_are_counted_separately() {
        let fb = SegmentFeedback::new(2);
        fb.record_skip();
        fb.record_skip();
        fb.record_search(&[0, 1], &trace(vec![(2, 1, 9)]), 10);
        fb.record_miss();
        let s = fb.snapshot();
        assert_eq!((s.searches, s.skips, s.misses), (1, 2, 1));
        assert!((s.skip_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(!s.is_warm(4), "1 search + 2 skips = 3 observations");
        assert!(s.is_warm(3), "skips count as observations");
    }

    #[test]
    fn concurrent_folds_are_lock_free_and_lose_nothing() {
        let fb = ExecFeedback::new(2, 4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let fb = &fb;
                scope.spawn(move || {
                    for _ in 0..100 {
                        fb.segment(0).record_search(&[0, 1, 2, 3], &trace(vec![(2, 5, 5)]), 10);
                        fb.segment(1).record_skip();
                    }
                });
            }
        });
        let snap = fb.snapshot();
        assert_eq!(snap.segments[0].searches, 800);
        assert_eq!(snap.segments[1].skips, 800);
        assert_eq!(snap.total_searches(), 800);
        assert_eq!(snap.total_skips(), 800);
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let fb = ExecFeedback::new(3, 5);
        fb.segment(0).record_search(&[4, 3, 2, 1, 0], &trace(vec![(2, 3, 7)]), 10);
        fb.segment(1).record_skip();
        fb.segment(2).record_miss();
        let snap = fb.snapshot();
        let bytes = snap.to_bytes();
        let back = FeedbackSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // the restored accumulator keeps counting from where it left off
        let restored = ExecFeedback::from_snapshot(&back);
        restored.segment(1).record_skip();
        assert_eq!(restored.snapshot().segments[1].skips, 2);
        assert_eq!(restored.dims(), 5);
        assert_eq!(restored.len(), 3);
        assert!(!restored.is_empty());
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        let snap = ExecFeedback::new(2, 3).snapshot();
        let bytes = snap.to_bytes();
        assert!(FeedbackSnapshot::from_bytes(&[]).is_err());
        for cut in [4, 12, 16, bytes.len() - 1] {
            assert!(FeedbackSnapshot::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(FeedbackSnapshot::from_bytes(&trailing).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(FeedbackSnapshot::from_bytes(&bad_magic).is_err());
        // an absurd segment count cannot drive an oversized allocation
        let mut huge = bytes;
        huge[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            FeedbackSnapshot::from_bytes(&huge),
            Err(BondError::Storage(VdError::Corrupt(_)))
        ));
    }

    #[test]
    fn quant_filter_counters_accumulate_in_memory_only() {
        let fb = SegmentFeedback::new(2);
        let mut t = trace(vec![(2, 4, 6)]);
        t.filter_cells = 20;
        t.refine_rows = 4;
        fb.record_search(&[0, 1], &t, 10);
        let s = fb.snapshot();
        assert_eq!((s.filter_cells, s.filter_rows, s.refine_rows), (20, 10, 4));
        assert!((s.filter_selectivity().unwrap() - 0.4).abs() < 1e-12);
        assert_eq!(fb.scalar_snapshot().filter_cells, 20);
        // codeless searches leave the counters untouched
        let codeless = SegmentFeedback::new(2);
        codeless.record_search(&[0, 1], &trace(vec![(2, 4, 6)]), 10);
        assert_eq!(codeless.snapshot().filter_selectivity(), None);
        // the persisted payload intentionally excludes them (fixed-length
        // BONDFB01 records) — a byte round trip zeroes them ...
        let snap = FeedbackSnapshot { dims: 2, segments: vec![s.clone()] };
        let back = FeedbackSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.segments[0].filter_cells, 0);
        assert_eq!(back.segments[0].filter_selectivity(), None);
        // ... while in-memory restores keep counting from where they were
        let restored = ExecFeedback::from_snapshot(&snap);
        assert_eq!(restored.snapshot().segments[0].refine_rows, 4);
    }

    #[test]
    fn checkpoints_beyond_the_order_are_clamped() {
        // a malformed trace claiming more processed dims than the order has
        // must not panic or mis-index
        let fb = SegmentFeedback::new(2);
        fb.record_search(&[1, 0], &trace(vec![(5, 1, 9)]), 10);
        let s = fb.snapshot();
        assert_eq!(s.searches, 1);
        assert_eq!(s.mean_warmup(), Some(2.0));
    }
}
