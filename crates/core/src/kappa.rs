//! Externally supplied pruning bounds (κ sharing).
//!
//! In Algorithm 2, κ is the k-th best "safe" bound over the *current
//! candidate set*: for a similarity metric, k candidates are known to reach
//! at least κ, so anything that cannot reach κ is discarded. That argument
//! does not care where the k witnesses live — a κ established by *any*
//! subset of the collection prunes candidates everywhere. [`KappaCell`] is
//! the hook that lets concurrent BOND searches over disjoint row segments
//! of one table pool their κ values: each search offers its local κ after
//! every pruning attempt and receives the tightest κ any segment has proven
//! so far. A tight bound discovered in one segment then immediately prunes
//! candidates in all others, which is what makes partitioned BOND more than
//! an embarrassingly parallel split (`bond-exec` provides the atomic
//! implementation).

/// A pruning bound shared between concurrent searches of one query.
///
/// Implementations must be monotone under the search's objective: for a
/// maximizing metric the cell only ever grows (`tighten` returns
/// `max(local, shared)`), for a minimizing metric it only ever shrinks.
/// Pruning with a stale (less tight) value is always safe, so relaxed
/// memory ordering is fine.
pub trait KappaCell: Sync {
    /// Merges a κ derived from one segment's candidates into the shared
    /// bound and returns the tightest κ known across all segments.
    fn tighten(&self, local: f64) -> f64;

    /// The tightest κ any search has proven so far, if one exists. Used by
    /// a segment whose own candidate set is still too small to derive a
    /// local κ (fewer than k candidates).
    fn current(&self) -> Option<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// A deliberately naive single-threaded cell used to exercise the trait
    /// wiring without the atomic machinery of `bond-exec`.
    struct MaxCell(Cell<Option<f64>>);

    // SAFETY: only used single-threaded in this test.
    unsafe impl Sync for MaxCell {}

    impl KappaCell for MaxCell {
        fn tighten(&self, local: f64) -> f64 {
            let merged = self.0.get().map_or(local, |g| g.max(local));
            self.0.set(Some(merged));
            merged
        }

        fn current(&self) -> Option<f64> {
            self.0.get()
        }
    }

    #[test]
    fn tighten_is_monotone() {
        let cell = MaxCell(Cell::new(None));
        assert_eq!(cell.current(), None);
        assert_eq!(cell.tighten(0.3), 0.3);
        assert_eq!(cell.tighten(0.1), 0.3);
        assert_eq!(cell.tighten(0.7), 0.7);
        assert_eq!(cell.current(), Some(0.7));
    }
}
