//! Weighted and subspace k-NN queries (Section 8.1, Appendix A).
//!
//! Weights turn the similarity metric into the weighted squared Euclidean
//! distance of Definition 3 (or a weighted histogram intersection); a
//! subspace query is the special case where the weights of the irrelevant
//! dimensions are zero. Vertical fragmentation pays off twice here: the
//! engine simply never reads the fragments of zero-weight dimensions, and
//! the skew the weights introduce makes pruning more effective (Figure 11).

use bond_metrics::{WeightedEvRule, WeightedHqRule, WeightedSquaredEuclidean};

use crate::error::{BondError, Result};
use crate::ordering::DimensionOrdering;
use crate::searcher::{BondParams, BondSearcher, SearchOutcome};

// The metric itself lives in `bond-metrics` beside its Euclidean sibling;
// re-exported here because this module is its natural discovery point.
pub use bond_metrics::WeightedHistogramIntersection;

impl BondSearcher<'_> {
    fn validate_weights(&self, weights: &[f64]) -> Result<()> {
        if weights.len() != self.table().dims() {
            return Err(BondError::WeightDimensionMismatch {
                expected: self.table().dims(),
                actual: weights.len(),
            });
        }
        Ok(())
    }

    /// Weighted k-NN under the weighted squared Euclidean distance of
    /// Definition 3, pruned with the (safe) weighted `E_v` bounds.
    ///
    /// The dimension ordering defaults to decreasing `w_i · q_i²` — "the most
    /// skewed query dimensions (after normalization using the weights) are
    /// chosen first".
    pub fn weighted_euclidean(
        &self,
        query: &[f64],
        weights: &[f64],
        k: usize,
        params: &BondParams,
    ) -> Result<SearchOutcome> {
        self.validate_weights(weights)?;
        let metric =
            WeightedSquaredEuclidean::new(weights.to_vec()).map_err(BondError::InvalidParams)?;
        let mut rule = WeightedEvRule::new(weights.to_vec());
        let params = reorder_for_weights(params);
        self.search_with_rule(query, &metric, &mut rule, k, Some(weights), &params)
    }

    /// Weighted k-NN under weighted histogram intersection, pruned with the
    /// weighted query-only bound.
    pub fn weighted_histogram_intersection(
        &self,
        query: &[f64],
        weights: &[f64],
        k: usize,
        params: &BondParams,
    ) -> Result<SearchOutcome> {
        self.validate_weights(weights)?;
        let metric = WeightedHistogramIntersection::new(weights.to_vec())
            .map_err(BondError::InvalidParams)?;
        let mut rule = WeightedHqRule::new(weights.to_vec());
        let params = reorder_for_weights(params);
        self.search_with_rule(query, &metric, &mut rule, k, Some(weights), &params)
    }

    /// k-NN restricted to a dimensional subspace: only the `selected`
    /// dimensions contribute to the (Euclidean) distance. This is weighted
    /// search with 0/1 weights (Section 8.1); fragments of unselected
    /// dimensions are ordered last and in practice never read.
    pub fn subspace_euclidean(
        &self,
        query: &[f64],
        selected: &[usize],
        k: usize,
        params: &BondParams,
    ) -> Result<SearchOutcome> {
        let dims = self.table().dims();
        let mut weights = vec![0.0; dims];
        for &d in selected {
            if d >= dims {
                return Err(BondError::InvalidParams(format!(
                    "subspace dimension {d} out of range (table has {dims} dims)"
                )));
            }
            weights[d] = 1.0;
        }
        if selected.is_empty() {
            return Err(BondError::InvalidParams(
                "subspace must select at least one dimension".into(),
            ));
        }
        self.weighted_euclidean(query, &weights, k, params)
    }
}

/// Switch a caller-supplied parameter set to the weighted ordering unless an
/// explicit order was requested.
fn reorder_for_weights(params: &BondParams) -> BondParams {
    match params.ordering {
        DimensionOrdering::Explicit(_) => params.clone(),
        _ => BondParams { ordering: DimensionOrdering::WeightedQueryDescending, ..params.clone() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bond_metrics::DecomposableMetric;
    use vdstore::DecomposedTable;

    fn unit_cube_table() -> DecomposedTable {
        DecomposedTable::from_vectors(
            "cube",
            &[
                vec![0.1, 0.9, 0.5, 0.3],
                vec![0.2, 0.1, 0.4, 0.8],
                vec![0.9, 0.9, 0.1, 0.1],
                vec![0.15, 0.85, 0.55, 0.35],
                vec![0.5, 0.5, 0.5, 0.5],
                vec![0.05, 0.95, 0.45, 0.25],
            ],
        )
        .unwrap()
    }

    fn brute_force_weighted(
        table: &DecomposedTable,
        query: &[f64],
        weights: &[f64],
        k: usize,
    ) -> Vec<u32> {
        let metric = WeightedSquaredEuclidean::new(weights.to_vec()).unwrap();
        let mut scored: Vec<(u32, f64)> = (0..table.rows() as u32)
            .map(|r| (r, metric.score(&table.row(r).unwrap(), query)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let mut rows: Vec<u32> = scored.into_iter().take(k).map(|(r, _)| r).collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn weighted_search_matches_brute_force() {
        let table = unit_cube_table();
        let searcher = BondSearcher::new(&table);
        let query = vec![0.1, 0.9, 0.5, 0.3];
        let params =
            BondParams { schedule: crate::BlockSchedule::Fixed(1), ..BondParams::default() };
        for weights in
            [vec![1.0, 1.0, 1.0, 1.0], vec![10.0, 0.1, 1.0, 0.5], vec![0.0, 4.0, 0.0, 1.0]]
        {
            for k in [1, 2, 4] {
                let outcome = searcher.weighted_euclidean(&query, &weights, k, &params).unwrap();
                let mut rows: Vec<u32> = outcome.hits.iter().map(|h| h.row).collect();
                rows.sort_unstable();
                assert_eq!(
                    rows,
                    brute_force_weighted(&table, &query, &weights, k),
                    "weights {weights:?}, k {k}"
                );
            }
        }
    }

    #[test]
    fn subspace_search_ignores_other_dimensions() {
        let table = unit_cube_table();
        let searcher = BondSearcher::new(&table);
        // query matches row 2 exactly on dims {0, 1} but is far on dims {2, 3}
        let query = vec![0.9, 0.9, 0.9, 0.9];
        let outcome =
            searcher.subspace_euclidean(&query, &[0, 1], 1, &BondParams::default()).unwrap();
        assert_eq!(outcome.hits[0].row, 2);
        assert!(outcome.hits[0].score.abs() < 1e-12, "exact match in the subspace");
        // the same query over all dimensions prefers the centroid row 4
        let full = searcher.euclidean_ev(&query, 1, &BondParams::default()).unwrap();
        assert_eq!(full.hits[0].row, 4);
    }

    #[test]
    fn weighted_histogram_intersection_matches_brute_force() {
        let table = DecomposedTable::from_vectors(
            "hists",
            &[
                vec![0.7, 0.2, 0.1, 0.0],
                vec![0.1, 0.1, 0.4, 0.4],
                vec![0.25, 0.25, 0.25, 0.25],
                vec![0.6, 0.3, 0.05, 0.05],
            ],
        )
        .unwrap();
        let searcher = BondSearcher::new(&table);
        let query = vec![0.65, 0.25, 0.05, 0.05];
        let weights = vec![1.0, 3.0, 0.5, 0.0];
        let metric = WeightedHistogramIntersection::new(weights.clone()).unwrap();
        let mut brute: Vec<(u32, f64)> =
            (0..4u32).map(|r| (r, metric.score(&table.row(r).unwrap(), &query))).collect();
        brute.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let outcome = searcher
            .weighted_histogram_intersection(&query, &weights, 2, &BondParams::default())
            .unwrap();
        let rows: Vec<u32> = outcome.hits.iter().map(|h| h.row).collect();
        assert_eq!(rows, brute.iter().take(2).map(|(r, _)| *r).collect::<Vec<_>>());
        assert!((outcome.hits[0].score - brute[0].1).abs() < 1e-12);
    }

    #[test]
    fn validation_of_weights_and_subspaces() {
        let table = unit_cube_table();
        let searcher = BondSearcher::new(&table);
        let q = vec![0.5; 4];
        assert!(matches!(
            searcher.weighted_euclidean(&q, &[1.0; 3], 1, &BondParams::default()),
            Err(BondError::WeightDimensionMismatch { .. })
        ));
        assert!(matches!(
            searcher.weighted_euclidean(&q, &[1.0, -1.0, 1.0, 1.0], 1, &BondParams::default()),
            Err(BondError::InvalidParams(_))
        ));
        assert!(searcher.subspace_euclidean(&q, &[], 1, &BondParams::default()).is_err());
        assert!(searcher.subspace_euclidean(&q, &[7], 1, &BondParams::default()).is_err());
    }

    #[test]
    fn metric_accessor_and_validation() {
        assert!(WeightedHistogramIntersection::new(vec![]).is_err());
        assert!(WeightedHistogramIntersection::new(vec![f64::INFINITY]).is_err());
        let m = WeightedHistogramIntersection::new(vec![1.0, 2.0]).unwrap();
        assert_eq!(m.weights(), &[1.0, 2.0]);
        assert_eq!(m.name(), "weighted_histogram_intersection");
        assert!((m.contribution(1, 0.3, 0.5) - 0.6).abs() < 1e-12);
    }
}
