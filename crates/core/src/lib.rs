//! # bond — Branch-and-bound ON Decomposed data
//!
//! This crate is the reproduction of the paper's primary contribution:
//! k-nearest-neighbour search that scans the dimensional fragments of a
//! vertically decomposed feature collection one block at a time, maintains
//! partial scores for all surviving candidates, and after every block prunes
//! the vectors whose best-case final score can no longer reach the k-th best
//! worst-case score (Algorithm 2).
//!
//! ## Quick start
//!
//! ```
//! use bond::{BondParams, BondSearcher};
//! use vdstore::DecomposedTable;
//!
//! // a tiny collection of normalized histograms, one column per dimension
//! let table = DecomposedTable::from_vectors(
//!     "demo",
//!     &[
//!         vec![0.8, 0.1, 0.05, 0.05],
//!         vec![0.1, 0.3, 0.4, 0.2],
//!         vec![0.7, 0.15, 0.15, 0.0],
//!     ],
//! )
//! .unwrap();
//!
//! let searcher = BondSearcher::new(&table);
//! let query = vec![0.7, 0.15, 0.1, 0.05];
//! let outcome = searcher
//!     .histogram_intersection_hq(&query, 2, &BondParams::default())
//!     .unwrap();
//! assert_eq!(outcome.hits.len(), 2);
//! assert_eq!(outcome.hits[0].row, 2); // the histogram most similar to the query
//! ```
//!
//! ## Module map
//!
//! * [`searcher`] — the generic branch-and-bound loop (Algorithm 2) with the
//!   bitmap-then-materialise candidate representation of Section 6.1,
//! * [`ordering`] — dimension orderings (Section 5.1),
//! * [`schedule`] — how many dimensions to scan between pruning attempts
//!   (Section 5.2),
//! * [`plan`] — [`SegmentPlan`], the resolved per-segment (order, schedule)
//!   pair that `bond-exec`'s planners vary across partitions,
//! * [`feedback`] — [`ExecFeedback`], the lock-free per-segment
//!   accumulators that fold every query's pruning trace into learnable
//!   signals (prune credit per dimension, observed warmups, skip
//!   hits/misses, candidate survival),
//! * [`cost`] — [`CostModel`], the shared decision layer deriving segment
//!   plans (a-priori or feedback-blended) and per-segment cost estimates,
//! * [`weighted`] — weighted and subspace k-NN queries (Section 8.1),
//! * [`multifeature`] — synchronized multi-feature search (Section 8.2),
//! * [`compressed`] — BOND on 8-bit-quantized fragments with an exact
//!   refinement step (Section 7.4, Figure 9 / Table 4),
//! * [`quantfilter`] — the branch-free quantized first-pass scan kernel the
//!   execution engine runs before the exact search (LUT sweep over `u8`
//!   code columns, interval score bounds, approximate codes-only top-k),
//! * [`kernels`] — the runtime-dispatched ISA-pinned implementations of the
//!   two hot loops (quantized LUT sweep, exact contribution accumulate):
//!   AVX2 / NEON / portable scalar, selected once per process and
//!   overridable with `BOND_KERNEL`, all bit-identical to the scalar
//!   reference,
//! * [`trace`] — the pruning traces from which every figure of the paper's
//!   evaluation is regenerated.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod candidates;
pub mod compressed;
pub mod cost;
pub mod error;
pub mod feedback;
pub mod kappa;
pub mod kernels;
pub mod multifeature;
pub mod ordering;
pub mod plan;
pub mod quantfilter;
pub mod schedule;
pub mod searcher;
pub mod trace;
pub mod weighted;

pub use candidates::CandidateSet;
pub use compressed::{
    compressed_filter, compressed_filter_histogram, search_compressed, search_compressed_histogram,
    CompressedFilter,
};
pub use cost::CostModel;
pub use error::{BondError, Result};
pub use feedback::{ExecFeedback, FeedbackSnapshot, SegmentFeedback, SegmentFeedbackSnapshot};
pub use kappa::KappaCell;
pub use kernels::Kernel;
pub use multifeature::{
    FeatureMetricKind, FeatureQuery, MultiFeatureContext, MultiFeatureOutcome, MultiFeatureSearcher,
};
pub use ordering::DimensionOrdering;
pub use plan::SegmentPlan;
pub use quantfilter::{ApproxOutcome, QuantFilter, QuantIntervals, QuantScratch};
pub use schedule::BlockSchedule;
pub use searcher::{
    prune_slack, search_segment, BondParams, BondSearcher, SearchOutcome, SegmentContext,
};
pub use trace::{PruneTrace, TraceCheckpoint};
pub use weighted::WeightedHistogramIntersection;

// Re-export the vocabulary types callers need.
pub use bond_metrics as metrics;
pub use vdstore::topk::Scored;
pub use vdstore::RowId;
