//! Runtime-dispatched, ISA-pinned scan kernels for the two hot loops.
//!
//! The BOND premise — vertical decomposition turns k-NN into dense
//! streaming scans — is only cashed in when the inner loops actually run
//! at hardware width. This module pins the two loops that matter to
//! explicit per-ISA implementations instead of leaving them to the
//! auto-vectorizer's mood:
//!
//! 1. **the quantized sweep** ([`sweep`]): per dimension, accumulate the
//!    optimistic/pessimistic LUT entries selected by a flat `&[u8]` code
//!    column into two per-row running bounds, and
//! 2. **the exact accumulate** ([`accumulate`], [`accumulate_gather`]):
//!    `acc[i] += contribution(dim, value_i, q)` for the warmup/refine
//!    phases, in dense (contiguous rows) and gathered (explicit row list)
//!    form, plus the mass companions ([`add_assign`],
//!    [`add_assign_gather`]) the `Hh` rule needs.
//!
//! One flavour is selected per process by [`Kernel::active`] —
//! `is_x86_feature_detected!("avx2")` on x86-64, NEON on aarch64, the
//! portable scalar loop everywhere else — and can be forced with the
//! `BOND_KERNEL=scalar|avx2|neon` environment variable for testing. Every
//! entry point also accepts an explicit [`Kernel`] so tests and benches
//! can compare flavours inside one process regardless of the environment;
//! an explicitly requested flavour the host cannot run degrades to scalar
//! instead of faulting.
//!
//! **Bit-identity is the contract.** Each vector path performs, per row,
//! exactly the floating-point operations of the scalar reference in the
//! same order (rows are independent, so lane-parallelism does not reorder
//! any row's sum): `vminpd`/`vsubpd`/`vmulpd`/`vaddpd` are IEEE-exact per
//! lane and no FMA contraction is used (fusing `(v−q)·(v−q)` would change
//! rounding versus the scalar two-step). The only representable
//! divergences are NaN inputs and `(−0.0, +0.0)` min-ties, which decoded
//! table values never produce. This is why the "fast-scan" trick of the
//! PQ literature appears here as the dimension-blocked [`sweep_pairs`]
//! over interleaved `[opt, pes]` pair tables rather than a literal
//! `pshufb` byte shuffle: fast-scan shuffles 8-bit quantized distances,
//! but BOND's bounds are `f64` and must stay bit-identical to the scalar
//! sweep, so the fast path keeps full-width lanes and wins by holding the
//! running bounds in registers across a block of dimensions, fetching each
//! cell's contribution pair with one 128-bit load, and producing LUT byte
//! offsets in two ALU operations per cell.

use std::sync::OnceLock;

use bond_metrics::KernelOp;
use vdstore::{CodeParams, RowId};

/// Environment variable that forces kernel selection
/// (`BOND_KERNEL=scalar|avx2|neon`). Unknown or unsupported values fall
/// back to the portable scalar kernel rather than erroring: a forced
/// kernel is a test/debug override, and the scalar loop is always correct.
pub const KERNEL_ENV: &str = "BOND_KERNEL";

/// Cells per inner-loop chunk of the scalar sweep: both running bounds
/// advance through the code column in blocks of this many rows, keeping
/// the working set in registers/L1 and giving the auto-vectorizer a fixed
/// trip count.
pub const BLOCK_CELLS: usize = 64;

/// The instruction-set flavours the scan kernels are pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The portable scalar loops — the reference every other flavour must
    /// match bit for bit.
    Scalar,
    /// `core::arch::x86_64` AVX2: the quantized sweep blocks up to
    /// [`MAX_SWEEP_GROUP`] dimensions per pass with the running bounds
    /// held in ymm registers ([`sweep_pairs`]); the exact kernels run 4
    /// rows per 256-bit lane group.
    Avx2,
    /// `core::arch::aarch64` NEON: 2 rows per 128-bit vector; loads and
    /// arithmetic are vectorized, LUT lookups are lane-gathered (NEON has
    /// no gather instruction).
    Neon,
}

static ACTIVE: OnceLock<Kernel> = OnceLock::new();

impl Kernel {
    /// Every flavour, for iteration in tests and benches.
    pub const ALL: [Kernel; 3] = [Kernel::Scalar, Kernel::Avx2, Kernel::Neon];

    /// The flavour's name as used by `BOND_KERNEL`, EXPLAIN output and the
    /// `engine.kernel.*` dispatch counters.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
            Kernel::Neon => "neon",
        }
    }

    /// Parses a `BOND_KERNEL` value. `None` for anything unknown.
    pub fn from_name(name: &str) -> Option<Kernel> {
        match name {
            "scalar" => Some(Kernel::Scalar),
            "avx2" => Some(Kernel::Avx2),
            "neon" => Some(Kernel::Neon),
            _ => None,
        }
    }

    /// Whether this flavour can run on the current host.
    pub fn is_supported(self) -> bool {
        match self {
            Kernel::Scalar => true,
            Kernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Kernel::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// The best flavour the host supports, ignoring any override.
    pub fn preferred() -> Kernel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernel::Avx2;
            }
        }
        if cfg!(target_arch = "aarch64") {
            return Kernel::Neon;
        }
        Kernel::Scalar
    }

    /// The selection rule as a pure function of the (optional) forced
    /// `BOND_KERNEL` value: a recognised, supported flavour wins; a
    /// recognised but unsupported or unrecognised value degrades to
    /// scalar; no override picks [`Kernel::preferred`].
    pub fn select(forced: Option<&str>) -> Kernel {
        match forced {
            Some(name) => match Kernel::from_name(name.trim()) {
                Some(k) if k.is_supported() => k,
                _ => Kernel::Scalar,
            },
            None => Kernel::preferred(),
        }
    }

    /// The process-wide active kernel: decided once, on first use, from
    /// `BOND_KERNEL` and hardware detection.
    pub fn active() -> Kernel {
        *ACTIVE.get_or_init(|| Kernel::select(std::env::var(KERNEL_ENV).ok().as_deref()))
    }
}

/// Sweeps one code column into the per-row bound accumulators:
/// `opt[i] += opt_lut[codes[i]]` and `pes[i] += pes_lut[codes[i]]` for
/// every row `i`.
///
/// The LUT lengths must be equal powers of two (they are `1 << bits` by
/// construction); the vector paths mask code bytes by `len − 1`, so a
/// malformed out-of-range code aliases a valid cell instead of reading out
/// of bounds (the scalar path panics on it, as it always has — valid
/// `StoreCodes` never produce one either way).
pub fn sweep(
    kernel: Kernel,
    codes: &[u8],
    opt_lut: &[f64],
    pes_lut: &[f64],
    opt: &mut [f64],
    pes: &mut [f64],
) {
    assert_eq!(codes.len(), opt.len(), "sweep: codes and opt accumulator disagree on rows");
    assert_eq!(codes.len(), pes.len(), "sweep: codes and pes accumulator disagree on rows");
    assert_eq!(opt_lut.len(), pes_lut.len(), "sweep: LUT lengths differ");
    assert!(opt_lut.len().is_power_of_two(), "sweep: LUT length must be a power of two");
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if Kernel::Avx2.is_supported() => {
            // SAFETY: AVX2 availability was just checked; slice lengths
            // are asserted above and LUT indices are masked to the LUT's
            // power-of-two length inside the kernel.
            unsafe { x86::sweep_avx2(codes, opt_lut, pes_lut, opt, pes) }
        }
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => neon::sweep_neon(codes, opt_lut, pes_lut, opt, pes),
        _ => sweep_scalar(codes, opt_lut, pes_lut, opt, pes),
    }
}

/// Upper bound on [`sweep_group`] across every kernel and level count —
/// callers size their column/LUT scratch against this.
pub const MAX_SWEEP_GROUP: usize = 32;

/// How many code columns [`sweep_pairs`] folds into one pass over the
/// interleaved accumulator on this kernel at this LUT size. The
/// single-dimension sweep is bound by memory traffic — two LUT loads plus
/// an accumulator load-modify-store per cell — so the AVX2 path blocks
/// dimensions together, keeps the running bounds in registers across the
/// block and fetches each cell's `[opt, pes]` contribution with one
/// 128-bit load. The block width follows the LUT footprint: at ≤ 16
/// levels (bits ≤ 4, the fast-scan regime) all 32 pair tables together
/// are only 8 KiB, so the widest block wins; at 5–8 bits a 32-column
/// block would be 128 KiB of LUTs, so 8 columns (32 KiB, L1-resident)
/// measure fastest. The scalar reference keeps the original
/// one-dimension-at-a-time loop, and NEON keeps its vectorized
/// single-dimension [`sweep`] (group 1).
pub fn sweep_group(kernel: Kernel, levels: usize) -> usize {
    match kernel {
        Kernel::Avx2 => {
            if levels <= 16 {
                MAX_SWEEP_GROUP
            } else {
                8
            }
        }
        Kernel::Scalar | Kernel::Neon => 1,
    }
}

/// Dimension-blocked sweep over an interleaved accumulator: accumulates up
/// to [`sweep_group`] code columns in one pass. `pair_luts[j*levels*2 +
/// 2*c]` holds the optimistic and `… + 1` the pessimistic contribution of
/// code `c` in column `j`; `inter[2*i]` / `inter[2*i + 1]` are row `i`'s
/// running optimistic/pessimistic bounds.
///
/// Per row and side this computes `acc = ((acc + l0[c0]) + l1[c1]) + …` —
/// one `f64` addition per (row, column), performed in column order —
/// exactly the addition order of sweeping the columns one at a time with
/// [`sweep`], so the accumulated values are bit-identical to the scalar
/// reference; only the pass structure over memory changes.
///
/// With `init` the accumulator's prior contents are ignored: every row
/// starts from `0.0` (computed as `0.0 + l0[c0]`, the exact FP operation a
/// zeroed accumulator would perform) and is stored back. Callers sweep the
/// first dimension block with `init` instead of zeroing `inter` — the
/// kernel then neither memsets nor loads the accumulator on its first
/// pass.
pub fn sweep_pairs(
    kernel: Kernel,
    columns: &[&[u8]],
    pair_luts: &[f64],
    levels: usize,
    inter: &mut [f64],
    init: bool,
) {
    assert!(levels.is_power_of_two(), "sweep_pairs: levels must be a power of two");
    assert!(
        columns.len() * levels * 2 <= pair_luts.len(),
        "sweep_pairs: LUT storage shorter than columns × levels × 2"
    );
    for column in columns {
        assert_eq!(column.len() * 2, inter.len(), "sweep_pairs: column and accumulator disagree");
    }
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if Kernel::Avx2.is_supported() => {
            // SAFETY: AVX2 availability, column/accumulator lengths, LUT
            // storage size and the power-of-two level count were all just
            // checked; indices are masked to `levels − 1` inside.
            unsafe { x86::sweep_pairs_avx2(columns, pair_luts, levels, inter, init) }
        }
        _ => {
            // one column at a time — the reference pass structure
            if init {
                inter.fill(0.0);
            }
            let m = levels - 1;
            for (j, column) in columns.iter().enumerate() {
                let lut = &pair_luts[j * levels * 2..(j + 1) * levels * 2];
                for (pair, &code) in inter.chunks_exact_mut(2).zip(column.iter()) {
                    let c = (code as usize & m) * 2;
                    pair[0] += lut[c];
                    pair[1] += lut[c + 1];
                }
            }
        }
    }
}

/// Builds one dimension's interleaved `[opt, pes]` contribution LUT
/// (`pairs[2*c]` / `pairs[2*c + 1]` for cell `c`) straight from the
/// quantization grid, fusing cell-edge generation with the bound math of
/// `op` in one vectorized pass — no bounds array, no per-cell division
/// and no scalar `maxnum` lowering. The LUT build runs once per (query,
/// segment, dimension) and at 8 bits costs as much as the sweep it feeds,
/// so it is dispatched like the sweep itself.
///
/// Returns `false` when this kernel has no fused path; the caller then
/// falls back to [`CodeParams::fill_cell_bounds`] plus the metric's
/// `fill_contribution_pairs` — which is also the bit-identity reference:
/// the fused path performs the exact same IEEE operations in the same
/// order per cell (edge `min + c·width` clamped to `max`, then the op's
/// bound formulas), so its LUT values match the portable build bit for
/// bit. As with the sweep kernels, the only representable divergences are
/// NaN queries and `(−0.0, +0.0)` min/max ties, which finite grids and
/// real queries do not produce.
pub fn fill_pair_lut(
    kernel: Kernel,
    op: KernelOp<'_>,
    dim: usize,
    grid: CodeParams,
    query: f64,
    pairs: &mut [f64],
) -> bool {
    let levels = grid.levels() as usize;
    assert_eq!(pairs.len(), levels * 2, "fill_pair_lut: LUT storage is not levels × 2");
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if Kernel::Avx2.is_supported() => {
            // SAFETY: AVX2 availability was just checked and the LUT slice
            // holds exactly `levels × 2` slots; `levels` is a power of two
            // (≥ 2), so the two-cell vector steps tile it exactly.
            unsafe { x86::fill_pair_lut_avx2(op, dim, grid, query, pairs) }
            true
        }
        _ => false,
    }
}

/// Dense exact accumulate: `acc[i] += op(dim, values[i], query)` for every
/// row `i`. `values` and `acc` must be the same length.
pub fn accumulate(
    kernel: Kernel,
    op: KernelOp<'_>,
    dim: usize,
    values: &[f64],
    query: f64,
    acc: &mut [f64],
) {
    assert_eq!(values.len(), acc.len(), "accumulate: values and accumulator disagree on rows");
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if Kernel::Avx2.is_supported() => {
            // SAFETY: AVX2 availability was just checked; equal slice
            // lengths are asserted above.
            unsafe { x86::accumulate_avx2(op, dim, values, query, acc) }
        }
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => neon::accumulate_neon(op, dim, values, query, acc),
        _ => accumulate_scalar(op, dim, values, query, acc),
    }
}

/// Gathered exact accumulate for an explicit candidate list:
/// `acc[i] += op(dim, values[rows[i]], query)` for every list position
/// `i`. `rows` and `acc` must be the same length and every row id must
/// index into `values`.
pub fn accumulate_gather(
    kernel: Kernel,
    op: KernelOp<'_>,
    dim: usize,
    values: &[f64],
    rows: &[RowId],
    query: f64,
    acc: &mut [f64],
) {
    assert_eq!(rows.len(), acc.len(), "accumulate_gather: rows and accumulator disagree");
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2
            if Kernel::Avx2.is_supported()
                && values.len() <= i32::MAX as usize
                && rows.iter().all(|&r| (r as usize) < values.len()) =>
        {
            // SAFETY: AVX2 availability, in-bounds row ids and a column
            // short enough for 32-bit gather indices were all just
            // checked; rows/acc length equality is asserted above.
            unsafe { x86::accumulate_gather_avx2(op, dim, values, rows, query, acc) }
        }
        _ => accumulate_gather_scalar(op, dim, values, rows, query, acc),
    }
}

/// Dense mass accumulate: `acc[i] += values[i]` (the scanned-mass side
/// column of the `Hh` rule). A second pass over the same value column the
/// contribution kernel just streamed — it stays L1/L2-hot.
pub fn add_assign(kernel: Kernel, values: &[f64], acc: &mut [f64]) {
    assert_eq!(values.len(), acc.len(), "add_assign: values and accumulator disagree on rows");
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if Kernel::Avx2.is_supported() => {
            // SAFETY: AVX2 availability was just checked; equal slice
            // lengths are asserted above.
            unsafe { x86::add_assign_avx2(values, acc) }
        }
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => neon::add_assign_neon(values, acc),
        _ => {
            for (a, &v) in acc.iter_mut().zip(values) {
                *a += v;
            }
        }
    }
}

/// Gathered mass accumulate: `acc[i] += values[rows[i]]`.
pub fn add_assign_gather(kernel: Kernel, values: &[f64], rows: &[RowId], acc: &mut [f64]) {
    assert_eq!(rows.len(), acc.len(), "add_assign_gather: rows and accumulator disagree");
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2
            if Kernel::Avx2.is_supported()
                && values.len() <= i32::MAX as usize
                && rows.iter().all(|&r| (r as usize) < values.len()) =>
        {
            // SAFETY: AVX2 availability, in-bounds row ids and a column
            // short enough for 32-bit gather indices were all just
            // checked; rows/acc length equality is asserted above.
            unsafe { x86::add_assign_gather_avx2(values, rows, acc) }
        }
        _ => {
            for (a, &r) in acc.iter_mut().zip(rows) {
                *a += values[r as usize];
            }
        }
    }
}

/// The portable sweep — the bit-identity reference. This is the exact
/// loop shape the quantized filter has always run: 64-cell blocks, no
/// per-row branches.
fn sweep_scalar(codes: &[u8], opt_lut: &[f64], pes_lut: &[f64], opt: &mut [f64], pes: &mut [f64]) {
    for ((opt_block, pes_block), code_block) in
        opt.chunks_mut(BLOCK_CELLS).zip(pes.chunks_mut(BLOCK_CELLS)).zip(codes.chunks(BLOCK_CELLS))
    {
        for ((o, p), &c) in opt_block.iter_mut().zip(pes_block.iter_mut()).zip(code_block) {
            *o += opt_lut[c as usize];
            *p += pes_lut[c as usize];
        }
    }
}

/// The portable dense accumulate — the bit-identity reference.
fn accumulate_scalar(op: KernelOp<'_>, dim: usize, values: &[f64], query: f64, acc: &mut [f64]) {
    for (a, &v) in acc.iter_mut().zip(values) {
        *a += op.apply(dim, v, query);
    }
}

/// The portable gathered accumulate — the bit-identity reference.
fn accumulate_gather_scalar(
    op: KernelOp<'_>,
    dim: usize,
    values: &[f64],
    rows: &[RowId],
    query: f64,
    acc: &mut [f64],
) {
    for (a, &r) in acc.iter_mut().zip(rows) {
        *a += op.apply(dim, values[r as usize], query);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m128i, __m256d, _mm256_add_pd, _mm256_blend_pd, _mm256_i32gather_pd, _mm256_loadu_pd,
        _mm256_max_pd, _mm256_min_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_set_m128d,
        _mm256_setr_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm_and_si128,
        _mm_cvtepu8_epi32, _mm_cvtsi32_si128, _mm_loadu_pd, _mm_loadu_si128, _mm_set1_epi32,
    };

    use bond_metrics::KernelOp;
    use vdstore::{CodeParams, RowId};

    /// One 4-row sweep step: widen 4 code bytes to 32-bit indices, mask
    /// them into the LUT, gather both `f64` LUT entries and add them onto
    /// the resident accumulators. Per row this is exactly the scalar
    /// `opt[i] += opt_lut[c]; pes[i] += pes_lut[c]` — `vaddpd` is
    /// IEEE-exact per lane, so the result is bit-identical.
    ///
    /// # Safety
    /// Caller guarantees AVX2, `i + 4` rows in bounds of all three slices
    /// and a `mask` of the LUTs' power-of-two length minus one.
    // SAFETY: see the function's safety contract; the sole caller
    // (`sweep_avx2`) establishes it for every step.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sweep_quad(
        codes: *const u8,
        o_lut: *const f64,
        p_lut: *const f64,
        opt: *mut f64,
        pes: *mut f64,
        mask: __m128i,
        i: usize,
    ) {
        let word = codes.add(i).cast::<u32>().read_unaligned();
        let idx = _mm_and_si128(_mm_cvtepu8_epi32(_mm_cvtsi32_si128(word as i32)), mask);
        let og = _mm256_i32gather_pd::<8>(o_lut, idx);
        let o = _mm256_loadu_pd(opt.add(i));
        _mm256_storeu_pd(opt.add(i), _mm256_add_pd(o, og));
        let pg = _mm256_i32gather_pd::<8>(p_lut, idx);
        let p = _mm256_loadu_pd(pes.add(i));
        _mm256_storeu_pd(pes.add(i), _mm256_add_pd(p, pg));
    }

    /// The AVX2 quantized sweep. Two regimes:
    ///
    /// * **bits ≤ 4** (LUT ≤ 16 entries, 256 bytes for both LUTs): the
    ///   fast-scan-inspired path. A literal `pshufb` 16-entry shuffle is
    ///   off the table — fast-scan shuffles *8-bit quantized distances*,
    ///   while BOND's bounds are `f64` and contractually bit-identical to
    ///   scalar — so the low-bit win is taken by keeping the entire LUT
    ///   pair L1-resident and unrolling 16 rows per iteration so the
    ///   four gathers per LUT overlap.
    /// * **bits 5–8**: plain unrolled gather-accumulate, 8 rows per
    ///   iteration over the 64-cell blocks.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available, `codes`, `opt` and `pes` are
    /// the same length, and the LUTs are equal power-of-two lengths.
    // SAFETY: dispatched from `sweep` only after `is_supported` and the
    // length/power-of-two asserts; all pointer arithmetic stays inside the
    // asserted bounds and LUT indices are masked.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sweep_avx2(
        codes: &[u8],
        opt_lut: &[f64],
        pes_lut: &[f64],
        opt: &mut [f64],
        pes: &mut [f64],
    ) {
        let n = codes.len();
        let lut_mask = opt_lut.len() - 1;
        let mask = _mm_set1_epi32(lut_mask as i32);
        let cp = codes.as_ptr();
        let ol = opt_lut.as_ptr();
        let pl = pes_lut.as_ptr();
        let op = opt.as_mut_ptr();
        let pp = pes.as_mut_ptr();
        let mut i = 0usize;
        if opt_lut.len() <= 16 {
            while i + 16 <= n {
                sweep_quad(cp, ol, pl, op, pp, mask, i);
                sweep_quad(cp, ol, pl, op, pp, mask, i + 4);
                sweep_quad(cp, ol, pl, op, pp, mask, i + 8);
                sweep_quad(cp, ol, pl, op, pp, mask, i + 12);
                i += 16;
            }
        } else {
            while i + 8 <= n {
                sweep_quad(cp, ol, pl, op, pp, mask, i);
                sweep_quad(cp, ol, pl, op, pp, mask, i + 4);
                i += 8;
            }
        }
        while i + 4 <= n {
            sweep_quad(cp, ol, pl, op, pp, mask, i);
            i += 4;
        }
        while i < n {
            let c = (*cp.add(i) as usize) & lut_mask;
            *op.add(i) += *ol.add(c);
            *pp.add(i) += *pl.add(c);
            i += 1;
        }
    }

    /// The dimension-blocked AVX2 sweep over the interleaved accumulator:
    /// up to [`super::MAX_SWEEP_GROUP`] code columns fold into the running
    /// `[opt, pes]` pairs in a single pass. Four tricks stack up here:
    ///
    /// * the per-row bounds stay **in registers** across the whole column
    ///   block — the single-dimension sweep reloads and restores both
    ///   accumulator streams per dimension;
    /// * each cell's `[opt, pes]` LUT pair is one 128-bit load — the
    ///   split-LUT layout needed two;
    /// * `vgatherdpd` is microcoded on plenty of AVX2 parts, so indices
    ///   come from one 8-byte scalar read of the code column and plain
    ///   loads assemble the vectors;
    /// * the cell's **byte offset** into its pair table is produced
    ///   directly as `(word >> (8·k − 4)) & ((levels − 1) << 4)` — the ×16
    ///   entry scale folds into the mask, so each offset costs one shift
    ///   and one AND instead of shift + mask + rescale (the extraction
    ///   arithmetic, not the loads, is this loop's port bottleneck).
    ///
    /// The per-row, per-side addition order — column `j` after column
    /// `j−1`, one `vaddpd` lane each — stays exactly the scalar
    /// reference's, keeping the result bit-identical.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available, every column holds
    /// `inter.len() / 2` codes, the LUT storage holds
    /// `columns.len() × levels` interleaved pairs and `levels` is a power
    /// of two.
    // SAFETY: dispatched from `sweep_pairs` only after asserting all of
    // the above; all pointer arithmetic stays inside those bounds and LUT
    // indices are masked to `levels − 1`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sweep_pairs_avx2(
        columns: &[&[u8]],
        pair_luts: &[f64],
        levels: usize,
        inter: &mut [f64],
        init: bool,
    ) {
        let n = inter.len() / 2;
        // byte-offset mask: a pair is 16 bytes, so `code × 16` is produced
        // in one shift + AND by pre-shifting the level mask
        let m = (levels - 1) << 4;
        let lp = pair_luts.as_ptr().cast::<u8>();
        let ip = inter.as_mut_ptr();
        // two `[opt, pes]` pairs — one 128-bit load each — fill a ymm;
        // offsets are byte offsets into this column's pair table
        let duo = |lut: *const u8, o_lo: usize, o_hi: usize| {
            // SAFETY: the enclosing function's contract — both byte
            // offsets are already masked to `(levels − 1) << 4` and `lut`
            // points at a `levels`-pair table inside the caller-checked
            // LUT storage, so both 16-byte reads stay inside it.
            unsafe {
                _mm256_set_m128d(
                    _mm_loadu_pd(lut.add(o_hi).cast()),
                    _mm_loadu_pd(lut.add(o_lo).cast()),
                )
            }
        };
        let mut i = 0usize;
        // 16 rows per iteration: eight independent accumulator registers
        // hide the serial `vaddpd` latency down each column chain, and the
        // code bytes per column arrive as two scalar 8-byte loads.
        // `init` skips both the memset a zeroed accumulator would need and
        // the accumulator loads of the first dimension block: each lane
        // starts from a register zero and performs the identical
        // `0.0 + contribution` addition.
        let zero = _mm256_setzero_pd();
        while i + 16 <= n {
            let (mut a0, mut a1, mut a2, mut a3, mut a4, mut a5, mut a6, mut a7) = if init {
                (zero, zero, zero, zero, zero, zero, zero, zero)
            } else {
                (
                    _mm256_loadu_pd(ip.add(2 * i)),
                    _mm256_loadu_pd(ip.add(2 * i + 4)),
                    _mm256_loadu_pd(ip.add(2 * i + 8)),
                    _mm256_loadu_pd(ip.add(2 * i + 12)),
                    _mm256_loadu_pd(ip.add(2 * i + 16)),
                    _mm256_loadu_pd(ip.add(2 * i + 20)),
                    _mm256_loadu_pd(ip.add(2 * i + 24)),
                    _mm256_loadu_pd(ip.add(2 * i + 28)),
                )
            };
            for (j, column) in columns.iter().enumerate() {
                let lut = lp.add(j * levels * 16);
                let w = column.as_ptr().add(i).cast::<u64>().read_unaligned() as usize;
                let v = column.as_ptr().add(i + 8).cast::<u64>().read_unaligned() as usize;
                a0 = _mm256_add_pd(a0, duo(lut, (w << 4) & m, (w >> 4) & m));
                a1 = _mm256_add_pd(a1, duo(lut, (w >> 12) & m, (w >> 20) & m));
                a2 = _mm256_add_pd(a2, duo(lut, (w >> 28) & m, (w >> 36) & m));
                a3 = _mm256_add_pd(a3, duo(lut, (w >> 44) & m, (w >> 52) & m));
                a4 = _mm256_add_pd(a4, duo(lut, (v << 4) & m, (v >> 4) & m));
                a5 = _mm256_add_pd(a5, duo(lut, (v >> 12) & m, (v >> 20) & m));
                a6 = _mm256_add_pd(a6, duo(lut, (v >> 28) & m, (v >> 36) & m));
                a7 = _mm256_add_pd(a7, duo(lut, (v >> 44) & m, (v >> 52) & m));
            }
            _mm256_storeu_pd(ip.add(2 * i), a0);
            _mm256_storeu_pd(ip.add(2 * i + 4), a1);
            _mm256_storeu_pd(ip.add(2 * i + 8), a2);
            _mm256_storeu_pd(ip.add(2 * i + 12), a3);
            _mm256_storeu_pd(ip.add(2 * i + 16), a4);
            _mm256_storeu_pd(ip.add(2 * i + 20), a5);
            _mm256_storeu_pd(ip.add(2 * i + 24), a6);
            _mm256_storeu_pd(ip.add(2 * i + 28), a7);
            i += 16;
        }
        while i + 8 <= n {
            let (mut a0, mut a1, mut a2, mut a3) = if init {
                (zero, zero, zero, zero)
            } else {
                (
                    _mm256_loadu_pd(ip.add(2 * i)),
                    _mm256_loadu_pd(ip.add(2 * i + 4)),
                    _mm256_loadu_pd(ip.add(2 * i + 8)),
                    _mm256_loadu_pd(ip.add(2 * i + 12)),
                )
            };
            for (j, column) in columns.iter().enumerate() {
                let lut = lp.add(j * levels * 16);
                let w = column.as_ptr().add(i).cast::<u64>().read_unaligned() as usize;
                a0 = _mm256_add_pd(a0, duo(lut, (w << 4) & m, (w >> 4) & m));
                a1 = _mm256_add_pd(a1, duo(lut, (w >> 12) & m, (w >> 20) & m));
                a2 = _mm256_add_pd(a2, duo(lut, (w >> 28) & m, (w >> 36) & m));
                a3 = _mm256_add_pd(a3, duo(lut, (w >> 44) & m, (w >> 52) & m));
            }
            _mm256_storeu_pd(ip.add(2 * i), a0);
            _mm256_storeu_pd(ip.add(2 * i + 4), a1);
            _mm256_storeu_pd(ip.add(2 * i + 8), a2);
            _mm256_storeu_pd(ip.add(2 * i + 12), a3);
            i += 8;
        }
        while i < n {
            let (mut o, mut p) =
                if init { (0.0, 0.0) } else { (*ip.add(2 * i), *ip.add(2 * i + 1)) };
            for (j, column) in columns.iter().enumerate() {
                let lut = lp.add(j * levels * 16);
                let off = ((*column.as_ptr().add(i)) as usize) << 4 & m;
                o += *lut.add(off).cast::<f64>();
                p += *lut.add(off + 8).cast::<f64>();
            }
            *ip.add(2 * i) = o;
            *ip.add(2 * i + 1) = p;
            i += 1;
        }
    }

    /// Fused LUT build: generates each cell's `[lo, hi]` edges in
    /// registers (`min + c·width`, clamped to `max` — the exact formula of
    /// `CodeParams::fill_cell_bounds`) and applies `op`'s interval-bound
    /// math lane-wise, writing one `(opt_c, pes_c, opt_{c+1}, pes_{c+1})`
    /// vector per two cells. Cell indices live in `f64` lane accumulators
    /// stepped by `+2.0` — exact for every index ≤ 256, so the edges match
    /// the scalar `c as f64` conversion bit for bit. Bound formulas mirror
    /// the metric impls operation for operation: `maxnum(q, lo)` →
    /// `vmaxpd`, `(w·d)·d` not `w·(d·d)`, no FMA contraction anywhere.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available and `pairs.len()` is
    /// `2 × levels` for a power-of-two (hence even) level count.
    // SAFETY: bounds are enforced by the dispatching `fill_pair_lut`; all
    // stores below stay inside `pairs` because the two-cell steps tile an
    // even-length LUT exactly.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill_pair_lut_avx2(
        op: KernelOp<'_>,
        dim: usize,
        grid: CodeParams,
        query: f64,
        pairs: &mut [f64],
    ) {
        let levels = pairs.len() / 2;
        let vmin = _mm256_set1_pd(grid.min);
        let vmax = _mm256_set1_pd(grid.max);
        let vw = _mm256_set1_pd(grid.cell_width());
        let vq = _mm256_set1_pd(query);
        let two = _mm256_set1_pd(2.0);
        let out = pairs.as_mut_ptr();
        match op {
            KernelOp::Min | KernelOp::WeightedMin(_) => {
                let scale = match op {
                    KernelOp::WeightedMin(w) => Some(_mm256_set1_pd(w[dim])),
                    _ => None,
                };
                // lanes (c+1, c, c+2, c+1): opt reads the cell's top edge,
                // pes its bottom — both edges share the `min(…, max)` clamp
                let mut idx = _mm256_setr_pd(1.0, 0.0, 2.0, 1.0);
                for c in (0..levels).step_by(2) {
                    let e = _mm256_min_pd(_mm256_add_pd(vmin, _mm256_mul_pd(idx, vw)), vmax);
                    let mut v = _mm256_min_pd(e, vq);
                    if let Some(s) = scale {
                        v = _mm256_mul_pd(s, v);
                    }
                    _mm256_storeu_pd(out.add(2 * c), v);
                    idx = _mm256_add_pd(idx, two);
                }
            }
            KernelOp::SquaredDiff | KernelOp::WeightedSquaredDiff(_) => {
                let scale = match op {
                    KernelOp::WeightedSquaredDiff(w) => Some(_mm256_set1_pd(w[dim])),
                    _ => None,
                };
                let mut ilo = _mm256_setr_pd(0.0, 0.0, 1.0, 1.0);
                let mut ihi = _mm256_setr_pd(1.0, 1.0, 2.0, 2.0);
                for c in (0..levels).step_by(2) {
                    let lo = _mm256_min_pd(_mm256_add_pd(vmin, _mm256_mul_pd(ilo, vw)), vmax);
                    let hi = _mm256_min_pd(_mm256_add_pd(vmin, _mm256_mul_pd(ihi, vw)), vmax);
                    // best: distance to the clamped nearest point of the cell
                    let d = _mm256_sub_pd(_mm256_min_pd(_mm256_max_pd(vq, lo), hi), vq);
                    let best = match scale {
                        Some(s) => _mm256_mul_pd(_mm256_mul_pd(s, d), d),
                        None => _mm256_mul_pd(d, d),
                    };
                    // worst: the farther endpoint
                    let dl = _mm256_sub_pd(lo, vq);
                    let dh = _mm256_sub_pd(hi, vq);
                    let mut worst = _mm256_max_pd(_mm256_mul_pd(dl, dl), _mm256_mul_pd(dh, dh));
                    if let Some(s) = scale {
                        worst = _mm256_mul_pd(s, worst);
                    }
                    _mm256_storeu_pd(out.add(2 * c), _mm256_blend_pd::<0b1010>(best, worst));
                    ilo = _mm256_add_pd(ilo, two);
                    ihi = _mm256_add_pd(ihi, two);
                }
            }
        }
    }

    /// The per-shape contribution of 4 gathered-or-loaded values. The
    /// operation order matches [`KernelOp::apply`] exactly: `min` then
    /// weight, and `(w·d)·d` (not `w·(d·d)`) for the weighted square — no
    /// FMA contraction anywhere, or bit-identity would break.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available.
    // SAFETY: pure register arithmetic; only reachable from AVX2 kernels
    // that already established feature support.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn contribution_quad(op: KernelOp<'_>, dim: usize, v: __m256d, q: __m256d) -> __m256d {
        match op {
            KernelOp::Min => _mm256_min_pd(v, q),
            KernelOp::SquaredDiff => {
                let d = _mm256_sub_pd(v, q);
                _mm256_mul_pd(d, d)
            }
            KernelOp::WeightedMin(w) => _mm256_mul_pd(_mm256_set1_pd(w[dim]), _mm256_min_pd(v, q)),
            KernelOp::WeightedSquaredDiff(w) => {
                let d = _mm256_sub_pd(v, q);
                _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(w[dim]), d), d)
            }
        }
    }

    /// Dense AVX2 accumulate: 4 contiguous rows per iteration.
    ///
    /// # Safety
    /// Caller guarantees AVX2 and `values.len() == acc.len()`.
    // SAFETY: dispatched from `accumulate` only after `is_supported` and
    // the length assert; pointer arithmetic stays inside those bounds.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_avx2(
        op: KernelOp<'_>,
        dim: usize,
        values: &[f64],
        query: f64,
        acc: &mut [f64],
    ) {
        let n = values.len();
        let q = _mm256_set1_pd(query);
        let vp = values.as_ptr();
        let ap = acc.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(vp.add(i));
            let c = contribution_quad(op, dim, v, q);
            let a = _mm256_loadu_pd(ap.add(i));
            _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a, c));
            i += 4;
        }
        while i < n {
            *ap.add(i) += op.apply(dim, *vp.add(i), query);
            i += 1;
        }
    }

    /// Gathered AVX2 accumulate: 4 list rows per iteration, value loads
    /// via `vpgatherdq` on the 32-bit row ids.
    ///
    /// # Safety
    /// Caller guarantees AVX2, `rows.len() == acc.len()`, every row id in
    /// bounds of `values`, and `values.len() ≤ i32::MAX` (gather indices
    /// are signed 32-bit).
    // SAFETY: dispatched from `accumulate_gather` only after checking all
    // of the above; pointer arithmetic stays inside those bounds.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_gather_avx2(
        op: KernelOp<'_>,
        dim: usize,
        values: &[f64],
        rows: &[RowId],
        query: f64,
        acc: &mut [f64],
    ) {
        let n = rows.len();
        let q = _mm256_set1_pd(query);
        let vp = values.as_ptr();
        let rp = rows.as_ptr();
        let ap = acc.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let idx = _mm_loadu_si128(rp.add(i).cast::<__m128i>());
            let v = _mm256_i32gather_pd::<8>(vp, idx);
            let c = contribution_quad(op, dim, v, q);
            let a = _mm256_loadu_pd(ap.add(i));
            _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a, c));
            i += 4;
        }
        while i < n {
            *ap.add(i) += op.apply(dim, *vp.add(*rp.add(i) as usize), query);
            i += 1;
        }
    }

    /// Dense AVX2 mass accumulate: `acc[i] += values[i]`.
    ///
    /// # Safety
    /// Caller guarantees AVX2 and `values.len() == acc.len()`.
    // SAFETY: dispatched from `add_assign` only after `is_supported` and
    // the length assert.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign_avx2(values: &[f64], acc: &mut [f64]) {
        let n = values.len();
        let vp = values.as_ptr();
        let ap = acc.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(vp.add(i));
            let a = _mm256_loadu_pd(ap.add(i));
            _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a, v));
            i += 4;
        }
        while i < n {
            *ap.add(i) += *vp.add(i);
            i += 1;
        }
    }

    /// Gathered AVX2 mass accumulate: `acc[i] += values[rows[i]]`.
    ///
    /// # Safety
    /// Same contract as [`accumulate_gather_avx2`].
    // SAFETY: dispatched from `add_assign_gather` only after checking
    // feature support, row bounds and the 32-bit index limit.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign_gather_avx2(values: &[f64], rows: &[RowId], acc: &mut [f64]) {
        let n = rows.len();
        let vp = values.as_ptr();
        let rp = rows.as_ptr();
        let ap = acc.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let idx = _mm_loadu_si128(rp.add(i).cast::<__m128i>());
            let v = _mm256_i32gather_pd::<8>(vp, idx);
            let a = _mm256_loadu_pd(ap.add(i));
            _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a, v));
            i += 4;
        }
        while i < n {
            *ap.add(i) += *vp.add(*rp.add(i) as usize);
            i += 1;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use core::arch::aarch64::{
        float64x2_t, vaddq_f64, vcombine_f64, vdupq_n_f64, vld1_f64, vld1q_f64, vminnmq_f64,
        vmulq_f64, vst1q_f64, vsubq_f64,
    };

    use bond_metrics::KernelOp;

    /// NEON sweep: arithmetic runs two rows per 128-bit vector; the LUT
    /// lookups are lane-gathered (NEON has no gather instruction).
    pub(super) fn sweep_neon(
        codes: &[u8],
        opt_lut: &[f64],
        pes_lut: &[f64],
        opt: &mut [f64],
        pes: &mut [f64],
    ) {
        let n = codes.len();
        let lut_mask = opt_lut.len() - 1;
        let mut i = 0usize;
        while i + 2 <= n {
            let c0 = (codes[i] as usize) & lut_mask;
            let c1 = (codes[i + 1] as usize) & lut_mask;
            // SAFETY: NEON is baseline on aarch64; `i + 2 <= n` bounds all
            // lane loads/stores, and the LUT indices are masked.
            unsafe {
                let og = vcombine_f64(vld1_f64(&opt_lut[c0]), vld1_f64(&opt_lut[c1]));
                let o = vld1q_f64(opt.as_ptr().add(i));
                vst1q_f64(opt.as_mut_ptr().add(i), vaddq_f64(o, og));
                let pg = vcombine_f64(vld1_f64(&pes_lut[c0]), vld1_f64(&pes_lut[c1]));
                let p = vld1q_f64(pes.as_ptr().add(i));
                vst1q_f64(pes.as_mut_ptr().add(i), vaddq_f64(p, pg));
            }
            i += 2;
        }
        while i < n {
            let c = (codes[i] as usize) & lut_mask;
            opt[i] += opt_lut[c];
            pes[i] += pes_lut[c];
            i += 1;
        }
    }

    /// Two-lane contribution matching [`KernelOp::apply`] op for op.
    /// `vminnmq_f64` is IEEE `minNum` — the same semantics as Rust's
    /// `f64::min` — and the weighted square keeps the `(w·d)·d` order.
    ///
    /// # Safety
    /// NEON is baseline on aarch64; register arithmetic only.
    // SAFETY: pure register arithmetic; NEON is unconditionally available
    // on aarch64 targets.
    #[inline]
    unsafe fn contribution_pair(
        op: KernelOp<'_>,
        dim: usize,
        v: float64x2_t,
        q: float64x2_t,
    ) -> float64x2_t {
        match op {
            KernelOp::Min => vminnmq_f64(v, q),
            KernelOp::SquaredDiff => {
                let d = vsubq_f64(v, q);
                vmulq_f64(d, d)
            }
            KernelOp::WeightedMin(w) => vmulq_f64(vdupq_n_f64(w[dim]), vminnmq_f64(v, q)),
            KernelOp::WeightedSquaredDiff(w) => {
                let d = vsubq_f64(v, q);
                vmulq_f64(vmulq_f64(vdupq_n_f64(w[dim]), d), d)
            }
        }
    }

    /// Dense NEON accumulate: two contiguous rows per iteration.
    pub(super) fn accumulate_neon(
        op: KernelOp<'_>,
        dim: usize,
        values: &[f64],
        query: f64,
        acc: &mut [f64],
    ) {
        let n = values.len();
        let mut i = 0usize;
        // SAFETY: NEON is baseline on aarch64; the loop bound keeps every
        // two-lane load/store inside the equal-length slices.
        unsafe {
            let q = vdupq_n_f64(query);
            while i + 2 <= n {
                let v = vld1q_f64(values.as_ptr().add(i));
                let c = contribution_pair(op, dim, v, q);
                let a = vld1q_f64(acc.as_ptr().add(i));
                vst1q_f64(acc.as_mut_ptr().add(i), vaddq_f64(a, c));
                i += 2;
            }
        }
        while i < n {
            acc[i] += op.apply(dim, values[i], query);
            i += 1;
        }
    }

    /// Dense NEON mass accumulate: `acc[i] += values[i]`.
    pub(super) fn add_assign_neon(values: &[f64], acc: &mut [f64]) {
        let n = values.len();
        let mut i = 0usize;
        // SAFETY: NEON is baseline on aarch64; the loop bound keeps every
        // two-lane load/store inside the equal-length slices.
        unsafe {
            while i + 2 <= n {
                let v = vld1q_f64(values.as_ptr().add(i));
                let a = vld1q_f64(acc.as_ptr().add(i));
                vst1q_f64(acc.as_mut_ptr().add(i), vaddq_f64(a, v));
                i += 2;
            }
        }
        while i < n {
            acc[i] += values[i];
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bond_metrics::{
        DecomposableMetric, HistogramIntersection, SquaredEuclidean, WeightedHistogramIntersection,
        WeightedSquaredEuclidean,
    };

    fn xorshift(seed: &mut u64) -> f64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        (*seed >> 11) as f64 / (1u64 << 53) as f64
    }

    fn supported() -> Vec<Kernel> {
        Kernel::ALL.into_iter().filter(|k| k.is_supported()).collect()
    }

    #[test]
    fn selection_rules() {
        assert_eq!(Kernel::select(Some("scalar")), Kernel::Scalar);
        assert_eq!(Kernel::select(Some("nonsense")), Kernel::Scalar);
        assert_eq!(Kernel::select(Some(" avx2 ")), Kernel::select(Some("avx2")));
        // a recognised but unsupported flavour degrades to scalar
        if !Kernel::Neon.is_supported() {
            assert_eq!(Kernel::select(Some("neon")), Kernel::Scalar);
        }
        if Kernel::Avx2.is_supported() {
            assert_eq!(Kernel::select(Some("avx2")), Kernel::Avx2);
            assert_eq!(Kernel::select(None), Kernel::Avx2);
        }
        assert_eq!(Kernel::select(None), Kernel::preferred());
        // labels round-trip through from_name
        for k in Kernel::ALL {
            assert_eq!(Kernel::from_name(k.label()), Some(k));
        }
        assert!(Kernel::Scalar.is_supported());
        // active() is stable across calls
        assert_eq!(Kernel::active(), Kernel::active());
    }

    #[test]
    fn sweeps_are_bit_identical_across_kernels() {
        let mut seed = 0x0123_4567_89AB_CDEFu64;
        for bits in [1u32, 2, 4, 6, 8] {
            let levels = 1usize << bits;
            // deliberately awkward length: exercises unroll + remainder
            let rows = 203;
            let codes: Vec<u8> =
                (0..rows).map(|_| (xorshift(&mut seed) * levels as f64) as u8).collect();
            let opt_lut: Vec<f64> = (0..levels).map(|_| xorshift(&mut seed) * 2.0 - 1.0).collect();
            let pes_lut: Vec<f64> = (0..levels).map(|_| xorshift(&mut seed) * 2.0 - 1.0).collect();
            let init: Vec<f64> = (0..rows).map(|_| xorshift(&mut seed)).collect();
            let mut opt_ref = init.clone();
            let mut pes_ref = init.clone();
            sweep(Kernel::Scalar, &codes, &opt_lut, &pes_lut, &mut opt_ref, &mut pes_ref);
            for kernel in supported() {
                let mut opt = init.clone();
                let mut pes = init.clone();
                sweep(kernel, &codes, &opt_lut, &pes_lut, &mut opt, &mut pes);
                for i in 0..rows {
                    assert_eq!(
                        opt[i].to_bits(),
                        opt_ref[i].to_bits(),
                        "{}: opt diverges at row {i}, bits {bits}",
                        kernel.label()
                    );
                    assert_eq!(
                        pes[i].to_bits(),
                        pes_ref[i].to_bits(),
                        "{}: pes diverges at row {i}, bits {bits}",
                        kernel.label()
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_codes_alias_instead_of_faulting() {
        // only the vector paths mask; feed them codes beyond the LUT and
        // check they stay in bounds and deterministic
        let codes = vec![255u8; 37];
        let opt_lut = vec![1.0; 4];
        let pes_lut = vec![2.0; 4];
        for kernel in supported() {
            if kernel == Kernel::Scalar {
                continue; // the scalar path indexes directly and would panic
            }
            let mut opt = vec![0.0; 37];
            let mut pes = vec![0.0; 37];
            sweep(kernel, &codes, &opt_lut, &pes_lut, &mut opt, &mut pes);
            assert!(opt.iter().all(|&o| o == 1.0));
            assert!(pes.iter().all(|&p| p == 2.0));
        }
    }

    #[test]
    fn accumulates_are_bit_identical_across_kernels() {
        let wh =
            WeightedHistogramIntersection::new((0..33).map(|d| d as f64 * 0.25).collect()).unwrap();
        let we =
            WeightedSquaredEuclidean::new((0..33).map(|d| 0.1 + d as f64 * 0.3).collect()).unwrap();
        let metrics: Vec<&dyn DecomposableMetric> =
            vec![&HistogramIntersection, &SquaredEuclidean, &wh, &we];
        let mut seed = 0xFEED_FACE_0BAD_F00Du64;
        let rows = 131;
        let values: Vec<f64> = (0..rows).map(|_| xorshift(&mut seed)).collect();
        let init: Vec<f64> = (0..rows).map(|_| xorshift(&mut seed)).collect();
        let list: Vec<RowId> = (0..rows).filter(|r| r % 3 != 1).map(|r| r as RowId).rev().collect();
        for metric in metrics {
            let op = metric.kernel_op().unwrap();
            for dim in [0usize, 17, 32] {
                let q = xorshift(&mut seed);
                let mut dense_ref = init.clone();
                accumulate(Kernel::Scalar, op, dim, &values, q, &mut dense_ref);
                let mut gather_ref = vec![0.5f64; list.len()];
                accumulate_gather(Kernel::Scalar, op, dim, &values, &list, q, &mut gather_ref);
                for kernel in supported() {
                    let mut dense = init.clone();
                    accumulate(kernel, op, dim, &values, q, &mut dense);
                    assert!(
                        dense.iter().zip(&dense_ref).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{}: dense accumulate diverges ({})",
                        kernel.label(),
                        metric.name()
                    );
                    let mut gathered = vec![0.5f64; list.len()];
                    accumulate_gather(kernel, op, dim, &values, &list, q, &mut gathered);
                    assert!(
                        gathered.iter().zip(&gather_ref).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{}: gathered accumulate diverges ({})",
                        kernel.label(),
                        metric.name()
                    );
                }
            }
        }
    }

    #[test]
    fn mass_kernels_are_bit_identical_across_kernels() {
        let mut seed = 0x0F0F_F0F0_1234_8765u64;
        let rows = 97;
        let values: Vec<f64> = (0..rows).map(|_| xorshift(&mut seed)).collect();
        let init: Vec<f64> = (0..rows).map(|_| xorshift(&mut seed)).collect();
        let list: Vec<RowId> = (0..rows as RowId).filter(|r| r % 2 == 0).collect();
        let mut dense_ref = init.clone();
        add_assign(Kernel::Scalar, &values, &mut dense_ref);
        let mut gather_ref = vec![0.25f64; list.len()];
        add_assign_gather(Kernel::Scalar, &values, &list, &mut gather_ref);
        for kernel in supported() {
            let mut dense = init.clone();
            add_assign(kernel, &values, &mut dense);
            assert!(dense.iter().zip(&dense_ref).all(|(a, b)| a.to_bits() == b.to_bits()));
            let mut gathered = vec![0.25f64; list.len()];
            add_assign_gather(kernel, &values, &list, &mut gathered);
            assert!(gathered.iter().zip(&gather_ref).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}
