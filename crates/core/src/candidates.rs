//! Candidate-set representations.
//!
//! Section 6.1: while selectivity is still low, materialising the surviving
//! candidates into new base tables would copy most of the collection, so the
//! early iterations represent the candidate set as a *bitmap* over the dense
//! row ids; once the set has shrunk enough, the engine switches to an
//! explicit row-id list ("the 'standard' positional joins approach,
//! resulting in much smaller base tables for the subsequent iterations").
//! [`CandidateSet`] encapsulates both phases behind one interface and
//! performs the switch automatically.

use vdstore::{Bitmap, RowId};

/// The evolving candidate set of a BOND search.
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateSet {
    /// Early phase: a bitmap over all row ids.
    Bits(Bitmap),
    /// Late phase: an explicit, ascending list of surviving row ids.
    List(Vec<RowId>),
}

impl CandidateSet {
    /// Starts from the given live-row bitmap (all non-deleted rows, possibly
    /// pre-filtered by another predicate as Section 6.1 suggests).
    pub fn from_bitmap(live: Bitmap) -> Self {
        CandidateSet::Bits(live)
    }

    /// Starts with every row of an `rows`-row table alive.
    pub fn all(rows: usize) -> Self {
        CandidateSet::Bits(Bitmap::full(rows))
    }

    /// Number of surviving candidates.
    pub fn len(&self) -> usize {
        match self {
            CandidateSet::Bits(b) => b.count(),
            CandidateSet::List(l) => l.len(),
        }
    }

    /// Whether no candidates survive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the set is still in the bitmap phase.
    pub fn is_bitmap(&self) -> bool {
        matches!(self, CandidateSet::Bits(_))
    }

    /// Calls `f` for every surviving row id, in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(RowId)) {
        match self {
            CandidateSet::Bits(b) => {
                for row in b.iter() {
                    f(row);
                }
            }
            CandidateSet::List(l) => {
                for &row in l {
                    f(row);
                }
            }
        }
    }

    /// Retains only the rows for which `keep` returns `true`; returns the
    /// number of rows removed.
    pub fn retain(&mut self, mut keep: impl FnMut(RowId) -> bool) -> usize {
        match self {
            CandidateSet::Bits(b) => {
                let mut removed = 0;
                let doomed: Vec<RowId> = b.iter().filter(|&r| !keep(r)).collect();
                for r in doomed {
                    b.clear(r);
                    removed += 1;
                }
                removed
            }
            CandidateSet::List(l) => {
                let before = l.len();
                l.retain(|&r| keep(r));
                before - l.len()
            }
        }
    }

    /// Materialises the bitmap into an explicit row list if the surviving
    /// fraction has dropped below `threshold` (a no-op in the list phase).
    /// Returns `true` if a switch happened.
    pub fn maybe_materialize(&mut self, threshold: f64) -> bool {
        if let CandidateSet::Bits(b) = self {
            if b.density() <= threshold {
                let list = b.to_rows();
                *self = CandidateSet::List(list);
                return true;
            }
        }
        false
    }

    /// The explicit row list, when the set has been materialised — the
    /// gathered scan kernels read it directly instead of re-collecting.
    pub fn as_list(&self) -> Option<&[RowId]> {
        match self {
            CandidateSet::Bits(_) => None,
            CandidateSet::List(l) => Some(l),
        }
    }

    /// The surviving row ids as a vector (ascending).
    pub fn to_rows(&self) -> Vec<RowId> {
        match self {
            CandidateSet::Bits(b) => b.to_rows(),
            CandidateSet::List(l) => l.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_len() {
        let c = CandidateSet::all(100);
        assert_eq!(c.len(), 100);
        assert!(c.is_bitmap());
        assert!(!c.is_empty());
        assert!(CandidateSet::List(vec![]).is_empty());
    }

    #[test]
    fn from_bitmap_respects_prior_predicate() {
        let live = Bitmap::from_rows(10, &[1, 3, 5]);
        let c = CandidateSet::from_bitmap(live);
        assert_eq!(c.to_rows(), vec![1, 3, 5]);
    }

    #[test]
    fn retain_in_both_phases() {
        let mut c = CandidateSet::all(10);
        let removed = c.retain(|r| r % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(c.to_rows(), vec![0, 2, 4, 6, 8]);

        let mut l = CandidateSet::List(vec![0, 2, 4, 6, 8]);
        let removed = l.retain(|r| r > 3);
        assert_eq!(removed, 2);
        assert_eq!(l.to_rows(), vec![4, 6, 8]);
    }

    #[test]
    fn for_each_visits_ascending() {
        let c = CandidateSet::List(vec![2, 5, 9]);
        let mut seen = Vec::new();
        c.for_each(|r| seen.push(r));
        assert_eq!(seen, vec![2, 5, 9]);
    }

    #[test]
    fn as_list_only_in_list_phase() {
        assert_eq!(CandidateSet::all(4).as_list(), None);
        assert_eq!(CandidateSet::List(vec![1, 2]).as_list(), Some(&[1u32, 2u32][..]));
    }

    #[test]
    fn materialization_switch() {
        let mut c = CandidateSet::all(100);
        // density 1.0: no switch at threshold 0.2
        assert!(!c.maybe_materialize(0.2));
        assert!(c.is_bitmap());
        c.retain(|r| r < 10);
        // density 0.1 <= 0.2: switch
        assert!(c.maybe_materialize(0.2));
        assert!(!c.is_bitmap());
        assert_eq!(c.len(), 10);
        // second call is a no-op
        assert!(!c.maybe_materialize(0.2));
    }
}
