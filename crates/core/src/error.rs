//! Error type for the BOND engine.

use std::fmt;

use vdstore::VdError;

/// Errors produced by BOND searches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BondError {
    /// The underlying storage layer reported an error.
    Storage(VdError),
    /// `k` is zero or exceeds the number of live rows.
    InvalidK {
        /// Requested k.
        k: usize,
        /// Live rows available.
        rows: usize,
    },
    /// The query's dimensionality does not match the table.
    QueryDimensionMismatch {
        /// Table dimensionality.
        expected: usize,
        /// Query dimensionality.
        actual: usize,
    },
    /// The weight vector's dimensionality does not match the table.
    WeightDimensionMismatch {
        /// Table dimensionality.
        expected: usize,
        /// Weight vector dimensionality.
        actual: usize,
    },
    /// A per-feature query of a multi-feature spec does not match its
    /// feature collection's dimensionality.
    FeatureDimensionMismatch {
        /// Index of the offending feature within the spec.
        feature: usize,
        /// The feature collection's dimensionality.
        expected: usize,
        /// The supplied query's dimensionality.
        actual: usize,
    },
    /// An eligibility filter is unusable: its bitmap addresses a different
    /// row domain than the table, or it leaves no live row eligible. The
    /// message states which.
    InvalidFilter(String),
    /// Invalid parameter combination, described in the message.
    InvalidParams(String),
    /// A serving front-end could not complete the request (shut down, or
    /// its worker died before answering).
    ServiceUnavailable(String),
}

impl fmt::Display for BondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BondError::Storage(e) => write!(f, "storage error: {e}"),
            BondError::InvalidK { k, rows } => {
                write!(f, "invalid k = {k} for a collection with {rows} live rows")
            }
            BondError::QueryDimensionMismatch { expected, actual } => {
                write!(f, "query has {actual} dimensions, table has {expected}")
            }
            BondError::WeightDimensionMismatch { expected, actual } => {
                write!(f, "weight vector has {actual} dimensions, table has {expected}")
            }
            BondError::FeatureDimensionMismatch { feature, expected, actual } => {
                write!(
                    f,
                    "feature {feature}: query has {actual} dimensions, collection has {expected}"
                )
            }
            BondError::InvalidFilter(msg) => write!(f, "invalid filter: {msg}"),
            BondError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            BondError::ServiceUnavailable(msg) => write!(f, "service unavailable: {msg}"),
        }
    }
}

impl std::error::Error for BondError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BondError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VdError> for BondError {
    fn from(e: VdError) -> Self {
        BondError::Storage(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, BondError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BondError::InvalidK { k: 100, rows: 10 };
        assert!(e.to_string().contains("k = 100"));
        let e = BondError::QueryDimensionMismatch { expected: 166, actual: 64 };
        assert!(e.to_string().contains("166"));
        let e: BondError = VdError::Empty("columns").into();
        assert!(matches!(e, BondError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e = BondError::InvalidParams("bad".into());
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("bad"));
        let e = BondError::WeightDimensionMismatch { expected: 4, actual: 2 };
        assert!(e.to_string().contains("weight"));
        let e = BondError::ServiceUnavailable("shut down".into());
        assert!(e.to_string().contains("service unavailable"));
        assert!(std::error::Error::source(&e).is_none());
        let e = BondError::InvalidFilter("covers 9 rows, table has 10".into());
        assert!(e.to_string().contains("invalid filter"));
        let e = BondError::FeatureDimensionMismatch { feature: 1, expected: 8, actual: 3 };
        assert!(e.to_string().contains("feature 1"));
        assert!(e.to_string().contains('8'));
    }
}
