//! Synchronized multi-feature search (Section 8.2).
//!
//! A complex query evaluates several feature collections at once — e.g.
//! "the k images with the best weighted average of color similarity to A and
//! texture similarity to B". Instead of running one ranked stream per
//! feature and merging them (the classical approach, implemented as the
//! `stream_merge` baseline), BOND treats the union of all feature dimensions
//! as one large set of dimensions: it scans blocks of the most promising
//! dimensions across *all* collections simultaneously, maintains per-feature
//! partial scores, converts the per-feature score bounds to similarity
//! bounds, combines them through the monotonic aggregate, and prunes on the
//! combined bounds.
//!
//! Every feature collection may use its own metric; Euclidean components are
//! mapped onto the `[0, 1]` similarity scale with Equation 3 so they can be
//! aggregated with histogram-intersection components.

use std::ops::Range;

use bond_metrics::{
    CandidateState, DecomposableMetric, EvRule, HhRule, HistogramIntersection, PruningRule,
    ScoreAggregate, SquaredEuclidean,
};
use vdstore::topk::Scored;
use vdstore::{Bitmap, DecomposedTable, RowId, TopKLargest};

use crate::error::{BondError, Result};
use crate::kappa::KappaCell;
use crate::schedule::BlockSchedule;
use crate::trace::{PruneTrace, TraceCheckpoint};

/// Which metric a feature collection is searched with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureMetricKind {
    /// Histogram intersection (similarity in `[0, 1]`), pruned with Hh.
    HistogramIntersection,
    /// Squared Euclidean distance mapped to a similarity with Equation 3,
    /// pruned with Ev.
    Euclidean,
}

/// One component of a multi-feature query.
#[derive(Debug, Clone)]
pub struct FeatureQuery {
    /// The query vector for this feature collection.
    pub query: Vec<f64>,
    /// The metric used within this collection.
    pub metric: FeatureMetricKind,
}

/// The outcome of a synchronized multi-feature search.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFeatureOutcome {
    /// The k best rows by aggregate similarity, best first.
    pub hits: Vec<Scored>,
    /// Pruning trace over the combined dimension sequence.
    pub trace: PruneTrace,
}

/// Shared context for a (possibly partitioned) synchronized multi-feature
/// search — the multi-feature analogue of [`crate::SegmentContext`].
///
/// [`MultiFeatureSearcher::search`] uses the default (no sharing, no
/// filter); the execution engine fills it in once per query and hands it to
/// every segment worker, so segments pool their combined-score κ and an
/// eligibility predicate restricts the scan.
#[derive(Default)]
pub struct MultiFeatureContext<'k> {
    /// Shared κ cell over the *combined* similarity (`Objective::Maximize`);
    /// `None` runs the range in isolation.
    pub kappa: Option<&'k dyn KappaCell>,
    /// Per-feature full-table row sums `T(x)`, outer-indexed by feature.
    /// Computed on the fly when absent — the engine precomputes them once
    /// per query so segment workers don't each re-derive them.
    pub total_mass: Option<&'k [Vec<f64>]>,
    /// Eligibility bitmap local to the searched range (bit `i` = row
    /// `range.start + i`): carries tombstones and/or a relational predicate.
    /// `None` scans every row of the range.
    pub filter: Option<&'k Bitmap>,
}

/// A synchronized searcher over several feature collections that share the
/// same row-id space (one row = one object, e.g. one image).
#[derive(Debug)]
pub struct MultiFeatureSearcher<'a> {
    tables: Vec<&'a DecomposedTable>,
}

struct FeatureState<'t> {
    query: Vec<f64>,
    kind: FeatureMetricKind,
    dims: usize,
    partial: Vec<f64>,
    scanned_mass: Vec<f64>,
    total_mass: &'t [f64],
    processed: Vec<usize>,
    remaining: Vec<usize>,
}

impl FeatureState<'_> {
    fn similarity_bounds(&self, rule: &dyn PruningRule, row: RowId) -> (f64, f64) {
        let idx = row as usize;
        let state = CandidateState {
            partial: self.partial[idx],
            scanned_mass: self.scanned_mass[idx],
            total_mass: self.total_mass[idx],
        };
        let (lo, hi) = rule.bounds(&state);
        match self.kind {
            FeatureMetricKind::HistogramIntersection => (lo, hi),
            FeatureMetricKind::Euclidean => {
                // distance bounds -> similarity bounds (Equation 3), order flips
                let sim_hi = SquaredEuclidean::similarity_from_distance(lo, self.dims);
                let sim_lo = SquaredEuclidean::similarity_from_distance(hi, self.dims);
                (sim_lo, sim_hi)
            }
        }
    }

    fn exact_similarity(&self, row: RowId) -> f64 {
        match self.kind {
            FeatureMetricKind::HistogramIntersection => self.partial[row as usize],
            FeatureMetricKind::Euclidean => {
                SquaredEuclidean::similarity_from_distance(self.partial[row as usize], self.dims)
            }
        }
    }
}

impl<'a> MultiFeatureSearcher<'a> {
    /// Creates a searcher over feature collections that all have the same
    /// number of rows.
    pub fn new(tables: Vec<&'a DecomposedTable>) -> Result<Self> {
        let first = tables.first().ok_or_else(|| {
            BondError::InvalidParams("need at least one feature collection".into())
        })?;
        for t in &tables {
            if t.rows() != first.rows() {
                return Err(BondError::InvalidParams(format!(
                    "feature collections must share the row space ({} vs {} rows)",
                    first.rows(),
                    t.rows()
                )));
            }
        }
        Ok(MultiFeatureSearcher { tables })
    }

    /// Number of objects in the shared row space.
    pub fn rows(&self) -> usize {
        self.tables.first().map(|t| t.rows()).unwrap_or(0)
    }

    /// Runs the synchronized search: the k rows with the largest aggregate
    /// similarity over all feature components.
    ///
    /// `block` dimensions are scanned between pruning attempts (across all
    /// features combined); the global dimension order interleaves features
    /// by decreasing query value scaled by the aggregate's sensitivity to
    /// that feature (its weight for a weighted average, 1 otherwise).
    pub fn search(
        &self,
        queries: &[FeatureQuery],
        aggregate: &dyn ScoreAggregate,
        k: usize,
        schedule: BlockSchedule,
    ) -> Result<MultiFeatureOutcome> {
        let rows = self.rows();
        if k == 0 || k > rows {
            return Err(BondError::InvalidK { k, rows });
        }
        self.search_range(queries, aggregate, k, schedule, 0..rows, &MultiFeatureContext::default())
    }

    /// Runs the synchronized search restricted to one contiguous row range.
    ///
    /// This is [`MultiFeatureSearcher::search`] generalised the same way
    /// [`crate::search_segment`] generalises the single-feature searcher:
    /// the scan covers only `range`'s rows (further narrowed by
    /// `ctx.filter`), and an externally supplied [`KappaCell`] may tighten
    /// the combined-similarity κ with lower bounds proven by other segments
    /// of the same query. Returned rows are global ids with *exact* combined
    /// similarities, so per-segment outcomes merge into the global top-k by
    /// score alone. Unlike the full entry point, `k` may exceed the range's
    /// eligible row count: the range then reports everything it holds.
    pub fn search_range(
        &self,
        queries: &[FeatureQuery],
        aggregate: &dyn ScoreAggregate,
        k: usize,
        schedule: BlockSchedule,
        range: Range<usize>,
        ctx: &MultiFeatureContext<'_>,
    ) -> Result<MultiFeatureOutcome> {
        if queries.len() != self.tables.len() {
            return Err(BondError::InvalidParams(format!(
                "{} feature queries supplied for {} collections",
                queries.len(),
                self.tables.len()
            )));
        }
        let rows = self.rows();
        if k == 0 {
            return Err(BondError::InvalidK { k, rows });
        }
        if range.start > range.end || range.end > rows {
            return Err(BondError::InvalidParams(format!(
                "range {range:?} exceeds the {rows}-row collection"
            )));
        }
        for (f, q) in queries.iter().enumerate() {
            if q.query.len() != self.tables[f].dims() {
                return Err(BondError::FeatureDimensionMismatch {
                    feature: f,
                    expected: self.tables[f].dims(),
                    actual: q.query.len(),
                });
            }
        }
        if let Some(filter) = ctx.filter {
            if filter.len() != range.len() {
                return Err(BondError::InvalidFilter(format!(
                    "range filter covers {} rows but the range has {}",
                    filter.len(),
                    range.len()
                )));
            }
        }
        if let Some(mass) = ctx.total_mass {
            if mass.len() != self.tables.len() {
                return Err(BondError::InvalidParams(format!(
                    "{} total-mass vectors supplied for {} collections",
                    mass.len(),
                    self.tables.len()
                )));
            }
        }

        // Per-feature state and rules. Bookkeeping vectors stay indexed by
        // global row id so the block loop is byte-for-byte the full-table
        // scan — partial sums accumulate in the same order for any range,
        // which is what keeps per-segment answers bit-identical to the
        // sequential searcher's.
        let computed_mass: Vec<Vec<f64>> = if ctx.total_mass.is_none() {
            self.tables.iter().map(|t| t.row_sums()).collect()
        } else {
            Vec::new()
        };
        let mut states: Vec<FeatureState<'_>> = queries
            .iter()
            .enumerate()
            .map(|(f, q)| {
                let table = self.tables[f];
                FeatureState {
                    query: q.query.clone(),
                    kind: q.metric,
                    dims: table.dims(),
                    partial: vec![0.0; rows],
                    scanned_mass: vec![0.0; rows],
                    total_mass: match ctx.total_mass {
                        Some(mass) => &mass[f],
                        None => &computed_mass[f],
                    },
                    processed: Vec::new(),
                    remaining: (0..table.dims()).collect(),
                }
            })
            .collect();
        let mut rules: Vec<Box<dyn PruningRule>> = queries
            .iter()
            .map(|q| match q.metric {
                FeatureMetricKind::HistogramIntersection => {
                    Box::new(HhRule::new()) as Box<dyn PruningRule>
                }
                FeatureMetricKind::Euclidean => Box::new(EvRule::new()) as Box<dyn PruningRule>,
            })
            .collect();

        // Global dimension order: (feature, dim) sorted by decreasing query
        // value (the per-feature skew heuristic applied to the union).
        let mut global_order: Vec<(usize, usize)> = Vec::new();
        for (f, q) in queries.iter().enumerate() {
            for d in 0..q.query.len() {
                global_order.push((f, d));
            }
        }
        global_order.sort_by(|&(fa, da), &(fb, db)| {
            let ka = queries[fa].query[da];
            let kb = queries[fb].query[db];
            kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
        });
        let total_dims = global_order.len();

        let mut alive: Vec<RowId> = match ctx.filter {
            Some(filter) => filter.iter().map(|local| local + range.start as RowId).collect(),
            None => (range.start as RowId..range.end as RowId).collect(),
        };
        let mut trace = PruneTrace::default();
        let hist_metric = HistogramIntersection;
        let euclid_metric = SquaredEuclidean;

        let mut processed = 0usize;
        let mut attempts = 0usize;
        loop {
            let block = schedule.next_block(processed, total_dims, attempts);
            if block == 0 {
                break;
            }
            for &(f, d) in &global_order[processed..processed + block] {
                let column = self.tables[f].column(d)?;
                let values = column.values();
                let state = &mut states[f];
                let q = state.query[d];
                for &row in &alive {
                    let v = values[row as usize];
                    let contribution = match state.kind {
                        FeatureMetricKind::HistogramIntersection => {
                            hist_metric.contribution(d, v, q)
                        }
                        FeatureMetricKind::Euclidean => euclid_metric.contribution(d, v, q),
                    };
                    state.partial[row as usize] += contribution;
                    state.scanned_mass[row as usize] += v;
                }
                state.processed.push(d);
                state.remaining.retain(|&r| r != d);
            }
            trace.contributions_evaluated += (block * alive.len()) as u64;
            processed += block;
            trace.dims_accessed = processed;

            if alive.len() <= k {
                break;
            }

            // Prepare per-feature rules with their remaining dimensions.
            for (f, rule) in rules.iter_mut().enumerate() {
                rule.prepare(&states[f].query, &states[f].remaining);
            }

            // Global bounds per candidate.
            let mut lower = Vec::with_capacity(alive.len());
            let mut upper = Vec::with_capacity(alive.len());
            let mut feature_lo = vec![0.0; states.len()];
            let mut feature_hi = vec![0.0; states.len()];
            for &row in &alive {
                for (f, state) in states.iter().enumerate() {
                    let (lo, hi) = state.similarity_bounds(rules[f].as_ref(), row);
                    feature_lo[f] = lo;
                    feature_hi[f] = hi;
                }
                let (glo, ghi) = aggregate.combine_bounds(&feature_lo, &feature_hi);
                lower.push(glo);
                upper.push(ghi);
            }
            let mut heap = TopKLargest::new(k);
            for (i, &row) in alive.iter().enumerate() {
                heap.push(row, lower[i]);
            }
            attempts += 1;
            trace.pruning_attempts = attempts;
            let mut pruned_now = 0usize;
            // κ is the k-th largest *combined lower bound*: ≥ k rows are
            // proven to finish at or above it, so it is a globally valid
            // pruning threshold — which is what makes it safe to pool
            // through the shared cell with sibling segments.
            let kappa = match (ctx.kappa, heap.kth()) {
                (Some(cell), Some(local)) => Some(cell.tighten(local)),
                (Some(cell), None) => cell.current(),
                (None, local) => local,
            };
            if let Some(kappa) = kappa {
                let slack = crate::searcher::prune_slack(kappa);
                let before = alive.len();
                let mut idx = 0usize;
                alive.retain(|_| {
                    let keep = upper[idx] >= kappa - slack;
                    idx += 1;
                    keep
                });
                pruned_now = before - alive.len();
            }
            trace.checkpoints.push(TraceCheckpoint {
                dims_processed: processed,
                candidates: alive.len(),
                pruned_now,
            });
            if alive.len() <= k {
                break;
            }
        }

        // Complete the survivors' exact per-feature scores.
        if processed < total_dims {
            for &(f, d) in &global_order[processed..] {
                let column = self.tables[f].column(d)?;
                let values = column.values();
                let state = &mut states[f];
                let q = state.query[d];
                for &row in &alive {
                    let v = values[row as usize];
                    let contribution = match state.kind {
                        FeatureMetricKind::HistogramIntersection => {
                            hist_metric.contribution(d, v, q)
                        }
                        FeatureMetricKind::Euclidean => euclid_metric.contribution(d, v, q),
                    };
                    state.partial[row as usize] += contribution;
                }
            }
            trace.contributions_evaluated += ((total_dims - processed) * alive.len()) as u64;
            trace.dims_accessed = total_dims;
        }

        let mut heap = TopKLargest::new(k);
        let mut component = vec![0.0; states.len()];
        for &row in &alive {
            for (f, state) in states.iter().enumerate() {
                component[f] = state.exact_similarity(row);
            }
            heap.push(row, aggregate.combine(&component));
        }
        // An exact k-th best is itself a valid lower-bound κ: publish it so
        // segments that start later prune harder from their first block.
        if let (Some(cell), Some(kth)) = (ctx.kappa, heap.kth()) {
            cell.tighten(kth);
        }
        Ok(MultiFeatureOutcome { hits: heap.into_sorted_vec(), trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bond_metrics::{FuzzyMin, WeightedAverage};

    fn color_table() -> DecomposedTable {
        DecomposedTable::from_vectors(
            "color",
            &[
                vec![0.7, 0.2, 0.1, 0.0],
                vec![0.1, 0.1, 0.4, 0.4],
                vec![0.25, 0.25, 0.25, 0.25],
                vec![0.6, 0.3, 0.05, 0.05],
                vec![0.0, 0.1, 0.2, 0.7],
            ],
        )
        .unwrap()
    }

    fn texture_table() -> DecomposedTable {
        DecomposedTable::from_vectors(
            "texture",
            &[
                vec![0.9, 0.1, 0.3],
                vec![0.2, 0.8, 0.5],
                vec![0.5, 0.5, 0.5],
                vec![0.1, 0.9, 0.6],
                vec![0.85, 0.15, 0.25],
            ],
        )
        .unwrap()
    }

    fn brute_force(
        color_q: &[f64],
        texture_q: &[f64],
        aggregate: &dyn ScoreAggregate,
        k: usize,
    ) -> Vec<RowId> {
        let color = color_table();
        let texture = texture_table();
        let mut scored: Vec<(RowId, f64)> = (0..color.rows() as RowId)
            .map(|r| {
                let c = HistogramIntersection.score(&color.row(r).unwrap(), color_q);
                let d = SquaredEuclidean.score(&texture.row(r).unwrap(), texture_q);
                let t = SquaredEuclidean::similarity_from_distance(d, texture.dims());
                (r, aggregate.combine(&[c, t]))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let mut rows: Vec<RowId> = scored.into_iter().take(k).map(|(r, _)| r).collect();
        rows.sort_unstable();
        rows
    }

    fn run(aggregate: &dyn ScoreAggregate, k: usize) -> Vec<RowId> {
        let color = color_table();
        let texture = texture_table();
        let searcher = MultiFeatureSearcher::new(vec![&color, &texture]).unwrap();
        let queries = vec![
            FeatureQuery {
                query: vec![0.65, 0.25, 0.05, 0.05],
                metric: FeatureMetricKind::HistogramIntersection,
            },
            FeatureQuery { query: vec![0.9, 0.1, 0.3], metric: FeatureMetricKind::Euclidean },
        ];
        let outcome = searcher.search(&queries, aggregate, k, BlockSchedule::Fixed(2)).unwrap();
        let mut rows: Vec<RowId> = outcome.hits.iter().map(|h| h.row).collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn synchronized_search_matches_brute_force_average() {
        let agg = WeightedAverage::new(vec![0.6, 0.4]).unwrap();
        for k in [1, 2, 3] {
            assert_eq!(
                run(&agg, k),
                brute_force(&[0.65, 0.25, 0.05, 0.05], &[0.9, 0.1, 0.3], &agg, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn synchronized_search_matches_brute_force_min() {
        let agg = FuzzyMin;
        for k in [1, 2] {
            assert_eq!(
                run(&agg, k),
                brute_force(&[0.65, 0.25, 0.05, 0.05], &[0.9, 0.1, 0.3], &agg, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn validation() {
        let color = color_table();
        let texture = texture_table();
        let small = DecomposedTable::from_vectors("s", &[vec![1.0]]).unwrap();
        assert!(MultiFeatureSearcher::new(vec![]).is_err());
        assert!(MultiFeatureSearcher::new(vec![&color, &small]).is_err());
        let searcher = MultiFeatureSearcher::new(vec![&color, &texture]).unwrap();
        assert_eq!(searcher.rows(), 5);
        let agg = FuzzyMin;
        // wrong number of feature queries
        let one = vec![FeatureQuery {
            query: vec![0.5; 4],
            metric: FeatureMetricKind::HistogramIntersection,
        }];
        assert!(searcher.search(&one, &agg, 1, BlockSchedule::Fixed(2)).is_err());
        // wrong query dims
        let bad = vec![
            FeatureQuery { query: vec![0.5; 3], metric: FeatureMetricKind::HistogramIntersection },
            FeatureQuery { query: vec![0.5; 3], metric: FeatureMetricKind::Euclidean },
        ];
        assert!(searcher.search(&bad, &agg, 1, BlockSchedule::Fixed(2)).is_err());
        // bad k
        let ok = vec![
            FeatureQuery { query: vec![0.5; 4], metric: FeatureMetricKind::HistogramIntersection },
            FeatureQuery { query: vec![0.5; 3], metric: FeatureMetricKind::Euclidean },
        ];
        assert!(searcher.search(&ok, &agg, 0, BlockSchedule::Fixed(2)).is_err());
        assert!(searcher.search(&ok, &agg, 100, BlockSchedule::Fixed(2)).is_err());
    }

    #[test]
    fn range_results_merge_into_the_full_answer() {
        let color = color_table();
        let texture = texture_table();
        let searcher = MultiFeatureSearcher::new(vec![&color, &texture]).unwrap();
        let queries = vec![
            FeatureQuery {
                query: vec![0.65, 0.25, 0.05, 0.05],
                metric: FeatureMetricKind::HistogramIntersection,
            },
            FeatureQuery { query: vec![0.9, 0.1, 0.3], metric: FeatureMetricKind::Euclidean },
        ];
        let agg = WeightedAverage::new(vec![0.6, 0.4]).unwrap();
        let k = 2;
        let full = searcher.search(&queries, &agg, k, BlockSchedule::Fixed(2)).unwrap();
        // split the row space into two ranges sharing one κ cell, merge the
        // exact per-range answers: bit-identical to the full search
        let mass: Vec<Vec<f64>> = vec![color.row_sums(), texture.row_sums()];
        struct MaxCell(std::sync::Mutex<Option<f64>>);
        impl KappaCell for MaxCell {
            fn tighten(&self, local: f64) -> f64 {
                let mut g = self.0.lock().unwrap();
                let merged = g.map_or(local, |v| v.max(local));
                *g = Some(merged);
                merged
            }
            fn current(&self) -> Option<f64> {
                *self.0.lock().unwrap()
            }
        }
        let cell = MaxCell(std::sync::Mutex::new(None));
        let mut heap = TopKLargest::new(k);
        for range in [0..3, 3..5] {
            let ctx =
                MultiFeatureContext { kappa: Some(&cell), total_mass: Some(&mass), filter: None };
            let part = searcher
                .search_range(&queries, &agg, k, BlockSchedule::Fixed(2), range, &ctx)
                .unwrap();
            for hit in part.hits {
                heap.push(hit.row, hit.score);
            }
        }
        assert_eq!(heap.into_sorted_vec(), full.hits);
    }

    #[test]
    fn range_filter_restricts_the_candidates() {
        let color = color_table();
        let texture = texture_table();
        let searcher = MultiFeatureSearcher::new(vec![&color, &texture]).unwrap();
        let queries = vec![
            FeatureQuery {
                query: vec![0.65, 0.25, 0.05, 0.05],
                metric: FeatureMetricKind::HistogramIntersection,
            },
            FeatureQuery { query: vec![0.9, 0.1, 0.3], metric: FeatureMetricKind::Euclidean },
        ];
        let agg = FuzzyMin;
        // only rows 1 and 3 are eligible
        let filter = Bitmap::from_rows(5, &[1, 3]);
        let ctx = MultiFeatureContext { filter: Some(&filter), ..Default::default() };
        let out =
            searcher.search_range(&queries, &agg, 2, BlockSchedule::Fixed(2), 0..5, &ctx).unwrap();
        let mut rows: Vec<RowId> = out.hits.iter().map(|h| h.row).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 3]);
        // mismatched filter domain is a typed error
        let bad = Bitmap::from_rows(3, &[1]);
        let ctx = MultiFeatureContext { filter: Some(&bad), ..Default::default() };
        assert!(matches!(
            searcher.search_range(&queries, &agg, 1, BlockSchedule::Fixed(2), 0..5, &ctx),
            Err(BondError::InvalidFilter(_))
        ));
        // per-feature dimension mismatches carry the feature index
        let bad_q = vec![
            FeatureQuery { query: vec![0.5; 4], metric: FeatureMetricKind::HistogramIntersection },
            FeatureQuery { query: vec![0.5; 9], metric: FeatureMetricKind::Euclidean },
        ];
        assert!(matches!(
            searcher.search(&bad_q, &agg, 1, BlockSchedule::Fixed(2)),
            Err(BondError::FeatureDimensionMismatch { feature: 1, expected: 3, actual: 9 })
        ));
    }

    #[test]
    fn trace_reports_pruning_progress() {
        let color = color_table();
        let texture = texture_table();
        let searcher = MultiFeatureSearcher::new(vec![&color, &texture]).unwrap();
        let queries = vec![
            FeatureQuery {
                query: vec![0.65, 0.25, 0.05, 0.05],
                metric: FeatureMetricKind::HistogramIntersection,
            },
            FeatureQuery { query: vec![0.9, 0.1, 0.3], metric: FeatureMetricKind::Euclidean },
        ];
        let agg = WeightedAverage::uniform(2).unwrap();
        let outcome = searcher.search(&queries, &agg, 1, BlockSchedule::Fixed(2)).unwrap();
        assert!(!outcome.trace.checkpoints.is_empty());
        assert!(outcome.trace.dims_accessed <= 7);
        assert_eq!(outcome.hits.len(), 1);
    }
}
