//! Pruning traces.
//!
//! Every figure of the paper's evaluation (Figures 4–11) plots, for some
//! workload, the number of surviving candidates against the number of
//! dimensions processed. The search engine records exactly that series —
//! plus the work counters needed for the run-time tables — in a
//! [`PruneTrace`], which the benchmark harness aggregates across queries.

use serde::{Deserialize, Serialize};

/// The state of the search after one scan-and-prune block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceCheckpoint {
    /// Number of dimensions processed so far.
    pub dims_processed: usize,
    /// Number of candidates that survive after the pruning attempt.
    pub candidates: usize,
    /// Number of candidates removed by this pruning attempt.
    pub pruned_now: usize,
}

/// Work counters and the per-block candidate series of one BOND search.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PruneTrace {
    /// One entry per pruning attempt, in order.
    pub checkpoints: Vec<TraceCheckpoint>,
    /// Total `(candidate, dimension)` contribution evaluations — the CPU
    /// work the "avoided work" region of Figure 1 refers to.
    pub contributions_evaluated: u64,
    /// Number of dimensional fragments that were read at all (the paper:
    /// "the top-k images are identified after 64 dimensions, which means
    /// that 102 tables need not be accessed at all").
    pub dims_accessed: usize,
    /// Number of pruning attempts performed.
    pub pruning_attempts: usize,
    /// Whether the candidate-set representation switched from bitmap to an
    /// explicit list during the search (Section 6.1).
    pub switched_to_list: bool,
    /// Whether the whole segment was skipped by the engine's zone-map check
    /// (its envelope bound could not reach κ) — the search never ran and no
    /// column of the segment was touched.
    pub segment_skipped: bool,
    /// Number of `(row, dimension)` code cells the quantized first-pass
    /// filter swept before the exact search began — cheap `u8` work, kept
    /// separate from the exact-cell counter `contributions_evaluated`.
    /// Zero when the search ran without codes.
    pub filter_cells: u64,
    /// Number of rows that survived the quantized filter into the exact
    /// search (zero when the search ran without codes; equals the segment's
    /// live rows when the filter could not prune).
    pub refine_rows: u64,
    /// The code bit-width the quantized first pass swept (the engine picks
    /// it per segment from observed filter selectivity). Zero when the
    /// search ran without codes.
    pub filter_bits: u8,
    /// The scan-kernel flavour (`"scalar"`, `"avx2"`, `"neon"`) the
    /// segment's hot loops dispatched to. `None` for traces that predate
    /// kernel dispatch (e.g. deserialized old reports).
    pub kernel: Option<&'static str>,
    /// The name of the pruning rule/metric that produced this trace
    /// (`"Hq"`, `"Ev"`, …), stamped by the execution engine. Bound scales
    /// are incomparable across rules, so per-rule consumers (feedback
    /// analysis, per-rule metrics) must not aggregate traces whose tags
    /// differ. `None` for traces from the sequential entry points, which
    /// predate tagging.
    pub rule: Option<&'static str>,
}

impl PruneTrace {
    /// Number of candidates that survived after processing `dims` dimensions
    /// (reading the step function defined by the checkpoints). Before the
    /// first checkpoint the whole collection of `total_rows` survives.
    pub fn candidates_after(&self, dims: usize, total_rows: usize) -> usize {
        let mut current = total_rows;
        for c in &self.checkpoints {
            if c.dims_processed <= dims {
                current = c.candidates;
            } else {
                break;
            }
        }
        current
    }

    /// The number of dimensions after which the candidate set first shrank
    /// to at most `target` candidates, if it ever did.
    pub fn dims_to_reach(&self, target: usize) -> Option<usize> {
        self.checkpoints.iter().find(|c| c.candidates <= target).map(|c| c.dims_processed)
    }

    /// Fraction of the naive `rows × dims` contribution evaluations that was
    /// actually performed (the "avoided work" complement).
    pub fn work_fraction(&self, rows: usize, dims: usize) -> f64 {
        if rows == 0 || dims == 0 {
            return 0.0;
        }
        self.contributions_evaluated as f64 / (rows as f64 * dims as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PruneTrace {
        PruneTrace {
            checkpoints: vec![
                TraceCheckpoint { dims_processed: 8, candidates: 500, pruned_now: 500 },
                TraceCheckpoint { dims_processed: 16, candidates: 100, pruned_now: 400 },
                TraceCheckpoint { dims_processed: 24, candidates: 10, pruned_now: 90 },
            ],
            contributions_evaluated: 8 * 1000 + 8 * 500 + 8 * 100,
            dims_accessed: 24,
            pruning_attempts: 3,
            switched_to_list: true,
            segment_skipped: false,
            filter_cells: 0,
            refine_rows: 0,
            filter_bits: 0,
            kernel: Some("scalar"),
            rule: Some("Hq"),
        }
    }

    #[test]
    fn candidates_after_reads_the_step_function() {
        let t = sample();
        assert_eq!(t.candidates_after(0, 1000), 1000);
        assert_eq!(t.candidates_after(7, 1000), 1000);
        assert_eq!(t.candidates_after(8, 1000), 500);
        assert_eq!(t.candidates_after(20, 1000), 100);
        assert_eq!(t.candidates_after(166, 1000), 10);
    }

    #[test]
    fn dims_to_reach_finds_first_checkpoint() {
        let t = sample();
        assert_eq!(t.dims_to_reach(600), Some(8));
        assert_eq!(t.dims_to_reach(100), Some(16));
        assert_eq!(t.dims_to_reach(5), None);
    }

    #[test]
    fn work_fraction() {
        let t = sample();
        let f = t.work_fraction(1000, 166);
        assert!(f > 0.0 && f < 1.0);
        assert_eq!(PruneTrace::default().work_fraction(0, 10), 0.0);
    }
}
