//! The cost model: one place that turns segment knowledge into decisions.
//!
//! Three layers used to make their own calls from their own inputs — the
//! exec planner derived dimension orders from a-priori [`SegmentStats`], the
//! engine's zone-map check consulted envelopes, and the service layer had no
//! cost notion at all. [`CostModel`] unifies them: it consumes a segment's
//! statistics *and* (when available) its accumulated
//! [`SegmentFeedbackSnapshot`] and
//! answers the two questions every layer asks:
//!
//! * **What plan should this segment run?** [`CostModel::plan`] is the
//!   a-priori derivation (the former exec `AdaptivePlanner`, moved here
//!   verbatim so adaptive planning stays bit-identical);
//!   [`CostModel::plan_with_feedback`] re-ranks the dimension order toward
//!   dimensions that *observably pruned* on past queries and shortens the
//!   warmup toward the observed first-effective-prune depth. Cold segments
//!   (fewer than [`CostModel::min_warm_searches`] folded searches, or no
//!   prune signal yet) fall back to the a-priori plan exactly.
//! * **How expensive is this segment for one query?**
//!   [`CostModel::segment_cost`] estimates the expected number of
//!   `(candidate, dimension)` cells a search will touch, discounted by the
//!   observed zone-map skip rate — the per-spec cost estimate the service
//!   layer orders and cuts batches by.
//!
//! Any valid plan yields rank-correct answers (the engine re-verifies exact
//! scores at merge time), so feedback can only change *work*, never
//! results.

use crate::feedback::SegmentFeedbackSnapshot;
use crate::kernels::Kernel;
use crate::plan::SegmentPlan;
use crate::schedule::BlockSchedule;
use bond_metrics::Objective;
use vdstore::SegmentStats;

/// Derives per-segment plans and cost estimates from segment statistics and
/// accumulated execution feedback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Folded searches a segment needs before its learned signals outrank
    /// the a-priori statistics (below this, feedback plans equal a-priori
    /// plans exactly).
    pub min_warm_searches: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { min_warm_searches: 8 }
    }
}

impl CostModel {
    /// Upper bound on how much weight the learned prune-credit distribution
    /// gets in the blended ordering keys; the remainder stays with the
    /// a-priori keys so a distribution shift can still be picked up.
    const MAX_FEEDBACK_WEIGHT: f64 = 0.25;
    /// Half-saturation constant of the warm-up ramp: at this many folded
    /// searches the learned signal carries half its maximum weight.
    const RAMP_SEARCHES: f64 = 16.0;
    /// The learned warmup probes *below* the mean observed
    /// first-effective-prune depth by this factor. Probing early is safe
    /// for scanned work — an attempt before the true effective depth
    /// either prunes (strictly fewer scans) or removes nothing (same
    /// scans, one extra bound evaluation) — and self-corrects: when the
    /// earlier attempt fires, the observed depth ratchets down toward the
    /// true earliest effective point; when it never fires, the mean stays
    /// put and the probe stops shrinking.
    const WARMUP_PROBE: f64 = 0.5;

    /// The per-dimension a-priori ordering keys for one segment (larger =
    /// scan earlier). For a distance metric the expected per-dimension
    /// contribution of a segment row is exactly
    /// `E[(v_d − q_d)²] = (μ_d − q_d)² + σ_d²`; for a similarity metric the
    /// achievable contribution is capped at `min(q_d, max_d)`. Falls back
    /// to the query value itself for dimensions with no statistics (empty
    /// segments never reach the search loop).
    pub fn apriori_keys(
        stats: &SegmentStats,
        query: &[f64],
        weights: Option<&[f64]>,
        objective: Objective,
    ) -> Vec<f64> {
        query
            .iter()
            .enumerate()
            .map(|(d, &q)| {
                let w = weights.map_or(1.0, |w| w[d]);
                let key = match (&stats.per_dim[d], objective) {
                    (Some(s), Objective::Minimize) => {
                        let bias = s.mean - q;
                        bias * bias + s.variance
                    }
                    (Some(s), Objective::Maximize) => q.min(s.max),
                    (None, _) => q,
                };
                w * key
            })
            .collect()
    }

    /// The a-priori plan for one segment: dimensions sorted by decreasing
    /// key (deterministic tie-break on the dimension index), and a warmup
    /// schedule sized so the first pruning attempt happens once half of the
    /// total key mass has been scanned. This is exactly what the adaptive
    /// planner has always produced.
    pub fn plan(
        &self,
        stats: &SegmentStats,
        query: &[f64],
        weights: Option<&[f64]>,
        objective: Objective,
    ) -> SegmentPlan {
        let keys = Self::apriori_keys(stats, query, weights, objective);
        Self::plan_from_keys(&keys, None)
    }

    /// The feedback-driven plan for one segment: the a-priori keys are
    /// blended with the segment's observed per-dimension prune-credit
    /// distribution (weight ramping up with the number of folded searches),
    /// and the warmup is capped at the mean observed
    /// first-effective-prune depth. A pruning attempt placed earlier than
    /// the a-priori warmup can only reduce scanned work — it either prunes
    /// (fewer rows scan the remaining dimensions) or leaves the candidate
    /// set unchanged.
    ///
    /// Cold segments — fewer than [`CostModel::min_warm_searches`] folded
    /// searches, or no prune credit recorded yet — return the a-priori plan
    /// bit for bit.
    pub fn plan_with_feedback(
        &self,
        stats: &SegmentStats,
        feedback: &SegmentFeedbackSnapshot,
        query: &[f64],
        weights: Option<&[f64]>,
        objective: Objective,
    ) -> SegmentPlan {
        let apriori = Self::apriori_keys(stats, query, weights, objective);
        let rates = feedback.prune_rates();
        let usable = feedback.is_warm(self.min_warm_searches)
            && rates.len() == apriori.len()
            && rates.iter().any(|&r| r > 0.0);
        if !usable {
            return Self::plan_from_keys(&apriori, None);
        }
        let w = Self::MAX_FEEDBACK_WEIGHT * feedback.searches as f64
            / (feedback.searches as f64 + Self::RAMP_SEARCHES);
        let apriori_total: f64 = apriori.iter().sum();
        let keys: Vec<f64> = if apriori_total > 0.0 {
            apriori
                .iter()
                .zip(&rates)
                .map(|(&a, &r)| (1.0 - w) * (a / apriori_total) + w * r)
                .collect()
        } else {
            rates.clone()
        };
        let learned_warmup =
            feedback.mean_warmup().map(|m| ((m * Self::WARMUP_PROBE).round() as usize).max(1));
        Self::plan_from_keys(&keys, learned_warmup)
    }

    /// Builds the plan from final ordering keys: sort by decreasing key
    /// (tie-break on the dimension index), size the warmup to cover half
    /// the total key mass, and prune every few dimensions afterwards. An
    /// observed warmup, when given, caps the half-mass warmup.
    fn plan_from_keys(keys: &[f64], observed_warmup: Option<usize>) -> SegmentPlan {
        let dims = keys.len();
        let mut order: Vec<usize> = (0..dims).collect();
        order.sort_by(|&a, &b| {
            keys[b].partial_cmp(&keys[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });

        let total: f64 = keys.iter().sum();
        let mut warmup = dims;
        if total > 0.0 {
            let mut acc = 0.0;
            for (i, &d) in order.iter().enumerate() {
                acc += keys[d];
                if acc >= total * 0.5 {
                    warmup = i + 1;
                    break;
                }
            }
        }
        if let Some(observed) = observed_warmup {
            warmup = warmup.min(observed.clamp(1, dims.max(1)));
        }
        // After the warmup, prune every few dimensions: fine-grained enough
        // to cash in a tightening κ, coarse enough to amortize the bound
        // computation (a pruning attempt costs about as much as scanning a
        // dimension; the paper uses m = 8 at 166 dims).
        let m = (dims / 4).clamp(4, 16);
        SegmentPlan::new(order, BlockSchedule::WarmupThenFixed { warmup, m })
    }

    /// Estimated `(candidate, dimension)` cells one search of this segment
    /// will evaluate — the unified per-segment cost the service layer sums
    /// into per-spec estimates.
    ///
    /// Cold (no feedback): every live row scans through the warmup half of
    /// the dimensions and survives into the rest — the conservative
    /// full-work prior. Warm: the observed mean warmup fraction, the
    /// observed survivor fraction (floored at `k / rows` — a top-k search
    /// cannot retire more than that), and, when `skipping` is in effect,
    /// the observed zone-map skip rate discount the estimate.
    pub fn segment_cost(
        &self,
        stats: &SegmentStats,
        feedback: Option<&SegmentFeedbackSnapshot>,
        k: usize,
        skipping: bool,
    ) -> f64 {
        let rows = stats.live_rows as f64;
        let dims = stats.per_dim.len() as f64;
        if rows <= 0.0 || dims <= 0.0 {
            return 0.0;
        }
        let warm = feedback.filter(|f| f.is_warm(self.min_warm_searches));
        let warmup_frac = warm
            .and_then(SegmentFeedbackSnapshot::mean_warmup)
            .map_or(0.5, |w| (w / dims).clamp(0.0, 1.0));
        let floor = (k as f64 / rows).min(1.0);
        let survival = warm
            .and_then(SegmentFeedbackSnapshot::mean_survival)
            .map_or(1.0, |s| s.clamp(0.0, 1.0))
            .max(floor);
        let p_skip =
            if skipping { warm.map_or(0.0, SegmentFeedbackSnapshot::skip_rate) } else { 0.0 };
        rows * dims * (warmup_frac + survival * (1.0 - warmup_frac)) * (1.0 - p_skip)
    }

    /// Relative cost of sweeping one quantized `u8` code cell, in units of
    /// one exact `(candidate, dimension)` contribution evaluation. A code is
    /// an eighth of the bytes of an `f64` and the filter kernel is a
    /// branch-free table lookup, so a code cell is priced at an eighth of an
    /// exact cell.
    pub const QUANT_CELL_COST: f64 = 0.125;

    /// [`CostModel::QUANT_CELL_COST`] specialised to the scan kernel the
    /// sweep actually dispatches to. The SIMD flavours process four code
    /// cells per gather-accumulate step, but the gathers serialise on the
    /// LUT loads, so the observed speedup is nearer 2× than 4× — a SIMD
    /// code cell is priced at a sixteenth of an exact cell instead of an
    /// eighth. The scalar price is exactly `QUANT_CELL_COST`, so all
    /// existing scalar-priced estimates are unchanged bit for bit.
    pub fn quant_cell_cost(kernel: Kernel) -> f64 {
        match kernel {
            Kernel::Scalar => Self::QUANT_CELL_COST,
            Kernel::Avx2 | Kernel::Neon => Self::QUANT_CELL_COST * 0.5,
        }
    }

    /// Code bit-width used when a segment has no usable selectivity signal:
    /// the full `u8` grid (256 levels) — tightest brackets, widest LUT.
    pub const DEFAULT_CODE_BITS: u8 = 8;
    /// Code bit-width for observably tight segments: 16 levels fit the
    /// 16-entry LUT register path of the AVX2 sweep, trading bracket width
    /// for sweep speed where the filter prunes almost everything anyway.
    pub const FAST_CODE_BITS: u8 = 4;
    /// Observed filter selectivity (refined rows / swept rows) at or below
    /// which a segment's codes drop to [`CostModel::FAST_CODE_BITS`]: when
    /// at most one row in ten survives the 8-bit sweep, the coarser grid's
    /// wider brackets cannot cost much refine work, and the sweep itself —
    /// now the dominant phase — gets the fast path.
    pub const ADAPTIVE_BITS_SELECTIVITY: f64 = 0.1;

    /// The code bit-width this segment should be swept with, derived from
    /// its accumulated feedback: [`CostModel::FAST_CODE_BITS`] once the
    /// segment is warm *and* its observed filter selectivity is at most
    /// [`CostModel::ADAPTIVE_BITS_SELECTIVITY`];
    /// [`CostModel::DEFAULT_CODE_BITS`] otherwise (cold segments, segments
    /// never filtered, loose segments). Bit-width only moves the
    /// pessimistic/optimistic brackets — survivors are always re-scored
    /// exactly — so this choice affects work, never answers.
    pub fn adaptive_code_bits(&self, feedback: Option<&SegmentFeedbackSnapshot>) -> u8 {
        let tight = feedback
            .filter(|f| f.is_warm(self.min_warm_searches))
            .and_then(SegmentFeedbackSnapshot::filter_selectivity)
            .is_some_and(|s| s <= Self::ADAPTIVE_BITS_SELECTIVITY);
        if tight {
            Self::FAST_CODE_BITS
        } else {
            Self::DEFAULT_CODE_BITS
        }
    }

    /// Estimated cost (in exact-cell equivalents) of one search of this
    /// segment when the quantized first-pass filter runs: the full
    /// `rows × dims` code sweep at [`CostModel::QUANT_CELL_COST`] per cell,
    /// plus the exact search of [`CostModel::segment_cost`] scaled by the
    /// segment's *observed* filter selectivity (the fraction of swept rows
    /// that survived into the exact phase, floored at `k / rows`). With no
    /// filtered search folded in yet, the exact phase is priced at full
    /// weight — the conservative prior; one filtered query is enough to
    /// start discounting.
    pub fn segment_cost_quantized(
        &self,
        stats: &SegmentStats,
        feedback: Option<&SegmentFeedbackSnapshot>,
        k: usize,
        skipping: bool,
    ) -> f64 {
        let (filter, refine) = self.segment_cost_quantized_split(stats, feedback, k, skipping);
        filter + refine
    }

    /// The two phases of [`CostModel::segment_cost_quantized`] separately:
    /// `(filter sweep cost, exact refine cost)`, both in exact-cell
    /// equivalents. EXPLAIN renders the phases side by side; their sum is
    /// exactly the admission estimate.
    pub fn segment_cost_quantized_split(
        &self,
        stats: &SegmentStats,
        feedback: Option<&SegmentFeedbackSnapshot>,
        k: usize,
        skipping: bool,
    ) -> (f64, f64) {
        self.segment_cost_quantized_split_with_kernel(stats, feedback, k, skipping, Kernel::Scalar)
    }

    /// [`CostModel::segment_cost_quantized_split`] priced for a specific
    /// scan kernel: the sweep phase uses
    /// [`CostModel::quant_cell_cost`]`(kernel)` per code cell instead of the
    /// scalar [`CostModel::QUANT_CELL_COST`]. The engine passes the kernel
    /// the process actually dispatched to, so admission estimates track the
    /// hardware the sweep runs on; with [`Kernel::Scalar`] this is the
    /// kernel-blind estimate bit for bit.
    pub fn segment_cost_quantized_split_with_kernel(
        &self,
        stats: &SegmentStats,
        feedback: Option<&SegmentFeedbackSnapshot>,
        k: usize,
        skipping: bool,
        kernel: Kernel,
    ) -> (f64, f64) {
        let rows = stats.live_rows as f64;
        let dims = stats.per_dim.len() as f64;
        if rows <= 0.0 || dims <= 0.0 {
            return (0.0, 0.0);
        }
        let warm = feedback.filter(|f| f.is_warm(self.min_warm_searches));
        let p_skip =
            if skipping { warm.map_or(0.0, SegmentFeedbackSnapshot::skip_rate) } else { 0.0 };
        let filter_cost = rows * dims * Self::quant_cell_cost(kernel) * (1.0 - p_skip);
        let floor = (k as f64 / rows).min(1.0);
        let selectivity = feedback
            .and_then(SegmentFeedbackSnapshot::filter_selectivity)
            .map_or(1.0, |s| s.clamp(0.0, 1.0))
            .max(floor);
        (filter_cost, selectivity * self.segment_cost(stats, feedback, k, skipping))
    }

    /// Discounts a per-segment cost estimate by a predicate filter's
    /// selectivity on that segment (`eligible / live` rows). Every scan
    /// phase — code sweep, warmup, refine — ranges over eligible rows only,
    /// so the whole estimate scales linearly; a segment with no eligible
    /// rows is skipped outright and costs nothing. The selectivity is
    /// floored at `k / live`: a top-k search over a non-empty eligible set
    /// still has to rank at least k rows' worth of work.
    pub fn filtered_cost(&self, cost: f64, eligible: usize, live_rows: usize, k: usize) -> f64 {
        if live_rows == 0 || eligible == 0 {
            return 0.0;
        }
        let floor = (k as f64 / live_rows as f64).min(1.0);
        let selectivity = (eligible as f64 / live_rows as f64).clamp(0.0, 1.0).max(floor);
        cost * selectivity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::FEEDBACK_SCALE;
    use vdstore::DecomposedTable;

    fn segment_stats(vectors: &[Vec<f64>]) -> SegmentStats {
        let t = DecomposedTable::from_vectors("cost", vectors).unwrap();
        t.segment(0..t.rows()).unwrap().stats()
    }

    fn warm_feedback(dims: usize, credit_dim: usize, searches: u64) -> SegmentFeedbackSnapshot {
        let mut prune_credit = vec![0u64; dims];
        prune_credit[credit_dim] = 100 * FEEDBACK_SCALE;
        SegmentFeedbackSnapshot {
            searches,
            warmup_sum: searches, // mean observed warmup = 1 dimension
            warmup_count: searches,
            survival_sum: searches * FEEDBACK_SCALE / 10, // 10 % survive
            prune_credit,
            ..SegmentFeedbackSnapshot::default()
        }
    }

    #[test]
    fn cold_feedback_plans_equal_apriori_plans() {
        let stats = segment_stats(&[vec![0.5, 0.9, 0.0], vec![0.5, 0.85, 1.0]]);
        let q = [0.5, 0.1, 0.5];
        let model = CostModel::default();
        let apriori = model.plan(&stats, &q, None, Objective::Minimize);
        // cold: too few searches
        let cold = SegmentFeedbackSnapshot {
            searches: model.min_warm_searches - 1,
            prune_credit: vec![FEEDBACK_SCALE; 3],
            ..SegmentFeedbackSnapshot::default()
        };
        assert_eq!(model.plan_with_feedback(&stats, &cold, &q, None, Objective::Minimize), apriori);
        // warm but creditless: nothing has pruned yet
        let creditless = SegmentFeedbackSnapshot {
            searches: 100,
            prune_credit: vec![0; 3],
            ..SegmentFeedbackSnapshot::default()
        };
        assert_eq!(
            model.plan_with_feedback(&stats, &creditless, &q, None, Objective::Minimize),
            apriori
        );
    }

    #[test]
    fn warm_feedback_promotes_the_pruning_dimension() {
        // dims 1 and 2 have close a-priori keys with dim 1 slightly ahead;
        // the blend is deliberately conservative (the a-priori keys keep
        // most of the weight), so observed credit breaks near-ties rather
        // than overruling a decisive a-priori signal — credit sits
        // entirely on dim 2 and flips the close call
        let stats =
            segment_stats(&[vec![0.5, 0.82, 0.74], vec![0.5, 0.8, 0.75], vec![0.5, 0.78, 0.76]]);
        let q = [0.5, 0.1, 0.1];
        let model = CostModel::default();
        let apriori = model.plan(&stats, &q, None, Objective::Minimize);
        assert_eq!(apriori.order[0], 1, "a-priori: dim 1 narrowly ahead");
        let fb = warm_feedback(3, 2, 1000);
        let learned = model.plan_with_feedback(&stats, &fb, &q, None, Objective::Minimize);
        assert_eq!(learned.order[0], 2, "the observed pruning dim leads");
        assert!(learned.is_valid(3));
    }

    #[test]
    fn observed_warmup_caps_the_half_mass_warmup() {
        let stats = segment_stats(&vec![vec![0.25; 4]; 4]);
        let q = [0.9; 4];
        let model = CostModel::default();
        let apriori = model.plan(&stats, &q, None, Objective::Minimize);
        let BlockSchedule::WarmupThenFixed { warmup: apriori_warmup, .. } = apriori.schedule else {
            panic!("warmup schedule expected");
        };
        assert!(apriori_warmup >= 2, "uniform keys need half the dims");
        let fb = warm_feedback(4, 0, 64);
        let learned = model.plan_with_feedback(&stats, &fb, &q, None, Objective::Minimize);
        let BlockSchedule::WarmupThenFixed { warmup, .. } = learned.schedule else {
            panic!("warmup schedule expected");
        };
        assert_eq!(warmup, 1, "mean observed warmup of 1 caps the plan's warmup");
    }

    #[test]
    fn feedback_weight_ramps_with_sample_count() {
        let stats = segment_stats(&[vec![0.2, 0.8], vec![0.3, 0.7]]);
        let q = [0.9, 0.1];
        let model = CostModel::default();
        // credit on the a-priori-weaker dim; with few samples the a-priori
        // order wins, with many the learned order takes over
        let barely = warm_feedback(2, 1, model.min_warm_searches);
        let soaked = warm_feedback(2, 1, 100_000);
        let apriori_first = model.plan(&stats, &q, None, Objective::Minimize).order[0];
        let soaked_first =
            model.plan_with_feedback(&stats, &soaked, &q, None, Objective::Minimize).order[0];
        assert_eq!(soaked_first, 1);
        // the barely-warm plan is a valid permutation either way
        assert!(model
            .plan_with_feedback(&stats, &barely, &q, None, Objective::Minimize)
            .is_valid(2));
        assert_ne!(apriori_first, soaked_first);
    }

    #[test]
    fn segment_cost_discounts_skips_and_survival() {
        let stats = segment_stats(&vec![vec![0.1, 0.2, 0.3, 0.4]; 100]);
        let model = CostModel::default();
        let cold = model.segment_cost(&stats, None, 10, true);
        assert!((cold - 100.0 * 4.0).abs() < 1e-9, "cold prior is full work, got {cold}");

        // warm: half skipped, 10 % survive, warmup 1 of 4 dims
        let mut fb = warm_feedback(4, 0, 40);
        fb.skips = 40;
        let warm = model.segment_cost(&stats, Some(&fb), 10, true);
        assert!(warm < cold * 0.5, "skip rate alone halves the estimate: {warm} vs {cold}");
        let no_skip = model.segment_cost(&stats, Some(&fb), 10, false);
        assert!((no_skip - warm * 2.0).abs() < 1e-6, "skipping off removes the discount");
        // larger k floors the survivor fraction: cost is non-decreasing in k
        let k_small = model.segment_cost(&stats, Some(&fb), 1, true);
        let k_large = model.segment_cost(&stats, Some(&fb), 100, true);
        assert!(k_large >= k_small);
        // degenerate segments cost nothing
        let empty = segment_stats(&[vec![0.0, 0.0]]);
        let empty = SegmentStats { live_rows: 0, ..empty };
        assert_eq!(model.segment_cost(&empty, None, 1, true), 0.0);
    }

    #[test]
    fn quantized_cost_discounts_with_observed_selectivity() {
        let stats = segment_stats(&vec![vec![0.1, 0.2, 0.3, 0.4]; 100]);
        let model = CostModel::default();

        // cold: conservative prior — full exact cost plus the code sweep
        let cold = model.segment_cost_quantized(&stats, None, 10, true);
        let exact_cold = model.segment_cost(&stats, None, 10, true);
        assert!(
            (cold - (100.0 * 4.0 * CostModel::QUANT_CELL_COST + exact_cold)).abs() < 1e-9,
            "cold quantized cost is filter sweep + full exact cost, got {cold}"
        );

        // observed 5 % selectivity slashes the exact phase
        let mut fb = warm_feedback(4, 0, 40);
        fb.filter_rows = 4000;
        fb.refine_rows = 200;
        assert_eq!(fb.filter_selectivity(), Some(0.05));
        let observed = model.segment_cost_quantized(&stats, Some(&fb), 1, false);
        let exact_warm = model.segment_cost(&stats, Some(&fb), 1, false);
        let expected = 100.0 * 4.0 * CostModel::QUANT_CELL_COST + 0.05 * exact_warm;
        assert!((observed - expected).abs() < 1e-9, "got {observed}, expected {expected}");
        assert!(observed < exact_warm, "filtering must look cheaper than scanning exactly");

        // selectivity is floored at k / rows: asking for every row cancels
        // the discount entirely
        let all = model.segment_cost_quantized(&stats, Some(&fb), 100, false);
        let exact_all = model.segment_cost(&stats, Some(&fb), 100, false);
        assert!((all - (100.0 * 4.0 * CostModel::QUANT_CELL_COST + exact_all)).abs() < 1e-9);

        // degenerate segments still cost nothing
        let empty = segment_stats(&[vec![0.0, 0.0]]);
        let empty = SegmentStats { live_rows: 0, ..empty };
        assert_eq!(model.segment_cost_quantized(&empty, None, 1, true), 0.0);
    }

    #[test]
    fn kernel_cell_cost_prices_simd_sweeps_cheaper() {
        assert_eq!(CostModel::quant_cell_cost(Kernel::Scalar), CostModel::QUANT_CELL_COST);
        for simd in [Kernel::Avx2, Kernel::Neon] {
            let c = CostModel::quant_cell_cost(simd);
            assert!(c < CostModel::QUANT_CELL_COST, "{simd:?} must be cheaper than scalar");
            assert!(c > 0.0);
        }
        // the kernel-blind split is the scalar-priced split, bit for bit
        let stats = segment_stats(&vec![vec![0.1, 0.2, 0.3, 0.4]; 100]);
        let model = CostModel::default();
        let blind = model.segment_cost_quantized_split(&stats, None, 10, true);
        let scalar =
            model.segment_cost_quantized_split_with_kernel(&stats, None, 10, true, Kernel::Scalar);
        assert_eq!(blind, scalar);
        // a SIMD kernel discounts the sweep phase only
        let simd =
            model.segment_cost_quantized_split_with_kernel(&stats, None, 10, true, Kernel::Avx2);
        assert!(simd.0 < scalar.0, "sweep phase gets cheaper under SIMD");
        assert_eq!(simd.1, scalar.1, "refine phase is exact work either way");
    }

    #[test]
    fn adaptive_bits_need_warm_and_tight_feedback() {
        let model = CostModel::default();
        // cold: no feedback at all
        assert_eq!(model.adaptive_code_bits(None), CostModel::DEFAULT_CODE_BITS);
        // warm but never filtered: no selectivity signal
        let unfiltered = warm_feedback(4, 0, 40);
        assert_eq!(model.adaptive_code_bits(Some(&unfiltered)), CostModel::DEFAULT_CODE_BITS);
        // warm and tight: 5 % of swept rows survive → fast bits
        let mut tight = warm_feedback(4, 0, 40);
        tight.filter_rows = 4000;
        tight.refine_rows = 200;
        assert_eq!(model.adaptive_code_bits(Some(&tight)), CostModel::FAST_CODE_BITS);
        // warm but loose: half survive → default bits
        let mut loose = warm_feedback(4, 0, 40);
        loose.filter_rows = 4000;
        loose.refine_rows = 2000;
        assert_eq!(model.adaptive_code_bits(Some(&loose)), CostModel::DEFAULT_CODE_BITS);
        // tight but cold: selectivity alone is not enough
        let mut cold = warm_feedback(4, 0, model.min_warm_searches - 1);
        cold.filter_rows = 4000;
        cold.refine_rows = 200;
        assert_eq!(model.adaptive_code_bits(Some(&cold)), CostModel::DEFAULT_CODE_BITS);
    }

    #[test]
    fn filtered_cost_scales_with_selectivity() {
        let model = CostModel::default();
        // a quarter of the rows are eligible: a quarter of the work
        assert!((model.filtered_cost(400.0, 25, 100, 1) - 100.0).abs() < 1e-12);
        // fully eligible: no discount
        assert_eq!(model.filtered_cost(400.0, 100, 100, 1), 400.0);
        // no eligible row: the segment is skipped outright
        assert_eq!(model.filtered_cost(400.0, 0, 100, 1), 0.0);
        assert_eq!(model.filtered_cost(400.0, 10, 0, 1), 0.0);
        // the k/rows floor: asking for half the segment keeps at least half
        // the estimate even for a 1 %-selective filter
        assert!((model.filtered_cost(400.0, 1, 100, 50) - 200.0).abs() < 1e-12);
    }
}
