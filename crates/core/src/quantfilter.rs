//! The quantized first-pass scan kernel.
//!
//! Section 7.4 of the paper composes BOND with VA-File-style codes: prune
//! on small approximations first, touch exact values only for survivors.
//! This module is that first pass in the shape the execution engine's hot
//! loop wants it: a word-wise sweep over flat `&[u8]` code fragments with
//! **no per-row branching** — per dimension the kernel builds two tiny
//! lookup tables (one entry per quantization level, at most 256) holding
//! the best and worst contribution any value in that cell can make, then
//! accumulates both per-row running bounds in 64-cell blocks the
//! auto-vectorizer can unroll. After all dimensions the row's exact score
//! is bracketed by `[pes, opt]` (Maximize; the interval flips roles under
//! Minimize):
//!
//! * the k-th best **pessimistic** bound over live rows is a valid κ for
//!   the whole query (k rows provably score at least that well), and
//! * every row whose **optimistic** bound cannot reach κ can be dropped
//!   before a single exact `f64` is read.
//!
//! Safety rests on one invariant, property-tested per metric in
//! `bond-metrics`: `worst_contribution ≤ contribution ≤ best_contribution`
//! for any value inside the cell. Metrics that do not override
//! `worst_contribution` keep the vacuous default, which degenerates the
//! filter to "keep everything" — never to a wrong answer.
//!
//! The same interval, collapsed to its midpoint, powers the approximate
//! scan mode: [`approximate_topk`] ranks live rows by midpoint score and
//! reports half the interval width as a per-hit error bound.

use bond_metrics::{DecomposableMetric, Objective};
use vdstore::topk::Scored;
use vdstore::{Bitmap, SegmentCodesView, TopKLargest, TopKSmallest};

use crate::error::{BondError, Result};
use crate::kappa::KappaCell;
use crate::searcher::prune_slack;

/// Cells per inner-loop chunk: both running bounds advance through the
/// code column in blocks of this many rows, keeping the working set in
/// registers/L1 and giving the auto-vectorizer a fixed trip count.
const BLOCK_CELLS: usize = 64;

/// Per-row full-score interval bounds proven from the codes alone.
#[derive(Debug, Clone)]
pub struct QuantIntervals {
    /// Optimistic bound per local row: no exact score can beat it.
    pub opt: Vec<f64>,
    /// Pessimistic bound per local row: every exact score is at least
    /// (Maximize) / at most (Minimize) this good.
    pub pes: Vec<f64>,
    /// Number of `(row, dimension)` code cells swept.
    pub cells: u64,
}

/// Sweeps all code fragments of one segment and returns, for every local
/// row, the interval `[pes, opt]` bracketing its exact full-dimensional
/// score under `metric`.
pub fn interval_scores(
    codes: &SegmentCodesView<'_>,
    metric: &dyn DecomposableMetric,
    query: &[f64],
) -> Result<QuantIntervals> {
    let dims = codes.dims();
    if query.len() != dims {
        return Err(BondError::QueryDimensionMismatch { expected: dims, actual: query.len() });
    }
    let rows = codes.len();
    let levels = codes.levels();
    let mut opt = vec![0.0f64; rows];
    let mut pes = vec![0.0f64; rows];
    let mut opt_lut = vec![0.0f64; levels];
    let mut pes_lut = vec![0.0f64; levels];
    for (d, &q) in query.iter().enumerate() {
        let grid = codes.params(d);
        for (code, (o, p)) in opt_lut.iter_mut().zip(pes_lut.iter_mut()).enumerate() {
            let (lo, hi) = grid.cell_bounds(code as u8);
            *o = metric.best_contribution(d, lo, hi, q);
            *p = metric.worst_contribution(d, lo, hi, q);
        }
        let column = codes.dim_codes(d)?;
        // The hot sweep: flat bytes in, two fused multiply-free
        // accumulations out, no branches on row content.
        for ((opt_block, pes_block), code_block) in opt
            .chunks_mut(BLOCK_CELLS)
            .zip(pes.chunks_mut(BLOCK_CELLS))
            .zip(column.chunks(BLOCK_CELLS))
        {
            for ((o, p), &c) in opt_block.iter_mut().zip(pes_block.iter_mut()).zip(code_block) {
                *o += opt_lut[c as usize];
                *p += pes_lut[c as usize];
            }
        }
    }
    Ok(QuantIntervals { opt, pes, cells: (rows * dims) as u64 })
}

/// The result of the quantized first pass over one segment.
#[derive(Debug, Clone)]
pub struct QuantFilter {
    /// Live rows whose optimistic bound reaches κ — the only rows the
    /// exact scan needs to touch. Always a superset of the true top k.
    pub survivors: Bitmap,
    /// The κ proven from the codes (the k-th best pessimistic bound,
    /// tightened with the shared cell when one is given). `None` when the
    /// segment holds fewer than `k` live rows or the metric's bounds are
    /// vacuous — the filter then keeps everything.
    pub kappa: Option<f64>,
    /// Number of `(row, dimension)` code cells swept.
    pub cells: u64,
}

/// Runs the quantized filter over one segment: sweep codes, prove κ from
/// the pessimistic bounds, keep every live row whose optimistic bound can
/// still reach κ. Publishes the proven κ to `shared` (it is a valid bound
/// for the whole query, so sibling segments benefit immediately).
pub fn filter_segment(
    codes: &SegmentCodesView<'_>,
    metric: &dyn DecomposableMetric,
    query: &[f64],
    k: usize,
    live: &Bitmap,
    shared: Option<&dyn KappaCell>,
) -> Result<QuantFilter> {
    let rows = codes.len();
    if live.len() != rows {
        return Err(BondError::InvalidParams(format!(
            "live bitmap covers {} rows but the segment's codes cover {rows}",
            live.len()
        )));
    }
    let intervals = interval_scores(codes, metric, query)?;
    let objective = metric.objective();
    let local = match objective {
        Objective::Maximize => {
            let mut heap = TopKLargest::new(k);
            for row in live.iter() {
                heap.push(row, intervals.pes[row as usize]);
            }
            heap.kth()
        }
        Objective::Minimize => {
            let mut heap = TopKSmallest::new(k);
            for row in live.iter() {
                heap.push(row, intervals.pes[row as usize]);
            }
            heap.kth()
        }
    };
    // a vacuous (infinite) pessimistic bound proves nothing: do not
    // publish it, and keep every live row
    let local = local.filter(|v| v.is_finite());
    let kappa = match shared {
        None => local,
        Some(cell) => match local {
            Some(local) => Some(cell.tighten(local)),
            None => cell.current(),
        },
    };
    let mut survivors = Bitmap::new(rows);
    match kappa {
        None => {
            for row in live.iter() {
                survivors.set(row);
            }
        }
        Some(kappa) => {
            let slack = prune_slack(kappa);
            for row in live.iter() {
                let opt = intervals.opt[row as usize];
                let keep = match objective {
                    Objective::Maximize => opt >= kappa - slack,
                    Objective::Minimize => opt <= kappa + slack,
                };
                if keep {
                    survivors.set(row);
                }
            }
        }
    }
    Ok(QuantFilter { survivors, kappa, cells: intervals.cells })
}

/// The approximate (codes-only) answer for one segment.
#[derive(Debug, Clone)]
pub struct ApproxOutcome {
    /// The k best live rows by midpoint score, best first, with
    /// segment-local row ids.
    pub hits: Vec<Scored>,
    /// Per-hit error bound, parallel to `hits`: half the interval width —
    /// the exact score differs from the reported one by at most this.
    pub error_bounds: Vec<f64>,
    /// Number of `(row, dimension)` code cells swept.
    pub cells: u64,
}

/// Answers a top-k query from the codes alone: rows are ranked by the
/// midpoint of their score interval and each hit carries the bound on how
/// far its exact score can be. No exact fragment is read at all.
pub fn approximate_topk(
    codes: &SegmentCodesView<'_>,
    metric: &dyn DecomposableMetric,
    query: &[f64],
    k: usize,
    live: &Bitmap,
) -> Result<ApproxOutcome> {
    let rows = codes.len();
    if live.len() != rows {
        return Err(BondError::InvalidParams(format!(
            "live bitmap covers {} rows but the segment's codes cover {rows}",
            live.len()
        )));
    }
    let intervals = interval_scores(codes, metric, query)?;
    let mid = |row: usize| 0.5 * (intervals.opt[row] + intervals.pes[row]);
    let hits = match metric.objective() {
        Objective::Maximize => {
            let mut heap = TopKLargest::new(k);
            for row in live.iter() {
                heap.push(row, mid(row as usize));
            }
            heap.into_sorted_vec()
        }
        Objective::Minimize => {
            let mut heap = TopKSmallest::new(k);
            for row in live.iter() {
                heap.push(row, mid(row as usize));
            }
            heap.into_sorted_vec()
        }
    };
    let error_bounds = hits
        .iter()
        .map(|h| {
            let row = h.row as usize;
            0.5 * (intervals.opt[row] - intervals.pes[row]).abs()
        })
        .collect();
    Ok(ApproxOutcome { hits, error_bounds, cells: intervals.cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bond_metrics::{HistogramIntersection, SquaredEuclidean, WeightedSquaredEuclidean};
    use vdstore::{DecomposedTable, SegmentStats, StoreCodes};

    fn setup(partitions: usize) -> (DecomposedTable, StoreCodes) {
        let vectors: Vec<Vec<f64>> = (0..24)
            .map(|r| (0..4).map(|d| ((r * 4 + d) as f64 * 0.41).sin().abs()).collect())
            .collect();
        let table = DecomposedTable::from_vectors("qf", &vectors).unwrap();
        let specs = table.partition_specs(partitions);
        let stats: Vec<SegmentStats> =
            specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
        let codes = StoreCodes::build(&table, &specs, &stats, 8).unwrap();
        (table, codes)
    }

    #[test]
    fn intervals_bracket_exact_scores_for_all_metrics() {
        let (table, codes) = setup(2);
        let query: Vec<f64> = table.row(5).unwrap();
        let weighted = WeightedSquaredEuclidean::new(vec![2.0, 0.5, 1.5, 3.0]).unwrap();
        let metrics: Vec<&dyn DecomposableMetric> =
            vec![&HistogramIntersection, &SquaredEuclidean, &weighted];
        for metric in metrics {
            for si in 0..codes.n_segments() {
                let view = codes.segment_view(si).unwrap();
                let iv = interval_scores(&view, metric, &query).unwrap();
                let spec = codes.specs()[si];
                for (local, global) in spec.range().enumerate() {
                    let v = table.row(global as u32).unwrap();
                    let exact = metric.score(&v, &query);
                    let (lo, hi) = match metric.objective() {
                        Objective::Maximize => (iv.pes[local], iv.opt[local]),
                        Objective::Minimize => (iv.opt[local], iv.pes[local]),
                    };
                    assert!(
                        lo <= exact + 1e-9 && exact <= hi + 1e-9,
                        "{}: row {global} score {exact} outside [{lo}, {hi}]",
                        metric.name()
                    );
                }
            }
        }
    }

    #[test]
    fn filter_keeps_the_true_top_k() {
        let (table, codes) = setup(1);
        let query: Vec<f64> = table.row(17).unwrap();
        let live = table.live_bitmap();
        let view = codes.segment_view(0).unwrap();
        for k in [1usize, 3, 10] {
            let filter =
                filter_segment(&view, &HistogramIntersection, &query, k, &live, None).unwrap();
            assert!(filter.kappa.is_some());
            assert_eq!(filter.cells, (table.rows() * table.dims()) as u64);
            // brute-force truth
            let mut scores: Vec<(u32, f64)> = (0..table.rows() as u32)
                .map(|r| (r, HistogramIntersection.score(&table.row(r).unwrap(), &query)))
                .collect();
            scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let survivors = filter.survivors.to_rows();
            for &(row, _) in &scores[..k] {
                assert!(survivors.contains(&row), "filter lost true top-{k} row {row}");
            }
            assert!(survivors.len() >= k);
        }
    }

    #[test]
    fn filter_respects_the_live_bitmap() {
        let (table, codes) = setup(1);
        let query: Vec<f64> = table.row(0).unwrap();
        let mut live = table.live_bitmap();
        live.clear(0); // the query row itself is the best match — kill it
        let view = codes.segment_view(0).unwrap();
        let filter = filter_segment(&view, &HistogramIntersection, &query, 3, &live, None).unwrap();
        assert!(!filter.survivors.to_rows().contains(&0));
    }

    #[test]
    fn vacuous_bounds_keep_everything() {
        struct Opaque;
        impl DecomposableMetric for Opaque {
            fn objective(&self) -> Objective {
                Objective::Maximize
            }
            fn contribution(&self, _d: usize, v: f64, q: f64) -> f64 {
                v * q
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        let (table, codes) = setup(1);
        let query: Vec<f64> = table.row(2).unwrap();
        let live = table.live_bitmap();
        let view = codes.segment_view(0).unwrap();
        let filter = filter_segment(&view, &Opaque, &query, 2, &live, None).unwrap();
        assert!(filter.kappa.is_none(), "an infinite pessimistic bound proves nothing");
        assert_eq!(filter.survivors.to_rows().len(), table.live_rows());
    }

    #[test]
    fn approximate_hits_carry_honest_error_bounds() {
        let (table, codes) = setup(2);
        let query: Vec<f64> = table.row(9).unwrap();
        for si in 0..codes.n_segments() {
            let spec = codes.specs()[si];
            let view = codes.segment_view(si).unwrap();
            let live = table.live_bitmap().slice(spec.range());
            let approx = approximate_topk(&view, &SquaredEuclidean, &query, 3, &live).unwrap();
            assert_eq!(approx.hits.len(), approx.error_bounds.len());
            for (hit, &err) in approx.hits.iter().zip(&approx.error_bounds) {
                let global = spec.start() + hit.row as usize;
                let exact = SquaredEuclidean.score(&table.row(global as u32).unwrap(), &query);
                assert!(
                    (hit.score - exact).abs() <= err + 1e-9,
                    "hit {global}: |{} - {exact}| > {err}",
                    hit.score
                );
            }
        }
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let (_table, codes) = setup(1);
        let view = codes.segment_view(0).unwrap();
        assert!(interval_scores(&view, &HistogramIntersection, &[0.5; 2]).is_err());
        let short = Bitmap::new(3);
        assert!(filter_segment(&view, &HistogramIntersection, &[0.1; 4], 1, &short, None).is_err());
        assert!(approximate_topk(&view, &HistogramIntersection, &[0.1; 4], 1, &short).is_err());
    }
}
