//! The quantized first-pass scan kernel.
//!
//! Section 7.4 of the paper composes BOND with VA-File-style codes: prune
//! on small approximations first, touch exact values only for survivors.
//! This module is that first pass in the shape the execution engine's hot
//! loop wants it: a word-wise sweep over flat `&[u8]` code fragments with
//! **no per-row branching** — per dimension the kernel builds two tiny
//! lookup tables (one entry per quantization level, at most 256) holding
//! the best and worst contribution any value in that cell can make, then
//! accumulates both per-row running bounds in 64-cell blocks the
//! auto-vectorizer can unroll. After all dimensions the row's exact score
//! is bracketed by `[pes, opt]` (Maximize; the interval flips roles under
//! Minimize):
//!
//! * the k-th best **pessimistic** bound over live rows is a valid κ for
//!   the whole query (k rows provably score at least that well), and
//! * every row whose **optimistic** bound cannot reach κ can be dropped
//!   before a single exact `f64` is read.
//!
//! Safety rests on one invariant, property-tested per metric in
//! `bond-metrics`: `worst_contribution ≤ contribution ≤ best_contribution`
//! for any value inside the cell. Metrics that do not override
//! `worst_contribution` keep the vacuous default, which degenerates the
//! filter to "keep everything" — never to a wrong answer.
//!
//! The same interval, collapsed to its midpoint, powers the approximate
//! scan mode: [`approximate_topk`] ranks live rows by midpoint score and
//! reports half the interval width as a per-hit error bound.

use std::cell::RefCell;

use bond_metrics::{DecomposableMetric, Objective};
use vdstore::topk::Scored;
use vdstore::{Bitmap, SegmentCodesView, TopKLargest, TopKSmallest};

use crate::error::{BondError, Result};
use crate::kappa::KappaCell;
use crate::kernels::{self, Kernel};
use crate::searcher::prune_slack;

/// Per-row full-score interval bounds proven from the codes alone.
#[derive(Debug, Clone)]
pub struct QuantIntervals {
    /// Optimistic bound per local row: no exact score can beat it.
    pub opt: Vec<f64>,
    /// Pessimistic bound per local row: every exact score is at least
    /// (Maximize) / at most (Minimize) this good.
    pub pes: Vec<f64>,
    /// Number of `(row, dimension)` code cells swept.
    pub cells: u64,
}

/// Reusable working memory of the quantized filter: the two per-row bound
/// accumulators plus the two per-level contribution LUTs.
///
/// Allocated fresh, these four `Vec`s were the filter path's only per-task
/// allocations; hoisting them into a scratch that lives as long as the
/// worker (the engine keeps one per thread, see [`filter_segment`]) makes
/// the sweep itself allocation-free once the buffers have grown to the
/// segment's size — a property the `zero_alloc_filter` integration test
/// pins with a counting allocator.
#[derive(Debug, Default)]
pub struct QuantScratch {
    opt: Vec<f64>,
    pes: Vec<f64>,
    opt_lut: Vec<f64>,
    pes_lut: Vec<f64>,
    /// Interleaved `[opt, pes]` accumulator for the dimension-blocked
    /// kernels (see [`kernels::sweep_pairs`]); `opt_lut` doubles as their
    /// interleaved pair-LUT storage.
    inter: Vec<f64>,
    /// Per-level `(lo, hi)` cell bounds of the dimension currently having
    /// its LUT built — input to the metric's batched
    /// `fill_contribution_pairs`.
    bounds: Vec<(f64, f64)>,
}

impl QuantScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        QuantScratch::default()
    }

    /// The optimistic bounds of the last [`interval_scores_into`] sweep.
    pub fn opt(&self) -> &[f64] {
        &self.opt
    }

    /// The pessimistic bounds of the last [`interval_scores_into`] sweep.
    pub fn pes(&self) -> &[f64] {
        &self.pes
    }
}

thread_local! {
    /// One scratch per worker thread. The engine runs each (query,
    /// segment) task on one rayon-style worker, so this is exactly the
    /// "per-task scratch" the filter path wants without threading a
    /// handle through every call site.
    static SCRATCH: RefCell<QuantScratch> = RefCell::new(QuantScratch::new());
}

/// Sweeps all code fragments of one segment into `scratch` using the given
/// [`Kernel`], leaving the per-row interval `[pes, opt]` bracketing each
/// exact full-dimensional score in [`QuantScratch::pes`] /
/// [`QuantScratch::opt`]. Returns the number of code cells swept.
///
/// Once the scratch buffers have reached the segment's size, the whole
/// sweep — LUT builds included — performs no allocation.
pub fn interval_scores_into(
    codes: &SegmentCodesView<'_>,
    metric: &dyn DecomposableMetric,
    query: &[f64],
    kernel: Kernel,
    scratch: &mut QuantScratch,
) -> Result<u64> {
    let dims = codes.dims();
    if query.len() != dims {
        return Err(BondError::QueryDimensionMismatch { expected: dims, actual: query.len() });
    }
    let rows = codes.len();
    let levels = codes.levels();
    let group = kernels::sweep_group(kernel, levels);
    // The hot sweep: flat bytes in, two multiply-free accumulations out,
    // no branches on row content — dispatched to the pinned per-ISA
    // kernel. Bit-identical across kernels by contract: every row adds its
    // per-dimension contributions in dimension order either way.
    if group <= 1 {
        scratch.opt.clear();
        scratch.opt.resize(rows, 0.0);
        scratch.pes.clear();
        scratch.pes.resize(rows, 0.0);
        // one dimension at a time, straight into the bound arrays — the
        // reference pass structure
        scratch.opt_lut.resize(levels, 0.0);
        scratch.pes_lut.resize(levels, 0.0);
        scratch.inter.clear();
        scratch.inter.resize(levels * 2, 0.0);
        for (d, &q) in query.iter().enumerate() {
            let grid = codes.params(d);
            scratch.bounds.resize(levels, (0.0, 0.0));
            grid.fill_cell_bounds(&mut scratch.bounds);
            metric.fill_contribution_pairs(d, &scratch.bounds, q, &mut scratch.inter);
            for (code, pair) in scratch.inter.chunks_exact(2).enumerate() {
                scratch.opt_lut[code] = pair[0];
                scratch.pes_lut[code] = pair[1];
            }
            let column = codes.dim_codes(d)?;
            kernels::sweep(
                kernel,
                column,
                &scratch.opt_lut,
                &scratch.pes_lut,
                &mut scratch.opt,
                &mut scratch.pes,
            );
        }
        return Ok((rows * dims) as u64);
    }
    // The dimension-blocked kernels: up to `group` code columns fold into
    // an interleaved `[opt, pes]` accumulator per pass, with each cell's
    // contribution pair adjacent so the kernel fetches both in one load.
    // None of the output buffers need zeroing: the first block sweeps in
    // `init` mode and every row of `opt`/`pes` is overwritten by the final
    // de-interleave, so stale contents are only ever resized away.
    if scratch.inter.len() != rows * 2 {
        scratch.inter.clear();
        scratch.inter.resize(rows * 2, 0.0);
    }
    if scratch.opt.len() != rows {
        scratch.opt.clear();
        scratch.opt.resize(rows, 0.0);
        scratch.pes.clear();
        scratch.pes.resize(rows, 0.0);
    }
    scratch.opt_lut.resize(group * levels * 2, 0.0);
    let mut columns: [&[u8]; kernels::MAX_SWEEP_GROUP] = [&[]; kernels::MAX_SWEEP_GROUP];
    for start in (0..dims).step_by(group) {
        let g = group.min(dims - start);
        for (j, column) in columns.iter_mut().enumerate().take(g) {
            let d = start + j;
            let q = query[d];
            let grid = codes.params(d);
            let lut = &mut scratch.opt_lut[j * levels * 2..(j + 1) * levels * 2];
            // Fused ISA LUT build when the metric exposes a kernel op —
            // bit-identical to the portable two-step build below, which
            // stays both the fallback and the reference.
            let fused = metric
                .kernel_op()
                .is_some_and(|op| kernels::fill_pair_lut(kernel, op, d, grid, q, lut));
            if !fused {
                scratch.bounds.resize(levels, (0.0, 0.0));
                grid.fill_cell_bounds(&mut scratch.bounds);
                metric.fill_contribution_pairs(d, &scratch.bounds, q, lut);
            }
            *column = codes.dim_codes(d)?;
        }
        kernels::sweep_pairs(
            kernel,
            &columns[..g],
            &scratch.opt_lut,
            levels,
            &mut scratch.inter,
            start == 0,
        );
    }
    for (i, pair) in scratch.inter.chunks_exact(2).enumerate() {
        scratch.opt[i] = pair[0];
        scratch.pes[i] = pair[1];
    }
    Ok((rows * dims) as u64)
}

/// Sweeps all code fragments of one segment and returns, for every local
/// row, the interval `[pes, opt]` bracketing its exact full-dimensional
/// score under `metric`. Allocates a fresh result; the engine's hot path
/// goes through [`interval_scores_into`] and a per-thread scratch instead.
pub fn interval_scores(
    codes: &SegmentCodesView<'_>,
    metric: &dyn DecomposableMetric,
    query: &[f64],
) -> Result<QuantIntervals> {
    let mut scratch = QuantScratch::new();
    let cells = interval_scores_into(codes, metric, query, Kernel::active(), &mut scratch)?;
    Ok(QuantIntervals { opt: scratch.opt, pes: scratch.pes, cells })
}

/// The result of the quantized first pass over one segment.
#[derive(Debug, Clone)]
pub struct QuantFilter {
    /// Live rows whose optimistic bound reaches κ — the only rows the
    /// exact scan needs to touch. Always a superset of the true top k.
    pub survivors: Bitmap,
    /// The κ proven from the codes (the k-th best pessimistic bound,
    /// tightened with the shared cell when one is given). `None` when the
    /// segment holds fewer than `k` live rows or the metric's bounds are
    /// vacuous — the filter then keeps everything.
    pub kappa: Option<f64>,
    /// Number of `(row, dimension)` code cells swept.
    pub cells: u64,
}

/// Runs the quantized filter over one segment: sweep codes, prove κ from
/// the pessimistic bounds, keep every live row whose optimistic bound can
/// still reach κ. Publishes the proven κ to `shared` (it is a valid bound
/// for the whole query, so sibling segments benefit immediately).
///
/// The sweep runs on the process-wide [`Kernel::active`] flavour and a
/// per-thread scratch, so steady-state calls allocate nothing beyond the
/// survivor bitmap and the κ heap.
pub fn filter_segment(
    codes: &SegmentCodesView<'_>,
    metric: &dyn DecomposableMetric,
    query: &[f64],
    k: usize,
    live: &Bitmap,
    shared: Option<&dyn KappaCell>,
) -> Result<QuantFilter> {
    filter_segment_with_kernel(codes, metric, query, k, live, shared, Kernel::active())
}

/// [`filter_segment`] with an explicit kernel flavour — the entry point
/// tests and benches use to compare flavours inside one process (the
/// `BOND_KERNEL` override is latched once and cannot be varied later).
pub fn filter_segment_with_kernel(
    codes: &SegmentCodesView<'_>,
    metric: &dyn DecomposableMetric,
    query: &[f64],
    k: usize,
    live: &Bitmap,
    shared: Option<&dyn KappaCell>,
    kernel: Kernel,
) -> Result<QuantFilter> {
    let rows = codes.len();
    if live.len() != rows {
        return Err(BondError::InvalidParams(format!(
            "live bitmap covers {} rows but the segment's codes cover {rows}",
            live.len()
        )));
    }
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let cells = interval_scores_into(codes, metric, query, kernel, &mut scratch)?;
        let scratch = &*scratch;
        let objective = metric.objective();
        let local = match objective {
            Objective::Maximize => {
                let mut heap = TopKLargest::new(k);
                for row in live.iter() {
                    heap.push(row, scratch.pes[row as usize]);
                }
                heap.kth()
            }
            Objective::Minimize => {
                let mut heap = TopKSmallest::new(k);
                for row in live.iter() {
                    heap.push(row, scratch.pes[row as usize]);
                }
                heap.kth()
            }
        };
        // a vacuous (infinite) pessimistic bound proves nothing: do not
        // publish it, and keep every live row
        let local = local.filter(|v| v.is_finite());
        let kappa = match shared {
            None => local,
            Some(cell) => match local {
                Some(local) => Some(cell.tighten(local)),
                None => cell.current(),
            },
        };
        let mut survivors = Bitmap::new(rows);
        match kappa {
            None => {
                for row in live.iter() {
                    survivors.set(row);
                }
            }
            Some(kappa) => {
                let slack = prune_slack(kappa);
                for row in live.iter() {
                    let opt = scratch.opt[row as usize];
                    let keep = match objective {
                        Objective::Maximize => opt >= kappa - slack,
                        Objective::Minimize => opt <= kappa + slack,
                    };
                    if keep {
                        survivors.set(row);
                    }
                }
            }
        }
        Ok(QuantFilter { survivors, kappa, cells })
    })
}

/// The approximate (codes-only) answer for one segment.
#[derive(Debug, Clone)]
pub struct ApproxOutcome {
    /// The k best live rows by midpoint score, best first, with
    /// segment-local row ids.
    pub hits: Vec<Scored>,
    /// Per-hit error bound, parallel to `hits`: half the interval width —
    /// the exact score differs from the reported one by at most this.
    pub error_bounds: Vec<f64>,
    /// Number of `(row, dimension)` code cells swept.
    pub cells: u64,
}

/// Answers a top-k query from the codes alone: rows are ranked by the
/// midpoint of their score interval and each hit carries the bound on how
/// far its exact score can be. No exact fragment is read at all. Runs on
/// the process-wide [`Kernel::active`] flavour and the per-thread scratch.
pub fn approximate_topk(
    codes: &SegmentCodesView<'_>,
    metric: &dyn DecomposableMetric,
    query: &[f64],
    k: usize,
    live: &Bitmap,
) -> Result<ApproxOutcome> {
    let rows = codes.len();
    if live.len() != rows {
        return Err(BondError::InvalidParams(format!(
            "live bitmap covers {} rows but the segment's codes cover {rows}",
            live.len()
        )));
    }
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let cells = interval_scores_into(codes, metric, query, Kernel::active(), &mut scratch)?;
        let scratch = &*scratch;
        let mid = |row: usize| 0.5 * (scratch.opt[row] + scratch.pes[row]);
        let hits = match metric.objective() {
            Objective::Maximize => {
                let mut heap = TopKLargest::new(k);
                for row in live.iter() {
                    heap.push(row, mid(row as usize));
                }
                heap.into_sorted_vec()
            }
            Objective::Minimize => {
                let mut heap = TopKSmallest::new(k);
                for row in live.iter() {
                    heap.push(row, mid(row as usize));
                }
                heap.into_sorted_vec()
            }
        };
        let error_bounds = hits
            .iter()
            .map(|h| {
                let row = h.row as usize;
                0.5 * (scratch.opt[row] - scratch.pes[row]).abs()
            })
            .collect();
        Ok(ApproxOutcome { hits, error_bounds, cells })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bond_metrics::{HistogramIntersection, SquaredEuclidean, WeightedSquaredEuclidean};
    use vdstore::{DecomposedTable, SegmentStats, StoreCodes};

    fn setup(partitions: usize) -> (DecomposedTable, StoreCodes) {
        let vectors: Vec<Vec<f64>> = (0..24)
            .map(|r| (0..4).map(|d| ((r * 4 + d) as f64 * 0.41).sin().abs()).collect())
            .collect();
        let table = DecomposedTable::from_vectors("qf", &vectors).unwrap();
        let specs = table.partition_specs(partitions);
        let stats: Vec<SegmentStats> =
            specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
        let codes = StoreCodes::build(&table, &specs, &stats, 8).unwrap();
        (table, codes)
    }

    #[test]
    fn intervals_bracket_exact_scores_for_all_metrics() {
        let (table, codes) = setup(2);
        let query: Vec<f64> = table.row(5).unwrap();
        let weighted = WeightedSquaredEuclidean::new(vec![2.0, 0.5, 1.5, 3.0]).unwrap();
        let metrics: Vec<&dyn DecomposableMetric> =
            vec![&HistogramIntersection, &SquaredEuclidean, &weighted];
        for metric in metrics {
            for si in 0..codes.n_segments() {
                let view = codes.segment_view(si).unwrap();
                let iv = interval_scores(&view, metric, &query).unwrap();
                let spec = codes.specs()[si];
                for (local, global) in spec.range().enumerate() {
                    let v = table.row(global as u32).unwrap();
                    let exact = metric.score(&v, &query);
                    let (lo, hi) = match metric.objective() {
                        Objective::Maximize => (iv.pes[local], iv.opt[local]),
                        Objective::Minimize => (iv.opt[local], iv.pes[local]),
                    };
                    assert!(
                        lo <= exact + 1e-9 && exact <= hi + 1e-9,
                        "{}: row {global} score {exact} outside [{lo}, {hi}]",
                        metric.name()
                    );
                }
            }
        }
    }

    #[test]
    fn filter_keeps_the_true_top_k() {
        let (table, codes) = setup(1);
        let query: Vec<f64> = table.row(17).unwrap();
        let live = table.live_bitmap();
        let view = codes.segment_view(0).unwrap();
        for k in [1usize, 3, 10] {
            let filter =
                filter_segment(&view, &HistogramIntersection, &query, k, &live, None).unwrap();
            assert!(filter.kappa.is_some());
            assert_eq!(filter.cells, (table.rows() * table.dims()) as u64);
            // brute-force truth
            let mut scores: Vec<(u32, f64)> = (0..table.rows() as u32)
                .map(|r| (r, HistogramIntersection.score(&table.row(r).unwrap(), &query)))
                .collect();
            scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let survivors = filter.survivors.to_rows();
            for &(row, _) in &scores[..k] {
                assert!(survivors.contains(&row), "filter lost true top-{k} row {row}");
            }
            assert!(survivors.len() >= k);
        }
    }

    #[test]
    fn filter_respects_the_live_bitmap() {
        let (table, codes) = setup(1);
        let query: Vec<f64> = table.row(0).unwrap();
        let mut live = table.live_bitmap();
        live.clear(0); // the query row itself is the best match — kill it
        let view = codes.segment_view(0).unwrap();
        let filter = filter_segment(&view, &HistogramIntersection, &query, 3, &live, None).unwrap();
        assert!(!filter.survivors.to_rows().contains(&0));
    }

    #[test]
    fn vacuous_bounds_keep_everything() {
        struct Opaque;
        impl DecomposableMetric for Opaque {
            fn objective(&self) -> Objective {
                Objective::Maximize
            }
            fn contribution(&self, _d: usize, v: f64, q: f64) -> f64 {
                v * q
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        let (table, codes) = setup(1);
        let query: Vec<f64> = table.row(2).unwrap();
        let live = table.live_bitmap();
        let view = codes.segment_view(0).unwrap();
        let filter = filter_segment(&view, &Opaque, &query, 2, &live, None).unwrap();
        assert!(filter.kappa.is_none(), "an infinite pessimistic bound proves nothing");
        assert_eq!(filter.survivors.to_rows().len(), table.live_rows());
    }

    #[test]
    fn approximate_hits_carry_honest_error_bounds() {
        let (table, codes) = setup(2);
        let query: Vec<f64> = table.row(9).unwrap();
        for si in 0..codes.n_segments() {
            let spec = codes.specs()[si];
            let view = codes.segment_view(si).unwrap();
            let live = table.live_bitmap().slice(spec.range());
            let approx = approximate_topk(&view, &SquaredEuclidean, &query, 3, &live).unwrap();
            assert_eq!(approx.hits.len(), approx.error_bounds.len());
            for (hit, &err) in approx.hits.iter().zip(&approx.error_bounds) {
                let global = spec.start() + hit.row as usize;
                let exact = SquaredEuclidean.score(&table.row(global as u32).unwrap(), &query);
                assert!(
                    (hit.score - exact).abs() <= err + 1e-9,
                    "hit {global}: |{} - {exact}| > {err}",
                    hit.score
                );
            }
        }
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let (_table, codes) = setup(1);
        let view = codes.segment_view(0).unwrap();
        assert!(interval_scores(&view, &HistogramIntersection, &[0.5; 2]).is_err());
        let short = Bitmap::new(3);
        assert!(filter_segment(&view, &HistogramIntersection, &[0.1; 4], 1, &short, None).is_err());
        assert!(approximate_topk(&view, &HistogramIntersection, &[0.1; 4], 1, &short).is_err());
    }
}
