//! The quantized filter's steady-state allocation contract: once the
//! per-thread scratch has grown to the segment's size, a full sweep —
//! LUT builds included — performs **zero** heap allocations. This is
//! what makes the filter phase safe to run per segment per query on the
//! hot path without allocator traffic or lock contention.
//!
//! Verified with a counting `#[global_allocator]`, which is process-wide
//! state — hence this test's own integration binary, so no other test's
//! allocations can race the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bond::kernels::Kernel;
use bond::quantfilter::interval_scores_into;
use bond::QuantScratch;
use bond_metrics::SquaredEuclidean;
use vdstore::{DecomposedTable, SegmentStats, StoreCodes};

/// Forwards to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter is a relaxed atomic
// with no allocation of its own, so all of `System`'s contract holds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_interval_sweep_allocates_nothing() {
    let vectors: Vec<Vec<f64>> = (0..300)
        .map(|r| (0..8).map(|d| ((r * 8 + d) as f64 * 0.29).sin().abs()).collect())
        .collect();
    let table = DecomposedTable::from_vectors("za", &vectors).unwrap();
    let specs = table.partition_specs(2);
    let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
    let query: Vec<f64> = table.row(7).unwrap();
    let metric = SquaredEuclidean;

    for bits in [4u8, 8] {
        let codes = StoreCodes::build(&table, &specs, &stats, bits).unwrap();
        for kernel in Kernel::ALL.into_iter().filter(|k| k.is_supported()) {
            let mut scratch = QuantScratch::new();
            // warm pass: grows the row/LUT buffers to their final sizes
            for si in 0..codes.n_segments() {
                let view = codes.segment_view(si).unwrap();
                interval_scores_into(&view, &metric, &query, kernel, &mut scratch).unwrap();
            }
            // Steady state: not one allocation across repeated sweeps. The
            // counter is process-wide, so the libtest harness thread can
            // race a stray allocation into the window — a genuine leak in
            // the sweep would show up in *every* repetition, so assert on
            // the minimum over several windows instead of a single one.
            let min_allocs = (0..5)
                .map(|_| {
                    let before = ALLOCATIONS.load(Ordering::Relaxed);
                    for si in 0..codes.n_segments() {
                        let view = codes.segment_view(si).unwrap();
                        interval_scores_into(&view, &metric, &query, kernel, &mut scratch).unwrap();
                    }
                    ALLOCATIONS.load(Ordering::Relaxed) - before
                })
                .min()
                .unwrap();
            assert_eq!(min_allocs, 0, "warmed sweep allocated ({} @ {bits} bits)", kernel.label());
        }
    }
}
