//! Cross-kernel bit-identity: the ISA-pinned SIMD paths must produce the
//! exact same `f64` bit patterns as the portable scalar reference, for
//! every kernel entry point the hot loops use.
//!
//! Two surfaces are pinned:
//!
//! * the quantized sweep (`quantfilter::interval_scores_into`) across all
//!   four decomposable metrics — which covers all six pruning rules
//!   (`Hq`/`Hh` share histogram intersection, `Eq`/`Ev` squared
//!   Euclidean, `WHq`/`WEv` the weighted variants) — at 2-, 4- and 8-bit
//!   code widths (the ≤ 16-level register-LUT path and the gather path
//!   both get exercised on AVX2 hosts);
//! * the exact refine/warmup accumulate (`kernels::accumulate`,
//!   `accumulate_gather`, `add_assign`, `add_assign_gather`) across all
//!   four `KernelOp` shapes those six rules compile down to.
//!
//! Equality is `to_bits()` on every output — not approximate — because
//! kernel dispatch must never be observable in answers.

use bond::kernels::{self, Kernel};
use bond::quantfilter::interval_scores_into;
use bond::QuantScratch;
use bond_metrics::{
    DecomposableMetric, HistogramIntersection, KernelOp, SquaredEuclidean,
    WeightedHistogramIntersection, WeightedSquaredEuclidean,
};
use proptest::prelude::*;
use vdstore::{DecomposedTable, RowId, SegmentStats, StoreCodes};

const DIMS: usize = 6;
/// Spans two partitions and, within each, more than one 64-cell kernel
/// block plus a non-multiple tail.
const ROWS: usize = 170;

/// Every kernel flavour this host can actually run, scalar first.
fn supported_kernels() -> Vec<Kernel> {
    Kernel::ALL.into_iter().filter(|k| k.is_supported()).collect()
}

/// Unit-cube vectors plus a query drawn from the same distribution.
fn collection() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (
        proptest::collection::vec(proptest::collection::vec(0.0f64..=1.0, DIMS), ROWS),
        proptest::collection::vec(0.0f64..=1.0, DIMS),
    )
}

fn weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..=4.0, DIMS)
}

/// Runs the sweep over every segment with an explicit kernel and returns
/// the concatenated `[opt, pes]` bounds as raw bit patterns.
fn sweep_digest(
    codes: &StoreCodes,
    metric: &dyn DecomposableMetric,
    query: &[f64],
    kernel: Kernel,
) -> Vec<u64> {
    let mut scratch = QuantScratch::new();
    let mut digest = Vec::new();
    for si in 0..codes.n_segments() {
        let view = codes.segment_view(si).unwrap();
        interval_scores_into(&view, metric, query, kernel, &mut scratch).unwrap();
        digest.extend(scratch.opt().iter().chain(scratch.pes()).map(|v| v.to_bits()));
    }
    digest
}

fn bits_of(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quantized_sweep_is_bit_identical_across_kernels(
        (vectors, query) in collection(),
        w in weights(),
        bits in prop_oneof![Just(2u8), Just(4), Just(8)],
    ) {
        let table = DecomposedTable::from_vectors("ki", &vectors).unwrap();
        let specs = table.partition_specs(2);
        let stats: Vec<SegmentStats> =
            specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
        let codes = StoreCodes::build(&table, &specs, &stats, bits).unwrap();

        let whi = WeightedHistogramIntersection::new(w.clone()).unwrap();
        let wse = WeightedSquaredEuclidean::new(w).unwrap();
        let metrics: Vec<&dyn DecomposableMetric> =
            vec![&HistogramIntersection, &SquaredEuclidean, &whi, &wse];
        for metric in metrics {
            let reference = sweep_digest(&codes, metric, &query, Kernel::Scalar);
            for kernel in supported_kernels() {
                let got = sweep_digest(&codes, metric, &query, kernel);
                prop_assert_eq!(
                    &reference,
                    &got,
                    "{} sweep diverged from scalar ({} @ {} bits)",
                    kernel.label(),
                    metric.name(),
                    bits
                );
            }
        }
    }

    #[test]
    fn refine_accumulate_is_bit_identical_across_kernels(
        values in proptest::collection::vec(-2.0f64..=2.0, ROWS),
        seed_acc in proptest::collection::vec(-8.0f64..=8.0, ROWS),
        query in -1.0f64..=1.0,
        w in weights(),
        dim in 0usize..DIMS,
    ) {
        let ops = [
            KernelOp::Min,                         // Hq, Hh
            KernelOp::SquaredDiff,                 // Eq, Ev
            KernelOp::WeightedMin(&w),             // WHq
            KernelOp::WeightedSquaredDiff(&w),     // WEv
        ];
        for op in ops {
            let mut reference = seed_acc.clone();
            kernels::accumulate(Kernel::Scalar, op, dim, &values, query, &mut reference);
            for kernel in supported_kernels() {
                let mut acc = seed_acc.clone();
                kernels::accumulate(kernel, op, dim, &values, query, &mut acc);
                prop_assert_eq!(
                    bits_of(&reference),
                    bits_of(&acc),
                    "{} dense accumulate diverged from scalar ({:?})",
                    kernel.label(),
                    op
                );
            }
        }
    }

    #[test]
    fn gathered_paths_are_bit_identical_across_kernels(
        values in proptest::collection::vec(-2.0f64..=2.0, ROWS),
        rows in proptest::collection::vec(0u32..ROWS as u32, 1..=97),
        query in -1.0f64..=1.0,
        w in weights(),
        dim in 0usize..DIMS,
    ) {
        let rows: Vec<RowId> = rows;
        let ops = [
            KernelOp::Min,
            KernelOp::SquaredDiff,
            KernelOp::WeightedMin(&w),
            KernelOp::WeightedSquaredDiff(&w),
        ];
        for op in ops {
            let mut reference = vec![0.0; rows.len()];
            kernels::accumulate_gather(Kernel::Scalar, op, dim, &values, &rows, query, &mut reference);
            for kernel in supported_kernels() {
                let mut acc = vec![0.0; rows.len()];
                kernels::accumulate_gather(kernel, op, dim, &values, &rows, query, &mut acc);
                prop_assert_eq!(
                    bits_of(&reference),
                    bits_of(&acc),
                    "{} gathered accumulate diverged from scalar ({:?})",
                    kernel.label(),
                    op
                );
            }
        }

        // the Hh rule's scanned-mass side columns
        let mut dense_ref = vec![0.0; values.len()];
        kernels::add_assign(Kernel::Scalar, &values, &mut dense_ref);
        let mut gather_ref = vec![0.0; rows.len()];
        kernels::add_assign_gather(Kernel::Scalar, &values, &rows, &mut gather_ref);
        for kernel in supported_kernels() {
            let mut dense = vec![0.0; values.len()];
            kernels::add_assign(kernel, &values, &mut dense);
            prop_assert_eq!(bits_of(&dense_ref), bits_of(&dense), "{} add_assign", kernel.label());
            let mut gather = vec![0.0; rows.len()];
            kernels::add_assign_gather(kernel, &values, &rows, &mut gather);
            prop_assert_eq!(
                bits_of(&gather_ref),
                bits_of(&gather),
                "{} add_assign_gather",
                kernel.label()
            );
        }
    }
}
