//! The forced-`BOND_KERNEL` matrix, end to end: for every override value
//! (including unset, an unsupported flavour and garbage) the process must
//! latch the kernel `Kernel::select` predicts, and a full search over all
//! six pruning rules plus the quantized filter must return bit-identical
//! results regardless of which flavour ran.
//!
//! `Kernel::active()` is a process-wide `OnceLock` — the override is read
//! exactly once, before any search — so each matrix cell has to be its own
//! process: this test re-executes its own binary in probe mode per cell.
//! That is also why this lives in its own integration binary: nothing else
//! here may touch `Kernel::active()` first.

use std::process::Command;

use bond::kernels::Kernel;
use bond::quantfilter::filter_segment;
use bond::{BondParams, BondSearcher};
use bond_metrics::SquaredEuclidean;
use vdstore::{Bitmap, DecomposedTable, SegmentStats, StoreCodes};

const ROWS: usize = 150;
const DIMS: usize = 8;
const K: usize = 7;

fn table() -> DecomposedTable {
    // deterministic, allocation-only data — no RNG, identical in every
    // probe process
    let vectors: Vec<Vec<f64>> = (0..ROWS)
        .map(|r| (0..DIMS).map(|d| ((r * DIMS + d) as f64 * 0.37).sin().abs()).collect())
        .collect();
    DecomposedTable::from_vectors("env-matrix", &vectors).unwrap()
}

/// Runs every rule plus the quantized filter under whatever kernel this
/// process latched, and folds every hit's row and score bits into one
/// hex digest the parent can compare across cells.
fn digest() -> String {
    let table = table();
    let searcher = BondSearcher::new(&table);
    let params = BondParams::default();
    let query: Vec<f64> = table.row(3).unwrap();
    let weights: Vec<f64> = (0..DIMS).map(|d| 0.5 + d as f64 * 0.25).collect();

    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |x: u64| {
        acc ^= x;
        acc = acc.wrapping_mul(0x1000_0000_01b3);
    };
    let mut fold_hits = |hits: &[bond::Scored]| {
        for h in hits {
            fold(u64::from(h.row));
            fold(h.score.to_bits());
        }
    };

    fold_hits(&searcher.histogram_intersection_hq(&query, K, &params).unwrap().hits);
    fold_hits(&searcher.histogram_intersection_hh(&query, K, &params).unwrap().hits);
    fold_hits(&searcher.euclidean_eq(&query, K, &params).unwrap().hits);
    fold_hits(&searcher.euclidean_ev(&query, K, &params).unwrap().hits);
    fold_hits(&searcher.weighted_euclidean(&query, &weights, K, &params).unwrap().hits);
    fold_hits(
        &searcher.weighted_histogram_intersection(&query, &weights, K, &params).unwrap().hits,
    );

    // the quantized sweep, through the dispatched flavour
    let specs = table.partition_specs(2);
    let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
    let codes = StoreCodes::build(&table, &specs, &stats, 8).unwrap();
    for si in 0..codes.n_segments() {
        let view = codes.segment_view(si).unwrap();
        let live = Bitmap::full(view.len());
        let filter = filter_segment(&view, &SquaredEuclidean, &query, K, &live, None).unwrap();
        fold(filter.cells);
        fold(filter.kappa.map_or(0, f64::to_bits));
        for row in filter.survivors.to_rows() {
            fold(u64::from(row));
        }
    }
    format!("{acc:016x}")
}

#[test]
fn forced_kernel_matrix_latches_and_answers_identically() {
    if std::env::var("BOND_KERNEL_PROBE").is_ok() {
        // probe mode: report what this process latched and what it answered
        println!("ACTIVE={} DIGEST={}", Kernel::active().label(), digest());
        return;
    }

    let exe = std::env::current_exe().unwrap();
    let cells: [Option<&str>; 5] =
        [None, Some("scalar"), Some("avx2"), Some("neon"), Some("bogus")];
    let mut digests: Vec<(String, String)> = Vec::new();
    for forced in cells {
        let mut cmd = Command::new(&exe);
        cmd.args([
            "forced_kernel_matrix_latches_and_answers_identically",
            "--exact",
            "--nocapture",
        ])
        .env("BOND_KERNEL_PROBE", "1")
        .env_remove("BOND_KERNEL");
        if let Some(name) = forced {
            cmd.env("BOND_KERNEL", name);
        }
        let out = cmd.output().expect("probe process spawns");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(out.status.success(), "probe {forced:?} failed:\n{stdout}");

        // the report may share its line with the harness's "test … ok"
        // chatter, so pick the tagged tokens out of the whole stream
        let token = |tag: &str| {
            stdout
                .split_whitespace()
                .find_map(|t| t.strip_prefix(tag))
                .unwrap_or_else(|| panic!("probe {forced:?} printed no {tag} report:\n{stdout}"))
                .to_string()
        };
        let active = token("ACTIVE=");
        let digest = token("DIGEST=");

        let expected = Kernel::select(forced).label();
        assert_eq!(active, expected, "BOND_KERNEL={forced:?} latched the wrong flavour");
        digests.push((format!("{forced:?}->{active}"), digest));
    }

    let reference = &digests[0].1;
    for (cell, digest) in &digests {
        assert_eq!(digest, reference, "kernel cell {cell} changed the answers");
    }
}
