//! The central safety property of BOND: whatever the pruning criterion, the
//! dimension ordering, the block schedule or the candidate-set
//! representation, the returned top-k set must be exactly what a sequential
//! scan over the same data returns. If any bound were too tight, pruning
//! would lose a true neighbour and these tests would catch it.

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering};
use bond_baselines::sequential_scan;
use bond_metrics::{HistogramIntersection, SquaredEuclidean, WeightedSquaredEuclidean};
use proptest::prelude::*;
use vdstore::DecomposedTable;

const DIMS: usize = 10;
const ROWS: usize = 60;

/// A random collection of normalized histograms plus a query drawn from it.
fn histogram_collection() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (proptest::collection::vec(proptest::collection::vec(0.01f64..=1.0, DIMS), ROWS), 0..ROWS)
        .prop_map(|(mut vectors, query_idx)| {
            for v in &mut vectors {
                let total: f64 = v.iter().sum();
                for x in v.iter_mut() {
                    *x /= total;
                }
            }
            (vectors, query_idx)
        })
}

/// A random collection of unit-hypercube vectors plus a query index.
fn cube_collection() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (proptest::collection::vec(proptest::collection::vec(0.0f64..=1.0, DIMS), ROWS), 0..ROWS)
}

fn sorted_rows(hits: &[bond::Scored]) -> Vec<u32> {
    let mut rows: Vec<u32> = hits.iter().map(|h| h.row).collect();
    rows.sort_unstable();
    rows
}

fn sorted_scores(hits: &[bond::Scored]) -> Vec<f64> {
    let mut scores: Vec<f64> = hits.iter().map(|h| h.score).collect();
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    scores
}

/// Compares BOND and sequential-scan results: the score multisets must agree
/// (rows may differ only when scores tie exactly).
fn assert_same_topk(bond_hits: &[bond::Scored], scan_hits: &[vdstore::topk::Scored]) {
    let bond_scores = sorted_scores(bond_hits);
    let mut scan_scores: Vec<f64> = scan_hits.iter().map(|h| h.score).collect();
    scan_scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(bond_scores.len(), scan_scores.len());
    for (a, b) in bond_scores.iter().zip(&scan_scores) {
        assert!((a - b).abs() < 1e-9, "top-k score sets differ: {a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hq_and_hh_match_sequential_scan(
        (vectors, qi) in histogram_collection(),
        k in 1usize..=15,
        m in 1usize..=DIMS,
    ) {
        let table = DecomposedTable::from_vectors("h", &vectors).unwrap();
        let matrix = table.to_row_matrix();
        let query = vectors[qi].clone();
        let searcher = BondSearcher::new(&table);
        let params = BondParams {
            schedule: BlockSchedule::Fixed(m),
            ..BondParams::default()
        };
        let truth = sequential_scan(&matrix, &query, k, &HistogramIntersection);
        let hq = searcher.histogram_intersection_hq(&query, k, &params).unwrap();
        let hh = searcher.histogram_intersection_hh(&query, k, &params).unwrap();
        assert_same_topk(&hq.hits, &truth.hits);
        assert_same_topk(&hh.hits, &truth.hits);
    }

    #[test]
    fn eq_and_ev_match_sequential_scan(
        (vectors, qi) in cube_collection(),
        k in 1usize..=15,
        m in 1usize..=DIMS,
    ) {
        let table = DecomposedTable::from_vectors("v", &vectors).unwrap();
        let matrix = table.to_row_matrix();
        let query = vectors[qi].clone();
        let searcher = BondSearcher::new(&table);
        let params = BondParams {
            schedule: BlockSchedule::Fixed(m),
            ..BondParams::default()
        };
        let truth = sequential_scan(&matrix, &query, k, &SquaredEuclidean);
        let eq = searcher.euclidean_eq(&query, k, &params).unwrap();
        let ev = searcher.euclidean_ev(&query, k, &params).unwrap();
        assert_same_topk(&eq.hits, &truth.hits);
        assert_same_topk(&ev.hits, &truth.hits);
    }

    #[test]
    fn orderings_and_schedules_do_not_change_results(
        (vectors, qi) in histogram_collection(),
        k in 1usize..=10,
        seed in 0u64..1000,
    ) {
        let table = DecomposedTable::from_vectors("h", &vectors).unwrap();
        let matrix = table.to_row_matrix();
        let query = vectors[qi].clone();
        let searcher = BondSearcher::new(&table);
        let truth = sequential_scan(&matrix, &query, k, &HistogramIntersection);
        for ordering in [
            DimensionOrdering::QueryValueDescending,
            DimensionOrdering::QueryValueAscending,
            DimensionOrdering::Random { seed },
            DimensionOrdering::Natural,
        ] {
            for schedule in [
                BlockSchedule::Fixed(3),
                BlockSchedule::WarmupThenFixed { warmup: 4, m: 2 },
                BlockSchedule::Doubling { first: 1 },
                BlockSchedule::SingleBlock,
            ] {
                let params = BondParams { schedule, ordering: ordering.clone(), ..BondParams::default() };
                let out = searcher.histogram_intersection_hq(&query, k, &params).unwrap();
                assert_same_topk(&out.hits, &truth.hits);
            }
        }
    }

    #[test]
    fn weighted_search_matches_weighted_scan(
        (vectors, qi) in cube_collection(),
        k in 1usize..=10,
        weights in proptest::collection::vec(prop_oneof![Just(0.0f64), 0.1f64..=4.0], DIMS),
    ) {
        // ensure at least one positive weight
        let mut weights = weights;
        if weights.iter().all(|&w| w == 0.0) {
            weights[0] = 1.0;
        }
        let table = DecomposedTable::from_vectors("v", &vectors).unwrap();
        let matrix = table.to_row_matrix();
        let query = vectors[qi].clone();
        let searcher = BondSearcher::new(&table);
        let metric = WeightedSquaredEuclidean::new(weights.clone()).unwrap();
        let truth = sequential_scan(&matrix, &query, k, &metric);
        let out = searcher
            .weighted_euclidean(&query, &weights, k, &BondParams::default())
            .unwrap();
        assert_same_topk(&out.hits, &truth.hits);
    }

    #[test]
    fn subspace_matches_projection_scan(
        (vectors, qi) in cube_collection(),
        k in 1usize..=8,
        mask in proptest::collection::vec(proptest::bool::ANY, DIMS),
    ) {
        let selected: Vec<usize> =
            mask.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i).collect();
        let selected = if selected.is_empty() { vec![0] } else { selected };
        let table = DecomposedTable::from_vectors("v", &vectors).unwrap();
        let query = vectors[qi].clone();
        let searcher = BondSearcher::new(&table);
        let out = searcher
            .subspace_euclidean(&query, &selected, k, &BondParams::default())
            .unwrap();
        // reference: scan the projected table with the unweighted metric
        let projected = table.project(&selected).unwrap();
        let projected_query: Vec<f64> = selected.iter().map(|&d| query[d]).collect();
        let truth =
            sequential_scan(&projected.to_row_matrix(), &projected_query, k, &SquaredEuclidean);
        assert_same_topk(&out.hits, &truth.hits);
    }

    #[test]
    fn refined_and_unrefined_searches_return_the_same_rows(
        (vectors, qi) in histogram_collection(),
        k in 1usize..=10,
    ) {
        let table = DecomposedTable::from_vectors("h", &vectors).unwrap();
        let query = vectors[qi].clone();
        let searcher = BondSearcher::new(&table);
        let refined = searcher
            .histogram_intersection_hh(&query, k, &BondParams::default())
            .unwrap();
        let unrefined = searcher
            .histogram_intersection_hh(
                &query,
                k,
                &BondParams { refine_survivors: false, ..BondParams::default() },
            )
            .unwrap();
        // Without refinement the ordering inside the answer set may differ,
        // but the returned set of rows must be identical.
        assert_eq!(sorted_rows(&refined.hits), sorted_rows(&unrefined.hits));
    }
}
