//! Clustered synthetic datasets (Section 7.5).
//!
//! "All datasets contain 100,000 128-dimensional vectors, defined in a unit
//! hypercube. In this hypercube, 1000 points define the centers of the
//! clusters; 95 % of the generated vectors belong to some random cluster,
//! whereas 5 % of them take random values (noise). The distance from each
//! vector to the cluster where it belongs to is defined by a Gaussian
//! distribution around the cluster's center. The coordinates of the
//! clusters' centers follow a Zipfian distribution [with skew θ]; if θ is 0
//! the centers follow a uniform distribution."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vdstore::DecomposedTable;

use crate::samplers::{gaussian, skewed_coordinate};

/// Configuration of the clustered-vector generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredConfig {
    /// Number of vectors (paper: 100,000).
    pub vectors: usize,
    /// Dimensionality (paper: 128; Section 8.2 also uses 64).
    pub dims: usize,
    /// Number of cluster centers (paper: 1000).
    pub clusters: usize,
    /// Skew of the cluster-center coordinates; 0 = uniform centers.
    pub theta: f64,
    /// Fraction of pure-noise vectors (paper: 0.05).
    pub noise_fraction: f64,
    /// Standard deviation of the Gaussian spread around a center.
    pub sigma: f64,
    /// RNG seed.
    pub seed: u64,
    /// Row layout: `false` stores vectors in generation (shuffled) order —
    /// every row range sees every cluster; `true` stores them cluster-major
    /// (all of cluster 0's vectors, then cluster 1's, …, noise last), the
    /// append-in-batches regime where contiguous row segments have narrow
    /// value envelopes and per-segment statistics diverge.
    pub cluster_major: bool,
}

impl ClusteredConfig {
    /// The paper's full-scale configuration for a given skew θ.
    pub fn paper_scale(theta: f64) -> Self {
        ClusteredConfig { vectors: 100_000, dims: 128, theta, ..ClusteredConfig::default() }
    }

    /// A smaller configuration suitable for tests and examples.
    pub fn small(vectors: usize, dims: usize, theta: f64) -> Self {
        ClusteredConfig {
            vectors,
            dims,
            theta,
            clusters: (vectors / 100).max(4),
            ..ClusteredConfig::default()
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same configuration with a different dimensionality.
    pub fn with_dims(mut self, dims: usize) -> Self {
        self.dims = dims;
        self
    }

    /// Same configuration with a cluster-major (contiguous-cluster) row
    /// layout.
    pub fn with_cluster_major(mut self, cluster_major: bool) -> Self {
        self.cluster_major = cluster_major;
        self
    }

    /// Generates the collection as a vertically decomposed table.
    pub fn generate(&self) -> DecomposedTable {
        assert!(self.vectors > 0 && self.dims > 0 && self.clusters > 0, "empty dataset requested");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Cluster centers with skewed coordinates.
        let centers: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| (0..self.dims).map(|_| skewed_coordinate(&mut rng, self.theta)).collect())
            .collect();

        // (cluster id, vector); noise vectors get id = clusters so the
        // cluster-major sort puts them after every real cluster.
        let mut tagged: Vec<(usize, Vec<f64>)> = Vec::with_capacity(self.vectors);
        for _ in 0..self.vectors {
            let (id, v): (usize, Vec<f64>) = if rng.gen::<f64>() < self.noise_fraction {
                // noise: uniform in the unit hypercube
                (self.clusters, (0..self.dims).map(|_| rng.gen::<f64>()).collect())
            } else {
                let c = rng.gen_range(0..self.clusters);
                let center = &centers[c];
                (
                    c,
                    center
                        .iter()
                        .map(|&c| gaussian(&mut rng, c, self.sigma).clamp(0.0, 1.0))
                        .collect(),
                )
            };
            tagged.push((id, v));
        }
        if self.cluster_major {
            tagged.sort_by_key(|(id, _)| *id);
        }
        let vectors: Vec<Vec<f64>> = tagged.into_iter().map(|(_, v)| v).collect();
        DecomposedTable::from_vectors(
            format!("clustered_{}d_theta{}", self.dims, self.theta),
            &vectors,
        )
        .expect("generator produces a rectangular collection")
    }
}

impl Default for ClusteredConfig {
    fn default() -> Self {
        ClusteredConfig {
            vectors: 10_000,
            dims: 128,
            clusters: 1000,
            theta: 1.0,
            noise_fraction: 0.05,
            sigma: 0.05,
            seed: 0xC1_05_7E_2D,
            cluster_major: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdstore::DatasetStats;

    #[test]
    fn vectors_live_in_unit_hypercube() {
        let t = ClusteredConfig::small(500, 16, 1.0).generate();
        assert_eq!(t.rows(), 500);
        assert_eq!(t.dims(), 16);
        for c in t.columns() {
            assert!(c.min().unwrap() >= 0.0);
            assert!(c.max().unwrap() <= 1.0);
        }
    }

    #[test]
    fn clustering_makes_nn_meaningful() {
        // With clusters, a vector's nearest neighbour is much closer than a
        // random vector: compare the average NN distance to the average
        // pairwise distance on a small sample.
        let t = ClusteredConfig::small(300, 16, 0.0).generate();
        let m = t.to_row_matrix();
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
        };
        let mut nn_sum = 0.0;
        let mut all_sum = 0.0;
        let mut all_cnt = 0usize;
        for i in 0..50u32 {
            let mut best = f64::INFINITY;
            for j in 0..300u32 {
                if i == j {
                    continue;
                }
                let d = dist(m.row(i), m.row(j));
                best = best.min(d);
                all_sum += d;
                all_cnt += 1;
            }
            nn_sum += best;
        }
        let mean_nn = nn_sum / 50.0;
        let mean_all = all_sum / all_cnt as f64;
        assert!(
            mean_nn < mean_all / 4.0,
            "nearest neighbours should be far closer than average: {mean_nn} vs {mean_all}"
        );
    }

    #[test]
    fn theta_skews_the_coordinates() {
        let uniform = ClusteredConfig::small(2000, 8, 0.0).generate();
        let skewed = ClusteredConfig::small(2000, 8, 3.0).with_seed(9).generate();
        let mean_u = DatasetStats::compute(&uniform).mean_per_dim.iter().sum::<f64>() / 8.0;
        let mean_s = DatasetStats::compute(&skewed).mean_per_dim.iter().sum::<f64>() / 8.0;
        assert!((mean_u - 0.5).abs() < 0.05, "θ=0 should be roughly centered, got {mean_u}");
        assert!(mean_s < 0.3, "θ=3 should push coordinates toward 0, got {mean_s}");
    }

    #[test]
    fn cluster_major_layout_narrows_segment_envelopes() {
        let shuffled = ClusteredConfig::small(1000, 8, 0.0).generate();
        let major = ClusteredConfig::small(1000, 8, 0.0).with_cluster_major(true).generate();
        assert_eq!(major.rows(), 1000);
        // same multiset of vectors, different order: identical column means
        let mean = |t: &DecomposedTable, d: usize| {
            t.columns()[d].values().iter().sum::<f64>() / t.rows() as f64
        };
        for d in 0..8 {
            assert!((mean(&shuffled, d) - mean(&major, d)).abs() < 1e-9);
        }
        // a row slice of the cluster-major table spans far fewer clusters,
        // so its per-dimension envelope is much narrower on average
        let width = |t: &DecomposedTable| {
            let s = t.segment(0..100).unwrap().stats();
            let (mins, maxs) = s.envelope().unwrap();
            mins.iter().zip(&maxs).map(|(lo, hi)| hi - lo).sum::<f64>() / 8.0
        };
        assert!(
            width(&major) < width(&shuffled) * 0.8,
            "cluster-major envelope {} should be narrower than shuffled {}",
            width(&major),
            width(&shuffled)
        );
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = ClusteredConfig::small(100, 8, 1.0).with_seed(1).generate();
        let b = ClusteredConfig::small(100, 8, 1.0).with_seed(1).generate();
        assert_eq!(a.row(42).unwrap(), b.row(42).unwrap());
    }

    #[test]
    fn paper_scale_parameters() {
        let cfg = ClusteredConfig::paper_scale(0.5);
        assert_eq!(cfg.vectors, 100_000);
        assert_eq!(cfg.dims, 128);
        assert_eq!(cfg.clusters, 1000);
        assert!((cfg.noise_fraction - 0.05).abs() < 1e-12);
    }
}
