//! Corel-like color-histogram generator.
//!
//! The paper's real dataset (Section 7.1) consists of 59,619 HSV color
//! histograms with 166 bins, normalized to sum to 1, whose per-image values
//! follow a Zipfian distribution while the *identity* of the high-value bins
//! differs from image to image (Figure 2). Those two properties — skewed
//! per-vector mass and T(h) = 1 — are exactly what the Hq/Hh/Ev pruning
//! behaviour depends on, so the generator reproduces them:
//!
//! * a global, Zipf-distributed *bin popularity* decides which bins tend to
//!   carry mass (this produces the uneven per-bin means of Figure 2, top),
//! * every image samples a handful of "active" bins without replacement,
//!   biased by popularity, and assigns them Zipf-rank masses (this produces
//!   the sorted Zipfian profile of Figure 2, bottom),
//! * a small uniform background is added and the histogram is normalized.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vdstore::DecomposedTable;

use crate::samplers::{weighted_sample_without_replacement, zipf_probabilities};

/// Configuration of the Corel-like histogram generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CorelLikeConfig {
    /// Number of histograms (the paper's collection has 59,619).
    pub vectors: usize,
    /// Number of bins (the paper's HSV quantization yields 166).
    pub dims: usize,
    /// Zipf exponent of the per-image rank masses (≈ 1 reproduces the
    /// Figure 2 profile).
    pub value_skew: f64,
    /// Zipf exponent of the global bin popularity (how unevenly mass is
    /// spread over bins across the collection).
    pub bin_popularity_skew: f64,
    /// Number of active (high-mass) bins per image.
    pub active_bins: usize,
    /// Fraction of each histogram's mass spread uniformly over all bins as
    /// background noise.
    pub background: f64,
    /// RNG seed; the same seed reproduces the same collection.
    pub seed: u64,
}

impl CorelLikeConfig {
    /// The paper's full-scale dataset: 59,619 histograms, 166 bins.
    pub fn paper_scale() -> Self {
        CorelLikeConfig { vectors: 59_619, dims: 166, ..CorelLikeConfig::default() }
    }

    /// A smaller configuration suitable for unit tests and examples.
    pub fn small(vectors: usize, dims: usize) -> Self {
        CorelLikeConfig { vectors, dims, ..CorelLikeConfig::default() }
    }

    /// Same configuration at a different dimensionality (used by the
    /// Figure 8 dimensionality sweep: 26, 52, 166, 260 bins).
    pub fn with_dims(mut self, dims: usize) -> Self {
        self.dims = dims;
        self.active_bins = self.active_bins.min(dims);
        self
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the collection as a vertically decomposed table.
    pub fn generate(&self) -> DecomposedTable {
        assert!(self.vectors > 0 && self.dims > 0, "empty dataset requested");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let active = self.active_bins.clamp(1, self.dims);

        // Global bin popularity: a Zipf law over a random permutation of the
        // bins, so that "popular" bins are scattered over the index range
        // (as in the paper's Figure 2 the high-mean bins are not contiguous).
        let mut popularity = zipf_probabilities(self.dims, self.bin_popularity_skew);
        for i in (1..popularity.len()).rev() {
            let j = rng.gen_range(0..=i);
            popularity.swap(i, j);
        }

        // Per-image rank masses (Zipfian profile of Figure 2, bottom).
        let rank_mass = zipf_probabilities(active, self.value_skew);

        let mut vectors = Vec::with_capacity(self.vectors);
        for _ in 0..self.vectors {
            let mut h = vec![0.0f64; self.dims];
            let bins = weighted_sample_without_replacement(&mut rng, &popularity, active);
            for (rank, &bin) in bins.iter().enumerate() {
                // jitter the rank mass slightly so no two images are identical
                let jitter = 0.75 + 0.5 * rng.gen::<f64>();
                h[bin] += rank_mass[rank] * jitter;
            }
            if self.background > 0.0 {
                let per_bin = self.background / self.dims as f64;
                for x in &mut h {
                    *x += per_bin * rng.gen::<f64>();
                }
            }
            let total: f64 = h.iter().sum();
            for x in &mut h {
                *x /= total;
            }
            vectors.push(h);
        }
        DecomposedTable::from_vectors(format!("corel_like_{}d", self.dims), &vectors)
            .expect("generator produces a rectangular collection")
    }
}

impl Default for CorelLikeConfig {
    fn default() -> Self {
        CorelLikeConfig {
            vectors: 1000,
            dims: 166,
            value_skew: 1.0,
            bin_popularity_skew: 0.8,
            active_bins: 24,
            background: 0.05,
            seed: 0x0BDE_C0DE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdstore::DatasetStats;

    #[test]
    fn histograms_are_normalized() {
        let t = CorelLikeConfig::small(200, 64).generate();
        assert_eq!(t.rows(), 200);
        assert_eq!(t.dims(), 64);
        for s in t.row_sums() {
            assert!((s - 1.0).abs() < 1e-9, "histogram mass {s} != 1");
        }
        for c in t.columns() {
            assert!(c.min().unwrap() >= 0.0);
        }
    }

    #[test]
    fn per_vector_profile_is_zipfian_like() {
        let t = CorelLikeConfig::small(300, 64).generate();
        let stats = DatasetStats::compute(&t);
        // The sorted profile must be strongly skewed: the top 10% of bins of
        // an average vector carry well over half of its mass (Figure 2).
        let concentration = stats.mass_concentration(0.1);
        assert!(concentration > 0.6, "mass concentration too low: {concentration}");
        // and the profile decreases
        for w in stats.mean_sorted_profile.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn high_value_bins_differ_across_images() {
        let t = CorelLikeConfig::small(100, 64).generate();
        let mut argmaxes = std::collections::HashSet::new();
        for r in 0..t.rows() as u32 {
            let row = t.row(r).unwrap();
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            argmaxes.insert(argmax);
        }
        assert!(argmaxes.len() > 5, "top bins should vary across images, got {argmaxes:?}");
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = CorelLikeConfig::small(50, 32).with_seed(42).generate();
        let b = CorelLikeConfig::small(50, 32).with_seed(42).generate();
        let c = CorelLikeConfig::small(50, 32).with_seed(43).generate();
        assert_eq!(a.row(7).unwrap(), b.row(7).unwrap());
        assert_ne!(a.row(7).unwrap(), c.row(7).unwrap());
    }

    #[test]
    fn with_dims_scales_active_bins() {
        let cfg = CorelLikeConfig::small(10, 166).with_dims(8);
        assert_eq!(cfg.dims, 8);
        assert!(cfg.active_bins <= 8);
        let t = cfg.generate();
        assert_eq!(t.dims(), 8);
    }

    #[test]
    fn paper_scale_matches_paper_parameters() {
        let cfg = CorelLikeConfig::paper_scale();
        assert_eq!(cfg.vectors, 59_619);
        assert_eq!(cfg.dims, 166);
    }
}
