//! Low-level random samplers.
//!
//! Only the `rand` crate is available offline, and it does not ship the
//! Gaussian or Zipf distributions, so the two samplers the paper's data
//! generators need are implemented here: a Box–Muller Gaussian and a
//! rank-based Zipf.

use rand::Rng;

/// Draws a sample from a normal distribution with the given mean and
/// standard deviation using the Box–Muller transform.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The unnormalized Zipf mass of rank `i` (1-based) with exponent `theta`:
/// `1 / i^theta`.
#[inline]
pub fn zipf_mass(rank: usize, theta: f64) -> f64 {
    1.0 / (rank as f64).powf(theta)
}

/// Normalized Zipf probabilities over `n` ranks with exponent `theta`.
/// `theta = 0` yields the uniform distribution.
pub fn zipf_probabilities(n: usize, theta: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one rank");
    assert!(theta >= 0.0, "theta must be non-negative");
    let mut p: Vec<f64> = (1..=n).map(|i| zipf_mass(i, theta)).collect();
    let total: f64 = p.iter().sum();
    for x in &mut p {
        *x /= total;
    }
    p
}

/// Samples an index in `0..probabilities.len()` according to the given
/// (normalized) probabilities.
pub fn sample_discrete<R: Rng + ?Sized>(rng: &mut R, probabilities: &[f64]) -> usize {
    let target: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probabilities.iter().enumerate() {
        acc += p;
        if target < acc {
            return i;
        }
    }
    probabilities.len() - 1
}

/// Samples a coordinate in `[0, 1]` whose distribution is uniform for
/// `theta = 0` and increasingly skewed towards 0 for larger `theta`
/// (a continuous stand-in for the paper's "cluster-center coordinates follow
/// a Zipfian distribution with skew parameter θ").
pub fn skewed_coordinate<R: Rng + ?Sized>(rng: &mut R, theta: f64) -> f64 {
    let u: f64 = rng.gen();
    u.powf(1.0 + theta)
}

/// Samples `k` distinct indices from `0..n` with probability proportional to
/// `attractiveness` (weighted sampling without replacement).
pub fn weighted_sample_without_replacement<R: Rng + ?Sized>(
    rng: &mut R,
    attractiveness: &[f64],
    k: usize,
) -> Vec<usize> {
    let n = attractiveness.len();
    let k = k.min(n);
    // Efraimidis–Spirakis: key = u^(1/w); take the k largest keys.
    let mut keyed: Vec<(f64, usize)> = attractiveness
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let key = if w > 0.0 { u.powf(1.0 / w) } else { 0.0 };
            (key, i)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    keyed.into_iter().take(k).map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_has_right_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn zipf_probabilities_are_normalized_and_skewed() {
        let p = zipf_probabilities(100, 1.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[50]);
        let uniform = zipf_probabilities(10, 0.0);
        for &x in &uniform {
            assert!((x - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn zipf_rejects_empty() {
        let _ = zipf_probabilities(0, 1.0);
    }

    #[test]
    fn sample_discrete_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = vec![0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_discrete(&mut rng, &p)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        assert!((counts[0] as f64 / 30_000.0 - 0.7).abs() < 0.02);
    }

    #[test]
    fn skewed_coordinate_is_uniform_at_zero_theta() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean0: f64 = (0..n).map(|_| skewed_coordinate(&mut rng, 0.0)).sum::<f64>() / n as f64;
        let mean2: f64 = (0..n).map(|_| skewed_coordinate(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((mean0 - 0.5).abs() < 0.02);
        assert!(mean2 < 0.3, "theta=2 should push mass toward 0, mean {mean2}");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items_and_is_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let attractiveness = vec![10.0, 1.0, 1.0, 1.0, 0.0];
        let mut first_counts = 0;
        for _ in 0..2000 {
            let s = weighted_sample_without_replacement(&mut rng, &attractiveness, 3);
            assert_eq!(s.len(), 3);
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "samples must be distinct");
            assert!(!s.contains(&4), "zero-weight item must never be sampled");
            if s.contains(&0) {
                first_counts += 1;
            }
        }
        assert!(first_counts > 1900, "heavy item sampled in {first_counts}/2000 draws");
        // requesting more than available clamps
        let s = weighted_sample_without_replacement(&mut rng, &[1.0, 1.0], 5);
        assert_eq!(s.len(), 2);
    }
}
