//! Skewed weight vectors for weighted k-NN queries (Section 8.1, Figure 11).
//!
//! The paper studies how the skew of the query weights affects pruning: "10%
//! of the dimensions should get more than 90% of the weights" before the
//! weighted search becomes effective on a uniformly clustered dataset. Two
//! generators are provided: a Zipf-law weight vector parameterized by an
//! exponent, and an explicit concentration generator ("put `mass_fraction`
//! of the total weight on the top `top_fraction` of dimensions") that maps
//! directly onto the x-axis of Figure 11.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::samplers::zipf_probabilities;

/// Weights following a Zipf law over a random permutation of the dimensions,
/// normalized so that they sum to `dims` (the convention of Appendix A under
/// which Equation 3 still defines a similarity).
pub fn zipf_weights(dims: usize, theta: f64, seed: u64) -> Vec<f64> {
    assert!(dims > 0, "need at least one dimension");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = zipf_probabilities(dims, theta);
    // scale: probabilities sum to 1 -> weights sum to dims
    for x in &mut w {
        *x *= dims as f64;
    }
    // random permutation so the heavy dimensions are not always the first
    for i in (1..dims).rev() {
        let j = rng.gen_range(0..=i);
        w.swap(i, j);
    }
    w
}

/// Weights where the `top_fraction` most important dimensions carry
/// `mass_fraction` of the total weight and the rest share the remainder
/// evenly; normalized to sum to `dims`. `mass_fraction = top_fraction`
/// reproduces the uniform (unweighted) case.
pub fn concentrated_weights(
    dims: usize,
    top_fraction: f64,
    mass_fraction: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(dims > 0, "need at least one dimension");
    assert!(
        (0.0..=1.0).contains(&top_fraction) && (0.0..=1.0).contains(&mass_fraction),
        "fractions must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let top = ((dims as f64 * top_fraction).round() as usize).clamp(1, dims);
    let rest = dims - top;
    let total = dims as f64;
    let top_weight = total * mass_fraction / top as f64;
    let rest_weight = if rest == 0 { 0.0 } else { total * (1.0 - mass_fraction) / rest as f64 };
    let mut w = vec![rest_weight; dims];
    // choose which dimensions are the heavy ones at random
    let mut idx: Vec<usize> = (0..dims).collect();
    for i in (1..dims).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    for &d in idx.iter().take(top) {
        w[d] = top_weight;
    }
    w
}

/// The fraction of total weight carried by the heaviest `top_fraction` of
/// dimensions — the skew measure plotted on the x-axis of Figure 11.
pub fn weight_concentration(weights: &[f64], top_fraction: f64) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    let mut sorted = weights.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let top = ((weights.len() as f64 * top_fraction).round() as usize).clamp(1, weights.len());
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    sorted.iter().take(top).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_weights_sum_to_dims_and_are_skewed() {
        let w = zipf_weights(128, 1.5, 7);
        assert_eq!(w.len(), 128);
        assert!((w.iter().sum::<f64>() - 128.0).abs() < 1e-9);
        assert!(weight_concentration(&w, 0.1) > 0.5);
        let uniform = zipf_weights(128, 0.0, 7);
        // top 10% of 128 dims rounds to 13 dims -> concentration 13/128
        assert!((weight_concentration(&uniform, 0.1) - 13.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn concentrated_weights_hit_requested_concentration() {
        for mass in [0.1, 0.5, 0.9, 0.99] {
            let w = concentrated_weights(100, 0.1, mass, 3);
            assert!((w.iter().sum::<f64>() - 100.0).abs() < 1e-9);
            let c = weight_concentration(&w, 0.1);
            assert!((c - mass.max(0.1)).abs() < 0.02, "requested {mass}, got {c}");
        }
    }

    #[test]
    fn uniform_case_degenerates_gracefully() {
        let w = concentrated_weights(50, 0.1, 0.1, 1);
        let spread = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - w.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 1e-9, "equal mass and top fractions give uniform weights");
        // all-mass-on-top extreme: the rest must be exactly zero
        let w = concentrated_weights(50, 0.1, 1.0, 1);
        let zeros = w.iter().filter(|&&x| x == 0.0).count();
        assert_eq!(zeros, 45);
    }

    #[test]
    fn heavy_dimensions_are_randomized() {
        let a = concentrated_weights(64, 0.1, 0.9, 1);
        let b = concentrated_weights(64, 0.1, 0.9, 2);
        let heavy = |w: &[f64]| -> Vec<usize> {
            w.iter().enumerate().filter(|(_, &x)| x > 1.0).map(|(i, _)| i).collect()
        };
        assert_ne!(heavy(&a), heavy(&b), "different seeds place weight on different dims");
    }

    #[test]
    #[should_panic(expected = "fractions must be in")]
    fn invalid_fraction_panics() {
        let _ = concentrated_weights(10, 1.5, 0.5, 0);
    }

    #[test]
    fn weight_concentration_edge_cases() {
        assert_eq!(weight_concentration(&[], 0.1), 0.0);
        assert_eq!(weight_concentration(&[0.0, 0.0], 0.5), 0.0);
        assert!((weight_concentration(&[1.0, 1.0, 1.0, 1.0], 0.5) - 0.5).abs() < 1e-12);
    }
}
