//! Query sampling.
//!
//! The paper evaluates every experiment with "100 queries randomly selected
//! from the collection"; these helpers reproduce that protocol
//! deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vdstore::{DecomposedTable, RowId};

/// Samples `count` distinct row ids from the table (fewer if the table is
/// smaller), deterministically for a given seed.
pub fn sample_query_rows(table: &DecomposedTable, count: usize, seed: u64) -> Vec<RowId> {
    let rows = table.rows();
    let count = count.min(rows);
    let mut rng = StdRng::seed_from_u64(seed);
    // partial Fisher–Yates over the row-id range
    let mut ids: Vec<RowId> = (0..rows as RowId).collect();
    for i in 0..count {
        let j = rng.gen_range(i..rows);
        ids.swap(i, j);
    }
    ids.truncate(count);
    ids
}

/// Samples `count` query vectors from the table (the paper's protocol:
/// queries are members of the collection).
pub fn sample_queries(table: &DecomposedTable, count: usize, seed: u64) -> Vec<Vec<f64>> {
    sample_query_rows(table, count, seed)
        .into_iter()
        .map(|r| table.row(r).expect("sampled row id is in range"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: usize) -> DecomposedTable {
        let vectors: Vec<Vec<f64>> = (0..rows).map(|i| vec![i as f64, (rows - i) as f64]).collect();
        DecomposedTable::from_vectors("t", &vectors).unwrap()
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let t = table(500);
        let a = sample_query_rows(&t, 100, 7);
        let b = sample_query_rows(&t, 100, 7);
        let c = sample_query_rows(&t, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100, "sampled rows must be distinct");
    }

    #[test]
    fn sampling_clamps_to_table_size() {
        let t = table(5);
        let rows = sample_query_rows(&t, 100, 1);
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn queries_are_actual_rows() {
        let t = table(50);
        let rows = sample_query_rows(&t, 10, 3);
        let queries = sample_queries(&t, 10, 3);
        for (r, q) in rows.iter().zip(&queries) {
            assert_eq!(&t.row(*r).unwrap(), q);
        }
    }
}
