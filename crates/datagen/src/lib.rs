//! # bond-datagen — synthetic workloads for the BOND reproduction
//!
//! The paper evaluates BOND on two families of datasets:
//!
//! 1. **Corel HSV color histograms** — 59,619 images, 166 bins, values
//!    normalized to sum to 1, per-image values following a Zipf law
//!    (Figure 2). The real Corel collection is proprietary, so
//!    [`corel::CorelLikeConfig`] generates a synthetic collection calibrated
//!    to the same distributional properties; the pruning behaviour of the
//!    criteria depends only on those properties.
//! 2. **Clustered synthetic vectors** (Section 7.5) — 100,000 vectors of
//!    dimensionality 128 in the unit hypercube, 1000 cluster centers whose
//!    coordinates are skewed by a parameter θ (θ = 0 means uniform), vectors
//!    Gaussian-distributed around their center, and 5 % uniform noise.
//!    [`clustered::ClusteredConfig`] reproduces this generator.
//!
//! The crate also provides the skewed weight vectors of Section 8.1
//! ([`weights`]) and query sampling helpers ([`queries`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod clustered;
pub mod corel;
pub mod queries;
pub mod samplers;
pub mod weights;

pub use clustered::ClusteredConfig;
pub use corel::CorelLikeConfig;
pub use queries::{sample_queries, sample_query_rows};
pub use weights::{concentrated_weights, zipf_weights};
