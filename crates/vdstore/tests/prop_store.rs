//! Property-based tests of the storage substrate: bitmap boolean algebra,
//! quantization bracketing, top-k heaps against a full sort, and
//! persistence round-trips. These are the invariants the upper layers
//! (pruning, VA-File bounds, candidate management) silently rely on.

use proptest::prelude::*;
use vdstore::{
    ops, persist, Bitmap, Column, DecomposedTable, QuantizedColumn, TopKLargest, TopKSmallest,
};

const LEN: usize = 200;

fn rows(max: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..max, 0..(max as usize)).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitmap_boolean_algebra(a in rows(LEN as u32), b in rows(LEN as u32)) {
        let ba = Bitmap::from_rows(LEN, &a);
        let bb = Bitmap::from_rows(LEN, &b);

        // union / intersection counts agree with set semantics
        let sa: std::collections::BTreeSet<u32> = a.iter().copied().collect();
        let sb: std::collections::BTreeSet<u32> = b.iter().copied().collect();
        let mut union = ba.clone();
        union.or_with(&bb);
        prop_assert_eq!(union.to_rows(), sa.union(&sb).copied().collect::<Vec<_>>());
        let mut inter = ba.clone();
        inter.and_with(&bb);
        prop_assert_eq!(inter.to_rows(), sa.intersection(&sb).copied().collect::<Vec<_>>());
        let mut diff = ba.clone();
        diff.and_not_with(&bb);
        prop_assert_eq!(diff.to_rows(), sa.difference(&sb).copied().collect::<Vec<_>>());

        // double negation is identity
        let mut neg = ba.clone();
        neg.negate();
        neg.negate();
        prop_assert_eq!(neg, ba.clone());

        // density is count / len
        prop_assert!((ba.density() - sa.len() as f64 / LEN as f64).abs() < 1e-12);
    }

    #[test]
    fn quantization_brackets_every_value(
        values in proptest::collection::vec(-10.0f64..10.0, 1..120),
        bits in 1u8..=12,
    ) {
        let column = Column::new("c", values.clone());
        let q = QuantizedColumn::from_column(&column, bits).unwrap();
        for (i, &v) in values.iter().enumerate() {
            let r = i as u32;
            prop_assert!(q.cell_lower(r) <= v + 1e-9);
            prop_assert!(q.cell_upper(r) >= v - 1e-9);
            prop_assert!((q.approximate(r) - v).abs() <= q.max_error() + 1e-9);
            let (lo, hi) = q.query_cell(v);
            prop_assert!(lo <= v + 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn quantization_rejects_non_finite_values(
        values in proptest::collection::vec(-10.0f64..10.0, 1..60),
        at_seed in 0usize..1_000_000_000,
        kind in 0u8..3,
        bits in 1u8..=16,
    ) {
        let mut values = values;
        let at = at_seed % values.len();
        values[at] = match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let column = Column::new("c", values);
        let err = QuantizedColumn::from_column(&column, bits).unwrap_err();
        prop_assert!(matches!(err, vdstore::VdError::InvalidQuantization(_)));
    }

    #[test]
    fn all_equal_columns_quantize_to_exact_single_level_codes(
        value in -10.0f64..10.0,
        len in 1usize..80,
        bits in 1u8..=12,
    ) {
        let column = Column::new("c", vec![value; len]);
        let q = QuantizedColumn::from_column(&column, bits).unwrap();
        prop_assert_eq!(q.max_error(), 0.0);
        for r in 0..len as u32 {
            prop_assert_eq!(q.code(r), 0);
            prop_assert_eq!(q.cell_lower(r), value);
            prop_assert_eq!(q.cell_upper(r), value);
            prop_assert_eq!(q.approximate(r), value);
        }
    }

    #[test]
    fn topk_heaps_agree_with_sorting(
        values in proptest::collection::vec(-1000.0f64..1000.0, 1..200),
        k in 1usize..30,
    ) {
        let k = k.min(values.len());
        let mut largest = TopKLargest::new(k);
        let mut smallest = TopKSmallest::new(k);
        for (i, &v) in values.iter().enumerate() {
            largest.push(i as u32, v);
            smallest.push(i as u32, v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top: Vec<f64> = largest.into_sorted_vec().iter().map(|s| s.score).collect();
        prop_assert_eq!(top.len(), k);
        for (a, b) in top.iter().zip(&sorted[..k]) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        sorted.reverse();
        let bottom: Vec<f64> = smallest.into_sorted_vec().iter().map(|s| s.score).collect();
        for (a, b) in bottom.iter().zip(&sorted[..k]) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        // kfetch agrees with the heaps
        prop_assert!((ops::kfetch_largest(&values, k).unwrap() - top[k - 1]).abs() < 1e-12);
        prop_assert!((ops::kfetch_smallest(&values, k).unwrap() - bottom[k - 1]).abs() < 1e-12);
    }

    #[test]
    fn uselect_matches_filter(values in proptest::collection::vec(0.0f64..1.0, 1..200), lo in 0.0f64..1.0, width in 0.0f64..1.0) {
        let hi = (lo + width).min(1.0);
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(ops::uselect(&values, lo, hi), expected.clone());
        prop_assert_eq!(ops::uselect_bitmap(&values, lo, hi).to_rows(), expected);
    }

    #[test]
    fn table_persistence_round_trips(
        raw in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 6), 1..40),
        deleted in proptest::collection::vec(proptest::bool::ANY, 1..40),
    ) {
        let mut table = DecomposedTable::from_vectors("t", &raw).unwrap();
        for (i, &d) in deleted.iter().enumerate().take(raw.len()) {
            if d {
                table.delete(i as u32).unwrap();
            }
        }
        let bytes = persist::table_to_bytes(&table);
        let back = persist::table_from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.rows(), table.rows());
        prop_assert_eq!(back.dims(), table.dims());
        prop_assert_eq!(back.live_rows(), table.live_rows());
        for r in 0..table.rows() as u32 {
            prop_assert_eq!(back.row(r).unwrap(), table.row(r).unwrap());
            prop_assert_eq!(back.is_deleted(r), table.is_deleted(r));
        }
    }

    #[test]
    fn segment_store_round_trips_with_bit_exact_stats(
        raw in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 5), 1..40),
        deleted in proptest::collection::vec(proptest::bool::ANY, 1..40),
        partitions in 1usize..6,
    ) {
        let mut table = DecomposedTable::from_vectors("store", &raw).unwrap();
        for (i, &d) in deleted.iter().enumerate().take(raw.len()) {
            if d {
                table.delete(i as u32).unwrap();
            }
        }
        let specs = table.partition_specs(partitions);
        let stats: Vec<vdstore::SegmentStats> =
            specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
        let learned = vec![0xFEu8; (partitions * 3) % 7];
        let learned = (!learned.is_empty()).then_some(learned);
        let bytes = persist::store_to_bytes(&table, &specs, &stats, learned.as_deref()).unwrap();
        let store = persist::store_from_bytes(&bytes).unwrap();
        prop_assert_eq!(store.learned.as_deref(), learned.as_deref());

        prop_assert_eq!(&store.table, &table);
        prop_assert_eq!(&store.specs, &specs);
        // the footer's statistics are bit-exact: equal to the written ones
        // AND to statistics recomputed from the reopened table
        prop_assert_eq!(&store.stats, &stats);
        for (spec, stat) in store.specs.iter().zip(&store.stats) {
            let fresh = spec.view(&store.table).unwrap().stats();
            prop_assert_eq!(stat, &fresh);
            prop_assert_eq!(stat.envelope(), fresh.envelope());
        }
    }

    #[test]
    fn persisted_codes_round_trip_and_bracket_exact_values(
        raw in proptest::collection::vec(proptest::collection::vec(-2.0f64..2.0, 4), 1..40),
        partitions in 1usize..5,
        bits in 1u8..=8,
    ) {
        let table = DecomposedTable::from_vectors("codes", &raw).unwrap();
        let specs = table.partition_specs(partitions);
        let stats: Vec<vdstore::SegmentStats> =
            specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
        let codes = vdstore::StoreCodes::build(&table, &specs, &stats, bits).unwrap();
        let bytes =
            persist::store_to_bytes_with_codes(&table, &specs, &stats, None, Some(&codes))
                .unwrap();
        let store = persist::store_from_bytes(&bytes).unwrap();
        let back = store.codes.as_ref().unwrap();
        prop_assert_eq!(back.bits(), bits);
        prop_assert!(back.matches_specs(&specs));
        // reopened codes are byte-identical and their grids still bracket
        // every exact value of their segment
        for (si, spec) in specs.iter().enumerate() {
            let view = back.segment_view(si).unwrap();
            for d in 0..table.dims() {
                prop_assert_eq!(
                    view.dim_codes(d).unwrap(),
                    &codes.dim_codes(d).unwrap()[spec.range()]
                );
                let grid = view.params(d);
                let exact = &table.column(d).unwrap().values()[spec.range()];
                for (&code, &v) in view.dim_codes(d).unwrap().iter().zip(exact) {
                    let (lo, hi) = grid.cell_bounds(code);
                    prop_assert!(lo <= v + 1e-9 && v <= hi + 1e-9);
                }
            }
        }
    }

    #[test]
    fn store_parsing_never_panics_on_truncation(
        raw in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 4), 1..20),
        partitions in 1usize..4,
        cut_seed in 0usize..1_000_000_000,
    ) {
        let table = DecomposedTable::from_vectors("trunc", &raw).unwrap();
        let specs = table.partition_specs(partitions);
        let stats: Vec<vdstore::SegmentStats> =
            specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
        let bytes = persist::store_to_bytes(&table, &specs, &stats, None).unwrap();
        // every proper prefix must fail with a typed error, never a panic
        let cut = cut_seed % bytes.len();
        let err = persist::store_from_bytes(&bytes[..cut]).unwrap_err();
        prop_assert!(matches!(
            err,
            vdstore::VdError::Corrupt(_) | vdstore::VdError::UnsupportedVersion { .. }
        ));
    }

    #[test]
    fn store_parsing_never_panics_on_single_byte_corruption(
        raw in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 1..12),
        flip_seed in 0usize..1_000_000_000,
        flip_bits in 1u8..=255,
    ) {
        let table = DecomposedTable::from_vectors("flip", &raw).unwrap();
        let specs = table.partition_specs(2);
        let stats: Vec<vdstore::SegmentStats> =
            specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
        let mut bytes = persist::store_to_bytes(&table, &specs, &stats, None).unwrap().to_vec();
        let at = flip_seed % bytes.len();
        bytes[at] ^= flip_bits;
        // a flipped byte in the data region is caught by the fragment
        // checksums and one in the footer by the footer checksum; a flip
        // landing in a checksum field itself also mismatches — what is
        // forbidden is a panic or a structurally inconsistent success
        if let Ok(store) = persist::store_from_bytes(&bytes) {
            prop_assert_eq!(store.table.dims(), table.dims());
            prop_assert_eq!(store.table.rows(), table.rows());
            prop_assert_eq!(store.specs.len(), store.stats.len());
        }
    }

    #[test]
    fn bitmap_bytes_reject_ragged_tails(
        domain in 1u32..500,
        set in proptest::collection::vec(0u32..500, 0..20),
        junk in proptest::collection::vec(0u8..=255, 1..3),
    ) {
        let set: Vec<u32> = set.into_iter().filter(|&r| r < domain).collect();
        let bitmap = Bitmap::from_rows(domain as usize, &set);
        let bytes = persist::bitmap_to_bytes(&bitmap);
        prop_assert_eq!(persist::bitmap_from_bytes(&bytes).unwrap(), bitmap);
        // appending 1..3 junk bytes always breaks the 4-byte row alignment
        let mut ragged = bytes.to_vec();
        ragged.extend_from_slice(&junk);
        prop_assert!(persist::bitmap_from_bytes(&ragged).is_err());
    }

    #[test]
    fn row_matrix_matches_decomposed_table(
        raw in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 5), 1..50),
    ) {
        let table = DecomposedTable::from_vectors("t", &raw).unwrap();
        let matrix = table.to_row_matrix();
        prop_assert_eq!(matrix.rows(), table.rows());
        for r in 0..table.rows() as u32 {
            prop_assert_eq!(matrix.row(r).to_vec(), table.row(r).unwrap());
        }
        // row sums computed column-wise equal row sums computed row-wise
        let sums = table.row_sums();
        for (r, s) in sums.iter().enumerate() {
            let direct: f64 = matrix.row(r as u32).iter().sum();
            prop_assert!((s - direct).abs() < 1e-9);
        }
    }
}
