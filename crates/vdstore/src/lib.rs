//! # vdstore — a vertically decomposed in-memory column store
//!
//! This crate is the storage substrate for the BOND reproduction (de Vries,
//! Mamoulis, Nes, Kersten: *Efficient k-NN Search on Vertically Decomposed
//! Data*, SIGMOD 2002). It implements the Decomposition Storage Model
//! (Copeland & Khoshafian, SIGMOD 1985) the way the paper's Monet
//! implementation uses it:
//!
//! * every dimension of a feature-vector collection is stored in its own
//!   [`Column`] (a BAT with a *virtual*, densely ascending OID head and a
//!   `f64` tail),
//! * a [`DecomposedTable`] groups the per-dimension columns of one feature
//!   collection and offers row-major construction, appends, tombstone
//!   deletes and subspace views,
//! * the physical operators the MIL program of Section 6.1 relies on live in
//!   [`ops`]: `kfetch` (k-th largest/smallest element), `uselect` (unary
//!   range select), positional joins/gathers and element-wise maps,
//! * [`Bitmap`] is the candidate-set representation used in the early BOND
//!   iterations before the engine switches to materialised candidate lists,
//! * [`quantize`] provides the 8-bit scalar quantization used both by
//!   BOND-on-compressed-fragments (Figure 9 / Table 4) and by the VA-File
//!   baseline,
//! * [`codes`] builds the per-segment `u8` code companions the execution
//!   engine's quantized first-pass filter sweeps — persisted in the v2
//!   footer and exposed zero-copy on the mapped backend,
//! * [`stats`] computes the dataset statistics of Figure 2 that motivate the
//!   dimension-ordering heuristics,
//! * [`persist`] serialises decomposed tables to a simple binary format
//!   (v1) and, since the persistent segment store (v2), writes the column
//!   fragments 8-byte aligned with a stats/zone-map footer so a reopened
//!   store hands its partition boundaries and [`SegmentStats`] to a planner
//!   before any data page is touched,
//! * [`mmap`] provides the file-backed [`MappedRegion`] a reopened store's
//!   columns can view zero-copy ([`StorageBackend::Mapped`]), with heap
//!   decoding ([`StorageBackend::Heap`]) as the portable fallback.
//!
//! The crate is deliberately free of any knowledge about similarity metrics
//! or pruning rules — those live in `bond-metrics` and `bond-core`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bat;
pub mod bitmap;
pub mod checksum;
pub mod codes;
pub mod column;
pub mod error;
pub mod mmap;
pub mod ops;
pub mod persist;
pub mod quantize;
pub mod rowmatrix;
pub mod segment;
pub mod stats;
pub mod table;
pub mod topk;

pub use bat::{Bat, Head};
pub use bitmap::Bitmap;
pub use codes::{CodeColumn, CodeParams, SegmentCodesView, StoreCodes};
pub use column::{Column, ColumnData};
pub use error::{Result, VdError};
pub use mmap::{Advice, MappedRegion, StorageBackend};
pub use persist::{PersistReport, PersistedStore};
pub use quantize::{QuantizedColumn, QuantizedTable};
pub use rowmatrix::RowMatrix;
pub use segment::{Envelope, Segment, SegmentSpec, SegmentStats};
pub use stats::{ColumnStats, DatasetStats};
pub use table::{DecomposedTable, TableBuilder};
pub use topk::{TopKLargest, TopKSmallest};

/// Row identifier inside a decomposed table.
///
/// The paper exploits the "known, densely ascending order of histograms" to
/// avoid materialising histogram identifiers; we keep the same invariant:
/// a `RowId` is simply the dense position of the vector in the collection.
pub type RowId = u32;
