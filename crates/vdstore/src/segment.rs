//! Horizontal partitioning: zero-copy row-range views of a decomposed table.
//!
//! BOND's per-fragment partial scores shard naturally along the row axis —
//! a candidate's bounds depend only on its own coefficients — so a table can
//! be split into contiguous row ranges that independent workers scan in
//! parallel (the `bond-exec` engine does exactly that). A [`Segment`] is a
//! *view*: it borrows the table's columns and exposes each dimensional
//! fragment as a sub-slice, so partitioning copies no vector data.
//!
//! Every segment can also compute its own per-dimension statistics
//! ([`SegmentStats`]); because real collections are often appended in
//! batches with drifting distributions, per-segment statistics diverge from
//! the table-wide ones and are the hook for per-segment tuning decisions
//! (and, later, for segment-level zone-map pruning).

use crate::bitmap::Bitmap;
use crate::error::{Result, VdError};
use crate::stats::ColumnStats;
use crate::table::DecomposedTable;
use crate::RowId;
use std::ops::Range;

/// An owned, lifetime-free description of a segment: the row range it
/// covers, without a borrow of the table.
///
/// A `SegmentSpec` is what a long-lived engine *stores* — plain partition
/// boundaries that are `Send + Sync + 'static` and trivially copyable —
/// while a [`Segment`] is what a search *scans*: [`SegmentSpec::view`]
/// materialises the zero-copy borrowed view on demand, per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentSpec {
    start: usize,
    len: usize,
}

impl SegmentSpec {
    /// A spec covering `len` rows starting at table row `start`.
    #[must_use]
    pub fn new(start: usize, len: usize) -> Self {
        SegmentSpec { start, len }
    }

    /// First table row covered.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of rows covered (including tombstoned ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the spec covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The covered table row range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.len
    }

    /// Materialises the zero-copy [`Segment`] view of `table` this spec
    /// describes. Errors when the range falls outside the table (e.g. a
    /// spec persisted against a since-reorganised table).
    pub fn view<'t>(&self, table: &'t DecomposedTable) -> Result<Segment<'t>> {
        table.segment(self.range())
    }
}

/// A contiguous row-range view of a [`DecomposedTable`].
///
/// Row ids inside a segment are *local* (0-based within the segment);
/// [`Segment::to_global`] maps them back to table row ids.
#[derive(Debug, Clone, Copy)]
pub struct Segment<'a> {
    table: &'a DecomposedTable,
    start: usize,
    len: usize,
}

impl<'a> Segment<'a> {
    /// The table this segment views.
    pub fn table(&self) -> &'a DecomposedTable {
        self.table
    }

    /// The owned, lifetime-free description of this segment's row range.
    pub fn spec(&self) -> SegmentSpec {
        SegmentSpec { start: self.start, len: self.len }
    }

    /// First table row covered by this segment.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of rows covered (including tombstoned ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the segment covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The covered table row range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.len
    }

    /// Number of live (non-tombstoned) rows in the segment.
    pub fn live_rows(&self) -> usize {
        self.range().filter(|&r| !self.table.is_deleted(r as RowId)).count()
    }

    /// The values of dimension `dim` restricted to this segment — a
    /// zero-copy sub-slice of the table's column.
    pub fn col_slice(&self, dim: usize) -> Result<&'a [f64]> {
        Ok(&self.table.column(dim)?.values()[self.range()])
    }

    /// Maps a segment-local row id to the table row id.
    #[inline]
    pub fn to_global(&self, local: RowId) -> RowId {
        (self.start + local as usize) as RowId
    }

    /// Maps a table row id to the segment-local id, when covered.
    pub fn to_local(&self, global: RowId) -> Option<RowId> {
        let g = global as usize;
        self.range().contains(&g).then(|| (g - self.start) as RowId)
    }

    /// The live-row bitmap of this segment, in *local* indexing: bit `i` is
    /// set iff table row `start + i` is not tombstoned. This is the initial
    /// candidate set of a per-segment BOND search. Word-wise, so per-query
    /// candidate-set setup costs O(rows / 64) like the sequential engine's.
    pub fn live_bitmap(&self) -> Bitmap {
        self.table.live_bitmap().slice(self.range())
    }

    /// Per-row total masses `T(x)` of the segment's rows, in local order —
    /// the `Ev` bookkeeping, restricted to the rows this segment scans.
    pub fn row_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.len];
        for d in 0..self.table.dims() {
            let values = self.col_slice(d).expect("dimension in range");
            for (s, &v) in sums.iter_mut().zip(values) {
                *s += v;
            }
        }
        sums
    }

    /// Applies an access-pattern hint to this segment's slice of the given
    /// dimensions (a search plan's scan prefix), for mapped tables — a
    /// no-op for heap columns, off unix, and for out-of-range dims. See
    /// [`crate::Advice`].
    pub fn advise(&self, dims: impl IntoIterator<Item = usize>, advice: crate::Advice) {
        for d in dims {
            if let Ok(column) = self.table.column(d) {
                column.advise_rows(self.range(), advice);
            }
        }
    }

    /// Per-dimension statistics over *this segment's rows only*, plus the
    /// row-sum envelope a search planner needs. Each fragment is visited
    /// once (the per-row sums accumulate alongside the column moments);
    /// intended to be computed once at partition time and cached.
    pub fn stats(&self) -> SegmentStats {
        let mut sums = vec![0.0; self.len];
        let per_dim: Vec<Option<ColumnStats>> = (0..self.table.dims())
            .map(|d| {
                let values = self.col_slice(d).expect("dimension in range");
                for (s, &v) in sums.iter_mut().zip(values) {
                    *s += v;
                }
                ColumnStats::compute_slice(self.table.column(d).expect("dim").name(), values)
            })
            .collect();
        let (mut sum_min, mut sum_max, mut total) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &s in &sums {
            sum_min = sum_min.min(s);
            sum_max = sum_max.max(s);
            total += s;
        }
        let (row_sum_min, row_sum_max, row_sum_mean) = if sums.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            (sum_min, sum_max, total / sums.len() as f64)
        };
        SegmentStats {
            range: self.range(),
            per_dim,
            live_rows: self.live_rows(),
            row_sum_min,
            row_sum_max,
            row_sum_mean,
        }
    }
}

/// A per-dimension value envelope: parallel `(mins, maxs)` vectors — the
/// zone map of a row range.
pub type Envelope = (Vec<f64>, Vec<f64>);

/// Per-dimension statistics of one segment.
///
/// Each entry is `None` only for an empty segment. Beyond the per-column
/// moments, the struct carries the *envelopes* a search planner consumes:
/// per-dimension `[min, max]` value boxes (the zone map of the segment) and
/// the `[min, max]` range of the per-row total masses `T(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentStats {
    /// The table row range the statistics describe.
    pub range: Range<usize>,
    /// Statistics of each dimensional fragment, restricted to the segment.
    pub per_dim: Vec<Option<ColumnStats>>,
    /// Number of live (non-tombstoned) rows in the segment.
    pub live_rows: usize,
    /// Smallest per-row total mass `T(x)` in the segment (0 when empty).
    pub row_sum_min: f64,
    /// Largest per-row total mass `T(x)` in the segment (0 when empty).
    pub row_sum_max: f64,
    /// Mean per-row total mass `T(x)` in the segment (0 when empty).
    pub row_sum_mean: f64,
}

impl SegmentStats {
    /// The owned boundary description of the row range the statistics
    /// cover — the inverse of [`SegmentSpec::view`] + [`Segment::stats`],
    /// used when persisted stats are matched back to persisted specs.
    pub fn spec(&self) -> SegmentSpec {
        SegmentSpec::new(self.range.start, self.range.end - self.range.start)
    }

    /// The per-dimension mean values (NaN for an empty segment).
    pub fn mean_per_dim(&self) -> Vec<f64> {
        self.per_dim.iter().map(|s| s.as_ref().map_or(f64::NAN, |s| s.mean)).collect()
    }

    /// The per-dimension minimum values (NaN for an empty segment).
    pub fn min_per_dim(&self) -> Vec<f64> {
        self.per_dim.iter().map(|s| s.as_ref().map_or(f64::NAN, |s| s.min)).collect()
    }

    /// The per-dimension maximum values (NaN for an empty segment).
    pub fn max_per_dim(&self) -> Vec<f64> {
        self.per_dim.iter().map(|s| s.as_ref().map_or(f64::NAN, |s| s.max)).collect()
    }

    /// The segment's value envelope: per-dimension `(min, max)` boxes, i.e.
    /// the zone map used for metric-specific whole-segment bounds. `None`
    /// for an empty segment.
    pub fn envelope(&self) -> Option<Envelope> {
        if self.per_dim.iter().any(|s| s.is_none()) {
            return None;
        }
        Some((self.min_per_dim(), self.max_per_dim()))
    }

    /// The dimensions ordered by decreasing segment-local mean — the
    /// per-segment analogue of the paper's "decreasing value in q" heuristic
    /// applied to the data side.
    pub fn dims_by_mean_descending(&self) -> Vec<usize> {
        let means = self.mean_per_dim();
        let mut order: Vec<usize> = (0..means.len()).collect();
        order.sort_by(|&a, &b| {
            means[b].partial_cmp(&means[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        order
    }
}

impl DecomposedTable {
    /// A segment viewing the given row range.
    pub fn segment(&self, range: Range<usize>) -> Result<Segment<'_>> {
        if range.start > range.end || range.end > self.rows() {
            return Err(VdError::RowOutOfBounds { row: range.end as RowId, rows: self.rows() });
        }
        Ok(Segment { table: self, start: range.start, len: range.end - range.start })
    }

    /// Splits the table into `partitions` contiguous row-range segments of
    /// near-equal size (sizes differ by at most one row; empty trailing
    /// segments are omitted for tables smaller than the partition count).
    pub fn partition_segments(&self, partitions: usize) -> Vec<Segment<'_>> {
        self.partition_specs(partitions)
            .into_iter()
            .map(|spec| Segment { table: self, start: spec.start, len: spec.len })
            .collect()
    }

    /// The owned boundaries of [`DecomposedTable::partition_segments`]:
    /// the same near-equal split, as lifetime-free [`SegmentSpec`]s a
    /// long-lived engine can store and re-materialise per call.
    pub fn partition_specs(&self, partitions: usize) -> Vec<SegmentSpec> {
        let partitions = partitions.max(1);
        let rows = self.rows();
        let base = rows / partitions;
        let extra = rows % partitions;
        let mut specs = Vec::with_capacity(partitions);
        let mut start = 0;
        for p in 0..partitions {
            let len = base + usize::from(p < extra);
            if len == 0 {
                break;
            }
            specs.push(SegmentSpec { start, len });
            start += len;
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecomposedTable {
        DecomposedTable::from_vectors(
            "seg",
            &(0..10).map(|i| vec![i as f64, 10.0 - i as f64, 0.5]).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn segment_views_are_zero_copy_slices() {
        let t = sample();
        let s = t.segment(3..7).unwrap();
        assert_eq!(s.start(), 3);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.col_slice(0).unwrap(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(s.col_slice(1).unwrap(), &[7.0, 6.0, 5.0, 4.0]);
        // the slice aliases the column's storage
        let col = t.column(0).unwrap().values();
        assert!(std::ptr::eq(&col[3], &s.col_slice(0).unwrap()[0]));
        assert!(s.col_slice(9).is_err());
        assert!(t.segment(5..11).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let backwards = t.segment(7..3);
        assert!(backwards.is_err());
    }

    #[test]
    fn specs_round_trip_through_views() {
        let t = sample();
        let spec = SegmentSpec::new(3, 4);
        assert_eq!(spec.start(), 3);
        assert_eq!(spec.len(), 4);
        assert!(!spec.is_empty());
        assert_eq!(spec.range(), 3..7);
        let view = spec.view(&t).unwrap();
        assert_eq!(view.range(), 3..7);
        assert_eq!(view.spec(), spec);
        assert_eq!(view.stats().spec(), spec);
        // out-of-bounds specs fail to materialise instead of panicking
        assert!(SegmentSpec::new(5, 6).view(&t).is_err());
        assert!(SegmentSpec::new(0, 0).is_empty());
    }

    #[test]
    fn partition_specs_match_partition_segments() {
        let t = sample();
        for parts in [1, 2, 3, 4, 7, 10, 13] {
            let specs = t.partition_specs(parts);
            let segments = t.partition_segments(parts);
            assert_eq!(specs.len(), segments.len(), "parts = {parts}");
            for (spec, seg) in specs.iter().zip(&segments) {
                assert_eq!(seg.spec(), *spec);
                assert_eq!(spec.view(&t).unwrap().range(), seg.range());
            }
        }
        assert_eq!(t.partition_specs(0).len(), 1, "0 partitions clamps to 1");
    }

    #[test]
    fn local_global_round_trip() {
        let t = sample();
        let s = t.segment(4..8).unwrap();
        assert_eq!(s.to_global(0), 4);
        assert_eq!(s.to_global(3), 7);
        assert_eq!(s.to_local(5), Some(1));
        assert_eq!(s.to_local(3), None);
        assert_eq!(s.to_local(8), None);
    }

    #[test]
    fn partitioning_covers_every_row_exactly_once() {
        let t = sample();
        for parts in [1, 2, 3, 4, 7, 10, 13] {
            let segments = t.partition_segments(parts);
            assert!(segments.len() <= parts);
            let mut covered = Vec::new();
            for s in &segments {
                covered.extend(s.range());
            }
            assert_eq!(covered, (0..t.rows()).collect::<Vec<_>>(), "parts = {parts}");
            // sizes are balanced to within one row
            let sizes: Vec<usize> = segments.iter().map(|s| s.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced partition sizes {sizes:?}");
        }
        assert_eq!(t.partition_segments(0).len(), 1, "0 partitions clamps to 1");
    }

    #[test]
    fn live_bitmap_is_local_and_respects_tombstones() {
        let mut t = sample();
        t.delete(5).unwrap();
        let s = t.segment(4..8).unwrap();
        assert_eq!(s.live_bitmap().to_rows(), vec![0, 2, 3]); // local ids
        assert_eq!(s.live_rows(), 3);
        let untouched = t.segment(0..4).unwrap();
        assert_eq!(untouched.live_rows(), 4);
    }

    #[test]
    fn segment_row_sums_match_table_row_sums() {
        let t = sample();
        let all = t.row_sums();
        let s = t.segment(2..9).unwrap();
        let local = s.row_sums();
        for (i, sum) in local.iter().enumerate() {
            assert!((sum - all[i + 2]).abs() < 1e-12);
        }
    }

    #[test]
    fn per_segment_stats_differ_from_table_stats() {
        let t = sample();
        let lo = t.segment(0..5).unwrap().stats();
        let hi = t.segment(5..10).unwrap().stats();
        // dimension 0 is ascending: the two halves have different means
        let m_lo = lo.per_dim[0].as_ref().unwrap().mean;
        let m_hi = hi.per_dim[0].as_ref().unwrap().mean;
        assert!(m_lo < m_hi);
        assert_eq!(lo.range, 0..5);
        // dimension 2 is constant: identical stats in both segments
        let (c_lo, c_hi) = (lo.per_dim[2].as_ref().unwrap(), hi.per_dim[2].as_ref().unwrap());
        assert_eq!((c_lo.min, c_lo.max, c_lo.mean), (c_hi.min, c_hi.max, c_hi.mean));
    }

    #[test]
    fn stats_carry_envelopes_and_row_sum_range() {
        let mut t = sample();
        t.delete(1).unwrap();
        let s = t.segment(0..4).unwrap();
        let stats = s.stats();
        assert_eq!(stats.live_rows, 3);
        let (mins, maxs) = stats.envelope().expect("non-empty segment has an envelope");
        assert_eq!(mins, vec![0.0, 7.0, 0.5]);
        assert_eq!(maxs, vec![3.0, 10.0, 0.5]);
        // row sums: i + (10 - i) + 0.5 = 10.5 for every row
        assert!((stats.row_sum_min - 10.5).abs() < 1e-12);
        assert!((stats.row_sum_max - 10.5).abs() < 1e-12);
        assert!((stats.row_sum_mean - 10.5).abs() < 1e-12);
        // empty segment: no envelope, zeroed row-sum range
        let empty = t.segment(4..4).unwrap().stats();
        assert!(empty.envelope().is_none());
        assert_eq!((empty.row_sum_min, empty.row_sum_max, empty.row_sum_mean), (0.0, 0.0, 0.0));
        assert_eq!(empty.live_rows, 0);
    }

    #[test]
    fn stats_ordering_prefers_heavy_dims() {
        let t = sample();
        let s = t.segment(0..3).unwrap(); // dim1 mean 9, dim0 mean 1, dim2 mean 0.5
        assert_eq!(s.stats().dims_by_mean_descending(), vec![1, 0, 2]);
        let empty = t.segment(4..4).unwrap();
        assert!(empty.is_empty());
        assert!(empty.stats().per_dim.iter().all(|s| s.is_none()));
    }
}
