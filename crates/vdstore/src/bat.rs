//! Binary Association Tables (BATs).
//!
//! Monet — the system the paper implements BOND in — represents every
//! relation as a set of binary tables `(head, tail)`. The head is frequently
//! a *virtual* densely ascending OID column, which enables positional lookup
//! and saves a third of the storage (footnote 4 of the paper). The
//! `bond-relalg` crate builds the MIL program of Section 6.1 on top of this
//! type; the BOND engine itself works on the leaner [`crate::Column`].

use serde::{Deserialize, Serialize};

use crate::error::{Result, VdError};
use crate::RowId;

/// The head column of a BAT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Head {
    /// Densely ascending OIDs starting at `base` — nothing is materialised.
    VirtualDense {
        /// The OID of the first tuple.
        base: RowId,
    },
    /// Explicitly materialised OIDs (used after selections destroy density).
    Materialized(Vec<RowId>),
}

impl Head {
    /// The head OID of tuple `idx`.
    #[inline]
    pub fn oid(&self, idx: usize) -> RowId {
        match self {
            Head::VirtualDense { base } => base + idx as RowId,
            Head::Materialized(oids) => oids[idx],
        }
    }

    /// Whether the head is virtual (dense).
    pub fn is_dense(&self) -> bool {
        matches!(self, Head::VirtualDense { .. })
    }
}

/// A binary association table with `f64` tail values.
///
/// The tail is always materialised; the head may be virtual. All operators
/// used by the MIL program preserve or re-establish head density where the
/// paper's implementation does ("administration of properties ... propagates
/// fragmentation information through operators").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bat {
    head: Head,
    tail: Vec<f64>,
}

impl Bat {
    /// A BAT with a dense head starting at 0 and the given tail.
    pub fn dense(tail: Vec<f64>) -> Self {
        Bat { head: Head::VirtualDense { base: 0 }, tail }
    }

    /// A BAT with a dense head starting at `base`.
    pub fn dense_from(base: RowId, tail: Vec<f64>) -> Self {
        Bat { head: Head::VirtualDense { base }, tail }
    }

    /// A BAT with explicit head OIDs.
    ///
    /// Returns an error when head and tail lengths differ.
    pub fn materialized(head: Vec<RowId>, tail: Vec<f64>) -> Result<Self> {
        if head.len() != tail.len() {
            return Err(VdError::LengthMismatch { expected: head.len(), actual: tail.len() });
        }
        Ok(Bat { head: Head::Materialized(head), tail })
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// Whether the BAT holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// The head descriptor.
    pub fn head(&self) -> &Head {
        &self.head
    }

    /// The tail values.
    pub fn tail(&self) -> &[f64] {
        &self.tail
    }

    /// The `(oid, value)` pair at position `idx`.
    pub fn tuple(&self, idx: usize) -> (RowId, f64) {
        (self.head.oid(idx), self.tail[idx])
    }

    /// Iterates over `(oid, value)` tuples.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, f64)> + '_ {
        (0..self.len()).map(move |i| self.tuple(i))
    }

    /// Positional lookup of the tail value for head OID `oid`.
    ///
    /// Only available on dense BATs, where it is O(1) (the whole point of
    /// keeping heads virtual).
    pub fn lookup_dense(&self, oid: RowId) -> Result<f64> {
        match &self.head {
            Head::VirtualDense { base } => {
                let idx = oid
                    .checked_sub(*base)
                    .ok_or(VdError::RowOutOfBounds { row: oid, rows: self.len() })?
                    as usize;
                self.tail
                    .get(idx)
                    .copied()
                    .ok_or(VdError::RowOutOfBounds { row: oid, rows: self.len() })
            }
            Head::Materialized(_) => {
                Err(VdError::InvalidArgument("positional lookup requires a dense head".into()))
            }
        }
    }

    /// `reverse` in MIL: swaps head and tail roles. Since our tails are
    /// `f64`, reverse is only meaningful for OID-valued tails; here it
    /// returns the head OIDs as a [`OidBat`] keyed by position, which is what
    /// the MIL fragment `C.reverse.join(Hi)` needs.
    pub fn head_oids(&self) -> Vec<RowId> {
        (0..self.len()).map(|i| self.head.oid(i)).collect()
    }

    /// Element-wise map over the tail, preserving the head.
    pub fn map_tail(&self, f: impl Fn(f64) -> f64) -> Bat {
        Bat { head: self.head.clone(), tail: self.tail.iter().map(|&v| f(v)).collect() }
    }
}

/// A binary association table whose tail holds OIDs (e.g. the result of a
/// selection, mapping new dense result positions to qualifying row OIDs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OidBat {
    head: Head,
    tail: Vec<RowId>,
}

impl OidBat {
    /// An OID BAT with a dense head starting at 0.
    pub fn dense(tail: Vec<RowId>) -> Self {
        OidBat { head: Head::VirtualDense { base: 0 }, tail }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// Whether the BAT holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// The tail OIDs.
    pub fn tail(&self) -> &[RowId] {
        &self.tail
    }

    /// The head descriptor.
    pub fn head(&self) -> &Head {
        &self.head
    }

    /// Joins this OID BAT with a dense `f64` BAT: for every tail OID, fetch
    /// the value with that OID in `other`. This is the positional join used
    /// in step 3 of the MIL program to shrink the remaining dimensional
    /// fragments to the candidate set.
    pub fn join(&self, other: &Bat) -> Result<Bat> {
        let mut tail = Vec::with_capacity(self.len());
        for &oid in &self.tail {
            tail.push(other.lookup_dense(oid)?);
        }
        Ok(Bat { head: self.head.clone(), tail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_bat_lookup() {
        let b = Bat::dense(vec![0.5, 0.25, 0.25]);
        assert_eq!(b.len(), 3);
        assert!(b.head().is_dense());
        assert_eq!(b.tuple(1), (1, 0.25));
        assert_eq!(b.lookup_dense(2).unwrap(), 0.25);
        assert!(b.lookup_dense(3).is_err());
    }

    #[test]
    fn dense_from_base() {
        let b = Bat::dense_from(10, vec![1.0, 2.0]);
        assert_eq!(b.tuple(0), (10, 1.0));
        assert_eq!(b.lookup_dense(11).unwrap(), 2.0);
        assert!(b.lookup_dense(9).is_err());
    }

    #[test]
    fn materialized_bat() {
        let b = Bat::materialized(vec![5, 3, 8], vec![0.1, 0.2, 0.3]).unwrap();
        assert!(!b.head().is_dense());
        assert_eq!(b.tuple(2), (8, 0.3));
        assert!(b.lookup_dense(5).is_err());
        assert!(Bat::materialized(vec![1], vec![]).is_err());
    }

    #[test]
    fn iter_and_map() {
        let b = Bat::dense(vec![1.0, 2.0]);
        let tuples: Vec<_> = b.iter().collect();
        assert_eq!(tuples, vec![(0, 1.0), (1, 2.0)]);
        let doubled = b.map_tail(|v| v * 2.0);
        assert_eq!(doubled.tail(), &[2.0, 4.0]);
        assert_eq!(doubled.head(), b.head());
    }

    #[test]
    fn oid_bat_join_is_positional() {
        let values = Bat::dense(vec![10.0, 11.0, 12.0, 13.0]);
        let cand = OidBat::dense(vec![3, 1]);
        let joined = cand.join(&values).unwrap();
        assert_eq!(joined.tail(), &[13.0, 11.0]);
        assert_eq!(joined.head().oid(0), 0);
        // join against missing oid fails
        let bad = OidBat::dense(vec![9]);
        assert!(bad.join(&values).is_err());
    }

    #[test]
    fn head_oids_materialisation() {
        let b = Bat::dense_from(4, vec![0.0, 0.0, 0.0]);
        assert_eq!(b.head_oids(), vec![4, 5, 6]);
        let m = Bat::materialized(vec![2, 7], vec![0.0, 0.0]).unwrap();
        assert_eq!(m.head_oids(), vec![2, 7]);
        assert!(OidBat::dense(vec![]).is_empty());
    }
}
