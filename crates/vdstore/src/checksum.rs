//! Fragment checksums: FNV-1a over the persisted bytes of each column.
//!
//! The persistent segment store keeps every dimensional fragment as one
//! contiguous byte run, which makes bit-rot detection cheap: one 64-bit
//! FNV-1a hash per fragment, stored in the v2 footer. Heap opens verify
//! every fragment as it is decoded; mapped opens stay lazy (verification
//! would fault in every page, defeating the cold-open design) and instead
//! verify a fragment when it is first *promoted* to the heap by a
//! copy-on-write mutation — the one moment corrupted bytes would otherwise
//! silently become the new truth.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a 64-bit hash (seed with
/// [`FNV_OFFSET`]); lets streaming writers hash fragment chunks without
/// materialising the fragment.
#[must_use]
pub fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The FNV-1a 64-bit hash of `bytes`.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// The FNV-1a 64-bit hash of a fragment's values, hashed exactly as the
/// store serialises them (little-endian `f64` bytes) so in-memory and
/// on-disk hashes agree.
#[must_use]
pub fn fnv1a_f64(values: &[f64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for v in values {
        hash = fnv1a_update(hash, &v.to_le_bytes());
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard FNV-1a test vectors
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox";
        let mut h = FNV_OFFSET;
        for chunk in data.chunks(3) {
            h = fnv1a_update(h, chunk);
        }
        assert_eq!(h, fnv1a(data));
    }

    #[test]
    fn f64_hash_matches_le_byte_hash() {
        let values = [1.5f64, -2.25, 0.0, 1e300];
        let mut bytes = Vec::new();
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(fnv1a_f64(&values), fnv1a(&bytes));
        assert_ne!(fnv1a_f64(&values), fnv1a_f64(&values[..3]));
    }
}
