//! The vertically decomposed table: one [`Column`] per dimension.
//!
//! This is the physical design the paper advocates: a collection of
//! `N`-dimensional feature vectors is fragmented into `N` binary relations,
//! one per dimension, all sharing the same dense row-id space. The table
//! also carries the tombstone bitmap of Section 6.2 (deleted rows are marked
//! until a periodic reorganisation) and knows how to hand out row-major
//! copies for the sequential-scan baselines.

use serde::{Deserialize, Serialize};

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::{Result, VdError};
use crate::mmap::StorageBackend;
use crate::rowmatrix::RowMatrix;
use crate::RowId;

/// A collection of feature vectors stored one column per dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecomposedTable {
    name: String,
    columns: Vec<Column>,
    rows: usize,
    /// Tombstones: a set bit means the row has been deleted but not yet
    /// reclaimed by reorganisation.
    deleted: Bitmap,
}

impl DecomposedTable {
    /// Builds a table from pre-decomposed columns.
    ///
    /// All columns must have the same length; an empty column set is
    /// rejected.
    pub fn from_columns(name: impl Into<String>, columns: Vec<Column>) -> Result<Self> {
        let first = columns.first().ok_or(VdError::Empty("column set"))?;
        let rows = first.len();
        for c in &columns {
            if c.len() != rows {
                return Err(VdError::LengthMismatch { expected: rows, actual: c.len() });
            }
        }
        Ok(DecomposedTable { name: name.into(), columns, rows, deleted: Bitmap::new(rows) })
    }

    /// Builds a table from pre-decomposed columns plus an explicit tombstone
    /// bitmap — the constructor a persisted-store reader uses, where the
    /// tombstones arrive wholesale from the footer instead of through
    /// per-row [`DecomposedTable::delete`] calls.
    ///
    /// The bitmap's length must equal the column length.
    pub fn from_parts(
        name: impl Into<String>,
        columns: Vec<Column>,
        deleted: Bitmap,
    ) -> Result<Self> {
        let mut table = Self::from_columns(name, columns)?;
        if deleted.len() != table.rows {
            return Err(VdError::LengthMismatch { expected: table.rows, actual: deleted.len() });
        }
        table.deleted = deleted;
        Ok(table)
    }

    /// Builds a table by vertically decomposing row-major vectors.
    ///
    /// Every vector must have the same dimensionality.
    pub fn from_vectors(name: impl Into<String>, vectors: &[Vec<f64>]) -> Result<Self> {
        let first = vectors.first().ok_or(VdError::Empty("vector collection"))?;
        let dims = first.len();
        if dims == 0 {
            return Err(VdError::Empty("vector dimensionality"));
        }
        let mut columns: Vec<Column> =
            (0..dims).map(|d| Column::with_capacity(format!("dim_{d}"), vectors.len())).collect();
        for (i, v) in vectors.iter().enumerate() {
            if v.len() != dims {
                return Err(VdError::DimensionMismatch { expected: dims, actual: v.len() });
            }
            for (d, &x) in v.iter().enumerate() {
                columns[d].push(x);
            }
            debug_assert_eq!(i + 1, columns[0].len());
        }
        let rows = vectors.len();
        Ok(DecomposedTable { name: name.into(), columns, rows, deleted: Bitmap::new(rows) })
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dimensions (columns).
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows, including tombstoned ones.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of live (non-deleted) rows.
    pub fn live_rows(&self) -> usize {
        self.rows - self.deleted.count()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Access the column of dimension `dim`.
    pub fn column(&self, dim: usize) -> Result<&Column> {
        self.columns.get(dim).ok_or(VdError::DimOutOfBounds { dim, dims: self.columns.len() })
    }

    /// All columns, in dimension order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The storage backend serving this table's columns:
    /// [`StorageBackend::Mapped`] when every column views a mapped store
    /// file, [`StorageBackend::Heap`] otherwise (including after a
    /// copy-on-write mutation promoted any column to the heap).
    pub fn backend(&self) -> StorageBackend {
        if !self.columns.is_empty()
            && self.columns.iter().all(|c| c.backend() == StorageBackend::Mapped)
        {
            StorageBackend::Mapped
        } else {
            StorageBackend::Heap
        }
    }

    /// Applies an access-pattern hint to every mapped fragment of the
    /// table (row reconstructions gather at scattered offsets across all
    /// fragments, so refinement phases hint [`crate::Advice::Random`]
    /// table-wide). No-op for heap tables and off unix.
    pub fn advise(&self, advice: crate::Advice) {
        for c in &self.columns {
            c.advise(advice);
        }
    }

    /// Verifies every checksum-guarded mapped fragment against its
    /// persisted checksum (trivially `Ok` for heap tables). Note this
    /// faults in every data page of a mapped store — it is an explicit
    /// integrity sweep, not part of any open or search path.
    ///
    /// # Errors
    ///
    /// The first [`VdError::ChecksumMismatch`] encountered.
    pub fn verify_checksums(&self) -> Result<()> {
        self.columns.iter().try_for_each(Column::verify_checksum)
    }

    /// Reconstructs the full vector of a row (a positional "tuple
    /// reconstruction" join over all fragments).
    pub fn row(&self, row: RowId) -> Result<Vec<f64>> {
        if (row as usize) >= self.rows {
            return Err(VdError::RowOutOfBounds { row, rows: self.rows });
        }
        Ok(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// The value of dimension `dim` of row `row`.
    pub fn value(&self, row: RowId, dim: usize) -> Result<f64> {
        self.column(dim)?.get(row)
    }

    /// Appends a vector as a new row and returns its row id.
    ///
    /// Appending is the common update pattern for image collections
    /// (Section 6.2); each per-dimension fragment grows by one value.
    pub fn append(&mut self, vector: &[f64]) -> Result<RowId> {
        if vector.len() != self.columns.len() {
            return Err(VdError::DimensionMismatch {
                expected: self.columns.len(),
                actual: vector.len(),
            });
        }
        for (c, &x) in self.columns.iter_mut().zip(vector) {
            c.push(x);
        }
        let id = self.rows as RowId;
        self.rows += 1;
        // grow the tombstone bitmap
        let mut deleted = Bitmap::new(self.rows);
        for r in self.deleted.iter() {
            deleted.set(r);
        }
        self.deleted = deleted;
        Ok(id)
    }

    /// Marks a row as deleted (tombstone); the physical data remains until
    /// [`DecomposedTable::reorganize`] runs.
    pub fn delete(&mut self, row: RowId) -> Result<()> {
        if (row as usize) >= self.rows {
            return Err(VdError::RowOutOfBounds { row, rows: self.rows });
        }
        self.deleted.set(row);
        Ok(())
    }

    /// Whether a row is tombstoned.
    pub fn is_deleted(&self, row: RowId) -> bool {
        self.deleted.get(row)
    }

    /// The bitmap of live rows (complement of the tombstones). This is the
    /// bitmap BOND starts its candidate set from, and the one a prior
    /// relational predicate would be intersected into.
    pub fn live_bitmap(&self) -> Bitmap {
        let mut live = self.deleted.clone();
        live.negate();
        live
    }

    /// Physically removes tombstoned rows and compacts the fragments
    /// ("periodic reorganization of the collection", Section 6.2).
    ///
    /// Returns the mapping from new row ids to old row ids.
    pub fn reorganize(&mut self) -> Vec<RowId> {
        let keep: Vec<RowId> = self.live_bitmap().to_rows();
        let mut new_columns = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            new_columns.push(Column::new(c.name(), c.gather(&keep)));
        }
        self.columns = new_columns;
        self.rows = keep.len();
        self.deleted = Bitmap::new(self.rows);
        keep
    }

    /// Copies the table into a row-major matrix (what the sequential-scan
    /// baselines SSH/SSE operate on).
    pub fn to_row_matrix(&self) -> RowMatrix {
        let dims = self.dims();
        let mut data = Vec::with_capacity(self.rows * dims);
        for r in 0..self.rows {
            for c in &self.columns {
                data.push(c.value(r as RowId));
            }
        }
        RowMatrix::new(dims, data).expect("table columns are rectangular")
    }

    /// Returns a new table containing only the given dimensions, in the
    /// given order (a subspace projection; rows are shared by value).
    pub fn project(&self, dims: &[usize]) -> Result<DecomposedTable> {
        let mut columns = Vec::with_capacity(dims.len());
        for &d in dims {
            columns.push(self.column(d)?.clone());
        }
        let mut t = DecomposedTable::from_columns(format!("{}_proj", self.name), columns)?;
        t.deleted = self.deleted.clone();
        Ok(t)
    }

    /// Per-row sum of all dimensions, `T(x)` in the paper's notation. BOND's
    /// `Ev` criterion materialises this table once and updates it as
    /// dimensions are consumed.
    pub fn row_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.rows];
        for c in &self.columns {
            for (s, &v) in sums.iter_mut().zip(c.values()) {
                *s += v;
            }
        }
        sums
    }
}

/// Incremental builder that accepts vectors one at a time.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    dims: Option<usize>,
    vectors: Vec<Vec<f64>>,
}

impl TableBuilder {
    /// Creates a builder for a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder { name: name.into(), dims: None, vectors: Vec::new() }
    }

    /// Adds one vector; all vectors must share the same dimensionality.
    pub fn push(&mut self, vector: Vec<f64>) -> Result<&mut Self> {
        match self.dims {
            None => self.dims = Some(vector.len()),
            Some(d) if d != vector.len() => {
                return Err(VdError::DimensionMismatch { expected: d, actual: vector.len() })
            }
            _ => {}
        }
        self.vectors.push(vector);
        Ok(self)
    }

    /// Number of vectors added so far.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether no vectors have been added.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Finishes the build, decomposing the collected vectors.
    pub fn build(self) -> Result<DecomposedTable> {
        DecomposedTable::from_vectors(self.name, &self.vectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecomposedTable {
        DecomposedTable::from_vectors(
            "h",
            &[vec![0.1, 0.2, 0.3, 0.4], vec![0.4, 0.3, 0.2, 0.1], vec![0.25, 0.25, 0.25, 0.25]],
        )
        .unwrap()
    }

    #[test]
    fn decomposition_is_columnar() {
        let t = sample();
        assert_eq!(t.dims(), 4);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.column(0).unwrap().values(), &[0.1, 0.4, 0.25]);
        assert_eq!(t.column(3).unwrap().values(), &[0.4, 0.1, 0.25]);
        assert_eq!(t.row(1).unwrap(), vec![0.4, 0.3, 0.2, 0.1]);
        assert_eq!(t.value(2, 1).unwrap(), 0.25);
        assert!(t.column(4).is_err());
        assert!(t.row(3).is_err());
    }

    #[test]
    fn from_columns_validates_lengths() {
        let err = DecomposedTable::from_columns(
            "bad",
            vec![Column::from_values(vec![1.0]), Column::from_values(vec![1.0, 2.0])],
        );
        assert!(matches!(err, Err(VdError::LengthMismatch { .. })));
        assert!(DecomposedTable::from_columns("empty", vec![]).is_err());
    }

    #[test]
    fn from_parts_installs_tombstones_wholesale() {
        let t = sample();
        let rebuilt =
            DecomposedTable::from_parts(t.name(), t.columns().to_vec(), Bitmap::from_rows(3, &[1]))
                .unwrap();
        assert_eq!(rebuilt.rows(), 3);
        assert!(rebuilt.is_deleted(1));
        assert_eq!(rebuilt.live_rows(), 2);
        // bitmap length must match the column length
        let err = DecomposedTable::from_parts("bad", t.columns().to_vec(), Bitmap::new(5));
        assert!(matches!(err, Err(VdError::LengthMismatch { expected: 3, actual: 5 })));
    }

    #[test]
    fn from_vectors_validates_dims() {
        let err = DecomposedTable::from_vectors("bad", &[vec![1.0, 2.0], vec![1.0]]);
        assert!(matches!(err, Err(VdError::DimensionMismatch { expected: 2, actual: 1 })));
        assert!(DecomposedTable::from_vectors("empty", &[]).is_err());
        assert!(DecomposedTable::from_vectors("zero-dim", &[vec![]]).is_err());
    }

    #[test]
    fn append_and_delete() {
        let mut t = sample();
        let id = t.append(&[0.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(id, 3);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.row(3).unwrap(), vec![0.0, 0.0, 0.0, 1.0]);
        assert!(t.append(&[1.0]).is_err());

        t.delete(1).unwrap();
        assert!(t.is_deleted(1));
        assert_eq!(t.live_rows(), 3);
        assert_eq!(t.live_bitmap().to_rows(), vec![0, 2, 3]);
        assert!(t.delete(99).is_err());
    }

    #[test]
    fn reorganize_compacts() {
        let mut t = sample();
        t.delete(0).unwrap();
        let mapping = t.reorganize();
        assert_eq!(mapping, vec![1, 2]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.live_rows(), 2);
        assert_eq!(t.row(0).unwrap(), vec![0.4, 0.3, 0.2, 0.1]);
    }

    #[test]
    fn row_matrix_round_trip() {
        let t = sample();
        let m = t.to_row_matrix();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dims(), 4);
        assert_eq!(m.row(2), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn projection_and_row_sums() {
        let t = sample();
        let p = t.project(&[3, 0]).unwrap();
        assert_eq!(p.dims(), 2);
        assert_eq!(p.row(0).unwrap(), vec![0.4, 0.1]);
        assert!(t.project(&[9]).is_err());

        let sums = t.row_sums();
        assert_eq!(sums.len(), 3);
        for s in sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn builder() {
        let mut b = TableBuilder::new("built");
        assert!(b.is_empty());
        b.push(vec![1.0, 2.0]).unwrap();
        b.push(vec![3.0, 4.0]).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.push(vec![1.0]).is_err());
        let t = b.build().unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.name(), "built");
    }
}
