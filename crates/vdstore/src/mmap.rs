//! File-backed memory: a thin, dependency-free `mmap` wrapper.
//!
//! The decomposition storage model writes every dimensional fragment as one
//! contiguous run of `f64`s — a layout that maps 1:1 onto file-backed
//! memory. [`MappedRegion`] maps a whole store file read-only into the
//! address space (via a minimal `extern "C"` binding to `mmap`/`munmap`;
//! std already links libc on the platforms we target), so a [`crate::Column`]
//! can *view* its fragment in the page cache instead of owning a heap copy:
//! collections larger than RAM become servable, and a cold open touches only
//! the metadata pages until a search faults the data in.
//!
//! Where real mapping is unavailable (non-unix targets, big-endian machines
//! whose in-memory `f64` layout differs from the little-endian file format,
//! 32-bit ABIs whose `off_t` does not match this binding's `i64` offset, or
//! an allocation-granularity misalignment), callers fall back to buffered
//! reads — [`StorageBackend::Mapped`] is a *request*, the store reports the
//! backend actually in effect.

use crate::error::{Result, VdError};
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

/// How a persisted store's column data should be materialised in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageBackend {
    /// Decode every fragment into owned heap `Vec<f64>`s (always available).
    #[default]
    Heap,
    /// View the fragments through a read-only file mapping: zero-copy, lazy
    /// page-in, shareable across processes through the page cache. Falls
    /// back to buffered reads where mapping is unsupported.
    Mapped,
}

impl StorageBackend {
    /// The backend selected by the `VDSTORE_BACKEND` environment variable
    /// (`heap`, `mmap`/`mapped`), or [`StorageBackend::default_for_platform`]
    /// when unset or unrecognised. This is the switch the CI matrix flips to
    /// run the whole test suite against both backends.
    pub fn from_env() -> Self {
        match std::env::var("VDSTORE_BACKEND").as_deref() {
            Ok("heap") => StorageBackend::Heap,
            Ok("mmap") | Ok("mapped") => StorageBackend::Mapped,
            _ => Self::default_for_platform(),
        }
    }

    /// [`StorageBackend::Mapped`] where zero-copy mapping is supported
    /// (64-bit little-endian unix), [`StorageBackend::Heap`] elsewhere.
    pub fn default_for_platform() -> Self {
        if Self::mapping_supported() {
            StorageBackend::Mapped
        } else {
            StorageBackend::Heap
        }
    }

    /// Whether this platform can honour [`StorageBackend::Mapped`] with a
    /// real zero-copy mapping (as opposed to the buffered-read fallback).
    ///
    /// Requires unix (for `mmap`), little-endian (the file format's `f64`s
    /// are read in place) and a 64-bit target — the hand-rolled binding
    /// declares the file offset as `i64`, which matches `off_t` only on
    /// LP64 ABIs, so 32-bit targets take the buffered-read fallback.
    pub fn mapping_supported() -> bool {
        cfg!(all(unix, target_endian = "little", target_pointer_width = "64"))
    }
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    pub const MADV_NORMAL: c_int = 0;
    pub const MADV_RANDOM: c_int = 1;
    pub const MADV_SEQUENTIAL: c_int = 2;
}

/// Access-pattern advice for a byte range of a mapped region — the
/// `madvise` hints a search plan can hand the kernel before touching the
/// pages it is about to scan (`Sequential`: aggressive readahead for
/// whole-fragment scans) or gather from (`Random`: no readahead for
/// scattered candidate refinement).
///
/// Purely advisory: a no-op off unix (gated exactly like [`MappedRegion`]),
/// and a refused hint is silently ignored — wrong advice costs throughput,
/// never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Advice {
    /// Reset to the kernel's default readahead behaviour.
    #[default]
    Normal,
    /// The range will be read front to back (uniform fragment scans).
    Sequential,
    /// The range will be accessed at scattered offsets (refinement gathers).
    Random,
}

/// A read-only, file-backed memory region, unmapped on drop.
///
/// The region is immutable and private to this mapping (`PROT_READ`), so
/// sharing it across threads is safe; columns hold it behind an [`Arc`] and
/// carve their fragment sub-slices out of it.
#[derive(Debug)]
pub struct MappedRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is owned by this struct alone (the pointer is never
// duplicated outside it), so moving the struct moves unique ownership of
// the region to another thread.
unsafe impl Send for MappedRegion {}
// SAFETY: the region is mapped PROT_READ and never handed out mutably, so
// concurrent reads from any thread are safe.
unsafe impl Sync for MappedRegion {}

impl MappedRegion {
    /// Maps `path` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// [`VdError::Io`] when the file cannot be opened/statted or the
    /// platform refuses the mapping (including platforms without `mmap` —
    /// the caller is expected to fall back to buffered reads).
    pub fn map_file(path: &Path) -> Result<Arc<MappedRegion>> {
        let file =
            File::open(path).map_err(|e| VdError::Io(format!("open {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| VdError::Io(format!("stat {}: {e}", path.display())))?
            .len();
        let len = usize::try_from(len)
            .map_err(|_| VdError::Io(format!("{} too large to map", path.display())))?;
        Self::map(&file, len, path)
    }

    #[cfg(unix)]
    fn map(file: &File, len: usize, path: &Path) -> Result<Arc<MappedRegion>> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty file maps to an empty region.
            return Ok(Arc::new(MappedRegion { ptr: std::ptr::null(), len: 0 }));
        }
        // SAFETY: fd is a valid open file descriptor for the duration of the
        // call; a fresh shared read-only mapping of it aliases nothing we
        // hand out mutably.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED || ptr.is_null() {
            return Err(VdError::Io(format!("mmap {} ({len} bytes) failed", path.display())));
        }
        Ok(Arc::new(MappedRegion { ptr: ptr as *const u8, len }))
    }

    #[cfg(not(unix))]
    fn map(_file: &File, _len: usize, path: &Path) -> Result<Arc<MappedRegion>> {
        Err(VdError::Io(format!("mmap unsupported on this platform ({})", path.display())))
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr..ptr+len is a live PROT_READ mapping for &self's life.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Applies an access-pattern hint to `len` bytes starting at
    /// `byte_offset`. The start is rounded *down* to the containing 4 KiB
    /// boundary (`madvise` requires a page-aligned address; mappings are
    /// page-aligned and pages are ≥ 4 KiB on every supported unix) and the
    /// range is clamped to the region. Best-effort by design: out-of-range
    /// requests, unsupported platforms and kernel refusals are all silent
    /// no-ops, because advice can never be load-bearing.
    pub fn advise(&self, byte_offset: usize, len: usize, advice: Advice) {
        #[cfg(unix)]
        {
            // Round down to a 64 KiB boundary: mappings are page-aligned,
            // and 64 KiB is a multiple of every page size in practical use
            // (4 K x86, 16 K Apple Silicon, 64 K aarch64 server kernels),
            // so the resulting address is page-aligned everywhere without
            // querying sysconf. Advising a few extra leading KiB is free.
            const ALIGN: usize = 64 * 1024;
            if self.len == 0 || byte_offset >= self.len || len == 0 {
                return;
            }
            let start = byte_offset & !(ALIGN - 1);
            let end = byte_offset.saturating_add(len).min(self.len);
            let advice = match advice {
                Advice::Normal => sys::MADV_NORMAL,
                Advice::Sequential => sys::MADV_SEQUENTIAL,
                Advice::Random => sys::MADV_RANDOM,
            };
            // SAFETY: ptr+start..end lies inside a live mapping owned by
            // &self; madvise does not alias or mutate the mapped contents.
            unsafe {
                sys::madvise(
                    self.ptr.wrapping_add(start) as *mut std::os::raw::c_void,
                    end - start,
                    advice,
                );
            }
        }
        #[cfg(not(unix))]
        {
            let _ = (byte_offset, len, advice);
        }
    }

    /// Views `count` `f64`s starting at `byte_offset` directly in the
    /// mapping (zero-copy).
    ///
    /// # Errors
    ///
    /// [`VdError::Io`] when the range falls outside the mapping or the
    /// mapped address is not 8-byte aligned for `f64` access (mappings are
    /// page-aligned, so this only requires `byte_offset % 8 == 0` — the
    /// store format pads its data region accordingly).
    pub fn f64_slice(&self, byte_offset: usize, count: usize) -> Result<&[f64]> {
        let bytes = count
            .checked_mul(8)
            .and_then(|b| b.checked_add(byte_offset))
            .ok_or_else(|| VdError::Io("mapped f64 range overflows".into()))?;
        if bytes > self.len {
            return Err(VdError::Io(format!(
                "mapped f64 range {byte_offset}+{count}x8 exceeds region of {} bytes",
                self.len
            )));
        }
        if count == 0 {
            return Ok(&[]);
        }
        let start = self.ptr.wrapping_add(byte_offset);
        if !(start as usize).is_multiple_of(std::mem::align_of::<f64>()) {
            return Err(VdError::Io(format!(
                "mapped f64 range at byte offset {byte_offset} is not 8-byte aligned"
            )));
        }
        // SAFETY: range checked above, alignment checked above, the mapping
        // outlives the borrow, and (on the little-endian targets that take
        // this path) any 8 bytes are a valid f64 bit pattern.
        unsafe { Ok(std::slice::from_raw_parts(start as *const f64, count)) }
    }
}

impl Drop for MappedRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("vdstore_mmap_{name}_{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn backend_env_switch() {
        // from_env falls back to the platform default on unset/garbage; the
        // explicit values are covered by the CI matrix setting the variable.
        let default = StorageBackend::default_for_platform();
        assert_eq!(
            default,
            if StorageBackend::mapping_supported() {
                StorageBackend::Mapped
            } else {
                StorageBackend::Heap
            }
        );
        assert_eq!(StorageBackend::default(), StorageBackend::Heap);
    }

    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    #[test]
    fn map_file_round_trips_bytes_and_f64s() {
        let mut contents = Vec::new();
        for v in [1.5f64, -2.25, 0.0, 1e300] {
            contents.extend_from_slice(&v.to_le_bytes());
        }
        let path = temp_file("roundtrip", &contents);
        let region = MappedRegion::map_file(&path).unwrap();
        assert_eq!(region.len(), 32);
        assert!(!region.is_empty());
        assert_eq!(region.as_bytes(), &contents[..]);
        assert_eq!(region.f64_slice(0, 4).unwrap(), &[1.5, -2.25, 0.0, 1e300]);
        assert_eq!(region.f64_slice(8, 2).unwrap(), &[-2.25, 0.0]);
        assert_eq!(region.f64_slice(8, 0).unwrap(), &[] as &[f64]);
        // out of range and misaligned accesses are errors, not UB
        assert!(matches!(region.f64_slice(0, 5), Err(VdError::Io(_))));
        assert!(matches!(region.f64_slice(4, 1), Err(VdError::Io(_))));
        assert!(matches!(region.f64_slice(usize::MAX, 2), Err(VdError::Io(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    #[test]
    fn advise_is_a_safe_no_op_for_any_range() {
        let contents: Vec<u8> = (0..=255).collect();
        let path = temp_file("advise", &contents);
        let region = MappedRegion::map_file(&path).unwrap();
        // every combination is best-effort: in range, crossing the end,
        // fully out of range, zero length — none may panic or corrupt
        for advice in [Advice::Normal, Advice::Sequential, Advice::Random] {
            region.advise(0, 256, advice);
            region.advise(100, 1_000_000, advice);
            region.advise(999_999, 10, advice);
            region.advise(0, 0, advice);
        }
        assert_eq!(region.as_bytes(), &contents[..], "advice never changes contents");
        assert_eq!(Advice::default(), Advice::Normal);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn empty_and_missing_files() {
        let path = temp_file("empty", &[]);
        let region = MappedRegion::map_file(&path).unwrap();
        assert!(region.is_empty());
        assert_eq!(region.as_bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(MappedRegion::map_file(&path), Err(VdError::Io(_))));
    }
}
