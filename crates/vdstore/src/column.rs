//! A single dimensional fragment: the values of one dimension for every
//! vector of the collection.
//!
//! In the paper's Monet implementation each dimension `i` is a binary
//! relation `Hi(oid, value)`. Because the histogram identifiers form a
//! densely ascending sequence the head column is *virtual*: the value of row
//! `r` is simply `values[r]`. [`Column`] captures exactly that.

use serde::{Deserialize, Serialize};

use crate::error::{Result, VdError};
use crate::RowId;

/// One vertically decomposed dimension: a dense array of `f64` coefficients,
/// addressed positionally by [`RowId`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Column {
    /// Optional human-readable name (e.g. `"hsv_bin_17"`).
    name: String,
    values: Vec<f64>,
}

impl Column {
    /// Creates a column from raw values.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column { name: name.into(), values }
    }

    /// Creates an unnamed column from raw values.
    pub fn from_values(values: Vec<f64>) -> Self {
        Column { name: String::new(), values }
    }

    /// Creates an empty column with the given capacity.
    pub fn with_capacity(name: impl Into<String>, capacity: usize) -> Self {
        Column { name: name.into(), values: Vec::with_capacity(capacity) }
    }

    /// The column's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the column.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the value at `row`, or an error when out of bounds.
    pub fn get(&self, row: RowId) -> Result<f64> {
        self.values
            .get(row as usize)
            .copied()
            .ok_or(VdError::RowOutOfBounds { row, rows: self.values.len() })
    }

    /// Positional lookup without bounds checking beyond the slice's own.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn value(&self, row: RowId) -> f64 {
        self.values[row as usize]
    }

    /// The underlying dense value slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the underlying value slice.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Appends a value (a new row) to the column.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Overwrites the value of an existing row.
    pub fn set(&mut self, row: RowId, value: f64) -> Result<()> {
        let rows = self.values.len();
        let slot =
            self.values.get_mut(row as usize).ok_or(VdError::RowOutOfBounds { row, rows })?;
        *slot = value;
        Ok(())
    }

    /// Gathers the values of the given rows (a positional join with a
    /// materialised candidate list, cf. step 3 of the MIL program).
    pub fn gather(&self, rows: &[RowId]) -> Vec<f64> {
        rows.iter().map(|&r| self.values[r as usize]).collect()
    }

    /// Minimum value of the column (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum value of the column (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Arithmetic mean of the column (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Consumes the column and returns its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl From<Vec<f64>> for Column {
    fn from(values: Vec<f64>) -> Self {
        Column::from_values(values)
    }
}

impl std::ops::Index<RowId> for Column {
    type Output = f64;

    fn index(&self, row: RowId) -> &f64 {
        &self.values[row as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let c = Column::new("dim0", vec![0.1, 0.2, 0.3]);
        assert_eq!(c.name(), "dim0");
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.value(1), 0.2);
        assert_eq!(c[2], 0.3);
        assert_eq!(c.get(0).unwrap(), 0.1);
        assert!(matches!(c.get(3), Err(VdError::RowOutOfBounds { row: 3, rows: 3 })));
    }

    #[test]
    fn push_set_and_mutation() {
        let mut c = Column::with_capacity("d", 4);
        assert!(c.is_empty());
        c.push(1.0);
        c.push(2.0);
        c.set(0, 5.0).unwrap();
        assert_eq!(c.values(), &[5.0, 2.0]);
        assert!(c.set(9, 1.0).is_err());
        c.values_mut()[1] = 7.0;
        assert_eq!(c.value(1), 7.0);
    }

    #[test]
    fn gather_is_positional() {
        let c = Column::from_values(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.gather(&[3, 0, 0]), vec![40.0, 10.0, 10.0]);
        assert_eq!(c.gather(&[]), Vec::<f64>::new());
    }

    #[test]
    fn aggregates() {
        let c = Column::from_values(vec![2.0, -1.0, 4.0]);
        assert_eq!(c.min(), Some(-1.0));
        assert_eq!(c.max(), Some(4.0));
        assert!((c.mean().unwrap() - 5.0 / 3.0).abs() < 1e-12);
        let empty = Column::default();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.mean(), None);
    }

    #[test]
    fn conversions() {
        let c: Column = vec![1.0, 2.0].into();
        assert_eq!(c.into_values(), vec![1.0, 2.0]);
        let mut c = Column::from_values(vec![0.0]);
        c.set_name("renamed");
        assert_eq!(c.name(), "renamed");
    }
}
