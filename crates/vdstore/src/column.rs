//! A single dimensional fragment: the values of one dimension for every
//! vector of the collection.
//!
//! In the paper's Monet implementation each dimension `i` is a binary
//! relation `Hi(oid, value)`. Because the histogram identifiers form a
//! densely ascending sequence the head column is *virtual*: the value of row
//! `r` is simply `values[r]`. [`Column`] captures exactly that.
//!
//! Since the persistent segment store, the dense value array may live in
//! two places — [`ColumnData`] abstracts over them:
//!
//! * [`ColumnData::Heap`]: an owned `Vec<f64>`, the in-memory default.
//! * [`ColumnData::Mapped`]: a zero-copy view of a [`MappedRegion`] — the
//!   fragment's contiguous byte range inside a persisted store file, served
//!   straight from the page cache.
//!
//! Reads are transparent (`values()` hands out a `&[f64]` either way).
//! Mutation promotes a mapped column to the heap first (copy-on-write), so
//! the whole mutable API keeps working on reopened stores.

use serde::{Deserialize, Serialize};

use crate::checksum::fnv1a;
use crate::error::{Result, VdError};
use crate::mmap::{Advice, MappedRegion, StorageBackend};
use crate::RowId;
use std::sync::Arc;

/// Where a column's dense value array lives: an owned heap vector or a
/// zero-copy view of a file-backed [`MappedRegion`].
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Owned values on the heap.
    Heap(Vec<f64>),
    /// A `len`-value window into a mapped store file, starting at
    /// `byte_offset`. The offset is validated (in range, 8-byte aligned) at
    /// construction, so reads are infallible afterwards.
    Mapped {
        /// The mapping this view borrows from (shared by all columns of the
        /// store).
        region: Arc<MappedRegion>,
        /// Byte offset of the fragment's first value inside the region.
        byte_offset: usize,
        /// Number of `f64` values in the fragment.
        len: usize,
        /// The fragment's FNV-1a checksum from the store footer, when the
        /// store carried one; verified before any copy-on-write promotion
        /// so corrupted bytes cannot silently become the heap truth.
        checksum: Option<u64>,
    },
}

impl ColumnData {
    /// A mapped view of `len` values at `byte_offset` inside `region`,
    /// optionally guarded by the fragment's persisted `checksum` (verified
    /// lazily, on copy-on-write promotion — an eager check would fault in
    /// every data page and defeat the lazy cold open).
    ///
    /// # Errors
    ///
    /// [`VdError::Io`] when the range falls outside the region or is not
    /// 8-byte aligned.
    pub fn mapped(
        region: Arc<MappedRegion>,
        byte_offset: usize,
        len: usize,
        checksum: Option<u64>,
    ) -> Result<Self> {
        // Validate once; `as_slice` relies on it.
        region.f64_slice(byte_offset, len)?;
        Ok(ColumnData::Mapped { region, byte_offset, len, checksum })
    }

    /// Applies an access-pattern hint to the mapped byte range backing this
    /// data (no-op for heap data): `rows` restricts the hint to a row
    /// sub-range, clamped to the fragment.
    fn advise(&self, rows: std::ops::Range<usize>, advice: Advice) {
        if let ColumnData::Mapped { region, byte_offset, len, .. } = self {
            let start = rows.start.min(*len);
            let end = rows.end.min(*len);
            if start < end {
                region.advise(byte_offset + start * 8, (end - start) * 8, advice);
            }
        }
    }

    /// Verifies the fragment's bytes against its persisted checksum, when
    /// one is carried (heap data and unguarded mappings verify trivially).
    fn verify(&self, name: &str) -> Result<()> {
        if let ColumnData::Mapped { region, byte_offset, len, checksum: Some(expected) } = self {
            let bytes = &region.as_bytes()[*byte_offset..*byte_offset + *len * 8];
            let actual = fnv1a(bytes);
            if actual != *expected {
                return Err(VdError::ChecksumMismatch {
                    column: name.to_string(),
                    expected: *expected,
                    actual,
                });
            }
        }
        Ok(())
    }

    /// The dense values, wherever they live.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        match self {
            ColumnData::Heap(v) => v,
            ColumnData::Mapped { region, byte_offset, len, .. } => {
                region.f64_slice(*byte_offset, *len).expect("validated at construction")
            }
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Heap(v) => v.len(),
            ColumnData::Mapped { len, .. } => *len,
        }
    }

    /// Whether there are no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which backend currently holds the values.
    pub fn backend(&self) -> StorageBackend {
        match self {
            ColumnData::Heap(_) => StorageBackend::Heap,
            ColumnData::Mapped { .. } => StorageBackend::Mapped,
        }
    }

    /// Promotes a mapped view to an owned heap vector (copy-on-write),
    /// verifying the fragment's checksum first when one is carried — the
    /// moment corrupted mapped bytes would otherwise become the new heap
    /// truth. Heap data is returned as-is.
    fn promote(&mut self, name: &str) -> Result<&mut Vec<f64>> {
        if let ColumnData::Mapped { .. } = self {
            self.verify(name)?;
            *self = ColumnData::Heap(self.as_slice().to_vec());
        }
        match self {
            ColumnData::Heap(v) => Ok(v),
            ColumnData::Mapped { .. } => unreachable!("promoted above"),
        }
    }

    /// Infallible promotion for the mutation APIs without an error channel.
    ///
    /// # Panics
    /// Panics when a guarded mapped fragment fails checksum verification.
    fn make_heap(&mut self, name: &str) -> &mut Vec<f64> {
        self.promote(name).expect("mapped fragment failed checksum verification on promotion")
    }

    /// Consumes the data, copying mapped views onto the heap.
    fn into_vec(self) -> Vec<f64> {
        match self {
            ColumnData::Heap(v) => v,
            mapped @ ColumnData::Mapped { .. } => mapped.as_slice().to_vec(),
        }
    }
}

impl Default for ColumnData {
    fn default() -> Self {
        ColumnData::Heap(Vec::new())
    }
}

impl PartialEq for ColumnData {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// One vertically decomposed dimension: a dense array of `f64` coefficients,
/// addressed positionally by [`RowId`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Column {
    /// Optional human-readable name (e.g. `"hsv_bin_17"`).
    name: String,
    data: ColumnData,
}

impl Column {
    /// Creates a column from raw values.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column { name: name.into(), data: ColumnData::Heap(values) }
    }

    /// Creates a column over pre-built storage (heap or mapped).
    pub fn from_data(name: impl Into<String>, data: ColumnData) -> Self {
        Column { name: name.into(), data }
    }

    /// Creates an unnamed column from raw values.
    pub fn from_values(values: Vec<f64>) -> Self {
        Column { name: String::new(), data: ColumnData::Heap(values) }
    }

    /// Creates an empty column with the given capacity.
    pub fn with_capacity(name: impl Into<String>, capacity: usize) -> Self {
        Column { name: name.into(), data: ColumnData::Heap(Vec::with_capacity(capacity)) }
    }

    /// The column's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the column.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Which storage backend currently holds this column's values.
    pub fn backend(&self) -> StorageBackend {
        self.data.backend()
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the value at `row`, or an error when out of bounds.
    pub fn get(&self, row: RowId) -> Result<f64> {
        self.data
            .as_slice()
            .get(row as usize)
            .copied()
            .ok_or(VdError::RowOutOfBounds { row, rows: self.data.len() })
    }

    /// Positional lookup without bounds checking beyond the slice's own.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn value(&self, row: RowId) -> f64 {
        self.data.as_slice()[row as usize]
    }

    /// The underlying dense value slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// Mutable access to the underlying value slice. A mapped column is
    /// promoted to the heap first (copy-on-write, checksum-verified).
    ///
    /// # Panics
    /// Panics when a checksum-guarded mapped fragment fails verification;
    /// use [`Column::set`] (or verify via [`Column::verify_checksum`]
    /// first) for a typed [`VdError::ChecksumMismatch`] instead.
    pub fn values_mut(&mut self) -> &mut [f64] {
        self.data.make_heap(&self.name)
    }

    /// Appends a value (a new row) to the column. A mapped column is
    /// promoted to the heap first (copy-on-write, checksum-verified).
    ///
    /// # Panics
    /// Panics when a checksum-guarded mapped fragment fails verification
    /// (see [`Column::values_mut`]).
    pub fn push(&mut self, value: f64) {
        self.data.make_heap(&self.name).push(value);
    }

    /// Overwrites the value of an existing row. A mapped column is promoted
    /// to the heap first (copy-on-write, checksum-verified).
    ///
    /// # Errors
    ///
    /// [`VdError::RowOutOfBounds`] for a bad row;
    /// [`VdError::ChecksumMismatch`] when a guarded mapped fragment fails
    /// verification at promotion time.
    pub fn set(&mut self, row: RowId, value: f64) -> Result<()> {
        let rows = self.data.len();
        let heap = self.data.promote(&self.name)?;
        let slot = heap.get_mut(row as usize).ok_or(VdError::RowOutOfBounds { row, rows })?;
        *slot = value;
        Ok(())
    }

    /// Verifies a checksum-guarded mapped fragment against its persisted
    /// checksum (trivially `Ok` for heap columns and unguarded mappings).
    ///
    /// # Errors
    ///
    /// [`VdError::ChecksumMismatch`] naming the column on disagreement.
    pub fn verify_checksum(&self) -> Result<()> {
        self.data.verify(&self.name)
    }

    /// Applies an access-pattern hint to the rows of a mapped fragment
    /// (no-op for heap columns and off unix) — see [`Advice`].
    pub fn advise_rows(&self, rows: std::ops::Range<usize>, advice: Advice) {
        self.data.advise(rows, advice);
    }

    /// Applies an access-pattern hint to the whole fragment.
    pub fn advise(&self, advice: Advice) {
        self.data.advise(0..self.data.len(), advice);
    }

    /// Gathers the values of the given rows (a positional join with a
    /// materialised candidate list, cf. step 3 of the MIL program).
    pub fn gather(&self, rows: &[RowId]) -> Vec<f64> {
        let values = self.data.as_slice();
        rows.iter().map(|&r| values[r as usize]).collect()
    }

    /// Minimum value of the column (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.data.as_slice().iter().copied().reduce(f64::min)
    }

    /// Maximum value of the column (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.data.as_slice().iter().copied().reduce(f64::max)
    }

    /// Arithmetic mean of the column (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let values = self.data.as_slice();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Consumes the column and returns its values (copying them off a
    /// mapped region when necessary).
    pub fn into_values(self) -> Vec<f64> {
        self.data.into_vec()
    }
}

impl From<Vec<f64>> for Column {
    fn from(values: Vec<f64>) -> Self {
        Column::from_values(values)
    }
}

impl std::ops::Index<RowId> for Column {
    type Output = f64;

    fn index(&self, row: RowId) -> &f64 {
        &self.data.as_slice()[row as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let c = Column::new("dim0", vec![0.1, 0.2, 0.3]);
        assert_eq!(c.name(), "dim0");
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.value(1), 0.2);
        assert_eq!(c[2], 0.3);
        assert_eq!(c.get(0).unwrap(), 0.1);
        assert!(matches!(c.get(3), Err(VdError::RowOutOfBounds { row: 3, rows: 3 })));
        assert_eq!(c.backend(), StorageBackend::Heap);
    }

    #[test]
    fn push_set_and_mutation() {
        let mut c = Column::with_capacity("d", 4);
        assert!(c.is_empty());
        c.push(1.0);
        c.push(2.0);
        c.set(0, 5.0).unwrap();
        assert_eq!(c.values(), &[5.0, 2.0]);
        assert!(c.set(9, 1.0).is_err());
        c.values_mut()[1] = 7.0;
        assert_eq!(c.value(1), 7.0);
    }

    #[test]
    fn gather_is_positional() {
        let c = Column::from_values(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.gather(&[3, 0, 0]), vec![40.0, 10.0, 10.0]);
        assert_eq!(c.gather(&[]), Vec::<f64>::new());
    }

    #[test]
    fn aggregates() {
        let c = Column::from_values(vec![2.0, -1.0, 4.0]);
        assert_eq!(c.min(), Some(-1.0));
        assert_eq!(c.max(), Some(4.0));
        assert!((c.mean().unwrap() - 5.0 / 3.0).abs() < 1e-12);
        let empty = Column::default();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.mean(), None);
    }

    #[test]
    fn conversions() {
        let c: Column = vec![1.0, 2.0].into();
        assert_eq!(c.into_values(), vec![1.0, 2.0]);
        let mut c = Column::from_values(vec![0.0]);
        c.set_name("renamed");
        assert_eq!(c.name(), "renamed");
    }

    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    mod mapped {
        use super::*;

        fn mapped_column(values: &[f64]) -> (Column, std::path::PathBuf) {
            let path = std::env::temp_dir().join(format!(
                "vdstore_column_mapped_{}_{:p}",
                std::process::id(),
                values
            ));
            let mut bytes = Vec::new();
            for v in values {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            std::fs::write(&path, &bytes).unwrap();
            let region = MappedRegion::map_file(&path).unwrap();
            let checksum = {
                let mut bytes = Vec::new();
                for v in values {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                crate::checksum::fnv1a(&bytes)
            };
            let data = ColumnData::mapped(region, 0, values.len(), Some(checksum)).unwrap();
            (Column::from_data("mapped", data), path)
        }

        #[test]
        fn mapped_columns_read_like_heap_columns() {
            let values = [0.25, -1.5, 3.75, 0.0];
            let (c, path) = mapped_column(&values);
            assert_eq!(c.backend(), StorageBackend::Mapped);
            assert_eq!(c.values(), &values);
            assert_eq!(c.len(), 4);
            assert_eq!(c.value(2), 3.75);
            assert_eq!(c.get(1).unwrap(), -1.5);
            assert!(c.get(4).is_err());
            assert_eq!(c.min(), Some(-1.5));
            assert_eq!(c.max(), Some(3.75));
            assert_eq!(c.gather(&[3, 0]), vec![0.0, 0.25]);
            // a heap column with the same values compares equal
            assert_eq!(c, Column::from_data("mapped", ColumnData::Heap(values.to_vec())));
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn mutation_promotes_to_heap_copy_on_write() {
            let (mut c, path) = mapped_column(&[1.0, 2.0, 3.0]);
            c.set(1, 9.0).unwrap();
            assert_eq!(c.backend(), StorageBackend::Heap);
            assert_eq!(c.values(), &[1.0, 9.0, 3.0]);
            let (mut c2, path2) = mapped_column(&[1.0]);
            c2.push(2.0);
            assert_eq!(c2.backend(), StorageBackend::Heap);
            assert_eq!(c2.into_values(), vec![1.0, 2.0]);
            // the file on disk is untouched by either mutation
            assert_eq!(std::fs::read(&path).unwrap().len(), 24);
            std::fs::remove_file(&path).unwrap();
            std::fs::remove_file(&path2).unwrap();
        }

        #[test]
        fn mapped_construction_validates_range() {
            let (c, path) = mapped_column(&[1.0, 2.0]);
            let ColumnData::Mapped { region, .. } = c.data else { panic!("mapped") };
            assert!(ColumnData::mapped(region.clone(), 0, 3, None).is_err());
            assert!(ColumnData::mapped(region.clone(), 4, 1, None).is_err());
            let ok = ColumnData::mapped(region, 8, 1, None).unwrap();
            assert_eq!(ok.as_slice(), &[2.0]);
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn checksum_guards_copy_on_write_promotion() {
            let values = [1.0, 2.0, 3.0];
            let (c, path) = mapped_column(&values);
            // a matching checksum verifies and promotes cleanly
            c.verify_checksum().unwrap();
            let mut ok = c.clone();
            ok.set(0, 9.0).unwrap();
            assert_eq!(ok.backend(), StorageBackend::Heap);

            // a wrong persisted checksum surfaces as the typed error at
            // promotion time, and the column stays mapped (unpromoted)
            let ColumnData::Mapped { region, byte_offset, len, .. } = c.data else {
                panic!("mapped")
            };
            let bad = ColumnData::mapped(region, byte_offset, len, Some(0xDEAD)).unwrap();
            let mut corrupt = Column::from_data("dim_x", bad);
            let err = corrupt.set(0, 9.0).unwrap_err();
            assert!(
                matches!(err, VdError::ChecksumMismatch { ref column, expected: 0xDEAD, .. }
                    if column == "dim_x"),
                "{err}"
            );
            assert_eq!(corrupt.backend(), StorageBackend::Mapped);
            assert!(corrupt.verify_checksum().is_err());
            // an unguarded mapping (no checksum) promotes without checks
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn advise_on_any_backend_is_a_no_op_for_correctness() {
            let values = [1.0, 2.0, 3.0, 4.0];
            let (c, path) = mapped_column(&values);
            c.advise(Advice::Sequential);
            c.advise_rows(1..3, Advice::Random);
            c.advise_rows(3..100, Advice::Normal); // clamped
            assert_eq!(c.values(), &values);
            let heap = Column::new("h", values.to_vec());
            heap.advise(Advice::Random); // heap: no-op
            assert_eq!(heap.values(), &values);
            std::fs::remove_file(&path).unwrap();
        }
    }
}
