//! Scalar quantization of dimensional fragments.
//!
//! Section 7.4 of the paper shows that BOND combines transparently with the
//! compression idea of the VA-File: each `f64` coefficient is replaced by an
//! 8-bit approximation, the pruning phase runs on the small codes, and only
//! the final refinement step touches exact values. The same machinery also
//! provides the cell bounds the VA-File baseline needs.
//!
//! We use uniform scalar quantization per dimension: the value range
//! `[min, max]` of a column is split into `2^bits` equi-width cells; a value
//! is represented by its cell index. Every cell index maps back to a
//! `[cell_lower, cell_upper]` interval that brackets the original value,
//! which is what makes pruning on codes *safe*.

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::{Result, VdError};
use crate::table::DecomposedTable;
use crate::RowId;

/// A quantized dimensional fragment: per-row cell codes plus the parameters
/// needed to reconstruct value intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedColumn {
    name: String,
    min: f64,
    max: f64,
    bits: u8,
    codes: Vec<u16>,
}

impl QuantizedColumn {
    /// Quantizes a column with `bits` bits per value (1 ..= 16).
    pub fn from_column(column: &Column, bits: u8) -> Result<Self> {
        if bits == 0 || bits > 16 {
            return Err(VdError::InvalidQuantization(format!(
                "bits per dimension must be in 1..=16, got {bits}"
            )));
        }
        if column.is_empty() {
            return Err(VdError::Empty("column"));
        }
        if let Some(row) = column.values().iter().position(|v| !v.is_finite()) {
            return Err(VdError::InvalidQuantization(format!(
                "column '{}' has a non-finite value at row {row}; \
                 (v - min) / width would emit a garbage code",
                column.name()
            )));
        }
        let min = column.min().expect("non-empty column");
        let max = column.max().expect("non-empty column");
        let levels = 1u32 << bits;
        // min == max (constant or all-equal column) degrades to a safe
        // single-level code: width 0, every row in cell 0, zero error.
        let width = cell_width(min, max, levels);
        let codes = column
            .values()
            .iter()
            .map(|&v| {
                let code = if width == 0.0 { 0 } else { ((v - min) / width) as u32 };
                code.min(levels - 1) as u16
            })
            .collect();
        Ok(QuantizedColumn { name: column.name().to_string(), min, max, bits, codes })
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bits per value.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The raw code of a row.
    #[inline]
    pub fn code(&self, row: RowId) -> u16 {
        self.codes[row as usize]
    }

    /// All codes.
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// The lower edge of the quantization grid (the column's minimum).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The upper edge of the quantization grid (the column's maximum).
    pub fn max(&self) -> f64 {
        self.max
    }

    fn width(&self) -> f64 {
        cell_width(self.min, self.max, 1u32 << self.bits)
    }

    /// The lower edge of the cell a row's value fell into. The original
    /// value is guaranteed to be `>= cell_lower(row)`.
    #[inline]
    pub fn cell_lower(&self, row: RowId) -> f64 {
        self.min + self.codes[row as usize] as f64 * self.width()
    }

    /// The upper edge of the cell a row's value fell into. The original
    /// value is guaranteed to be `<= cell_upper(row)`.
    #[inline]
    pub fn cell_upper(&self, row: RowId) -> f64 {
        // u32 arithmetic: the all-ones code of a 16-bit grid must not
        // overflow the +1
        let upper = self.min + (self.codes[row as usize] as u32 + 1) as f64 * self.width();
        upper.min(self.max)
    }

    /// Midpoint reconstruction of a row's value (the approximation used when
    /// a single representative value is needed, e.g. BOND-on-codes partial
    /// scores).
    #[inline]
    pub fn approximate(&self, row: RowId) -> f64 {
        0.5 * (self.cell_lower(row) + self.cell_upper(row))
    }

    /// Midpoint reconstructions for all rows.
    pub fn approximate_all(&self) -> Vec<f64> {
        (0..self.codes.len() as RowId).map(|r| self.approximate(r)).collect()
    }

    /// Maximum absolute reconstruction error of the midpoint approximation:
    /// half a cell width.
    pub fn max_error(&self) -> f64 {
        0.5 * self.width()
    }

    /// The lower edge of the cell a *query value* would fall into, clamped
    /// to the column's range; used by the VA-File bounds.
    pub fn query_cell(&self, value: f64) -> (f64, f64) {
        let levels = 1u32 << self.bits;
        let width = self.width();
        if width == 0.0 {
            return (self.min, self.max);
        }
        let clamped = value.clamp(self.min, self.max);
        let code = (((clamped - self.min) / width) as u32).min(levels - 1);
        let lo = self.min + code as f64 * width;
        let hi = (self.min + (code + 1) as f64 * width).min(self.max);
        (lo, hi)
    }

    /// Approximate storage size in bytes (codes only).
    pub fn approx_bytes(&self) -> usize {
        if self.bits <= 8 {
            self.codes.len()
        } else {
            self.codes.len() * 2
        }
    }
}

fn cell_width(min: f64, max: f64, levels: u32) -> f64 {
    if max > min {
        (max - min) / levels as f64
    } else {
        0.0
    }
}

/// All dimensional fragments of a table, quantized with the same bit width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTable {
    name: String,
    bits: u8,
    rows: usize,
    columns: Vec<QuantizedColumn>,
}

impl QuantizedTable {
    /// Quantizes every dimension of `table` with `bits` bits per value.
    pub fn from_table(table: &DecomposedTable, bits: u8) -> Result<Self> {
        let mut columns = Vec::with_capacity(table.dims());
        for c in table.columns() {
            columns.push(QuantizedColumn::from_column(c, bits)?);
        }
        Ok(QuantizedTable {
            name: format!("{}_q{bits}", table.name()),
            bits,
            rows: table.rows(),
            columns,
        })
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bits per value.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// The quantized fragment of dimension `dim`.
    pub fn column(&self, dim: usize) -> Result<&QuantizedColumn> {
        self.columns.get(dim).ok_or(VdError::DimOutOfBounds { dim, dims: self.columns.len() })
    }

    /// All quantized fragments.
    pub fn columns(&self) -> &[QuantizedColumn] {
        &self.columns
    }

    /// Reconstructs an approximate table using midpoint values, preserving
    /// column names. Running BOND on this table is "BOND on compressed
    /// fragments" (Figure 9).
    pub fn to_approximate_table(&self) -> DecomposedTable {
        let columns: Vec<Column> =
            self.columns.iter().map(|qc| Column::new(qc.name(), qc.approximate_all())).collect();
        DecomposedTable::from_columns(format!("{}_approx", self.name), columns)
            .expect("quantized columns are rectangular")
    }

    /// Total approximate storage of the codes in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: Vec<f64>) -> Column {
        Column::new("c", values)
    }

    #[test]
    fn codes_bracket_values() {
        let c = col(vec![0.0, 0.1, 0.25, 0.5, 0.99, 1.0]);
        let q = QuantizedColumn::from_column(&c, 8).unwrap();
        assert_eq!(q.len(), 6);
        for (i, &v) in c.values().iter().enumerate() {
            let r = i as RowId;
            assert!(q.cell_lower(r) <= v + 1e-12, "lower bound violated at {i}");
            assert!(q.cell_upper(r) >= v - 1e-12, "upper bound violated at {i}");
            assert!((q.approximate(r) - v).abs() <= q.max_error() + 1e-12);
        }
    }

    #[test]
    fn bits_validation() {
        let c = col(vec![1.0]);
        assert!(QuantizedColumn::from_column(&c, 0).is_err());
        assert!(QuantizedColumn::from_column(&c, 17).is_err());
        assert!(QuantizedColumn::from_column(&Column::default(), 8).is_err());
        assert!(QuantizedColumn::from_column(&c, 16).is_ok());
    }

    #[test]
    fn constant_column_quantizes_to_zero_width() {
        let c = col(vec![0.5, 0.5, 0.5]);
        let q = QuantizedColumn::from_column(&c, 8).unwrap();
        assert_eq!(q.code(0), 0);
        assert_eq!(q.cell_lower(1), 0.5);
        assert_eq!(q.cell_upper(2), 0.5);
        assert_eq!(q.approximate(0), 0.5);
        assert_eq!(q.max_error(), 0.0);
        assert_eq!(q.query_cell(0.7), (0.5, 0.5));
    }

    #[test]
    fn more_bits_means_less_error() {
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        let c = col(values);
        let q4 = QuantizedColumn::from_column(&c, 4).unwrap();
        let q8 = QuantizedColumn::from_column(&c, 8).unwrap();
        assert!(q8.max_error() < q4.max_error());
        assert_eq!(q4.approx_bytes(), 100);
        assert_eq!(q8.approx_bytes(), 100);
        let q12 = QuantizedColumn::from_column(&c, 12).unwrap();
        assert_eq!(q12.approx_bytes(), 200);
    }

    #[test]
    fn query_cell_clamps() {
        let c = col(vec![0.0, 1.0]);
        let q = QuantizedColumn::from_column(&c, 2).unwrap();
        let (lo, hi) = q.query_cell(0.6);
        assert!(lo <= 0.6 && 0.6 <= hi);
        let (lo, _hi) = q.query_cell(-5.0);
        assert_eq!(lo, 0.0);
        let (_lo, hi) = q.query_cell(5.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn quantized_table_round_trip() {
        let t =
            DecomposedTable::from_vectors("t", &[vec![0.1, 0.9], vec![0.4, 0.6], vec![0.8, 0.2]])
                .unwrap();
        let qt = QuantizedTable::from_table(&t, 8).unwrap();
        assert_eq!(qt.dims(), 2);
        assert_eq!(qt.rows(), 3);
        assert_eq!(qt.bits(), 8);
        assert!(qt.column(5).is_err());
        let approx = qt.to_approximate_table();
        assert_eq!(approx.dims(), 2);
        for r in 0..3u32 {
            for d in 0..2 {
                let orig = t.value(r, d).unwrap();
                let appr = approx.value(r, d).unwrap();
                assert!((orig - appr).abs() <= qt.column(d).unwrap().max_error() + 1e-12);
            }
        }
        assert_eq!(qt.approx_bytes(), 6);
    }
}
