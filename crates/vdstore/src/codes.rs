//! Per-segment quantized code companions of a decomposed table.
//!
//! Section 7.4 of the paper composes BOND with VA-File-style scalar codes:
//! prune on small approximations, touch exact values only for survivors.
//! [`crate::quantize::QuantizedColumn`] quantizes a whole column with one
//! global `[min, max]`; this module builds the engine-facing variant — one
//! flat `u8` code fragment per dimension, encoded **per segment** with that
//! segment's tightened `[min, max]` envelope (the same envelopes the
//! zone-map check already keeps in [`SegmentStats`]). Tighter ranges mean
//! narrower cells, which means tighter score intervals in the filter pass.
//!
//! The codes persist inside the `BONDVD02` footer (see [`crate::persist`])
//! with one FNV-1a checksum per dimension, and on the mapped backend they
//! are exposed zero-copy: a `&[u8]` needs no alignment, so a
//! [`CodeColumn`] can point straight into the file mapping.

use std::sync::Arc;

use crate::checksum::fnv1a;
use crate::error::{Result, VdError};
use crate::mmap::MappedRegion;
use crate::segment::{SegmentSpec, SegmentStats};
use crate::table::DecomposedTable;

/// The scalar-quantization parameters of one (segment, dimension) cell
/// grid: `2^bits` equi-width cells spanning `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeParams {
    /// Lower edge of the quantized range.
    pub min: f64,
    /// Upper edge of the quantized range.
    pub max: f64,
    /// Bits per code (1 ..= 8; codes are stored as `u8`).
    pub bits: u8,
}

impl CodeParams {
    /// Builds parameters, validating the range and bit width.
    pub fn new(min: f64, max: f64, bits: u8) -> Result<Self> {
        if bits == 0 || bits > 8 {
            return Err(VdError::InvalidQuantization(format!(
                "code bits must be in 1..=8, got {bits}"
            )));
        }
        if !min.is_finite() || !max.is_finite() || min > max {
            return Err(VdError::InvalidQuantization(format!(
                "code range [{min}, {max}] must be finite and ordered"
            )));
        }
        Ok(CodeParams { min, max, bits })
    }

    /// Number of quantization levels (`2^bits`).
    #[inline]
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Width of one quantization cell (`0.0` for a degenerate range).
    /// This is the exact multiplier behind [`CodeParams::cell_bounds`] —
    /// exposed so ISA kernels can regenerate cell edges bit-identically
    /// without going through a bounds array.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.width()
    }

    #[inline]
    fn width(&self) -> f64 {
        if self.max > self.min {
            (self.max - self.min) / self.levels() as f64
        } else {
            0.0
        }
    }

    /// Encodes a value into its cell index. A degenerate range
    /// (`min == max`) maps every value to the single cell 0; values outside
    /// `[min, max]` clamp to the edge cells.
    #[inline]
    pub fn encode(&self, value: f64) -> u8 {
        let width = self.width();
        if width == 0.0 {
            return 0;
        }
        let cell = ((value - self.min).max(0.0) / width) as u32;
        cell.min(self.levels() - 1) as u8
    }

    /// The `[cell_lower, cell_upper]` interval of a cell index. Every value
    /// of this segment's rows that encoded to `code` lies inside it.
    #[inline]
    pub fn cell_bounds(&self, code: u8) -> (f64, f64) {
        let width = self.width();
        let lo = self.min + code as f64 * width;
        let hi = (self.min + (code as u32 + 1) as f64 * width).min(self.max);
        (lo.min(self.max), hi)
    }

    /// Fills `out[c]` with [`CodeParams::cell_bounds`]`(c)` for every slot
    /// — identical values, but the cell width (one division) is computed
    /// once instead of per cell. The quantized filter rebuilds a
    /// per-level bounds table for every (query, segment, dimension), so
    /// the per-cell division is measurable there.
    pub fn fill_cell_bounds(&self, out: &mut [(f64, f64)]) {
        let width = self.width();
        // the cell index converts through `i32`: exact for every level
        // count (≤ 256), and — unlike `usize as f64` — a conversion the
        // auto-vectorizer has a packed instruction for
        for (c, slot) in out.iter_mut().enumerate() {
            let lo = self.min + c as i32 as f64 * width;
            let hi = (self.min + (c as i32 + 1) as f64 * width).min(self.max);
            *slot = (lo.min(self.max), hi);
        }
    }

    /// Midpoint reconstruction of a cell — the representative value the
    /// approximate scan mode answers from.
    #[inline]
    pub fn approximate(&self, code: u8) -> f64 {
        let (lo, hi) = self.cell_bounds(code);
        0.5 * (lo + hi)
    }

    /// Maximum absolute error of the midpoint reconstruction: half a cell.
    #[inline]
    pub fn max_error(&self) -> f64 {
        0.5 * self.width()
    }
}

/// Backing storage of one dimension's flat code fragment.
#[derive(Debug, Clone)]
enum CodeData {
    /// Codes owned in memory.
    Heap(Vec<u8>),
    /// Codes borrowed zero-copy from a file mapping (`&[u8]` needs no
    /// alignment, unlike the `f64` fragments).
    Mapped { region: Arc<MappedRegion>, offset: usize, len: usize },
}

/// One dimension's code fragment: `rows` bytes, row-aligned with the exact
/// `f64` fragment, encoded segment-by-segment with per-segment parameters.
#[derive(Debug, Clone)]
pub struct CodeColumn {
    data: CodeData,
}

impl CodeColumn {
    /// Wraps owned codes.
    pub fn from_vec(codes: Vec<u8>) -> Self {
        CodeColumn { data: CodeData::Heap(codes) }
    }

    /// Wraps a zero-copy window of a file mapping. Fails if the window
    /// falls outside the region.
    pub fn mapped(region: Arc<MappedRegion>, offset: usize, len: usize) -> Result<Self> {
        let end = offset.checked_add(len).ok_or_else(|| {
            VdError::Corrupt(format!("code column window {offset}+{len} overflows"))
        })?;
        if end > region.as_bytes().len() {
            return Err(VdError::Corrupt(format!(
                "code column window {offset}..{end} exceeds mapping of {} bytes",
                region.as_bytes().len()
            )));
        }
        Ok(CodeColumn { data: CodeData::Mapped { region, offset, len } })
    }

    /// The flat code bytes, one per row.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            CodeData::Heap(v) => v,
            CodeData::Mapped { region, offset, len } => &region.as_bytes()[*offset..*offset + *len],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            CodeData::Heap(v) => v.len(),
            CodeData::Mapped { len, .. } => *len,
        }
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the codes live in a file mapping (zero-copy) rather than on
    /// the heap.
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, CodeData::Mapped { .. })
    }
}

/// The quantized companion of a partitioned store: per-dimension flat code
/// fragments plus the per-(segment, dimension) grids that decode them.
#[derive(Debug, Clone)]
pub struct StoreCodes {
    /// `segment_bits[segment]` — bits per code in that segment's windows.
    /// Uniform stores repeat one width; the adaptive engine mixes 4-bit
    /// (tight, fast-sweep) and 8-bit (loose, tight-bracket) segments.
    segment_bits: Vec<u8>,
    rows: usize,
    specs: Vec<SegmentSpec>,
    /// `params[segment][dim]` — the grid each code byte of that window was
    /// encoded with.
    params: Vec<Vec<CodeParams>>,
    /// `columns[dim]` — all rows contiguous, segment windows encoded with
    /// their own grids.
    columns: Vec<CodeColumn>,
    /// FNV-1a over each dimension's code bytes.
    checksums: Vec<u64>,
}

impl StoreCodes {
    /// Builds code fragments for every dimension of `table`, one grid per
    /// (segment, dimension) tightened to the segment's value envelope from
    /// `stats` (falling back to a fresh scan of the slice for dimensions
    /// with no statistics). Fails on non-finite values and on mismatched
    /// specs/stats.
    pub fn build(
        table: &DecomposedTable,
        specs: &[SegmentSpec],
        stats: &[SegmentStats],
        bits: u8,
    ) -> Result<Self> {
        Self::build_mixed(table, specs, stats, &vec![bits; specs.len()])
    }

    /// [`StoreCodes::build`] with one bit width **per segment** — the
    /// adaptive engine drops observably tight segments to 4 bits (their
    /// sweeps dominate, their survivors are few) while loose segments keep
    /// the full 8-bit grid. `segment_bits` must have one entry per spec,
    /// each in `1..=8`.
    pub fn build_mixed(
        table: &DecomposedTable,
        specs: &[SegmentSpec],
        stats: &[SegmentStats],
        segment_bits: &[u8],
    ) -> Result<Self> {
        if segment_bits.len() != specs.len() {
            return Err(VdError::LengthMismatch {
                expected: specs.len(),
                actual: segment_bits.len(),
            });
        }
        if let Some(&bits) = segment_bits.iter().find(|&&b| b == 0 || b > 8) {
            return Err(VdError::InvalidQuantization(format!(
                "code bits must be in 1..=8, got {bits}"
            )));
        }
        if specs.len() != stats.len() {
            return Err(VdError::LengthMismatch { expected: specs.len(), actual: stats.len() });
        }
        let rows = table.rows();
        let dims = table.dims();
        let mut params: Vec<Vec<CodeParams>> = Vec::with_capacity(specs.len());
        for ((spec, stat), &bits) in specs.iter().zip(stats).zip(segment_bits) {
            let mut per_dim = Vec::with_capacity(dims);
            for d in 0..dims {
                let (min, max) = match &stat.per_dim.get(d).and_then(|s| s.as_ref()) {
                    Some(s) => (s.min, s.max),
                    None => {
                        let slice = &table.column(d)?.values()[spec.range()];
                        let min = slice.iter().copied().fold(f64::INFINITY, f64::min);
                        let max = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        if slice.is_empty() {
                            (0.0, 0.0)
                        } else {
                            (min, max)
                        }
                    }
                };
                if !min.is_finite() || !max.is_finite() {
                    return Err(VdError::InvalidQuantization(format!(
                        "segment {:?} dim {d} has a non-finite value envelope [{min}, {max}]",
                        spec.range()
                    )));
                }
                per_dim.push(CodeParams::new(min, max, bits)?);
            }
            params.push(per_dim);
        }
        let mut columns = Vec::with_capacity(dims);
        let mut checksums = Vec::with_capacity(dims);
        for d in 0..dims {
            let values = table.column(d)?.values();
            if let Some(row) = values.iter().position(|v| !v.is_finite()) {
                return Err(VdError::InvalidQuantization(format!(
                    "dim {d} has a non-finite value at row {row}; codes would be garbage"
                )));
            }
            let mut codes = vec![0u8; rows];
            for (spec, segment_params) in specs.iter().zip(&params) {
                let grid = segment_params[d];
                for (c, &v) in codes[spec.range()].iter_mut().zip(&values[spec.range()]) {
                    *c = grid.encode(v);
                }
            }
            checksums.push(fnv1a(&codes));
            columns.push(CodeColumn::from_vec(codes));
        }
        Ok(StoreCodes {
            segment_bits: segment_bits.to_vec(),
            rows,
            specs: specs.to_vec(),
            params,
            columns,
            checksums,
        })
    }

    /// Reassembles codes parsed from a persisted store. Validates shape
    /// consistency; checksum verification happens at parse time.
    pub(crate) fn from_parts(
        segment_bits: Vec<u8>,
        rows: usize,
        specs: Vec<SegmentSpec>,
        params: Vec<Vec<CodeParams>>,
        columns: Vec<CodeColumn>,
        checksums: Vec<u64>,
    ) -> Result<Self> {
        if segment_bits.len() != specs.len() {
            return Err(VdError::Corrupt(format!(
                "code bit widths cover {} segments, store has {}",
                segment_bits.len(),
                specs.len()
            )));
        }
        if let Some(&bits) = segment_bits.iter().find(|&&b| b == 0 || b > 8) {
            return Err(VdError::InvalidQuantization(format!(
                "code bits must be in 1..=8, got {bits}"
            )));
        }
        if params.len() != specs.len() {
            return Err(VdError::Corrupt(format!(
                "code params cover {} segments, store has {}",
                params.len(),
                specs.len()
            )));
        }
        if checksums.len() != columns.len() {
            return Err(VdError::Corrupt(format!(
                "{} code checksums for {} code columns",
                checksums.len(),
                columns.len()
            )));
        }
        for column in &columns {
            if column.len() != rows {
                return Err(VdError::Corrupt(format!(
                    "code column holds {} rows, store has {rows}",
                    column.len()
                )));
            }
        }
        Ok(StoreCodes { segment_bits, rows, specs, params, columns, checksums })
    }

    /// The widest per-segment code width — for a uniform store this is
    /// *the* bit width; mixed stores report their tightest grid's width
    /// (use [`StoreCodes::segment_bits`] for the per-segment truth).
    pub fn bits(&self) -> u8 {
        self.segment_bits.iter().copied().max().unwrap_or(8)
    }

    /// Bits per code of every segment, in segment order.
    pub fn segment_bits(&self) -> &[u8] {
        &self.segment_bits
    }

    /// The single code width all segments share, when they do share one —
    /// `None` for adaptively mixed stores.
    pub fn uniform_bits(&self) -> Option<u8> {
        let first = *self.segment_bits.first()?;
        self.segment_bits.iter().all(|&b| b == first).then_some(first)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Number of segments the codes were encoded over.
    pub fn n_segments(&self) -> usize {
        self.specs.len()
    }

    /// The segment boundaries the codes were encoded over.
    pub fn specs(&self) -> &[SegmentSpec] {
        &self.specs
    }

    /// The FNV-1a checksum of one dimension's code bytes.
    pub fn checksum(&self, dim: usize) -> Result<u64> {
        self.checksums
            .get(dim)
            .copied()
            .ok_or(VdError::DimOutOfBounds { dim, dims: self.checksums.len() })
    }

    /// One dimension's flat code bytes (all rows).
    pub fn dim_codes(&self, dim: usize) -> Result<&[u8]> {
        self.columns
            .get(dim)
            .map(CodeColumn::as_slice)
            .ok_or(VdError::DimOutOfBounds { dim, dims: self.columns.len() })
    }

    /// Whether any dimension's codes are mapped zero-copy from a file.
    pub fn is_mapped(&self) -> bool {
        self.columns.iter().any(CodeColumn::is_mapped)
    }

    /// Whether these codes were encoded over exactly the given segment
    /// boundaries — the precondition for using them in a segmented search.
    pub fn matches_specs(&self, specs: &[SegmentSpec]) -> bool {
        self.specs == specs
    }

    /// A view of one segment's codes: the per-dimension windows plus the
    /// grids that decode them.
    pub fn segment_view(&self, segment: usize) -> Result<SegmentCodesView<'_>> {
        let spec = *self.specs.get(segment).ok_or_else(|| {
            VdError::Corrupt(format!("segment {segment} of {} in codes", self.specs.len()))
        })?;
        Ok(SegmentCodesView { codes: self, segment, start: spec.start(), len: spec.len() })
    }
}

/// One segment's window into [`StoreCodes`]: local-row-indexed code slices
/// and the per-dimension grids of this segment.
#[derive(Debug, Clone, Copy)]
pub struct SegmentCodesView<'a> {
    codes: &'a StoreCodes,
    segment: usize,
    start: usize,
    len: usize,
}

impl<'a> SegmentCodesView<'a> {
    /// The grid of one dimension in this segment.
    #[inline]
    pub fn params(&self, dim: usize) -> CodeParams {
        self.codes.params[self.segment][dim]
    }

    /// This segment's code window of one dimension (local row indexing,
    /// same order as [`crate::Segment::col_slice`]).
    #[inline]
    pub fn dim_codes(&self, dim: usize) -> Result<&'a [u8]> {
        let all = self.codes.dim_codes(dim)?;
        Ok(&all[self.start..self.start + self.len])
    }

    /// Number of quantization levels of this segment's grids.
    #[inline]
    pub fn levels(&self) -> usize {
        1usize << self.codes.segment_bits[self.segment]
    }

    /// Bits per code in this segment.
    pub fn bits(&self) -> u8 {
        self.codes.segment_bits[self.segment]
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.codes.dims()
    }

    /// Number of rows in this segment.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> (DecomposedTable, Vec<SegmentSpec>, Vec<SegmentStats>) {
        let vectors: Vec<Vec<f64>> = (0..12)
            .map(|r| (0..3).map(|d| ((r * 3 + d) as f64 * 0.37).sin().abs()).collect())
            .collect();
        let table = DecomposedTable::from_vectors("codes", &vectors).unwrap();
        let specs = table.partition_specs(3);
        let stats = specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
        (table, specs, stats)
    }

    #[test]
    fn params_encode_and_bracket() {
        let p = CodeParams::new(0.0, 1.0, 4).unwrap();
        assert_eq!(p.levels(), 16);
        for i in 0..100 {
            let v = i as f64 / 99.0;
            let code = p.encode(v);
            let (lo, hi) = p.cell_bounds(code);
            assert!(lo <= v + 1e-12 && v <= hi + 1e-12, "bracket broken at {v}");
            assert!((p.approximate(code) - v).abs() <= p.max_error() + 1e-12);
        }
        // out-of-range values clamp to edge cells
        assert_eq!(p.encode(-3.0), 0);
        assert_eq!(p.encode(3.0), 15);
        // degenerate range: one exact cell
        let flat = CodeParams::new(0.5, 0.5, 8).unwrap();
        assert_eq!(flat.encode(0.7), 0);
        assert_eq!(flat.cell_bounds(0), (0.5, 0.5));
        assert_eq!(flat.max_error(), 0.0);
    }

    #[test]
    fn params_validation() {
        assert!(CodeParams::new(0.0, 1.0, 0).is_err());
        assert!(CodeParams::new(0.0, 1.0, 9).is_err());
        assert!(CodeParams::new(1.0, 0.0, 8).is_err());
        assert!(CodeParams::new(f64::NAN, 1.0, 8).is_err());
        assert!(CodeParams::new(0.0, f64::INFINITY, 8).is_err());
    }

    #[test]
    fn build_brackets_every_live_value_per_segment() {
        let (table, specs, stats) = sample_table();
        let codes = StoreCodes::build(&table, &specs, &stats, 8).unwrap();
        assert_eq!(codes.rows(), 12);
        assert_eq!(codes.dims(), 3);
        assert_eq!(codes.n_segments(), 3);
        assert!(codes.matches_specs(&specs));
        assert!(!codes.is_mapped());
        for (si, spec) in specs.iter().enumerate() {
            let view = codes.segment_view(si).unwrap();
            assert_eq!(view.len(), spec.len());
            for d in 0..3 {
                let window = view.dim_codes(d).unwrap();
                let exact = &table.column(d).unwrap().values()[spec.range()];
                let grid = view.params(d);
                for (&code, &v) in window.iter().zip(exact) {
                    let (lo, hi) = grid.cell_bounds(code);
                    assert!(lo <= v + 1e-12 && v <= hi + 1e-12);
                }
            }
        }
    }

    #[test]
    fn segment_grids_are_tighter_than_global() {
        // clustered data: each segment covers a narrow value band, so the
        // per-segment grids must have (weakly) smaller cells than one
        // global grid would
        let vectors: Vec<Vec<f64>> =
            (0..30).map(|r| vec![(r / 10) as f64 + (r % 10) as f64 * 0.01]).collect();
        let table = DecomposedTable::from_vectors("bands", &vectors).unwrap();
        let specs = table.partition_specs(3);
        let stats: Vec<SegmentStats> =
            specs.iter().map(|s| s.view(&table).unwrap().stats()).collect();
        let codes = StoreCodes::build(&table, &specs, &stats, 8).unwrap();
        let global = CodeParams::new(0.0, 2.09, 8).unwrap();
        for si in 0..3 {
            let seg = codes.segment_view(si).unwrap().params(0);
            assert!(seg.max_error() < global.max_error());
        }
    }

    #[test]
    fn mixed_builds_bracket_with_per_segment_widths() {
        let (table, specs, stats) = sample_table();
        let codes = StoreCodes::build_mixed(&table, &specs, &stats, &[4, 8, 4]).unwrap();
        assert_eq!(codes.segment_bits(), &[4, 8, 4]);
        assert_eq!(codes.bits(), 8, "widest grid");
        assert_eq!(codes.uniform_bits(), None);
        for (si, spec) in specs.iter().enumerate() {
            let view = codes.segment_view(si).unwrap();
            assert_eq!(view.bits(), [4, 8, 4][si]);
            assert_eq!(view.levels(), 1usize << [4, 8, 4][si]);
            for d in 0..3 {
                let window = view.dim_codes(d).unwrap();
                let exact = &table.column(d).unwrap().values()[spec.range()];
                let grid = view.params(d);
                assert_eq!(grid.bits, [4, 8, 4][si]);
                for (&code, &v) in window.iter().zip(exact) {
                    assert!((code as u32) < grid.levels());
                    let (lo, hi) = grid.cell_bounds(code);
                    assert!(lo <= v + 1e-12 && v <= hi + 1e-12);
                }
            }
        }
        // a uniform build is the same thing said twice
        let uniform = StoreCodes::build(&table, &specs, &stats, 8).unwrap();
        assert_eq!(uniform.uniform_bits(), Some(8));
        assert_eq!(uniform.segment_bits(), &[8, 8, 8]);
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let (table, specs, stats) = sample_table();
        assert!(StoreCodes::build(&table, &specs, &stats, 0).is_err());
        assert!(StoreCodes::build(&table, &specs, &stats, 9).is_err());
        assert!(StoreCodes::build(&table, &specs, &stats[..2], 8).is_err());
        assert!(StoreCodes::build_mixed(&table, &specs, &stats, &[8, 8]).is_err());
        assert!(StoreCodes::build_mixed(&table, &specs, &stats, &[8, 0, 8]).is_err());
        let bad = DecomposedTable::from_vectors("nan", &[vec![0.1], vec![f64::NAN]]).unwrap();
        let bad_specs = bad.partition_specs(1);
        let bad_stats: Vec<SegmentStats> =
            bad_specs.iter().map(|s| s.view(&bad).unwrap().stats()).collect();
        let err = StoreCodes::build(&bad, &bad_specs, &bad_stats, 8).unwrap_err();
        assert!(matches!(err, VdError::InvalidQuantization(_)));
    }

    #[test]
    fn checksums_cover_the_code_bytes() {
        let (table, specs, stats) = sample_table();
        let codes = StoreCodes::build(&table, &specs, &stats, 8).unwrap();
        for d in 0..3 {
            assert_eq!(codes.checksum(d).unwrap(), fnv1a(codes.dim_codes(d).unwrap()));
        }
        assert!(codes.checksum(7).is_err());
        assert!(codes.dim_codes(7).is_err());
    }
}
