//! Row-major storage, used by the sequential-scan baselines.
//!
//! The paper compares BOND against "an optimized implementation of
//! sequentially scanning a single table with all vectors"; that single table
//! is this contiguous row-major matrix.

use serde::{Deserialize, Serialize};

use crate::error::{Result, VdError};
use crate::RowId;

/// A dense row-major matrix of feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowMatrix {
    dims: usize,
    data: Vec<f64>,
}

impl RowMatrix {
    /// Creates a matrix from contiguous row-major data.
    ///
    /// `data.len()` must be a multiple of `dims`.
    pub fn new(dims: usize, data: Vec<f64>) -> Result<Self> {
        if dims == 0 {
            return Err(VdError::Empty("matrix dimensionality"));
        }
        if !data.len().is_multiple_of(dims) {
            return Err(VdError::LengthMismatch {
                expected: data.len().next_multiple_of(dims),
                actual: data.len(),
            });
        }
        Ok(RowMatrix { dims, data })
    }

    /// Creates a matrix by copying a slice of vectors.
    pub fn from_vectors(vectors: &[Vec<f64>]) -> Result<Self> {
        let first = vectors.first().ok_or(VdError::Empty("vector collection"))?;
        let dims = first.len();
        let mut data = Vec::with_capacity(vectors.len() * dims);
        for v in vectors {
            if v.len() != dims {
                return Err(VdError::DimensionMismatch { expected: dims, actual: v.len() });
            }
            data.extend_from_slice(v);
        }
        RowMatrix::new(dims, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    /// Number of dimensions per row.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The vector stored at `row`.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row(&self, row: RowId) -> &[f64] {
        let start = row as usize * self.dims;
        &self.data[start..start + self.dims]
    }

    /// The vector stored at `row`, or an error when out of bounds.
    pub fn try_row(&self, row: RowId) -> Result<&[f64]> {
        if (row as usize) < self.rows() {
            Ok(self.row(row))
        } else {
            Err(VdError::RowOutOfBounds { row, rows: self.rows() })
        }
    }

    /// Iterates over `(row_id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[f64])> + '_ {
        self.data.chunks_exact(self.dims).enumerate().map(|(i, v)| (i as RowId, v))
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = RowMatrix::new(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.dims(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert!(m.try_row(2).is_err());
        assert!(!m.is_empty());
    }

    #[test]
    fn validation() {
        assert!(RowMatrix::new(0, vec![]).is_err());
        assert!(RowMatrix::new(3, vec![1.0, 2.0]).is_err());
        assert!(RowMatrix::from_vectors(&[]).is_err());
        assert!(RowMatrix::from_vectors(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_vectors_and_iter() {
        let m = RowMatrix::from_vectors(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let collected: Vec<_> = m.iter().map(|(i, v)| (i, v.to_vec())).collect();
        assert_eq!(collected, vec![(0, vec![1.0, 2.0]), (1, vec![3.0, 4.0])]);
        assert_eq!(m.data().len(), 4);
    }
}
