//! Physical operators over dimensional fragments.
//!
//! These are the free-standing kernels the BOND engine and the MIL-like plan
//! interpreter are built from: `kfetch` (the k-th largest/smallest element of
//! a score column), `uselect` (unary range select producing qualifying row
//! ids), positional gathers and the element-wise maps `[min]` / `[+]` of the
//! multi-join map construct in Section 6.1.

use crate::bitmap::Bitmap;
use crate::error::{Result, VdError};
use crate::topk::{TopKLargest, TopKSmallest};
use crate::RowId;

/// Returns the k-th **largest** value of `values` (1-based k), using a
/// bounded heap with worst-case cost `O(n log k)` — the `kfetch` operator.
pub fn kfetch_largest(values: &[f64], k: usize) -> Result<f64> {
    if k == 0 || k > values.len() {
        return Err(VdError::InvalidK { k, rows: values.len() });
    }
    let mut heap = TopKLargest::new(k);
    for (i, &v) in values.iter().enumerate() {
        heap.push(i as RowId, v);
    }
    heap.kth().ok_or(VdError::InvalidK { k, rows: values.len() })
}

/// Returns the k-th **smallest** value of `values` (1-based k).
pub fn kfetch_smallest(values: &[f64], k: usize) -> Result<f64> {
    if k == 0 || k > values.len() {
        return Err(VdError::InvalidK { k, rows: values.len() });
    }
    let mut heap = TopKSmallest::new(k);
    for (i, &v) in values.iter().enumerate() {
        heap.push(i as RowId, v);
    }
    heap.kth().ok_or(VdError::InvalidK { k, rows: values.len() })
}

/// Variant of [`kfetch_largest`] restricted to the rows set in `candidates`.
pub fn kfetch_largest_masked(values: &[f64], candidates: &Bitmap, k: usize) -> Result<f64> {
    let live = candidates.count();
    if k == 0 || k > live {
        return Err(VdError::InvalidK { k, rows: live });
    }
    let mut heap = TopKLargest::new(k);
    for row in candidates.iter() {
        heap.push(row, values[row as usize]);
    }
    heap.kth().ok_or(VdError::InvalidK { k, rows: live })
}

/// Variant of [`kfetch_smallest`] restricted to the rows set in `candidates`.
pub fn kfetch_smallest_masked(values: &[f64], candidates: &Bitmap, k: usize) -> Result<f64> {
    let live = candidates.count();
    if k == 0 || k > live {
        return Err(VdError::InvalidK { k, rows: live });
    }
    let mut heap = TopKSmallest::new(k);
    for row in candidates.iter() {
        heap.push(row, values[row as usize]);
    }
    heap.kth().ok_or(VdError::InvalidK { k, rows: live })
}

/// Unary range select: the row ids whose value lies in `[lo, hi]`
/// (inclusive on both ends, like MIL's `uselect(lo, hi)`).
pub fn uselect(values: &[f64], lo: f64, hi: f64) -> Vec<RowId> {
    values
        .iter()
        .enumerate()
        .filter_map(|(i, &v)| (v >= lo && v <= hi).then_some(i as RowId))
        .collect()
}

/// Range select returning a bitmap instead of a materialised id list — the
/// representation BOND uses while selectivity is still low (Section 6.1).
pub fn uselect_bitmap(values: &[f64], lo: f64, hi: f64) -> Bitmap {
    let mut b = Bitmap::new(values.len());
    for (i, &v) in values.iter().enumerate() {
        if v >= lo && v <= hi {
            b.set(i as RowId);
        }
    }
    b
}

/// Range select restricted to rows already present in `candidates`; clears
/// candidates falling outside `[lo, hi]` in place.
pub fn uselect_refine(values: &[f64], candidates: &mut Bitmap, lo: f64, hi: f64) {
    let mut pruned: Vec<RowId> = Vec::new();
    for row in candidates.iter() {
        let v = values[row as usize];
        if v < lo || v > hi {
            pruned.push(row);
        }
    }
    for row in pruned {
        candidates.clear(row);
    }
}

/// Element-wise `min(values[i], constant)` — the `[min](Hi, const q_i)`
/// multi-join map of step 1.
pub fn map_min_const(values: &[f64], constant: f64) -> Vec<f64> {
    values.iter().map(|&v| v.min(constant)).collect()
}

/// Element-wise addition of several equally long arrays — the `[+]`
/// multi-join map of step 1. Returns an error when the arrays disagree in
/// length or no array is given.
pub fn map_add(arrays: &[&[f64]]) -> Result<Vec<f64>> {
    let first = arrays.first().ok_or(VdError::Empty("array list"))?;
    let len = first.len();
    for a in arrays {
        if a.len() != len {
            return Err(VdError::LengthMismatch { expected: len, actual: a.len() });
        }
    }
    let mut out = vec![0.0; len];
    for a in arrays {
        for (o, &v) in out.iter_mut().zip(*a) {
            *o += v;
        }
    }
    Ok(out)
}

/// Accumulates `acc[i] += values[i]` in place (the incremental form of
/// `[+]` the engine uses to avoid re-summing every processed dimension).
pub fn accumulate(acc: &mut [f64], values: &[f64]) -> Result<()> {
    if acc.len() != values.len() {
        return Err(VdError::LengthMismatch { expected: acc.len(), actual: values.len() });
    }
    for (a, &v) in acc.iter_mut().zip(values) {
        *a += v;
    }
    Ok(())
}

/// Positional gather: `values[rows[i]]` for every i (step 3's positional
/// join of the candidate list against a remaining fragment).
pub fn gather(values: &[f64], rows: &[RowId]) -> Vec<f64> {
    rows.iter().map(|&r| values[r as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kfetch_largest_matches_sort() {
        let v = vec![0.1, 0.85, 0.9, 0.8, 0.35, 0.7, 0.15, 0.6];
        assert_eq!(kfetch_largest(&v, 1).unwrap(), 0.9);
        assert_eq!(kfetch_largest(&v, 3).unwrap(), 0.8);
        assert_eq!(kfetch_largest(&v, 8).unwrap(), 0.1);
        assert!(kfetch_largest(&v, 0).is_err());
        assert!(kfetch_largest(&v, 9).is_err());
    }

    #[test]
    fn kfetch_smallest_matches_sort() {
        let v = vec![5.0, 2.0, 9.0, 1.0];
        assert_eq!(kfetch_smallest(&v, 1).unwrap(), 1.0);
        assert_eq!(kfetch_smallest(&v, 2).unwrap(), 2.0);
        assert_eq!(kfetch_smallest(&v, 4).unwrap(), 9.0);
        assert!(kfetch_smallest(&[], 1).is_err());
    }

    #[test]
    fn masked_kfetch_only_sees_candidates() {
        let v = vec![0.9, 0.1, 0.8, 0.2, 0.7];
        let mask = Bitmap::from_rows(5, &[1, 3, 4]);
        assert_eq!(kfetch_largest_masked(&v, &mask, 1).unwrap(), 0.7);
        assert_eq!(kfetch_largest_masked(&v, &mask, 3).unwrap(), 0.1);
        assert_eq!(kfetch_smallest_masked(&v, &mask, 1).unwrap(), 0.1);
        assert!(kfetch_largest_masked(&v, &mask, 4).is_err());
    }

    #[test]
    fn uselect_variants_agree() {
        let v = vec![0.55, 0.2, 0.7, 0.75, 0.3];
        let ids = uselect(&v, 0.55, 1.0);
        assert_eq!(ids, vec![0, 2, 3]);
        let bm = uselect_bitmap(&v, 0.55, 1.0);
        assert_eq!(bm.to_rows(), ids);

        let mut cand = Bitmap::from_rows(5, &[0, 1, 2]);
        uselect_refine(&v, &mut cand, 0.55, 1.0);
        assert_eq!(cand.to_rows(), vec![0, 2]);
    }

    #[test]
    fn maps_and_accumulate() {
        let h = vec![0.3, 0.8, 0.05];
        assert_eq!(map_min_const(&h, 0.25), vec![0.25, 0.25, 0.05]);

        let a = vec![1.0, 2.0];
        let b = vec![0.5, 0.5];
        assert_eq!(map_add(&[&a, &b]).unwrap(), vec![1.5, 2.5]);
        assert!(map_add(&[]).is_err());
        assert!(map_add(&[&a, &[1.0]]).is_err());

        let mut acc = vec![1.0, 1.0];
        accumulate(&mut acc, &[0.25, 0.75]).unwrap();
        assert_eq!(acc, vec![1.25, 1.75]);
        assert!(accumulate(&mut acc, &[1.0]).is_err());
    }

    #[test]
    fn gather_is_positional() {
        let v = vec![9.0, 8.0, 7.0];
        assert_eq!(gather(&v, &[2, 2, 0]), vec![7.0, 7.0, 9.0]);
    }
}
