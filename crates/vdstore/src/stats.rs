//! Dataset statistics.
//!
//! Figure 2 of the paper plots, for the Corel HSV histogram collection,
//! (a) the mean value of each bin and (b) the average distribution of values
//! within a histogram when sorted in decreasing order — showing a Zipfian
//! shape. These statistics justify the "decreasing value in q" dimension
//! ordering heuristic of Section 5.1. This module computes them, plus the
//! per-column summary statistics the ordering strategies can use.

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::table::DecomposedTable;

/// Summary statistics of one dimensional fragment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Skewness (third standardized moment, 0 for symmetric data).
    pub skewness: f64,
}

impl ColumnStats {
    /// Computes the statistics of a column. Returns `None` for an empty
    /// column.
    pub fn compute(column: &Column) -> Option<Self> {
        Self::compute_slice(column.name(), column.values())
    }

    /// Computes the statistics of a raw value slice (e.g. a segment's view
    /// of a column). Returns `None` for an empty slice.
    pub fn compute_slice(name: &str, values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            let d = v - mean;
            m2 += d * d;
            m3 += d * d * d;
            min = min.min(v);
            max = max.max(v);
        }
        let variance = m2 / n;
        let skewness = if variance > 0.0 { (m3 / n) / variance.powf(1.5) } else { 0.0 };
        Some(ColumnStats { name: name.to_string(), min, max, mean, variance, skewness })
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Collection-level statistics of a decomposed table (Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Mean value per dimension (bin), in dimension order — the upper plot
    /// of Figure 2.
    pub mean_per_dim: Vec<f64>,
    /// Average sorted (decreasing) value distribution within a vector — the
    /// lower plot of Figure 2. Entry `j` is the mean of the `(j+1)`-th
    /// largest coefficient over all vectors.
    pub mean_sorted_profile: Vec<f64>,
    /// Per-dimension summary statistics.
    pub per_column: Vec<ColumnStats>,
    /// Mean of the per-row sums `T(x)` (≈ 1 for normalized histograms).
    pub mean_row_sum: f64,
}

impl DatasetStats {
    /// Computes the statistics of a table.
    pub fn compute(table: &DecomposedTable) -> Self {
        let dims = table.dims();
        let rows = table.rows();
        let per_column: Vec<ColumnStats> = table
            .columns()
            .iter()
            .map(|c| ColumnStats::compute(c).expect("table columns are non-empty"))
            .collect();
        let mean_per_dim = per_column.iter().map(|s| s.mean).collect();

        let mut profile = vec![0.0; dims];
        let mut sum_of_sums = 0.0;
        for r in 0..rows {
            let mut row = table.row(r as u32).expect("row in range");
            sum_of_sums += row.iter().sum::<f64>();
            row.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            for (p, v) in profile.iter_mut().zip(row) {
                *p += v;
            }
        }
        let n = rows.max(1) as f64;
        for p in &mut profile {
            *p /= n;
        }
        DatasetStats {
            mean_per_dim,
            mean_sorted_profile: profile,
            per_column,
            mean_row_sum: sum_of_sums / n,
        }
    }

    /// A crude measure of how Zipfian the average per-vector value profile
    /// is: the fraction of a vector's total mass carried by the top
    /// `top_fraction` of its dimensions. Skewed (Zipfian) data yields values
    /// close to 1; uniform data yields ≈ `top_fraction`.
    pub fn mass_concentration(&self, top_fraction: f64) -> f64 {
        let dims = self.mean_sorted_profile.len();
        if dims == 0 {
            return 0.0;
        }
        let top = ((dims as f64 * top_fraction).ceil() as usize).clamp(1, dims);
        let total: f64 = self.mean_sorted_profile.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.mean_sorted_profile.iter().take(top).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::DecomposedTable;

    #[test]
    fn column_stats_basics() {
        let c = Column::new("x", vec![1.0, 2.0, 3.0, 4.0]);
        let s = ColumnStats::compute(&c).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert!((s.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
        assert!(s.skewness.abs() < 1e-9, "symmetric data has ~0 skewness");
        assert!(ColumnStats::compute(&Column::default()).is_none());
    }

    #[test]
    fn skewness_sign() {
        // right-skewed data: many small, one large
        let c = Column::new("x", vec![0.0, 0.0, 0.0, 0.0, 10.0]);
        let s = ColumnStats::compute(&c).unwrap();
        assert!(s.skewness > 0.5);
        // constant column
        let c = Column::new("x", vec![2.0, 2.0]);
        assert_eq!(ColumnStats::compute(&c).unwrap().skewness, 0.0);
    }

    #[test]
    fn dataset_stats_profile_is_sorted_mean() {
        let t = DecomposedTable::from_vectors("h", &[vec![0.7, 0.2, 0.1], vec![0.1, 0.6, 0.3]])
            .unwrap();
        let s = DatasetStats::compute(&t);
        assert_eq!(s.mean_per_dim.len(), 3);
        assert!((s.mean_per_dim[0] - 0.4).abs() < 1e-12);
        // sorted profiles: [0.7,0.2,0.1] and [0.6,0.3,0.1] -> mean [0.65,0.25,0.1]
        assert!((s.mean_sorted_profile[0] - 0.65).abs() < 1e-12);
        assert!((s.mean_sorted_profile[1] - 0.25).abs() < 1e-12);
        assert!((s.mean_sorted_profile[2] - 0.1).abs() < 1e-12);
        assert!((s.mean_row_sum - 1.0).abs() < 1e-12);
        // profile is non-increasing
        for w in s.mean_sorted_profile.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn mass_concentration_detects_skew() {
        let skewed = DecomposedTable::from_vectors(
            "s",
            &[vec![0.9, 0.05, 0.03, 0.02], vec![0.85, 0.1, 0.03, 0.02]],
        )
        .unwrap();
        let uniform = DecomposedTable::from_vectors("u", &[vec![0.25; 4], vec![0.25; 4]]).unwrap();
        let cs = DatasetStats::compute(&skewed).mass_concentration(0.25);
        let cu = DatasetStats::compute(&uniform).mass_concentration(0.25);
        assert!(cs > 0.8);
        assert!((cu - 0.25).abs() < 1e-9);
    }
}
