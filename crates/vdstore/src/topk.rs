//! Bounded top-k heaps.
//!
//! The MIL program of Section 6.1 uses a `kfetch` operator that selects the
//! k-th largest element "using a priority queue implemented as a heap, with
//! worst-case cost O(n log k)". These two types are that priority queue, for
//! the two directions BOND needs: k largest (similarity metrics) and
//! k smallest (distance metrics). The sequential-scan baselines use the same
//! structures to maintain "an array with the best k answers so far".

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::RowId;

/// A scored row, ordered by score then row id (for deterministic ties).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// The row this score belongs to.
    pub row: RowId,
    /// The score (similarity or distance, depending on context).
    pub score: f64,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.row.cmp(&other.row))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Keeps the `k` largest scores seen so far (a min-heap of size ≤ k).
#[derive(Debug, Clone)]
pub struct TopKLargest {
    k: usize,
    // BinaryHeap is a max-heap; store reversed entries so the *smallest*
    // retained score sits at the top and can be evicted in O(log k).
    heap: BinaryHeap<std::cmp::Reverse<Scored>>,
}

impl TopKLargest {
    /// Creates a collector for the `k` largest scores. `k` must be > 0.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopKLargest { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers a scored row; it is retained only if it belongs to the top k.
    #[inline]
    pub fn push(&mut self, row: RowId, score: f64) {
        let item = std::cmp::Reverse(Scored { row, score });
        if self.heap.len() < self.k {
            self.heap.push(item);
        } else if let Some(top) = self.heap.peek() {
            if item < *top {
                self.heap.pop();
                self.heap.push(item);
            }
        }
    }

    /// Number of retained entries (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The k-th largest score seen so far (the weakest retained entry), or
    /// `None` when fewer than `k` entries have been offered.
    ///
    /// This is κ_min of the paper when fed with lower bounds `S_min`.
    pub fn kth(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|r| r.0.score)
        }
    }

    /// The weakest retained score even when fewer than `k` entries are held.
    pub fn weakest(&self) -> Option<f64> {
        self.heap.peek().map(|r| r.0.score)
    }

    /// Drains the collector into a vector sorted by descending score.
    pub fn into_sorted_vec(self) -> Vec<Scored> {
        let mut v: Vec<Scored> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
}

/// Keeps the `k` smallest scores seen so far (a max-heap of size ≤ k).
#[derive(Debug, Clone)]
pub struct TopKSmallest {
    k: usize,
    heap: BinaryHeap<Scored>,
}

impl TopKSmallest {
    /// Creates a collector for the `k` smallest scores. `k` must be > 0.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopKSmallest { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers a scored row; it is retained only if it belongs to the k
    /// smallest.
    #[inline]
    pub fn push(&mut self, row: RowId, score: f64) {
        let item = Scored { row, score };
        if self.heap.len() < self.k {
            self.heap.push(item);
        } else if let Some(top) = self.heap.peek() {
            if item < *top {
                self.heap.pop();
                self.heap.push(item);
            }
        }
    }

    /// Number of retained entries (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The k-th smallest score seen so far, or `None` when fewer than `k`
    /// entries have been offered.
    ///
    /// This is κ_max of the paper when fed with upper bounds `S_max`.
    pub fn kth(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|s| s.score)
        }
    }

    /// The weakest retained score even when fewer than `k` entries are held.
    pub fn weakest(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.score)
    }

    /// Drains the collector into a vector sorted by ascending score.
    pub fn into_sorted_vec(self) -> Vec<Scored> {
        let mut v: Vec<Scored> = self.heap.into_iter().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_largest_keeps_largest() {
        let mut t = TopKLargest::new(3);
        assert!(t.is_empty());
        assert_eq!(t.kth(), None);
        for (i, s) in [0.1, 0.9, 0.3, 0.8, 0.2, 0.7].into_iter().enumerate() {
            t.push(i as RowId, s);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.kth(), Some(0.7));
        let sorted = t.into_sorted_vec();
        let scores: Vec<f64> = sorted.iter().map(|s| s.score).collect();
        assert_eq!(scores, vec![0.9, 0.8, 0.7]);
    }

    #[test]
    fn top_k_smallest_keeps_smallest() {
        let mut t = TopKSmallest::new(2);
        for (i, s) in [5.0, 1.0, 3.0, 0.5, 4.0].into_iter().enumerate() {
            t.push(i as RowId, s);
        }
        assert_eq!(t.kth(), Some(1.0));
        let sorted = t.into_sorted_vec();
        let rows: Vec<RowId> = sorted.iter().map(|s| s.row).collect();
        assert_eq!(rows, vec![3, 1]);
    }

    #[test]
    fn kth_requires_k_entries() {
        let mut t = TopKLargest::new(5);
        t.push(0, 1.0);
        assert_eq!(t.kth(), None);
        assert_eq!(t.weakest(), Some(1.0));
        let mut t = TopKSmallest::new(5);
        t.push(0, 1.0);
        assert_eq!(t.kth(), None);
        assert_eq!(t.weakest(), Some(1.0));
    }

    #[test]
    fn ties_are_deterministic() {
        let mut a = TopKLargest::new(2);
        let mut b = TopKLargest::new(2);
        for (i, s) in [0.5, 0.5, 0.5, 0.5].into_iter().enumerate() {
            a.push(i as RowId, s);
            b.push(i as RowId, s);
        }
        assert_eq!(a.into_sorted_vec(), b.into_sorted_vec());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopKLargest::new(0);
    }

    #[test]
    fn scored_ordering() {
        let a = Scored { row: 1, score: 0.3 };
        let b = Scored { row: 2, score: 0.3 };
        let c = Scored { row: 0, score: 0.9 };
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
