//! Error type shared by the storage layer.

use std::fmt;

/// Errors produced by the vertically decomposed store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VdError {
    /// A vector with the wrong number of dimensions was supplied.
    DimensionMismatch {
        /// Number of dimensions the table stores.
        expected: usize,
        /// Number of dimensions of the offending vector.
        actual: usize,
    },
    /// Columns of unequal length were combined into one table.
    LengthMismatch {
        /// Length of the first column.
        expected: usize,
        /// Length of the offending column.
        actual: usize,
    },
    /// A row id outside the table was referenced.
    RowOutOfBounds {
        /// The offending row id.
        row: u32,
        /// Number of rows in the table.
        rows: usize,
    },
    /// A dimension index outside the table was referenced.
    DimOutOfBounds {
        /// The offending dimension index.
        dim: usize,
        /// Number of dimensions in the table.
        dims: usize,
    },
    /// An empty collection was supplied where at least one element is needed.
    Empty(&'static str),
    /// `k` larger than the collection, zero, or otherwise unusable.
    InvalidK {
        /// The requested k.
        k: usize,
        /// Number of rows available.
        rows: usize,
    },
    /// The persisted byte stream is malformed.
    Corrupt(String),
    /// An operating-system I/O or memory-mapping operation failed.
    Io(String),
    /// A persisted fragment's content no longer matches its stored
    /// checksum (bit rot, torn write, or out-of-band modification).
    ChecksumMismatch {
        /// Name of the affected column.
        column: String,
        /// The checksum recorded in the store footer.
        expected: u64,
        /// The checksum computed over the fragment's current bytes.
        actual: u64,
    },
    /// A persisted store was written by a format version this build does
    /// not read.
    UnsupportedVersion {
        /// Version number found in the file's magic.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// Invalid quantization parameters (e.g. zero bits or more than 16).
    InvalidQuantization(String),
    /// Invalid argument with a human-readable description.
    InvalidArgument(String),
}

impl fmt::Display for VdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VdError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: table has {expected} dims, vector has {actual}")
            }
            VdError::LengthMismatch { expected, actual } => {
                write!(f, "column length mismatch: expected {expected}, got {actual}")
            }
            VdError::RowOutOfBounds { row, rows } => {
                write!(f, "row {row} out of bounds (table has {rows} rows)")
            }
            VdError::DimOutOfBounds { dim, dims } => {
                write!(f, "dimension {dim} out of bounds (table has {dims} dims)")
            }
            VdError::Empty(what) => write!(f, "{what} must not be empty"),
            VdError::InvalidK { k, rows } => {
                write!(f, "invalid k = {k} for a collection of {rows} rows")
            }
            VdError::Corrupt(msg) => write!(f, "corrupt persisted table: {msg}"),
            VdError::ChecksumMismatch { column, expected, actual } => {
                write!(
                    f,
                    "fragment checksum mismatch in column {column:?}: \
                     stored {expected:#018x}, computed {actual:#018x}"
                )
            }
            VdError::Io(msg) => write!(f, "io error: {msg}"),
            VdError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported store format version {found} (this build reads up to {supported})"
                )
            }
            VdError::InvalidQuantization(msg) => write!(f, "invalid quantization: {msg}"),
            VdError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for VdError {}

/// Convenience result alias for the storage layer.
pub type Result<T> = std::result::Result<T, VdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = VdError::DimensionMismatch { expected: 166, actual: 64 };
        assert!(e.to_string().contains("166"));
        assert!(e.to_string().contains("64"));

        let e = VdError::RowOutOfBounds { row: 12, rows: 10 };
        assert!(e.to_string().contains("12"));

        let e = VdError::InvalidK { k: 0, rows: 5 };
        assert!(e.to_string().contains("k = 0"));

        let e = VdError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));

        let e = VdError::Io("mmap failed".into());
        assert!(e.to_string().contains("mmap failed"));

        let e = VdError::ChecksumMismatch { column: "dim_3".into(), expected: 1, actual: 2 };
        assert!(e.to_string().contains("dim_3"));
        assert!(e.to_string().contains("checksum"));

        let e = VdError::UnsupportedVersion { found: 9, supported: 2 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error(_e: &dyn std::error::Error) {}
        takes_std_error(&VdError::Empty("columns"));
    }
}
