//! Candidate-set bitmaps.
//!
//! Section 6.1 of the paper notes that in the early BOND iterations — when
//! selectivity is still low — materialising the surviving candidates as new
//! base tables copies too much data; instead a bitmap over the (dense) row
//! identifiers marks the pruned vectors. The same bitmap doubles as the
//! tombstone structure for deleted rows (Section 6.2) and as the carrier of
//! prior relational predicates ("photographs taken in 1992") combined with
//! the k-NN search.

use serde::{Deserialize, Serialize};

use crate::RowId;

/// A fixed-length bitset over dense row identifiers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

const WORD_BITS: usize = 64;

impl Bitmap {
    /// Creates a bitmap of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Bitmap { len, words: vec![0; len.div_ceil(WORD_BITS)] }
    }

    /// Creates a bitmap of `len` bits, all set.
    pub fn full(len: usize) -> Self {
        let mut b = Bitmap { len, words: vec![u64::MAX; len.div_ceil(WORD_BITS)] };
        b.clear_trailing();
        b
    }

    /// Creates a bitmap with exactly the given rows set.
    pub fn from_rows(len: usize, rows: &[RowId]) -> Self {
        let mut b = Bitmap::new(len);
        for &r in rows {
            b.set(r);
        }
        b
    }

    fn clear_trailing(&mut self) {
        let used = self.len % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap addresses zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit for `row`.
    #[inline]
    pub fn set(&mut self, row: RowId) {
        let row = row as usize;
        debug_assert!(row < self.len);
        self.words[row / WORD_BITS] |= 1u64 << (row % WORD_BITS);
    }

    /// Clears the bit for `row`.
    #[inline]
    pub fn clear(&mut self, row: RowId) {
        let row = row as usize;
        debug_assert!(row < self.len);
        self.words[row / WORD_BITS] &= !(1u64 << (row % WORD_BITS));
    }

    /// Tests the bit for `row`.
    #[inline]
    pub fn get(&self, row: RowId) -> bool {
        let row = row as usize;
        debug_assert!(row < self.len);
        self.words[row / WORD_BITS] & (1u64 << (row % WORD_BITS)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets every bit.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.clear_trailing();
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if the bitmaps have different lengths.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the bitmaps have different lengths.
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place complement (within the addressed length).
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_trailing();
    }

    /// In-place difference: clears every bit that is set in `other`.
    ///
    /// # Panics
    /// Panics if the bitmaps have different lengths.
    pub fn and_not_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Iterates over the set rows in ascending order.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter { bitmap: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Materialises the set rows into a vector (the "switch to positional
    /// joins" moment of Section 6.1).
    pub fn to_rows(&self) -> Vec<RowId> {
        self.iter().collect()
    }

    /// Extracts the bits of `range` into a new bitmap of length
    /// `range.len()` (bit `i` of the result is bit `range.start + i` of
    /// `self`). Word-wise: O(range.len() / 64).
    ///
    /// # Panics
    /// Panics if the range exceeds the bitmap's length.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bitmap {
        assert!(range.start <= range.end && range.end <= self.len, "slice out of range");
        let len = range.end - range.start;
        let mut out = Bitmap::new(len);
        let shift = range.start % WORD_BITS;
        let first_word = range.start / WORD_BITS;
        for (i, w) in out.words.iter_mut().enumerate() {
            let lo = self.words.get(first_word + i).copied().unwrap_or(0) >> shift;
            let hi = if shift == 0 {
                0
            } else {
                self.words.get(first_word + i + 1).copied().unwrap_or(0) << (WORD_BITS - shift)
            };
            *w = lo | hi;
        }
        out.clear_trailing();
        out
    }

    /// Number of bits set in both `self` and `other` — `(a & b).count()`
    /// without materialising the intersection. The engine uses this to
    /// price and skip filtered segment scans (eligible = filter ∧ live).
    ///
    /// # Panics
    /// Panics if the bitmaps have different lengths.
    pub fn intersection_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Fraction of set bits, in `[0, 1]`; `0` for an empty bitmap.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count() as f64 / self.len as f64
        }
    }
}

/// Iterator over the set rows of a [`Bitmap`].
pub struct BitmapIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = RowId;

    fn next(&mut self) -> Option<RowId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx * WORD_BITS + bit) as RowId);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a Bitmap {
    type Item = RowId;
    type IntoIter = BitmapIter<'a>;

    fn into_iter(self) -> BitmapIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_extracts_ranges_across_word_boundaries() {
        let rows: Vec<RowId> = vec![0, 3, 63, 64, 65, 100, 127, 128, 199];
        let b = Bitmap::from_rows(200, &rows);
        for range in [0..200, 0..64, 1..200, 63..66, 60..140, 128..129, 199..200, 70..70] {
            let s = b.slice(range.clone());
            assert_eq!(s.len(), range.len());
            let expected: Vec<RowId> = rows
                .iter()
                .filter(|&&r| range.contains(&(r as usize)))
                .map(|&r| r - range.start as RowId)
                .collect();
            assert_eq!(s.to_rows(), expected, "range {range:?}");
        }
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_rejects_out_of_range() {
        let _ = Bitmap::new(10).slice(5..11);
    }

    #[test]
    fn new_full_and_count() {
        let b = Bitmap::new(100);
        assert_eq!(b.len(), 100);
        assert_eq!(b.count(), 0);
        let f = Bitmap::full(100);
        assert_eq!(f.count(), 100);
        assert!(f.get(0) && f.get(99));
        // bits past the logical length stay clear
        let f = Bitmap::full(65);
        assert_eq!(f.count(), 65);
    }

    #[test]
    fn set_clear_get() {
        let mut b = Bitmap::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn iteration_order_and_to_rows() {
        let rows = vec![3, 64, 65, 127, 128];
        let b = Bitmap::from_rows(200, &rows);
        assert_eq!(b.to_rows(), rows);
        assert_eq!(b.iter().count(), 5);
    }

    #[test]
    fn boolean_algebra() {
        let mut a = Bitmap::from_rows(10, &[1, 2, 3]);
        let b = Bitmap::from_rows(10, &[2, 3, 4]);
        let mut u = a.clone();
        u.or_with(&b);
        assert_eq!(u.to_rows(), vec![1, 2, 3, 4]);
        a.and_with(&b);
        assert_eq!(a.to_rows(), vec![2, 3]);
        a.and_not_with(&Bitmap::from_rows(10, &[3]));
        assert_eq!(a.to_rows(), vec![2]);
    }

    #[test]
    fn negate_respects_length() {
        let mut b = Bitmap::from_rows(70, &[0, 69]);
        b.negate();
        assert_eq!(b.count(), 68);
        assert!(!b.get(0) && !b.get(69) && b.get(1));
    }

    #[test]
    fn set_all_clear_all_density() {
        let mut b = Bitmap::new(64);
        assert_eq!(b.density(), 0.0);
        b.set_all();
        assert_eq!(b.count(), 64);
        assert_eq!(b.density(), 1.0);
        b.clear_all();
        assert_eq!(b.count(), 0);
        assert_eq!(Bitmap::new(0).density(), 0.0);
    }

    #[test]
    fn intersection_count_matches_materialised_and() {
        let a = Bitmap::from_rows(130, &[0, 3, 64, 65, 127, 129]);
        let b = Bitmap::from_rows(130, &[3, 64, 100, 129]);
        assert_eq!(a.intersection_count(&b), 3);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.count(), a.intersection_count(&b));
        assert_eq!(a.intersection_count(&Bitmap::new(130)), 0);
    }

    #[test]
    #[should_panic(expected = "bitmap length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = Bitmap::new(10);
        let b = Bitmap::new(11);
        a.and_with(&b);
    }
}
