//! Binary persistence of decomposed tables.
//!
//! Two formats live here:
//!
//! * **v1 (`BONDVD01`)** — the original table-only stream: header, columns,
//!   tombstones. Kept for compatibility ([`table_to_bytes`] /
//!   [`table_from_bytes`] and the file wrappers).
//! * **v2 (`BONDVD02`)** — the *persistent segment store*: the same
//!   contiguous column fragments, 8-byte aligned so they can be viewed
//!   in-place through a file mapping, plus a **stats/zone-map footer**
//!   carrying the partition boundaries ([`SegmentSpec`]s) and the
//!   per-segment statistics ([`SegmentStats`]: per-dimension envelopes,
//!   row-sum ranges, live-row counts) a search planner needs *before* any
//!   data page is faulted in. A trailer at the end of the file locates the
//!   footer, so a cold open reads header + footer + trailer only — the
//!   fragments stay untouched until a search scans them.
//!
//! v2 layout (all integers little-endian):
//!
//! ```text
//! header  : magic 8 bytes = b"BONDVD02"
//!           name_len u32, name bytes (UTF-8)
//!           dims u32, rows u64
//!           zero padding to the next 8-byte boundary
//! data    : dims fragments, each rows * f64 — column after column,
//!           contiguous, every fragment 8-byte aligned
//! footer  : per column: name_len u32, name bytes
//!           n_deleted u32, n_deleted * u32 ascending row ids
//!           n_segments u32, per segment:
//!             start u64, len u64, live_rows u64
//!             row_sum_min f64, row_sum_max f64, row_sum_mean f64
//!             per dim: flag u8 (1 = stats follow):
//!               min f64, max f64, mean f64, variance f64, skewness f64
//!           per dim: fragment checksum u64 (FNV-1a over the fragment's
//!             bytes in the data region)
//!           learned_len u32, learned bytes (opaque learned-state payload,
//!             e.g. an engine's accumulated plan feedback; 0 = none)
//!           codes section (optional — present iff any footer bytes remain
//!             before the footer checksum; stores written without codes are
//!             byte-identical to the pre-codes format):
//!             bits u8 (1..=8)
//!             per segment, per dim: code grid min f64, max f64
//!             per dim: rows bytes of u8 cell codes, segment windows
//!               encoded with that segment's grid
//!             per dim: code checksum u64 (FNV-1a over the dim's code bytes)
//!           footer checksum u64 (FNV-1a over all preceding footer bytes)
//! trailer : footer_offset u64, tail magic 8 bytes = b"BONDFT02"
//! ```
//!
//! Fragment checksums are verified on heap opens (every fragment is being
//! decoded anyway) and, for mapped opens, on copy-on-write promotion — the
//! one moment corrupted mapped bytes would silently become the new heap
//! truth — surfacing as the typed [`VdError::ChecksumMismatch`]. The
//! footer itself (whose statistics and envelopes drive planning and
//! whole-segment skipping with no later cross-check) carries its own
//! checksum, verified on every open: the footer is read eagerly anyway,
//! so that check costs nothing extra.
//!
//! Note the checksum and learned-state sections extended the v2 footer *in
//! place* (the magic stays `BONDVD02`): this workspace owns both ends of
//! the format and regenerates its stores, so no version bump was spent on
//! the change — but a store written before the extension parses as
//! `Corrupt` (truncated checksum section), not `UnsupportedVersion`.
//! Readers that must bridge that gap should bump to `BONDVD03`.
//!
//! The segments must tile `0..rows` in row order — the invariant the
//! execution engine's merge relies on — and every structural violation
//! (bad magic, truncation, trailing bytes, overflowing counts, out-of-range
//! rows) surfaces as a typed [`VdError`], never a panic.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bitmap::Bitmap;
use crate::checksum::{fnv1a, fnv1a_f64, fnv1a_update, FNV_OFFSET};
use crate::codes::{CodeColumn, CodeParams, StoreCodes};
use crate::column::{Column, ColumnData};
use crate::error::{Result, VdError};
use crate::mmap::{MappedRegion, StorageBackend};
use crate::segment::{SegmentSpec, SegmentStats};
use crate::stats::ColumnStats;
use crate::table::DecomposedTable;
use crate::RowId;
use std::path::Path;

const MAGIC: &[u8; 8] = b"BONDVD01";
const MAGIC_V2: &[u8; 8] = b"BONDVD02";
const MAGIC_PREFIX: &[u8; 6] = b"BONDVD";
const TAIL_MAGIC_V2: &[u8; 8] = b"BONDFT02";
const TRAILER_LEN: usize = 16;
/// Newest store format version this build reads.
pub const STORE_VERSION: u32 = 2;

/// Serialises a table into a byte buffer (format v1, table only).
pub fn table_to_bytes(table: &DecomposedTable) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + table.rows() * table.dims() * 8);
    buf.put_slice(MAGIC);
    put_string(&mut buf, table.name());
    buf.put_u32_le(table.dims() as u32);
    buf.put_u64_le(table.rows() as u64);
    for c in table.columns() {
        put_string(&mut buf, c.name());
        for &v in c.values() {
            buf.put_f64_le(v);
        }
    }
    // tombstones: store as the list of deleted row ids (usually tiny)
    let deleted: Vec<u32> = (0..table.rows() as u32).filter(|&r| table.is_deleted(r)).collect();
    buf.put_u32_le(deleted.len() as u32);
    for r in deleted {
        buf.put_u32_le(r);
    }
    buf.freeze()
}

/// Reconstructs a table from a byte buffer produced by [`table_to_bytes`].
pub fn table_from_bytes(bytes: &[u8]) -> Result<DecomposedTable> {
    let mut buf = bytes;
    check_magic(&mut buf, MAGIC, 1)?;
    let name = get_string(&mut buf)?;
    if buf.remaining() < 12 {
        return Err(VdError::Corrupt("truncated header".into()));
    }
    let dims = buf.get_u32_le() as usize;
    let rows = checked_rows(buf.get_u64_le())?;
    if dims == 0 {
        return Err(VdError::Corrupt("zero dimensions".into()));
    }
    let column_bytes = rows
        .checked_mul(8)
        .ok_or_else(|| VdError::Corrupt("column byte length overflows".into()))?;
    let mut columns = Vec::with_capacity(dims.min(1024));
    for _ in 0..dims {
        let cname = get_string(&mut buf)?;
        if buf.remaining() < column_bytes {
            return Err(VdError::Corrupt("truncated column data".into()));
        }
        let mut values = Vec::with_capacity(rows);
        for _ in 0..rows {
            values.push(buf.get_f64_le());
        }
        columns.push(Column::new(cname, values));
    }
    let mut table = DecomposedTable::from_columns(name, columns)?;
    if buf.remaining() < 4 {
        return Err(VdError::Corrupt("missing tombstone section".into()));
    }
    let n_deleted = buf.get_u32_le() as usize;
    let tombstone_bytes = n_deleted
        .checked_mul(4)
        .ok_or_else(|| VdError::Corrupt("tombstone byte length overflows".into()))?;
    if buf.remaining() < tombstone_bytes {
        return Err(VdError::Corrupt("truncated tombstone list".into()));
    }
    for _ in 0..n_deleted {
        let r = buf.get_u32_le();
        table.delete(r)?;
    }
    if buf.remaining() != 0 {
        return Err(VdError::Corrupt(format!(
            "{} trailing bytes after the tombstone list",
            buf.remaining()
        )));
    }
    Ok(table)
}

/// Writes a table to a file (format v1).
pub fn save_table(table: &DecomposedTable, path: &Path) -> Result<()> {
    let bytes = table_to_bytes(table);
    std::fs::write(path, &bytes)
        .map_err(|e| VdError::Io(format!("writing {}: {e}", path.display())))
}

/// Reads a table from a file (format v1).
pub fn load_table(path: &Path) -> Result<DecomposedTable> {
    let bytes =
        std::fs::read(path).map_err(|e| VdError::Io(format!("reading {}: {e}", path.display())))?;
    table_from_bytes(&bytes)
}

/// Serialises only the live-row bitmap of a table (useful for persisting the
/// result of a prior selection predicate to combine with k-NN search).
pub fn bitmap_to_bytes(bitmap: &Bitmap) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(bitmap.len() as u64);
    for row in bitmap.iter() {
        buf.put_u32_le(row);
    }
    buf.freeze()
}

/// Reconstructs a bitmap from [`bitmap_to_bytes`] output.
pub fn bitmap_from_bytes(bytes: &[u8]) -> Result<Bitmap> {
    let mut buf = bytes;
    if buf.remaining() < 8 {
        return Err(VdError::Corrupt("bitmap buffer too short".into()));
    }
    let len = checked_rows(buf.get_u64_le())?;
    if !buf.remaining().is_multiple_of(4) {
        return Err(VdError::Corrupt(format!(
            "{} trailing bytes after the last whole row id",
            buf.remaining() % 4
        )));
    }
    let mut b = Bitmap::new(len);
    while buf.remaining() >= 4 {
        let row = buf.get_u32_le();
        if (row as usize) >= len {
            return Err(VdError::Corrupt(format!("bitmap row {row} out of range {len}")));
        }
        b.set(row);
    }
    Ok(b)
}

// ---------------------------------------------------------------------------
// v2: the persistent segment store
// ---------------------------------------------------------------------------

/// A reopened persistent segment store: the table plus the partition
/// boundaries and per-segment statistics its footer carried, ready to feed
/// an execution engine without recomputing anything.
#[derive(Debug, Clone)]
pub struct PersistedStore {
    /// The reopened table (heap- or mapping-backed columns).
    pub table: DecomposedTable,
    /// The persisted partition boundaries, in row order, tiling the table.
    pub specs: Vec<SegmentSpec>,
    /// The persisted per-segment statistics, parallel to `specs`.
    pub stats: Vec<SegmentStats>,
    /// The backend actually serving the column data (a mapped-open request
    /// falls back to [`StorageBackend::Heap`] where mapping is unsupported).
    pub backend: StorageBackend,
    /// The per-fragment FNV-1a checksums from the footer, in dimension
    /// order (verified already for heap opens; carried by the mapped
    /// columns for promotion-time verification).
    pub fragment_checksums: Vec<u64>,
    /// The opaque learned-state payload persisted alongside the footer
    /// (e.g. an engine's accumulated plan feedback), when one was written.
    pub learned: Option<Vec<u8>>,
    /// The per-segment quantized code companions from the footer, when the
    /// store was written with them ([`save_store_with_codes`]) — a cold
    /// open hands the engine's quantized filter its codes without touching
    /// a single exact fragment. Mapped opens expose them zero-copy.
    pub codes: Option<StoreCodes>,
    /// Wall time [`open_store`] (or [`store_from_bytes`]) spent producing
    /// this value, in microseconds — the cold-open cost an engine records
    /// as `store.open.cold_us`. Under [`StorageBackend::Mapped`] this
    /// covers only the eager header/footer work; data pages fault in
    /// lazily afterwards. Zero for hand-assembled stores.
    pub open_micros: u64,
}

/// What one store write cost: returned by [`save_store`] and
/// [`write_store`] so callers (e.g. an engine's `persist`) can feed their
/// observability layer without re-statting the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistReport {
    /// Total bytes written (header + data region + footer + trailer).
    pub bytes_written: u64,
    /// Wall time of the write, in microseconds.
    pub elapsed_micros: u64,
}

/// The v2 header: magic, name, dims, rows, zero-padded to the next 8-byte
/// boundary so the data region (and every fragment in it) stays aligned.
fn store_header(table: &DecomposedTable) -> BytesMut {
    let mut buf = BytesMut::with_capacity(32 + table.name().len());
    buf.put_slice(MAGIC_V2);
    put_string(&mut buf, table.name());
    buf.put_u32_le(table.dims() as u32);
    buf.put_u64_le(table.rows() as u64);
    while !buf.len().is_multiple_of(8) {
        buf.put_u8(0);
    }
    buf
}

/// The v2 footer: column names, tombstones, segment boundaries + stats,
/// per-fragment checksums and the optional learned-state payload.
fn store_footer(
    table: &DecomposedTable,
    specs: &[SegmentSpec],
    stats: &[SegmentStats],
    checksums: &[u64],
    learned: Option<&[u8]>,
    codes: Option<&StoreCodes>,
) -> BytesMut {
    let mut buf = BytesMut::with_capacity(
        64 + specs.len() * (48 + table.dims() * 41)
            + checksums.len() * 8
            + learned.map_or(0, <[u8]>::len)
            + codes.map_or(0, |c| c.rows() * c.dims() + c.n_segments() * c.dims() * 16),
    );
    for c in table.columns() {
        put_string(&mut buf, c.name());
    }
    let deleted: Vec<u32> = (0..table.rows() as u32).filter(|&r| table.is_deleted(r)).collect();
    buf.put_u32_le(deleted.len() as u32);
    for r in deleted {
        buf.put_u32_le(r);
    }
    buf.put_u32_le(specs.len() as u32);
    for (spec, stat) in specs.iter().zip(stats) {
        buf.put_u64_le(spec.start() as u64);
        buf.put_u64_le(spec.len() as u64);
        buf.put_u64_le(stat.live_rows as u64);
        buf.put_f64_le(stat.row_sum_min);
        buf.put_f64_le(stat.row_sum_max);
        buf.put_f64_le(stat.row_sum_mean);
        for per_dim in &stat.per_dim {
            match per_dim {
                Some(s) => {
                    buf.put_u8(1);
                    buf.put_f64_le(s.min);
                    buf.put_f64_le(s.max);
                    buf.put_f64_le(s.mean);
                    buf.put_f64_le(s.variance);
                    buf.put_f64_le(s.skewness);
                }
                None => buf.put_u8(0),
            }
        }
    }
    for &checksum in checksums {
        buf.put_u64_le(checksum);
    }
    let learned = learned.unwrap_or(&[]);
    buf.put_u32_le(learned.len() as u32);
    buf.put_slice(learned);
    if let Some(codes) = codes {
        // One byte of uniform width keeps every pre-adaptive store
        // byte-identical; the 0 sentinel (an invalid width) flags a mixed
        // store and is followed by one width byte per segment.
        match codes.uniform_bits() {
            Some(bits) => buf.put_u8(bits),
            None => {
                buf.put_u8(0);
                for &b in codes.segment_bits() {
                    buf.put_u8(b);
                }
            }
        }
        for si in 0..codes.n_segments() {
            let view = codes.segment_view(si).expect("segment in range");
            for d in 0..codes.dims() {
                let grid = view.params(d);
                buf.put_f64_le(grid.min);
                buf.put_f64_le(grid.max);
            }
        }
        for d in 0..codes.dims() {
            buf.put_slice(codes.dim_codes(d).expect("dim in range"));
        }
        for d in 0..codes.dims() {
            buf.put_u64_le(codes.checksum(d).expect("dim in range"));
        }
    }
    buf
}

/// Serialises a table plus its partition boundaries and cached per-segment
/// statistics into the v2 store format, in memory, computing each
/// fragment's FNV-1a checksum as it is written and embedding `learned` (an
/// opaque learned-state payload, e.g. accumulated plan feedback) in the
/// footer. For large collections prefer [`save_store`], which streams the
/// data region to disk instead of materialising a second copy of every
/// fragment.
///
/// # Errors
///
/// [`VdError::InvalidArgument`] when `stats` is not parallel to `specs`,
/// a stats entry covers a different range than its spec, a stats entry's
/// dimensionality differs from the table's, or the specs do not tile the
/// table's rows in order.
pub fn store_to_bytes(
    table: &DecomposedTable,
    specs: &[SegmentSpec],
    stats: &[SegmentStats],
    learned: Option<&[u8]>,
) -> Result<Bytes> {
    store_to_bytes_with_codes(table, specs, stats, learned, None)
}

/// [`store_to_bytes`] plus an optional quantized-code companion persisted
/// in the footer's codes section. Writing `None` produces bytes identical
/// to [`store_to_bytes`]; the codes must cover exactly this table and these
/// segment boundaries.
pub fn store_to_bytes_with_codes(
    table: &DecomposedTable,
    specs: &[SegmentSpec],
    stats: &[SegmentStats],
    learned: Option<&[u8]>,
    codes: Option<&StoreCodes>,
) -> Result<Bytes> {
    validate_store_inputs(table, specs, stats)?;
    if let Some(codes) = codes {
        validate_codes_inputs(table, specs, codes)?;
    }
    let mut buf = store_header(table);
    let mut checksums = Vec::with_capacity(table.dims());
    for c in table.columns() {
        for &v in c.values() {
            buf.put_f64_le(v);
        }
        checksums.push(fnv1a_f64(c.values()));
    }
    let footer_offset = buf.len() as u64;
    let footer = store_footer(table, specs, stats, &checksums, learned, codes);
    buf.put_slice(&footer);
    buf.put_u64_le(fnv1a(&footer));
    buf.put_u64_le(footer_offset);
    buf.put_slice(TAIL_MAGIC_V2);
    Ok(buf.freeze())
}

/// Writes the v2 store to a file, streaming the data region through a
/// buffered writer — peak extra memory is one I/O buffer plus the footer,
/// not a second copy of the table, so collections near (or beyond, under
/// [`StorageBackend::Mapped`]) RAM size can still be persisted. Fragment
/// checksums are folded incrementally over the streamed chunks. Same
/// validation and byte-exact output as [`store_to_bytes`]. Returns a
/// [`PersistReport`] with the bytes written and the wall time spent.
pub fn save_store(
    table: &DecomposedTable,
    specs: &[SegmentSpec],
    stats: &[SegmentStats],
    learned: Option<&[u8]>,
    path: &Path,
) -> Result<PersistReport> {
    save_store_with_codes(table, specs, stats, learned, None, path)
}

/// [`save_store`] plus an optional quantized-code companion persisted in
/// the footer's codes section — same streaming, same byte-exact agreement
/// with [`store_to_bytes_with_codes`].
pub fn save_store_with_codes(
    table: &DecomposedTable,
    specs: &[SegmentSpec],
    stats: &[SegmentStats],
    learned: Option<&[u8]>,
    codes: Option<&StoreCodes>,
    path: &Path,
) -> Result<PersistReport> {
    use std::io::Write;
    let started = std::time::Instant::now();
    validate_store_inputs(table, specs, stats)?;
    if let Some(codes) = codes {
        validate_codes_inputs(table, specs, codes)?;
    }
    let io_err = |e: std::io::Error| VdError::Io(format!("writing {}: {e}", path.display()));
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = std::io::BufWriter::new(file);
    let header = store_header(table);
    w.write_all(&header).map_err(io_err)?;
    let mut scratch = Vec::with_capacity(8 * 8192);
    let mut checksums = Vec::with_capacity(table.dims());
    for c in table.columns() {
        let mut hash = FNV_OFFSET;
        for chunk in c.values().chunks(8192) {
            scratch.clear();
            for &v in chunk {
                scratch.extend_from_slice(&v.to_le_bytes());
            }
            hash = fnv1a_update(hash, &scratch);
            w.write_all(&scratch).map_err(io_err)?;
        }
        checksums.push(hash);
    }
    let footer_offset = (header.len() + table.rows() * table.dims() * 8) as u64;
    let footer = store_footer(table, specs, stats, &checksums, learned, codes);
    w.write_all(&footer).map_err(io_err)?;
    w.write_all(&fnv1a(&footer).to_le_bytes()).map_err(io_err)?;
    w.write_all(&footer_offset.to_le_bytes()).map_err(io_err)?;
    w.write_all(TAIL_MAGIC_V2).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    let bytes_written = footer_offset + footer.len() as u64 + 16 + TAIL_MAGIC_V2.len() as u64;
    Ok(PersistReport { bytes_written, elapsed_micros: started.elapsed().as_micros() as u64 })
}

/// Partitions the table, computes the per-segment statistics, and writes the
/// v2 store in one call — the convenience entry point for callers that do
/// not already hold cached statistics (the execution engine does, and passes
/// them — plus its learned feedback state — to [`save_store`] directly).
pub fn write_store(
    table: &DecomposedTable,
    partitions: usize,
    path: &Path,
) -> Result<PersistReport> {
    let specs = table.partition_specs(partitions);
    let stats: Vec<SegmentStats> =
        specs.iter().map(|s| s.view(table).expect("spec in range").stats()).collect();
    save_store(table, &specs, &stats, None, path)
}

/// Reconstructs a store from an in-memory v2 byte buffer (heap columns).
/// Every fragment is checksum-verified as it is decoded.
pub fn store_from_bytes(bytes: &[u8]) -> Result<PersistedStore> {
    let started = std::time::Instant::now();
    let layout = parse_layout(bytes)?;
    let rows = layout.rows;
    let columns: Result<Vec<Column>> = layout
        .column_names
        .iter()
        .enumerate()
        .map(|(d, name)| {
            let start = layout.data_offset + d * rows * 8;
            let fragment = &bytes[start..start + rows * 8];
            let actual = fnv1a(fragment);
            if actual != layout.checksums[d] {
                return Err(VdError::ChecksumMismatch {
                    column: name.clone(),
                    expected: layout.checksums[d],
                    actual,
                });
            }
            let mut window = fragment;
            let mut values = Vec::with_capacity(rows);
            for _ in 0..rows {
                values.push(window.get_f64_le());
            }
            Ok(Column::new(name.clone(), values))
        })
        .collect();
    let code_columns = layout.codes.as_ref().map(|c| {
        c.dim_offsets
            .iter()
            .map(|&offset| CodeColumn::from_vec(bytes[offset..offset + rows].to_vec()))
            .collect()
    });
    let mut store = assemble_store(layout, columns?, code_columns, StorageBackend::Heap)?;
    store.open_micros = started.elapsed().as_micros() as u64;
    Ok(store)
}

/// Opens a v2 store file.
///
/// With [`StorageBackend::Mapped`] the column fragments are *viewed* through
/// a read-only file mapping: only the header/footer/trailer pages are read
/// eagerly, the data pages fault in lazily as searches touch them (which is
/// also why checksums are *not* verified here — each mapped fragment
/// carries its expected checksum and verifies on copy-on-write promotion
/// instead). Where mapping is unsupported (non-unix, big-endian) the call
/// transparently falls back to buffered heap reads, which verify every
/// fragment eagerly — [`PersistedStore::backend`] reports what is actually
/// in effect.
pub fn open_store(path: &Path, backend: StorageBackend) -> Result<PersistedStore> {
    let started = std::time::Instant::now();
    if backend == StorageBackend::Mapped && StorageBackend::mapping_supported() {
        let region = MappedRegion::map_file(path)?;
        let layout = parse_layout(region.as_bytes())?;
        let rows = layout.rows;
        let columns: Result<Vec<Column>> = layout
            .column_names
            .iter()
            .enumerate()
            .map(|(d, name)| {
                let data = ColumnData::mapped(
                    region.clone(),
                    layout.data_offset + d * rows * 8,
                    rows,
                    Some(layout.checksums[d]),
                )?;
                Ok(Column::from_data(name.clone(), data))
            })
            .collect();
        let code_columns = match layout.codes.as_ref() {
            Some(c) => Some(
                c.dim_offsets
                    .iter()
                    .map(|&offset| CodeColumn::mapped(region.clone(), offset, rows))
                    .collect::<Result<Vec<_>>>()?,
            ),
            None => None,
        };
        let mut store = assemble_store(layout, columns?, code_columns, StorageBackend::Mapped)?;
        store.open_micros = started.elapsed().as_micros() as u64;
        return Ok(store);
    }
    let bytes =
        std::fs::read(path).map_err(|e| VdError::Io(format!("reading {}: {e}", path.display())))?;
    let mut store = store_from_bytes(&bytes)?;
    store.open_micros = started.elapsed().as_micros() as u64;
    Ok(store)
}

/// Everything the v2 header, footer and trailer describe — parsed and
/// validated without touching a single byte of the data region.
struct StoreLayout {
    name: String,
    rows: usize,
    data_offset: usize,
    column_names: Vec<String>,
    deleted: Vec<RowId>,
    specs: Vec<SegmentSpec>,
    stats: Vec<SegmentStats>,
    checksums: Vec<u64>,
    learned: Option<Vec<u8>>,
    codes: Option<CodesLayout>,
}

/// Where the footer's codes section sits and how to decode it: per-segment
/// grids plus the absolute file offset of each dimension's code bytes (the
/// mapped backend views them zero-copy at exactly those offsets).
struct CodesLayout {
    segment_bits: Vec<u8>,
    params: Vec<Vec<CodeParams>>,
    dim_offsets: Vec<usize>,
    checksums: Vec<u64>,
}

fn parse_layout(bytes: &[u8]) -> Result<StoreLayout> {
    let mut buf = bytes;
    check_magic(&mut buf, MAGIC_V2, STORE_VERSION)?;
    let name = get_string(&mut buf)?;
    if buf.remaining() < 12 {
        return Err(VdError::Corrupt("truncated store header".into()));
    }
    let dims = buf.get_u32_le() as usize;
    let rows = checked_rows(buf.get_u64_le())?;
    if dims == 0 {
        return Err(VdError::Corrupt("zero dimensions".into()));
    }
    let header_len = bytes.len() - buf.remaining();
    let data_offset = header_len.div_ceil(8) * 8;
    let data_len = dims
        .checked_mul(rows)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| VdError::Corrupt("data region length overflows".into()))?;
    let footer_offset = data_offset
        .checked_add(data_len)
        .ok_or_else(|| VdError::Corrupt("footer offset overflows".into()))?;
    let min_len = footer_offset
        .checked_add(TRAILER_LEN)
        .ok_or_else(|| VdError::Corrupt("store length overflows".into()))?;
    if bytes.len() < min_len {
        return Err(VdError::Corrupt("store truncated before its footer".into()));
    }
    let mut trailer = &bytes[bytes.len() - TRAILER_LEN..];
    let trailer_footer_offset = trailer.get_u64_le();
    if trailer != TAIL_MAGIC_V2.as_slice() {
        return Err(VdError::Corrupt("bad trailer magic".into()));
    }
    if trailer_footer_offset != footer_offset as u64 {
        return Err(VdError::Corrupt(format!(
            "trailer footer offset {trailer_footer_offset} disagrees with header-derived \
             offset {footer_offset}"
        )));
    }
    // header padding must be zero bytes
    if bytes[header_len..data_offset].iter().any(|&b| b != 0) {
        return Err(VdError::Corrupt("non-zero header padding".into()));
    }

    let footer_region = &bytes[footer_offset..bytes.len() - TRAILER_LEN];
    if footer_region.len() < 8 {
        return Err(VdError::Corrupt("footer shorter than its checksum".into()));
    }
    let (footer_bytes, stored) = footer_region.split_at(footer_region.len() - 8);
    let stored = u64::from_le_bytes(stored.try_into().expect("8-byte split"));
    let actual = fnv1a(footer_bytes);
    if actual != stored {
        // the footer drives segment skipping (envelopes) and planning
        // (statistics) without any later cross-check, so unlike the lazily
        // verified data region it is verified on *every* open — it is read
        // eagerly anyway, so the check is near-free
        return Err(VdError::Corrupt(format!(
            "footer checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    let mut footer = footer_bytes;
    let column_names: Vec<String> =
        (0..dims).map(|_| get_string(&mut footer)).collect::<Result<_>>()?;

    let n_deleted = read_u32(&mut footer, "tombstone count")? as usize;
    let mut deleted = Vec::with_capacity(n_deleted.min(rows + 1));
    let mut previous: Option<RowId> = None;
    for _ in 0..n_deleted {
        let row = read_u32(&mut footer, "tombstone row id")?;
        if row as usize >= rows {
            return Err(VdError::Corrupt(format!("tombstoned row {row} out of range {rows}")));
        }
        if previous.is_some_and(|p| p >= row) {
            return Err(VdError::Corrupt("tombstone row ids not strictly ascending".into()));
        }
        previous = Some(row);
        deleted.push(row);
    }

    let n_segments = read_u32(&mut footer, "segment count")? as usize;
    let mut specs = Vec::with_capacity(n_segments.min(rows + 1));
    let mut stats = Vec::with_capacity(n_segments.min(rows + 1));
    let mut next_start = 0usize;
    for _ in 0..n_segments {
        let start = checked_rows(read_u64(&mut footer, "segment start")?)?;
        let len = checked_rows(read_u64(&mut footer, "segment length")?)?;
        if start != next_start || len == 0 {
            return Err(VdError::Corrupt(format!(
                "segments must tile the table in row order: got start {start}, length {len}, \
                 expected start {next_start}"
            )));
        }
        next_start = start.checked_add(len).filter(|&end| end <= rows).ok_or_else(|| {
            VdError::Corrupt(format!("segment {start}+{len} exceeds {rows} rows"))
        })?;
        let live_rows = checked_rows(read_u64(&mut footer, "live-row count")?)?;
        if live_rows > len {
            return Err(VdError::Corrupt(format!(
                "segment claims {live_rows} live rows in {len} rows"
            )));
        }
        let row_sum_min = read_f64(&mut footer, "row-sum minimum")?;
        let row_sum_max = read_f64(&mut footer, "row-sum maximum")?;
        let row_sum_mean = read_f64(&mut footer, "row-sum mean")?;
        let per_dim: Vec<Option<ColumnStats>> = (0..dims)
            .map(|d| match read_u8(&mut footer, "per-dimension stats flag")? {
                0 => Ok(None),
                1 => Ok(Some(ColumnStats {
                    name: column_names[d].clone(),
                    min: read_f64(&mut footer, "dimension minimum")?,
                    max: read_f64(&mut footer, "dimension maximum")?,
                    mean: read_f64(&mut footer, "dimension mean")?,
                    variance: read_f64(&mut footer, "dimension variance")?,
                    skewness: read_f64(&mut footer, "dimension skewness")?,
                })),
                flag => Err(VdError::Corrupt(format!("invalid stats flag {flag}"))),
            })
            .collect::<Result<_>>()?;
        specs.push(SegmentSpec::new(start, len));
        stats.push(SegmentStats {
            range: start..start + len,
            per_dim,
            live_rows,
            row_sum_min,
            row_sum_max,
            row_sum_mean,
        });
    }
    if next_start != rows {
        return Err(VdError::Corrupt(format!(
            "segments cover rows 0..{next_start} of a table with {rows} rows"
        )));
    }
    let checksums: Vec<u64> =
        (0..dims).map(|_| read_u64(&mut footer, "fragment checksum")).collect::<Result<_>>()?;
    let learned_len = read_u32(&mut footer, "learned-state length")? as usize;
    let learned = if learned_len == 0 {
        None
    } else {
        if footer.remaining() < learned_len {
            return Err(VdError::Corrupt("truncated learned-state payload".into()));
        }
        let mut payload = vec![0u8; learned_len];
        footer.copy_to_slice(&mut payload);
        Some(payload)
    };
    // anything left before the footer checksum is the codes section; a
    // pre-codes store ends exactly here and parses as "no codes"
    let codes = if footer.is_empty() {
        None
    } else {
        let bits = read_u8(&mut footer, "code bits")?;
        if bits > 8 {
            return Err(VdError::Corrupt(format!("code bits {bits} outside 1..=8")));
        }
        // bits == 0 is the mixed-width sentinel: one width byte per segment
        // follows. Any non-zero value is the uniform width of every segment
        // (the only form pre-adaptive stores ever wrote).
        let segment_bits: Vec<u8> = if bits == 0 {
            let mut widths = Vec::with_capacity(specs.len());
            for _ in 0..specs.len() {
                let b = read_u8(&mut footer, "per-segment code bits")?;
                if b == 0 || b > 8 {
                    return Err(VdError::Corrupt(format!(
                        "per-segment code bits {b} outside 1..=8"
                    )));
                }
                widths.push(b);
            }
            widths
        } else {
            vec![bits; specs.len()]
        };
        let mut params = Vec::with_capacity(specs.len());
        for (spec, &seg_bits) in specs.iter().zip(&segment_bits) {
            let mut per_dim = Vec::with_capacity(dims);
            for _ in 0..dims {
                let min = read_f64(&mut footer, "code grid minimum")?;
                let max = read_f64(&mut footer, "code grid maximum")?;
                per_dim.push(CodeParams::new(min, max, seg_bits).map_err(|e| {
                    VdError::Corrupt(format!("segment {:?} code grid: {e}", spec.range()))
                })?);
            }
            params.push(per_dim);
        }
        let mut dim_offsets = Vec::with_capacity(dims);
        for _ in 0..dims {
            if footer.remaining() < rows {
                return Err(VdError::Corrupt("truncated code bytes".into()));
            }
            let consumed = footer_bytes.len() - footer.remaining();
            dim_offsets.push(footer_offset + consumed);
            footer = &footer[rows..];
        }
        let code_checksums: Vec<u64> =
            (0..dims).map(|_| read_u64(&mut footer, "code checksum")).collect::<Result<_>>()?;
        for (d, &offset) in dim_offsets.iter().enumerate() {
            let local = offset - footer_offset;
            let actual = fnv1a(&footer_bytes[local..local + rows]);
            if actual != code_checksums[d] {
                return Err(VdError::ChecksumMismatch {
                    column: format!("{}.codes", column_names[d]),
                    expected: code_checksums[d],
                    actual,
                });
            }
        }
        Some(CodesLayout { segment_bits, params, dim_offsets, checksums: code_checksums })
    };
    if !footer.is_empty() {
        return Err(VdError::Corrupt(format!("{} trailing bytes in footer", footer.len())));
    }
    Ok(StoreLayout {
        name,
        rows,
        data_offset,
        column_names,
        deleted,
        specs,
        stats,
        checksums,
        learned,
        codes,
    })
}

fn assemble_store(
    layout: StoreLayout,
    columns: Vec<Column>,
    code_columns: Option<Vec<CodeColumn>>,
    backend: StorageBackend,
) -> Result<PersistedStore> {
    let codes = match (layout.codes, code_columns) {
        (Some(c), Some(code_columns)) => Some(StoreCodes::from_parts(
            c.segment_bits,
            layout.rows,
            layout.specs.clone(),
            c.params,
            code_columns,
            c.checksums,
        )?),
        _ => None,
    };
    let mut tombstones = Bitmap::new(layout.rows);
    for &row in &layout.deleted {
        tombstones.set(row);
    }
    let table = DecomposedTable::from_parts(layout.name, columns, tombstones)?;
    Ok(PersistedStore {
        table,
        specs: layout.specs,
        stats: layout.stats,
        backend,
        fragment_checksums: layout.checksums,
        learned: layout.learned,
        codes,
        open_micros: 0,
    })
}

/// Checks that a code companion covers exactly this table and these segment
/// boundaries — the writer-side invariant of the footer's codes section.
fn validate_codes_inputs(
    table: &DecomposedTable,
    specs: &[SegmentSpec],
    codes: &StoreCodes,
) -> Result<()> {
    if codes.rows() != table.rows() || codes.dims() != table.dims() {
        return Err(VdError::InvalidArgument(format!(
            "codes cover {} rows x {} dims, table holds {} x {}",
            codes.rows(),
            codes.dims(),
            table.rows(),
            table.dims()
        )));
    }
    if !codes.matches_specs(specs) {
        return Err(VdError::InvalidArgument(
            "codes were encoded over different segment boundaries than the store's".into(),
        ));
    }
    Ok(())
}

/// Checks that `specs`/`stats` describe a valid segment layout for `table`:
/// parallel, non-empty specs tiling `0..rows` in order, each stats entry
/// covering exactly its spec's range with the table's dimensionality. Both
/// store writers call this before serialising, and the execution engine
/// applies the same check to layouts handed to it directly (e.g. a
/// hand-assembled `PersistedStore`) — one validator, one invariant.
///
/// # Errors
///
/// [`VdError::InvalidArgument`] naming the violated invariant.
pub fn validate_store_inputs(
    table: &DecomposedTable,
    specs: &[SegmentSpec],
    stats: &[SegmentStats],
) -> Result<()> {
    if specs.len() != stats.len() {
        return Err(VdError::InvalidArgument(format!(
            "{} segment specs but {} stats entries",
            specs.len(),
            stats.len()
        )));
    }
    let mut next_start = 0usize;
    for (spec, stat) in specs.iter().zip(stats) {
        if spec.start() != next_start || spec.is_empty() || spec.range().end > table.rows() {
            return Err(VdError::InvalidArgument(format!(
                "segment specs must tile the table's {} rows in order; offending spec {:?}",
                table.rows(),
                spec
            )));
        }
        next_start = spec.range().end;
        if stat.spec() != *spec {
            return Err(VdError::InvalidArgument(format!(
                "stats cover {:?} but the spec covers {:?}",
                stat.range,
                spec.range()
            )));
        }
        if stat.per_dim.len() != table.dims() {
            return Err(VdError::InvalidArgument(format!(
                "stats carry {} dimensions, table has {}",
                stat.per_dim.len(),
                table.dims()
            )));
        }
    }
    if next_start != table.rows() {
        return Err(VdError::InvalidArgument(format!(
            "segment specs cover rows 0..{next_start} of a table with {} rows",
            table.rows()
        )));
    }
    Ok(())
}

/// Checks an 8-byte magic whose last two bytes are the ASCII version. A
/// recognised prefix with a different version reports
/// [`VdError::UnsupportedVersion`]; anything else is [`VdError::Corrupt`].
fn check_magic(buf: &mut &[u8], expected: &[u8; 8], expected_version: u32) -> Result<()> {
    if buf.remaining() < expected.len() {
        return Err(VdError::Corrupt("buffer shorter than magic".into()));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic == expected {
        return Ok(());
    }
    if &magic[..6] == MAGIC_PREFIX {
        if let Some(found) = std::str::from_utf8(&magic[6..]).ok().and_then(|v| v.parse().ok()) {
            return Err(VdError::UnsupportedVersion { found, supported: expected_version });
        }
    }
    Err(VdError::Corrupt(format!("bad magic {magic:?}")))
}

fn checked_rows(rows: u64) -> Result<usize> {
    // RowIds are u32: anything larger cannot be addressed and is rejected
    // before it can drive an oversized allocation.
    if rows > u32::MAX as u64 {
        return Err(VdError::Corrupt(format!("row count {rows} exceeds the u32 row-id space")));
    }
    Ok(rows as usize)
}

fn read_u8(buf: &mut &[u8], what: &str) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(VdError::Corrupt(format!("truncated {what}")));
    }
    Ok(buf.get_u8())
}

fn read_u32(buf: &mut &[u8], what: &str) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(VdError::Corrupt(format!("truncated {what}")));
    }
    Ok(buf.get_u32_le())
}

fn read_u64(buf: &mut &[u8], what: &str) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(VdError::Corrupt(format!("truncated {what}")));
    }
    Ok(buf.get_u64_le())
}

fn read_f64(buf: &mut &[u8], what: &str) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(VdError::Corrupt(format!("truncated {what}")));
    }
    Ok(buf.get_f64_le())
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(VdError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(VdError::Corrupt("truncated string".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| VdError::Corrupt(format!("invalid utf-8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecomposedTable {
        let mut t = DecomposedTable::from_vectors(
            "corel_sample",
            &[vec![0.1, 0.9], vec![0.5, 0.5], vec![0.8, 0.2]],
        )
        .unwrap();
        t.delete(1).unwrap();
        t
    }

    fn sample_store_bytes(partitions: usize) -> Bytes {
        let t = sample();
        let specs = t.partition_specs(partitions);
        let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        store_to_bytes(&t, &specs, &stats, None).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let bytes = table_to_bytes(&t);
        let back = table_from_bytes(&bytes).unwrap();
        assert_eq!(back.name(), "corel_sample");
        assert_eq!(back.dims(), 2);
        assert_eq!(back.rows(), 3);
        assert_eq!(back.row(0).unwrap(), t.row(0).unwrap());
        assert!(back.is_deleted(1));
        assert_eq!(back.live_rows(), 2);
        assert_eq!(back.column(0).unwrap().name(), "dim_0");
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let t = sample();
        let bytes = table_to_bytes(&t);
        assert!(table_from_bytes(&[]).is_err());
        assert!(table_from_bytes(&bytes[..4]).is_err());
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] = b'X';
        assert!(table_from_bytes(&bad_magic).is_err());
        let truncated = &bytes[..bytes.len() - 8];
        assert!(table_from_bytes(truncated).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let t = sample();
        let mut padded = table_to_bytes(&t).to_vec();
        padded.push(0);
        let err = table_from_bytes(&padded).unwrap_err();
        assert!(matches!(err, VdError::Corrupt(ref msg) if msg.contains("trailing")), "{err}");
    }

    #[test]
    fn version_mismatch_is_typed() {
        // a v2 store pushed through the v1 reader reports the version gap
        let bytes = sample_store_bytes(2);
        assert_eq!(
            table_from_bytes(&bytes).unwrap_err(),
            VdError::UnsupportedVersion { found: 2, supported: 1 }
        );
        // and vice versa
        let v1 = table_to_bytes(&sample());
        assert_eq!(
            store_from_bytes(&v1).unwrap_err(),
            VdError::UnsupportedVersion { found: 1, supported: 2 }
        );
        // an unrecognisable version suffix is plain corruption
        let mut weird = v1.to_vec();
        weird[6] = b'x';
        weird[7] = b'y';
        assert!(matches!(table_from_bytes(&weird), Err(VdError::Corrupt(_))));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("vdstore_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.bondvd");
        let t = sample();
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.rows(), t.rows());
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(load_table(&path), Err(VdError::Io(_))));
    }

    #[test]
    fn bitmap_round_trip() {
        let b = Bitmap::from_rows(100, &[0, 17, 64, 99]);
        let bytes = bitmap_to_bytes(&b);
        let back = bitmap_from_bytes(&bytes).unwrap();
        assert_eq!(back, b);
        assert!(bitmap_from_bytes(&[1, 2]).is_err());
        // trailing partial row ids are rejected, not silently dropped
        let mut ragged = bytes.to_vec();
        ragged.extend_from_slice(&[1, 2, 3]);
        let err = bitmap_from_bytes(&ragged).unwrap_err();
        assert!(matches!(err, VdError::Corrupt(ref msg) if msg.contains("trailing")), "{err}");
        // an absurd domain length cannot drive an oversized allocation
        let mut huge = bytes.to_vec();
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(bitmap_from_bytes(&huge), Err(VdError::Corrupt(_))));
    }

    #[test]
    fn store_round_trip_preserves_table_specs_and_stats() {
        let t = sample();
        let specs = t.partition_specs(2);
        let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        let bytes = store_to_bytes(&t, &specs, &stats, None).unwrap();
        let store = store_from_bytes(&bytes).unwrap();
        assert_eq!(store.backend, StorageBackend::Heap);
        assert_eq!(store.table, t);
        assert_eq!(store.specs, specs);
        assert_eq!(store.stats, stats);
        assert!(store.table.is_deleted(1));
        assert_eq!(store.table.column(1).unwrap().name(), "dim_1");
    }

    #[test]
    fn store_data_region_is_aligned() {
        let bytes = sample_store_bytes(1);
        // header: magic(8) + name_len(4) + name(12) + dims(4) + rows(8) = 36,
        // padded to 40; every fragment offset is then 8-byte aligned.
        let mut probe = &bytes[40..];
        assert_eq!(probe.get_f64_le(), 0.1, "first value of dim_0 sits at the aligned offset");
    }

    #[test]
    fn store_writer_validates_inputs() {
        let t = sample();
        let specs = t.partition_specs(2);
        let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        // specs/stats must be parallel
        assert!(matches!(
            store_to_bytes(&t, &specs, &stats[..1], None),
            Err(VdError::InvalidArgument(_))
        ));
        // stats must cover the spec's range
        let swapped = vec![stats[1].clone(), stats[0].clone()];
        assert!(matches!(
            store_to_bytes(&t, &specs, &swapped, None),
            Err(VdError::InvalidArgument(_))
        ));
        // specs must tile the table
        let gappy = vec![SegmentSpec::new(0, 1), SegmentSpec::new(2, 1)];
        let gappy_stats: Vec<SegmentStats> =
            gappy.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        assert!(matches!(
            store_to_bytes(&t, &gappy, &gappy_stats, None),
            Err(VdError::InvalidArgument(_))
        ));
    }

    #[test]
    fn store_truncations_and_corruptions_are_typed_errors() {
        let bytes = sample_store_bytes(3);
        assert!(store_from_bytes(&[]).is_err());
        for cut in [4, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = store_from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, VdError::Corrupt(_) | VdError::UnsupportedVersion { .. }),
                "cut at {cut}: {err}"
            );
        }
        // trailing bytes between footer and trailer shift the trailer: caught
        let mut padded = bytes.to_vec();
        padded.insert(bytes.len() - TRAILER_LEN, 0);
        assert!(store_from_bytes(&padded).is_err());
        // a corrupted trailer magic is caught
        let mut bad_tail = bytes.to_vec();
        *bad_tail.last_mut().unwrap() = b'X';
        assert!(store_from_bytes(&bad_tail).is_err());
    }

    #[test]
    fn streamed_save_matches_in_memory_serialisation_byte_for_byte() {
        let dir = std::env::temp_dir().join("vdstore_store_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streamed.bondvd");
        let t = sample();
        let specs = t.partition_specs(2);
        let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        save_store(&t, &specs, &stats, None, &path).unwrap();
        let streamed = std::fs::read(&path).unwrap();
        let in_memory = store_to_bytes(&t, &specs, &stats, None).unwrap();
        assert_eq!(streamed, in_memory.to_vec(), "the two writers must never diverge");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_file_round_trip_both_backends() {
        let dir = std::env::temp_dir().join("vdstore_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bondvd");
        let t = sample();
        write_store(&t, 2, &path).unwrap();

        let heap = open_store(&path, StorageBackend::Heap).unwrap();
        assert_eq!(heap.backend, StorageBackend::Heap);
        assert_eq!(heap.table, t);

        let mapped = open_store(&path, StorageBackend::Mapped).unwrap();
        assert_eq!(mapped.table, t);
        assert_eq!(mapped.specs, heap.specs);
        assert_eq!(mapped.stats, heap.stats);
        if StorageBackend::mapping_supported() {
            assert_eq!(mapped.backend, StorageBackend::Mapped);
            assert_eq!(mapped.table.column(0).unwrap().backend(), StorageBackend::Mapped);
        } else {
            assert_eq!(mapped.backend, StorageBackend::Heap);
        }

        std::fs::remove_file(&path).unwrap();
        assert!(matches!(open_store(&path, StorageBackend::Heap), Err(VdError::Io(_))));
        assert!(matches!(open_store(&path, StorageBackend::Mapped), Err(VdError::Io(_))));
    }

    #[test]
    fn fragment_checksums_round_trip_and_catch_data_corruption() {
        let t = sample();
        let specs = t.partition_specs(2);
        let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        let bytes = store_to_bytes(&t, &specs, &stats, None).unwrap();
        let store = store_from_bytes(&bytes).unwrap();
        assert_eq!(store.fragment_checksums.len(), t.dims());
        for (d, &checksum) in store.fragment_checksums.iter().enumerate() {
            assert_eq!(checksum, crate::checksum::fnv1a_f64(t.columns()[d].values()));
        }
        assert!(store.learned.is_none());
        store.table.verify_checksums().unwrap();

        // flip one data byte: the heap open reports the typed mismatch
        // (header: magic 8 + name_len 4 + name 12 + dims 4 + rows 8 = 36,
        // padded to 40; the first fragment starts there)
        let mut corrupt = bytes.to_vec();
        corrupt[40] ^= 0xFF;
        let err = store_from_bytes(&corrupt).unwrap_err();
        assert!(
            matches!(err, VdError::ChecksumMismatch { ref column, .. } if column == "dim_0"),
            "{err}"
        );
    }

    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    #[test]
    fn mapped_open_defers_checksum_verification_to_promotion() {
        let dir = std::env::temp_dir().join("vdstore_store_cow_checksum_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cow.bondvd");
        let t = sample();
        write_store(&t, 2, &path).unwrap();

        // corrupt one byte of the first fragment's data on disk
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(40)).unwrap();
            f.write_all(&[0xAB]).unwrap();
        }

        // the mapped open itself stays lazy and succeeds …
        let store = open_store(&path, StorageBackend::Mapped).unwrap();
        assert_eq!(store.backend, StorageBackend::Mapped);
        // … the explicit sweep and the copy-on-write promotion both catch it
        assert!(matches!(store.table.verify_checksums(), Err(VdError::ChecksumMismatch { .. })));
        let mut corrupted_col = store.table.columns()[0].clone();
        let err = corrupted_col.set(0, 9.0).unwrap_err();
        assert!(matches!(err, VdError::ChecksumMismatch { .. }), "{err}");
        // untouched fragments still promote cleanly
        let mut clean_col = store.table.columns()[1].clone();
        assert!(clean_col.set(0, 9.0).is_ok());
        assert_eq!(clean_col.backend(), StorageBackend::Heap);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn footer_corruption_is_caught_by_the_footer_checksum() {
        // the footer's statistics/envelopes drive planning and skipping
        // with no later cross-check, so a flipped footer byte — even one
        // the structural parse would happily accept, like a stats float —
        // must fail the open
        let bytes = sample_store_bytes(2);
        let n = bytes.len();
        let footer_offset = u64::from_le_bytes(bytes[n - 16..n - 8].try_into().unwrap()) as usize;
        for delta in [10, (n - 24 - footer_offset) / 2] {
            let mut corrupted = bytes.to_vec();
            corrupted[footer_offset + delta] ^= 0x01;
            let err = store_from_bytes(&corrupted).unwrap_err();
            assert!(
                matches!(err, VdError::Corrupt(ref m) if m.contains("footer checksum")),
                "flip at footer+{delta}: {err}"
            );
        }
    }

    #[test]
    fn learned_payload_round_trips_and_is_validated() {
        let t = sample();
        let specs = t.partition_specs(1);
        let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        let payload = vec![7u8, 13, 42, 0, 255];
        let bytes = store_to_bytes(&t, &specs, &stats, Some(&payload)).unwrap();
        let store = store_from_bytes(&bytes).unwrap();
        assert_eq!(store.learned.as_deref(), Some(&payload[..]));

        // the learned section participates in the exact-consumption check:
        // claiming more bytes than the footer holds is corruption
        let dir = std::env::temp_dir().join("vdstore_store_learned_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("learned.bondvd");
        save_store(&t, &specs, &stats, Some(&payload), &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes.to_vec());
        let heap = open_store(&path, StorageBackend::Heap).unwrap();
        assert_eq!(heap.learned.as_deref(), Some(&payload[..]));
        if StorageBackend::mapping_supported() {
            let mapped = open_store(&path, StorageBackend::Mapped).unwrap();
            assert_eq!(mapped.learned.as_deref(), Some(&payload[..]));
            assert_eq!(mapped.fragment_checksums, heap.fragment_checksums);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn codes_round_trip_both_backends_and_checksum_fail_on_corruption() {
        let t = sample();
        let specs = t.partition_specs(2);
        let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        let codes = StoreCodes::build(&t, &specs, &stats, 8).unwrap();

        // a store written without codes still parses — as "no codes"
        let plain = store_to_bytes(&t, &specs, &stats, None).unwrap();
        assert!(store_from_bytes(&plain).unwrap().codes.is_none());

        let bytes = store_to_bytes_with_codes(&t, &specs, &stats, None, Some(&codes)).unwrap();
        let store = store_from_bytes(&bytes).unwrap();
        let back = store.codes.as_ref().unwrap();
        assert_eq!(back.bits(), 8);
        assert!(back.matches_specs(&specs));
        assert!(!back.is_mapped());
        for d in 0..t.dims() {
            assert_eq!(back.dim_codes(d).unwrap(), codes.dim_codes(d).unwrap());
            assert_eq!(back.checksum(d).unwrap(), codes.checksum(d).unwrap());
            for si in 0..specs.len() {
                assert_eq!(
                    back.segment_view(si).unwrap().params(d),
                    codes.segment_view(si).unwrap().params(d)
                );
            }
        }

        // the streamed writer agrees byte for byte, and both backends
        // reopen the codes
        let dir = std::env::temp_dir().join("vdstore_store_codes_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("codes.bondvd");
        save_store_with_codes(&t, &specs, &stats, None, Some(&codes), &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes.to_vec());
        let heap = open_store(&path, StorageBackend::Heap).unwrap();
        assert_eq!(heap.codes.as_ref().unwrap().dim_codes(0).unwrap(), codes.dim_codes(0).unwrap());
        if StorageBackend::mapping_supported() {
            let mapped = open_store(&path, StorageBackend::Mapped).unwrap();
            let mc = mapped.codes.as_ref().unwrap();
            assert!(mc.is_mapped(), "mapped opens view codes zero-copy");
            for d in 0..t.dims() {
                assert_eq!(mc.dim_codes(d).unwrap(), codes.dim_codes(d).unwrap());
            }
        }
        std::fs::remove_file(&path).unwrap();

        // flipping one code byte fails the open with a typed checksum error
        // (the footer checksum covers the codes section)
        let layout = parse_layout(&bytes).unwrap();
        let code_offset = layout.codes.unwrap().dim_offsets[0];
        let mut corrupted = bytes.to_vec();
        corrupted[code_offset] ^= 0xFF;
        let err = store_from_bytes(&corrupted).unwrap_err();
        assert!(matches!(err, VdError::Corrupt(ref m) if m.contains("footer checksum")), "{err}");

        // the writers reject codes built over different boundaries
        let other_specs = t.partition_specs(1);
        let other_stats: Vec<SegmentStats> =
            other_specs.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        let mismatched = StoreCodes::build(&t, &other_specs, &other_stats, 8).unwrap();
        assert!(matches!(
            store_to_bytes_with_codes(&t, &specs, &stats, None, Some(&mismatched)),
            Err(VdError::InvalidArgument(_))
        ));
    }

    #[test]
    fn mixed_width_codes_round_trip_via_the_sentinel() {
        let t = sample();
        let specs = t.partition_specs(2);
        let stats: Vec<SegmentStats> = specs.iter().map(|s| s.view(&t).unwrap().stats()).collect();
        let mixed = StoreCodes::build_mixed(&t, &specs, &stats, &[4, 8]).unwrap();

        let bytes = store_to_bytes_with_codes(&t, &specs, &stats, None, Some(&mixed)).unwrap();
        let back = store_from_bytes(&bytes).unwrap();
        let back = back.codes.as_ref().unwrap();
        assert_eq!(back.segment_bits(), &[4, 8]);
        assert_eq!(back.uniform_bits(), None);
        for d in 0..t.dims() {
            assert_eq!(back.dim_codes(d).unwrap(), mixed.dim_codes(d).unwrap());
            for si in 0..specs.len() {
                assert_eq!(
                    back.segment_view(si).unwrap().params(d),
                    mixed.segment_view(si).unwrap().params(d)
                );
            }
        }

        // a uniform store writes the pre-adaptive single-byte form: the
        // bytes must not mention the sentinel at all (they are exactly one
        // uniform-width byte shorter than the equivalent sentinel form)
        let uniform = StoreCodes::build(&t, &specs, &stats, 8).unwrap();
        let uniform_bytes =
            store_to_bytes_with_codes(&t, &specs, &stats, None, Some(&uniform)).unwrap();
        let sentinel_overhead = specs.len();
        assert_eq!(uniform_bytes.len() + sentinel_overhead, bytes.len());
        assert_eq!(
            store_from_bytes(&uniform_bytes).unwrap().codes.unwrap().segment_bits(),
            &[8, 8]
        );

        // both backends reopen the mixed widths from disk
        let dir = std::env::temp_dir().join("vdstore_store_mixed_codes_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.bondvd");
        save_store_with_codes(&t, &specs, &stats, None, Some(&mixed), &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes.to_vec());
        let heap = open_store(&path, StorageBackend::Heap).unwrap();
        assert_eq!(heap.codes.as_ref().unwrap().segment_bits(), &[4, 8]);
        if StorageBackend::mapping_supported() {
            let mapped = open_store(&path, StorageBackend::Mapped).unwrap();
            assert_eq!(mapped.codes.as_ref().unwrap().segment_bits(), &[4, 8]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persisted_stats_match_freshly_computed_stats() {
        let t = sample();
        let dir = std::env::temp_dir().join("vdstore_store_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.bondvd");
        write_store(&t, 3, &path).unwrap();
        let store = open_store(&path, StorageBackend::Heap).unwrap();
        for (spec, stat) in store.specs.iter().zip(&store.stats) {
            let fresh = spec.view(&store.table).unwrap().stats();
            assert_eq!(*stat, fresh, "footer stats are bit-identical to recomputed stats");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
