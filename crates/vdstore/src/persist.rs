//! Binary persistence of decomposed tables.
//!
//! A decomposed table is written column-after-column, which is exactly the
//! on-disk layout the decomposition storage model is about: each dimensional
//! fragment is one contiguous run of values, so a search that touches only
//! the first `m` fragments reads only those byte ranges. The format is
//! deliberately simple (no compression, little metadata) — it exists so that
//! datasets generated once can be reloaded by examples, tests and the
//! benchmark harness.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   : 8 bytes  = b"BONDVD01"
//! name_len: u32, name bytes (UTF-8)
//! dims    : u32
//! rows    : u64
//! per column: name_len u32, name bytes, rows * f64 values
//! deleted bitmap: n_words u32, words u64 * n_words
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::{Result, VdError};
use crate::table::DecomposedTable;

const MAGIC: &[u8; 8] = b"BONDVD01";

/// Serialises a table into a byte buffer.
pub fn table_to_bytes(table: &DecomposedTable) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + table.rows() * table.dims() * 8);
    buf.put_slice(MAGIC);
    put_string(&mut buf, table.name());
    buf.put_u32_le(table.dims() as u32);
    buf.put_u64_le(table.rows() as u64);
    for c in table.columns() {
        put_string(&mut buf, c.name());
        for &v in c.values() {
            buf.put_f64_le(v);
        }
    }
    // tombstones: store as the list of deleted row ids (usually tiny)
    let deleted: Vec<u32> = (0..table.rows() as u32).filter(|&r| table.is_deleted(r)).collect();
    buf.put_u32_le(deleted.len() as u32);
    for r in deleted {
        buf.put_u32_le(r);
    }
    buf.freeze()
}

/// Reconstructs a table from a byte buffer produced by [`table_to_bytes`].
pub fn table_from_bytes(bytes: &[u8]) -> Result<DecomposedTable> {
    let mut buf = bytes;
    if buf.remaining() < MAGIC.len() {
        return Err(VdError::Corrupt("buffer shorter than magic".into()));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(VdError::Corrupt(format!("bad magic {magic:?}")));
    }
    let name = get_string(&mut buf)?;
    if buf.remaining() < 12 {
        return Err(VdError::Corrupt("truncated header".into()));
    }
    let dims = buf.get_u32_le() as usize;
    let rows = buf.get_u64_le() as usize;
    if dims == 0 {
        return Err(VdError::Corrupt("zero dimensions".into()));
    }
    let mut columns = Vec::with_capacity(dims);
    for _ in 0..dims {
        let cname = get_string(&mut buf)?;
        if buf.remaining() < rows * 8 {
            return Err(VdError::Corrupt("truncated column data".into()));
        }
        let mut values = Vec::with_capacity(rows);
        for _ in 0..rows {
            values.push(buf.get_f64_le());
        }
        columns.push(Column::new(cname, values));
    }
    let mut table = DecomposedTable::from_columns(name, columns)?;
    if buf.remaining() < 4 {
        return Err(VdError::Corrupt("missing tombstone section".into()));
    }
    let n_deleted = buf.get_u32_le() as usize;
    if buf.remaining() < n_deleted * 4 {
        return Err(VdError::Corrupt("truncated tombstone list".into()));
    }
    for _ in 0..n_deleted {
        let r = buf.get_u32_le();
        table.delete(r)?;
    }
    Ok(table)
}

/// Writes a table to a file.
pub fn save_table(table: &DecomposedTable, path: &std::path::Path) -> Result<()> {
    let bytes = table_to_bytes(table);
    std::fs::write(path, &bytes)
        .map_err(|e| VdError::Corrupt(format!("io error writing {}: {e}", path.display())))
}

/// Reads a table from a file.
pub fn load_table(path: &std::path::Path) -> Result<DecomposedTable> {
    let bytes = std::fs::read(path)
        .map_err(|e| VdError::Corrupt(format!("io error reading {}: {e}", path.display())))?;
    table_from_bytes(&bytes)
}

/// Serialises only the live-row bitmap of a table (useful for persisting the
/// result of a prior selection predicate to combine with k-NN search).
pub fn bitmap_to_bytes(bitmap: &Bitmap) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(bitmap.len() as u64);
    for row in bitmap.iter() {
        buf.put_u32_le(row);
    }
    buf.freeze()
}

/// Reconstructs a bitmap from [`bitmap_to_bytes`] output.
pub fn bitmap_from_bytes(bytes: &[u8]) -> Result<Bitmap> {
    let mut buf = bytes;
    if buf.remaining() < 8 {
        return Err(VdError::Corrupt("bitmap buffer too short".into()));
    }
    let len = buf.get_u64_le() as usize;
    let mut b = Bitmap::new(len);
    while buf.remaining() >= 4 {
        let row = buf.get_u32_le();
        if (row as usize) >= len {
            return Err(VdError::Corrupt(format!("bitmap row {row} out of range {len}")));
        }
        b.set(row);
    }
    Ok(b)
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(VdError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(VdError::Corrupt("truncated string".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| VdError::Corrupt(format!("invalid utf-8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecomposedTable {
        let mut t = DecomposedTable::from_vectors(
            "corel_sample",
            &[vec![0.1, 0.9], vec![0.5, 0.5], vec![0.8, 0.2]],
        )
        .unwrap();
        t.delete(1).unwrap();
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let bytes = table_to_bytes(&t);
        let back = table_from_bytes(&bytes).unwrap();
        assert_eq!(back.name(), "corel_sample");
        assert_eq!(back.dims(), 2);
        assert_eq!(back.rows(), 3);
        assert_eq!(back.row(0).unwrap(), t.row(0).unwrap());
        assert!(back.is_deleted(1));
        assert_eq!(back.live_rows(), 2);
        assert_eq!(back.column(0).unwrap().name(), "dim_0");
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let t = sample();
        let bytes = table_to_bytes(&t);
        assert!(table_from_bytes(&[]).is_err());
        assert!(table_from_bytes(&bytes[..4]).is_err());
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] = b'X';
        assert!(table_from_bytes(&bad_magic).is_err());
        let truncated = &bytes[..bytes.len() - 8];
        assert!(table_from_bytes(truncated).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("vdstore_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.bondvd");
        let t = sample();
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.rows(), t.rows());
        std::fs::remove_file(&path).unwrap();
        assert!(load_table(&path).is_err());
    }

    #[test]
    fn bitmap_round_trip() {
        let b = Bitmap::from_rows(100, &[0, 17, 64, 99]);
        let bytes = bitmap_to_bytes(&b);
        let back = bitmap_from_bytes(&bytes).unwrap();
        assert_eq!(back, b);
        assert!(bitmap_from_bytes(&[1, 2]).is_err());
    }
}
