//! Plain-text rendering of experiment results for the `experiments` binary
//! and EXPERIMENTS.md.

use crate::ablation::AblationPoint;
use crate::figures::{Fig2, PruningSeries};
use crate::multifeature::MultiFeatureComparison;
use crate::tables::{Table2Row, Table4, TimingRow};

/// Renders a set of pruning series as an aligned text table: one row per
/// sampled dimension count, one column group (best/avg/worst) per series.
pub fn render_series(title: &str, series: &[PruningSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    if series.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    out.push_str(&format!("collection size: {} vectors\n", series[0].total_rows));
    out.push_str(&format!("{:>6}", "dims"));
    for s in series {
        out.push_str(&format!(" | {:>28}", s.label));
    }
    out.push('\n');
    out.push_str(&format!("{:>6}", ""));
    for _ in series {
        out.push_str(&format!(" | {:>8} {:>9} {:>9}", "best", "avg", "worst"));
    }
    out.push('\n');
    let max_len = series.iter().map(|s| s.dims.len()).max().unwrap_or(0);
    for i in 0..max_len {
        let dims = series.iter().find_map(|s| s.dims.get(i)).copied().unwrap_or_default();
        out.push_str(&format!("{dims:>6}"));
        for s in series {
            if i < s.dims.len() {
                out.push_str(&format!(" | {:>8} {:>9.1} {:>9}", s.best[i], s.avg[i], s.worst[i]));
            } else {
                out.push_str(&format!(" | {:>8} {:>9} {:>9}", "-", "-", "-"));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the Figure 2 statistics (sampled, to keep the output readable).
pub fn render_fig2(fig: &Fig2) -> String {
    let mut out = String::new();
    out.push_str("== Figure 2: dataset statistics ==\n");
    out.push_str(&format!(
        "mass carried by the top 10% of bins of an average histogram: {:.1}%\n",
        fig.mass_concentration_top10 * 100.0
    ));
    out.push_str("mean value per bin (every 10th bin):\n  ");
    for (i, v) in fig.mean_per_bin.iter().enumerate().step_by(10) {
        out.push_str(&format!("[{i}]={v:.4} "));
    }
    out.push_str("\nmean sorted per-histogram profile (first 20 ranks):\n  ");
    for (i, v) in fig.mean_sorted_profile.iter().take(20).enumerate() {
        out.push_str(&format!("#{}={:.4} ", i + 1, v));
    }
    out.push('\n');
    out
}

/// Renders the worked example of Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("== Table 2: worked example (q = <0.7, 0.15, 0.1, 0.05>, k = 3, m = 2) ==\n");
    out.push_str(&format!(
        "{:<4} {:<28} {:>6} {:>6} {:>6} {:>6}  {:<10} {:<10}\n",
        "h", "histogram", "S-", "Smin", "Smax", "S", "Hq prunes", "Hh prunes"
    ));
    for r in rows {
        let hist = r.histogram.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(", ");
        out.push_str(&format!(
            "{:<4} <{hist:<26}> {:>6.3} {:>6.3} {:>6.3} {:>6.3}  {:<10} {:<10}\n",
            r.name,
            r.s_minus,
            r.s_min,
            r.s_max,
            r.s_full,
            if r.pruned_by_hq { "yes" } else { "" },
            if r.pruned_by_hh { "yes" } else { "" },
        ));
    }
    out
}

/// Renders a response-time table (Tables 3).
pub fn render_timing(title: &str, rows: &[TimingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} (times in ms) ==\n"));
    out.push_str(&format!(
        "{:<42} {:>9} {:>9} {:>9} {:>9}\n",
        "method", "min", "max", "avg", "median"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<42} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
            r.method, r.stats.min_ms, r.stats.max_ms, r.stats.avg_ms, r.stats.median_ms
        ));
    }
    out
}

/// Renders Table 4 (timings plus candidate counts).
pub fn render_table4(table: &Table4) -> String {
    let mut out = render_timing("Table 4: filtering on 8-bit approximations", &table.rows);
    out.push_str(&format!(
        "avg candidates after BOND filter:    {:.1}\n",
        table.avg_candidates_bond
    ));
    out.push_str(&format!(
        "avg candidates after VA-File filter: {:.1}\n",
        table.avg_candidates_vafile
    ));
    out
}

/// Renders the Section 8.2 comparison.
pub fn render_multifeature(results: &[MultiFeatureComparison]) -> String {
    let mut out = String::new();
    out.push_str("== Section 8.2: synchronized BOND vs. stream merging ==\n");
    out.push_str(&format!(
        "{:<10} {:>16} {:>16} {:>10} {:>14} {:>8}\n",
        "aggregate", "synchronized ms", "stream-merge ms", "speedup", "stream depth", "agree"
    ));
    for r in results {
        let speedup =
            if r.synchronized_ms > 0.0 { r.stream_merge_ms / r.synchronized_ms } else { f64::NAN };
        out.push_str(&format!(
            "{:<10} {:>16.3} {:>16.3} {:>9.2}x {:>14} {:>8}\n",
            r.aggregate,
            r.synchronized_ms,
            r.stream_merge_ms,
            speedup,
            r.optimal_stream_depth,
            if r.results_agree { "yes" } else { "NO" }
        ));
    }
    out
}

/// Renders an ablation sweep.
pub fn render_ablation(title: &str, points: &[AblationPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<30} {:>12} {:>22}\n",
        "configuration", "avg ms", "avg contributions"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<30} {:>12.3} {:>22.0}\n",
            p.configuration, p.avg_ms, p.avg_contributions
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::PruningSeries;
    use crate::tables::{TimingRow, TimingStats};

    #[test]
    fn series_rendering_contains_labels_and_values() {
        let s = PruningSeries {
            label: "Hq".to_string(),
            total_rows: 100,
            dims: vec![8, 16],
            best: vec![50, 10],
            avg: vec![60.0, 12.5],
            worst: vec![80, 20],
        };
        let text = render_series("Figure 4", &[s]);
        assert!(text.contains("Figure 4"));
        assert!(text.contains("Hq"));
        assert!(text.contains("12.5"));
        assert!(render_series("Empty", &[]).contains("(no data)"));
    }

    #[test]
    fn timing_rendering() {
        let rows = vec![TimingRow {
            method: "Hq".to_string(),
            stats: TimingStats { min_ms: 1.0, max_ms: 3.0, avg_ms: 2.0, median_ms: 2.0 },
        }];
        let text = render_timing("Table 3", &rows);
        assert!(text.contains("Table 3"));
        assert!(text.contains("Hq"));
        assert!(text.contains("2.000"));
    }

    #[test]
    fn table2_rendering_marks_pruned_rows() {
        let rows = crate::tables::table2();
        let text = render_table2(&rows);
        assert!(text.contains("h3"));
        assert!(text.contains("yes"));
    }

    #[test]
    fn ablation_and_multifeature_rendering() {
        let text = render_ablation(
            "m sweep",
            &[AblationPoint {
                configuration: "m = 8".to_string(),
                avg_ms: 1.5,
                avg_contributions: 1234.0,
            }],
        );
        assert!(text.contains("m = 8"));
        let text = render_multifeature(&[MultiFeatureComparison {
            aggregate: "average".to_string(),
            synchronized_ms: 1.0,
            stream_merge_ms: 1.5,
            optimal_stream_depth: 40,
            results_agree: true,
        }]);
        assert!(text.contains("1.50x"));
    }
}
