//! Regenerates the paper's evaluation artifacts.
//!
//! ```text
//! experiments <id>... [--scale small|medium|paper]
//!
//! ids: fig2 table2 fig4 fig5 fig6 fig7 fig8 fig9 table3 table4 fig10 fig11
//!      sec82 ablation_m ablation_bitmap ablation_hh headline checks all
//! ```
//!
//! Output goes to stdout; `EXPERIMENTS.md` records a captured run together
//! with the comparison against the numbers reported in the paper.

use bond_bench::{ablation, figures, multifeature, report, tables, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Medium;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == "--scale" {
            match iter.next().and_then(|s| ExperimentScale::parse(s)) {
                Some(s) => scale = s,
                None => {
                    eprintln!("--scale expects one of: small, medium, paper");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(arg.clone());
        }
    }
    if ids.is_empty() {
        ids.push("all".to_string());
    }
    let all = [
        "fig2",
        "table2",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "table3",
        "table4",
        "fig10",
        "fig11",
        "sec82",
        "ablation_m",
        "ablation_bitmap",
        "ablation_hh",
        "headline",
        "checks",
    ];
    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        all.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    println!("# BOND experiments (scale: {scale:?})\n");
    for id in selected {
        run(id, scale);
    }
}

fn run(id: &str, scale: ExperimentScale) {
    let start = std::time::Instant::now();
    match id {
        "fig2" => print!("{}", report::render_fig2(&figures::fig2(scale))),
        "table2" => print!("{}", report::render_table2(&tables::table2())),
        "fig4" => print!(
            "{}",
            report::render_series("Figure 4: pruning of Hq and Hh", &figures::fig4(scale))
        ),
        "fig5" => print!(
            "{}",
            report::render_series("Figure 5: pruning of Eq and Ev", &figures::fig5(scale))
        ),
        "fig6" => print!(
            "{}",
            report::render_series("Figure 6: effect of k on Hq", &figures::fig6(scale))
        ),
        "fig7" => print!(
            "{}",
            report::render_series(
                "Figure 7: effect of the dimension ordering on Hq",
                &figures::fig7(scale)
            )
        ),
        "fig8" => print!(
            "{}",
            report::render_series(
                "Figure 8: impact of dimensionality on Ev",
                &figures::fig8(scale)
            )
        ),
        "fig9" => print!(
            "{}",
            report::render_series(
                "Figure 9: Hq on exact vs. 8-bit compressed fragments",
                &figures::fig9(scale)
            )
        ),
        "table3" => print!(
            "{}",
            report::render_timing("Table 3: BOND vs. sequential scan", &tables::table3(scale))
        ),
        "table4" => print!("{}", report::render_table4(&tables::table4(scale))),
        "fig10" => print!(
            "{}",
            report::render_series(
                "Figure 10: effect of data skew on Ev (clustered datasets)",
                &figures::fig10(scale)
            )
        ),
        "fig11" => print!(
            "{}",
            report::render_series(
                "Figure 11: effect of weight skew (weighted Euclidean, theta = 0)",
                &figures::fig11(scale)
            )
        ),
        "sec82" => print!("{}", report::render_multifeature(&multifeature::sec82(scale))),
        "ablation_m" => print!(
            "{}",
            report::render_ablation("Ablation: block size m", &ablation::ablation_m(scale))
        ),
        "ablation_bitmap" => print!(
            "{}",
            report::render_ablation(
                "Ablation: bitmap-to-list switch threshold",
                &ablation::ablation_bitmap(scale)
            )
        ),
        "ablation_hh" => print!(
            "{}",
            report::render_ablation(
                "Ablation: Hq vs. Hh bookkeeping",
                &ablation::ablation_hh(scale)
            )
        ),
        "headline" => {
            let h = figures::headline(scale);
            println!("== Headline statistics (Hq, k = 10) ==");
            println!(
                "average fraction of the collection pruned after 1/5 of the dims: {:.1}%",
                h.pruned_after_fifth * 100.0
            );
            println!("average dimensions needed to isolate the top k: {:.1}", h.avg_dims_to_top_k);
        }
        "checks" => {
            println!("== Qualitative shape checks ==");
            let mut failed = 0;
            for (name, ok) in figures::check_shapes(scale) {
                println!("[{}] {name}", if ok { "PASS" } else { "FAIL" });
                if !ok {
                    failed += 1;
                }
            }
            if failed > 0 {
                eprintln!("{failed} shape checks failed");
            }
        }
        other => {
            eprintln!("unknown experiment id: {other}");
            return;
        }
    }
    println!("({id} finished in {:.1} s)\n", start.elapsed().as_secs_f64());
}
