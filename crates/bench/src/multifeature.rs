//! The multi-feature experiment of Section 8.2: synchronized BOND search in
//! two feature collections vs. per-feature search followed by stream
//! merging. The paper reports synchronized search to be ~20 % faster for the
//! `average` aggregate and ~70 % faster for the `min` aggregate, granting
//! the stream-merging baseline the (unknowable in practice) optimal
//! per-stream depth; this harness reproduces that protocol.

use std::time::Instant;

use bond::{
    BlockSchedule, BondParams, BondSearcher, DimensionOrdering, FeatureMetricKind, FeatureQuery,
    MultiFeatureSearcher,
};
use bond_baselines::{merge_streams, RankedStream};
use bond_metrics::DecomposableMetric;
use bond_metrics::{FuzzyMin, ScoreAggregate, SquaredEuclidean, WeightedAverage};
use vdstore::topk::Scored;
use vdstore::DecomposedTable;

use crate::{workloads, ExperimentScale};

/// Result of one aggregate's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFeatureComparison {
    /// Aggregate name ("average" or "min").
    pub aggregate: String,
    /// Mean synchronized-search time per query (ms).
    pub synchronized_ms: f64,
    /// Mean stream-merging time per query (ms), including the per-feature
    /// searches at the optimal depth.
    pub stream_merge_ms: f64,
    /// The optimal per-stream depth granted to the baseline.
    pub optimal_stream_depth: usize,
    /// Whether both methods returned identical top-k sets for every query.
    pub results_agree: bool,
}

/// Runs the Section 8.2 experiment for both aggregates.
pub fn sec82(scale: ExperimentScale) -> Vec<MultiFeatureComparison> {
    let color = workloads::clustered_feature(scale, 64, 0xC0105);
    let texture = workloads::clustered_feature(scale, 128, 0x7E97);
    let queries = workloads::queries(&color, scale);
    let texture_queries = workloads::queries(&texture, scale);
    let k = 10;

    let average = WeightedAverage::uniform(2).expect("two features");
    let min = FuzzyMin;
    vec![
        compare(&color, &texture, &queries, &texture_queries, &average, "average", k),
        compare(&color, &texture, &queries, &texture_queries, &min, "min", k),
    ]
}

fn similarity_of(table: &DecomposedTable, row: u32, query: &[f64]) -> f64 {
    let d = SquaredEuclidean.score(&table.row(row).expect("row in range"), query);
    SquaredEuclidean::similarity_from_distance(d, table.dims())
}

fn topk_rows(hits: &[Scored]) -> Vec<u32> {
    let mut rows: Vec<u32> = hits.iter().map(|h| h.row).collect();
    rows.sort_unstable();
    rows
}

#[allow(clippy::too_many_arguments)]
fn compare(
    color: &DecomposedTable,
    texture: &DecomposedTable,
    color_queries: &[Vec<f64>],
    texture_queries: &[Vec<f64>],
    aggregate: &dyn ScoreAggregate,
    label: &str,
    k: usize,
) -> MultiFeatureComparison {
    let searcher = MultiFeatureSearcher::new(vec![color, texture]).expect("same row space");
    let color_searcher = BondSearcher::new(color);
    let texture_searcher = BondSearcher::new(texture);
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };

    let mut sync_total = 0.0;
    let mut merge_total = 0.0;
    let mut max_depth = 0usize;
    let mut agree = true;

    for (cq, tq) in color_queries.iter().zip(texture_queries) {
        // --- synchronized BOND search ---
        let feature_queries = vec![
            FeatureQuery { query: cq.clone(), metric: FeatureMetricKind::Euclidean },
            FeatureQuery { query: tq.clone(), metric: FeatureMetricKind::Euclidean },
        ];
        let start = Instant::now();
        let sync = searcher
            .search(&feature_queries, aggregate, k, BlockSchedule::Fixed(8))
            .expect("synchronized search succeeds");
        sync_total += start.elapsed().as_secs_f64() * 1000.0;
        let sync_rows = topk_rows(&sync.hits);

        // --- stream merging at the optimal depth ---
        // Find the smallest per-stream depth that lets the merge terminate
        // correctly (the paper grants the baseline this optimum), then time
        // the whole baseline pipeline at exactly that depth.
        let mut depth = k.max(8);
        let (merge_ms, merge_rows, used_depth) = loop {
            let start = Instant::now();
            let color_stream = ranked_stream(&color_searcher, cq, depth, &params, color.dims());
            let texture_stream =
                ranked_stream(&texture_searcher, tq, depth, &params, texture.dims());
            let ra = |f: usize, row: u32| -> f64 {
                if f == 0 {
                    similarity_of(color, row, cq)
                } else {
                    similarity_of(texture, row, tq)
                }
            };
            let merged = merge_streams(&[color_stream, texture_stream], &ra, aggregate, k);
            let elapsed = start.elapsed().as_secs_f64() * 1000.0;
            if merged.complete || depth >= color.rows() {
                break (elapsed, topk_rows(&merged.hits), depth);
            }
            depth = (depth * 2).min(color.rows());
        };
        merge_total += merge_ms;
        max_depth = max_depth.max(used_depth);
        if sync_rows != merge_rows {
            agree = false;
        }
    }
    let n = color_queries.len() as f64;
    MultiFeatureComparison {
        aggregate: label.to_string(),
        synchronized_ms: sync_total / n,
        stream_merge_ms: merge_total / n,
        optimal_stream_depth: max_depth,
        results_agree: agree,
    }
}

/// A per-feature ranked stream of the `depth` most similar objects, produced
/// by a BOND Ev search in that feature collection (similarities on the
/// Equation 3 scale).
fn ranked_stream(
    searcher: &BondSearcher<'_>,
    query: &[f64],
    depth: usize,
    params: &BondParams,
    dims: usize,
) -> RankedStream {
    let depth = depth.min(searcher.table().rows());
    let outcome = searcher.euclidean_ev(query, depth, params).expect("per-feature search succeeds");
    RankedStream::new(
        outcome
            .hits
            .into_iter()
            .map(|h| Scored {
                row: h.row,
                score: SquaredEuclidean::similarity_from_distance(h.score, dims),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_and_merged_results_agree() {
        let results = sec82(ExperimentScale::Small);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.results_agree, "{} results diverged", r.aggregate);
            assert!(r.synchronized_ms > 0.0);
            assert!(r.stream_merge_ms > 0.0);
            assert!(r.optimal_stream_depth >= 10);
        }
        assert_eq!(results[0].aggregate, "average");
        assert_eq!(results[1].aggregate, "min");
    }
}
