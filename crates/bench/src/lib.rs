//! # bond-bench — the experiment harness
//!
//! One module per evaluation artifact of the paper:
//!
//! * [`workloads`] — builds the datasets and query sets every experiment
//!   shares (Corel-like histograms, clustered vectors, weight vectors);
//! * [`figures`] — regenerates the pruning-efficiency figures (Figures 2 and
//!   4–11): every function returns the plotted series as plain data;
//! * [`tables`] — regenerates the worked example (Table 2) and the response
//!   time tables (Tables 3 and 4);
//! * [`multifeature`] — the synchronized-search vs. stream-merging
//!   experiment of Section 8.2;
//! * [`ablation`] — ablations of BOND's own design choices (block size `m`,
//!   bitmap-to-list switch point, Hh bookkeeping);
//! * [`report`] — plain-text rendering used by the `experiments` binary.
//!
//! The binary `experiments` dispatches on an experiment id (`fig4`,
//! `table3`, `all`, …) and a `--scale` flag; see `EXPERIMENTS.md` at the
//! repository root for the recorded outputs and their comparison against the
//! paper.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ablation;
pub mod figures;
pub mod multifeature;
pub mod report;
pub mod tables;
pub mod workloads;

/// How large the generated datasets are.
///
/// The paper's datasets (59,619 × 166 histograms; 100,000 × 128 clustered
/// vectors) are reproduced by [`ExperimentScale::Paper`]; the smaller scales
/// keep the full pipeline identical but run in seconds, which is what the
/// test-suite and the default `experiments` invocation use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Tiny datasets for unit tests (hundreds of vectors).
    Small,
    /// Default for the `experiments` binary (tens of thousands of vectors).
    Medium,
    /// The paper's dataset sizes.
    Paper,
}

impl ExperimentScale {
    /// Number of Corel-like histograms.
    pub fn corel_vectors(&self) -> usize {
        match self {
            ExperimentScale::Small => 2_000,
            ExperimentScale::Medium => 20_000,
            ExperimentScale::Paper => 59_619,
        }
    }

    /// Number of clustered vectors (Section 7.5 datasets).
    pub fn clustered_vectors(&self) -> usize {
        match self {
            ExperimentScale::Small => 2_000,
            ExperimentScale::Medium => 20_000,
            ExperimentScale::Paper => 100_000,
        }
    }

    /// Number of sample queries per experiment (the paper uses 100).
    pub fn queries(&self) -> usize {
        match self {
            ExperimentScale::Small => 10,
            ExperimentScale::Medium => 40,
            ExperimentScale::Paper => 100,
        }
    }

    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(ExperimentScale::Small),
            "medium" => Some(ExperimentScale::Medium),
            "paper" => Some(ExperimentScale::Paper),
            _ => None,
        }
    }
}

/// Maps `f` over `items` in parallel using scoped threads (one chunk per
/// available core). Results come back in input order. Used by the figure
/// harness to spread the per-query searches of an experiment over cores —
/// the searches are independent, exactly like the paper's 100-query batches.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    if items.len() <= 1 || threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (input, output) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (i, item) in input.iter().enumerate() {
                    output[i] = Some(f(item));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("all chunks processed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..103).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[5u64], |&x| x + 1), vec![6]);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(ExperimentScale::Small.corel_vectors() < ExperimentScale::Medium.corel_vectors());
        assert!(ExperimentScale::Medium.corel_vectors() < ExperimentScale::Paper.corel_vectors());
        assert_eq!(ExperimentScale::Paper.corel_vectors(), 59_619);
        assert_eq!(ExperimentScale::Paper.clustered_vectors(), 100_000);
        assert_eq!(ExperimentScale::Paper.queries(), 100);
    }

    #[test]
    fn parse_scale() {
        assert_eq!(ExperimentScale::parse("small"), Some(ExperimentScale::Small));
        assert_eq!(ExperimentScale::parse("MEDIUM"), Some(ExperimentScale::Medium));
        assert_eq!(ExperimentScale::parse("paper"), Some(ExperimentScale::Paper));
        assert_eq!(ExperimentScale::parse("huge"), None);
    }
}
