//! Shared datasets and query sets.

use bond_datagen::{sample_queries, ClusteredConfig, CorelLikeConfig};
use vdstore::DecomposedTable;

use crate::ExperimentScale;

/// The Corel-like histogram collection at the standard 166-bin
/// dimensionality (Section 7.1's dataset).
pub fn corel(scale: ExperimentScale) -> DecomposedTable {
    CorelLikeConfig { vectors: scale.corel_vectors(), dims: 166, ..CorelLikeConfig::default() }
        .generate()
}

/// The Corel-like collection at an arbitrary dimensionality (Figure 8 uses
/// 26, 52, 166 and 260 bins).
pub fn corel_with_dims(scale: ExperimentScale, dims: usize) -> DecomposedTable {
    CorelLikeConfig { vectors: scale.corel_vectors(), dims, ..CorelLikeConfig::default() }
        .with_dims(dims)
        .generate()
}

/// The clustered dataset of Section 7.5 for a given center skew θ.
pub fn clustered(scale: ExperimentScale, theta: f64) -> DecomposedTable {
    ClusteredConfig {
        vectors: scale.clustered_vectors(),
        dims: 128,
        clusters: 1000.min(scale.clustered_vectors() / 20).max(4),
        theta,
        ..ClusteredConfig::default()
    }
    .generate()
}

/// A clustered feature collection with arbitrary dimensionality (Section 8.2
/// uses 64- and 128-dimensional feature sets).
pub fn clustered_feature(scale: ExperimentScale, dims: usize, seed: u64) -> DecomposedTable {
    ClusteredConfig {
        vectors: scale.clustered_vectors(),
        dims,
        clusters: 1000.min(scale.clustered_vectors() / 20).max(4),
        theta: 1.0,
        seed,
        ..ClusteredConfig::default()
    }
    .generate()
}

/// The query workload: `scale.queries()` vectors sampled from the collection
/// (the paper's protocol).
pub fn queries(table: &DecomposedTable, scale: ExperimentScale) -> Vec<Vec<f64>> {
    sample_queries(table, scale.queries(), 0x5EED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corel_workload_shape() {
        let t = corel(ExperimentScale::Small);
        assert_eq!(t.dims(), 166);
        assert_eq!(t.rows(), 2000);
        let q = queries(&t, ExperimentScale::Small);
        assert_eq!(q.len(), 10);
        assert_eq!(q[0].len(), 166);
    }

    #[test]
    fn dimensionality_sweep_shapes() {
        for dims in [26, 52] {
            let t = corel_with_dims(ExperimentScale::Small, dims);
            assert_eq!(t.dims(), dims);
        }
    }

    #[test]
    fn clustered_workload_shape() {
        let t = clustered(ExperimentScale::Small, 0.5);
        assert_eq!(t.dims(), 128);
        assert_eq!(t.rows(), 2000);
        let f = clustered_feature(ExperimentScale::Small, 64, 7);
        assert_eq!(f.dims(), 64);
    }
}
