//! Ablations of BOND's own design choices (Section 5 / Section 6.1).
//!
//! These do not correspond to a numbered figure of the paper but to design
//! decisions its text discusses qualitatively: the block size `m`, the
//! bitmap-to-materialised-candidate-list switch, and whether Hh's extra
//! bookkeeping pays for its better pruning.

use std::time::Instant;

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering};

use crate::{workloads, ExperimentScale};

/// One measurement of an ablation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// The configuration being measured (e.g. "m = 8").
    pub configuration: String,
    /// Mean response time per query in milliseconds.
    pub avg_ms: f64,
    /// Mean number of per-dimension contribution evaluations per query.
    pub avg_contributions: f64,
}

fn run_sweep(
    scale: ExperimentScale,
    configurations: Vec<(String, BondParams, bool)>,
) -> Vec<AblationPoint> {
    let table = workloads::corel(scale);
    let queries = workloads::queries(&table, scale);
    let searcher = BondSearcher::new(&table);
    let _ = searcher.row_sums();
    let k = 10;
    configurations
        .into_iter()
        .map(|(configuration, params, use_hh)| {
            let mut total_ms = 0.0;
            let mut total_contributions = 0u64;
            for q in &queries {
                let start = Instant::now();
                let outcome = if use_hh {
                    searcher.histogram_intersection_hh(q, k, &params)
                } else {
                    searcher.histogram_intersection_hq(q, k, &params)
                }
                .expect("search succeeds");
                total_ms += start.elapsed().as_secs_f64() * 1000.0;
                total_contributions += outcome.trace.contributions_evaluated;
            }
            let n = queries.len() as f64;
            AblationPoint {
                configuration,
                avg_ms: total_ms / n,
                avg_contributions: total_contributions as f64 / n,
            }
        })
        .collect()
}

/// Sweep of the block size `m` (Section 5.2): smaller blocks prune earlier
/// but pay the κ computation more often.
pub fn ablation_m(scale: ExperimentScale) -> Vec<AblationPoint> {
    let configurations = [2usize, 4, 8, 16, 32, 64]
        .iter()
        .map(|&m| {
            (
                format!("m = {m}"),
                BondParams {
                    schedule: BlockSchedule::Fixed(m),
                    ordering: DimensionOrdering::QueryValueDescending,
                    ..BondParams::default()
                },
                false,
            )
        })
        .collect();
    run_sweep(scale, configurations)
}

/// Sweep of the bitmap-to-list switch threshold (Section 6.1): `0.0` never
/// materialises the candidate list, `1.0` materialises it after the first
/// pruning attempt.
pub fn ablation_bitmap(scale: ExperimentScale) -> Vec<AblationPoint> {
    let configurations = [0.0f64, 0.01, 0.05, 0.25, 1.0]
        .iter()
        .map(|&threshold| {
            (
                format!("switch at density {threshold}"),
                BondParams {
                    schedule: BlockSchedule::Fixed(8),
                    ordering: DimensionOrdering::QueryValueDescending,
                    materialize_threshold: threshold,
                    ..BondParams::default()
                },
                false,
            )
        })
        .collect();
    run_sweep(scale, configurations)
}

/// Hq vs. Hh (Section 7.1 / Table 3): does the extra `T(h⁻)` bookkeeping pay
/// for the better pruning?
pub fn ablation_hh(scale: ExperimentScale) -> Vec<AblationPoint> {
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };
    run_sweep(
        scale,
        vec![
            ("Hq (no bookkeeping)".to_string(), params.clone(), false),
            ("Hh (tracks T(h-))".to_string(), params, true),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_sweep_produces_all_points() {
        let points = ablation_m(ExperimentScale::Small);
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(p.avg_ms >= 0.0);
            assert!(p.avg_contributions > 0.0);
        }
        // tiny blocks and huge blocks should both do more contribution work
        // than the paper's m = 8 sweet spot... at minimum, a single huge
        // block (m = 64) must evaluate more contributions than m = 8.
        let by = |cfg: &str| points.iter().find(|p| p.configuration == cfg).unwrap().clone();
        assert!(by("m = 64").avg_contributions >= by("m = 8").avg_contributions);
    }

    #[test]
    fn bitmap_sweep_and_hh_comparison_run() {
        let bitmap = ablation_bitmap(ExperimentScale::Small);
        assert_eq!(bitmap.len(), 5);
        let hh = ablation_hh(ExperimentScale::Small);
        assert_eq!(hh.len(), 2);
        // Hh never evaluates more contributions than Hq (it prunes at least
        // as aggressively)
        assert!(hh[1].avg_contributions <= hh[0].avg_contributions * 1.05);
    }
}
