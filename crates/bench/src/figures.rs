//! Regeneration of the pruning-efficiency figures (Figures 2 and 4–11).
//!
//! Every function runs the paper's workload for one figure and returns the
//! plotted series as data (candidates surviving vs. dimensions processed,
//! aggregated over the query set as best / average / worst), so the caller
//! can print, plot or assert on them.

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering, PruneTrace};
use bond_metrics::{EqRule, HistogramIntersection, SquaredEuclidean};
use vdstore::{DatasetStats, DecomposedTable, QuantizedTable};

use crate::{workloads, ExperimentScale};

/// One plotted line: surviving candidates against processed dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct PruningSeries {
    /// Legend label ("Hq", "Ev, θ=0.5", ...).
    pub label: String,
    /// Collection size the series is relative to.
    pub total_rows: usize,
    /// X axis: dimensions processed.
    pub dims: Vec<usize>,
    /// Best case over the query set (fewest survivors).
    pub best: Vec<usize>,
    /// Average over the query set.
    pub avg: Vec<f64>,
    /// Worst case over the query set (most survivors).
    pub worst: Vec<usize>,
}

impl PruningSeries {
    /// Average surviving fraction after roughly `fraction` of the dimensions
    /// have been processed (used by the shape assertions in the tests and in
    /// EXPERIMENTS.md).
    pub fn avg_survivors_at_fraction(&self, fraction: f64) -> f64 {
        if self.dims.is_empty() {
            return self.total_rows as f64;
        }
        let target = (*self.dims.last().unwrap() as f64 * fraction).round() as usize;
        let mut value = self.total_rows as f64;
        for (i, &d) in self.dims.iter().enumerate() {
            if d <= target {
                value = self.avg[i];
            }
        }
        value
    }
}

/// Aggregates per-query traces into a best/avg/worst series sampled at every
/// `step` dimensions.
pub fn aggregate_traces(
    label: &str,
    traces: &[PruneTrace],
    total_rows: usize,
    total_dims: usize,
    step: usize,
) -> PruningSeries {
    let mut dims = Vec::new();
    let mut best = Vec::new();
    let mut avg = Vec::new();
    let mut worst = Vec::new();
    let mut d = step.max(1);
    while d <= total_dims {
        let counts: Vec<usize> = traces.iter().map(|t| t.candidates_after(d, total_rows)).collect();
        dims.push(d);
        best.push(counts.iter().copied().min().unwrap_or(total_rows));
        worst.push(counts.iter().copied().max().unwrap_or(total_rows));
        avg.push(counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64);
        d += step.max(1);
    }
    PruningSeries { label: label.to_string(), total_rows, dims, best, avg, worst }
}

/// The dataset statistics of Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// Mean value per bin (upper plot).
    pub mean_per_bin: Vec<f64>,
    /// Mean sorted (decreasing) per-histogram value profile (lower plot).
    pub mean_sorted_profile: Vec<f64>,
    /// Fraction of a histogram's mass carried by its top 10 % of bins.
    pub mass_concentration_top10: f64,
}

/// Figure 2: statistics of the (Corel-like) histogram collection.
pub fn fig2(scale: ExperimentScale) -> Fig2 {
    let table = workloads::corel(scale);
    let stats = DatasetStats::compute(&table);
    Fig2 {
        mass_concentration_top10: stats.mass_concentration(0.1),
        mean_per_bin: stats.mean_per_dim,
        mean_sorted_profile: stats.mean_sorted_profile,
    }
}

fn default_params(m: usize) -> BondParams {
    BondParams {
        schedule: BlockSchedule::Fixed(m),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    }
}

fn run_histogram(
    table: &DecomposedTable,
    queries: &[Vec<f64>],
    k: usize,
    params: &BondParams,
    use_hh: bool,
) -> Vec<PruneTrace> {
    let searcher = BondSearcher::new(table);
    let _ = searcher.row_sums();
    crate::par_map(queries, |q| {
        let outcome = if use_hh {
            searcher.histogram_intersection_hh(q, k, params)
        } else {
            searcher.histogram_intersection_hq(q, k, params)
        };
        outcome.expect("search succeeds").trace
    })
}

fn run_euclidean(
    table: &DecomposedTable,
    queries: &[Vec<f64>],
    k: usize,
    params: &BondParams,
    use_ev: bool,
) -> Vec<PruneTrace> {
    let searcher = BondSearcher::new(table);
    let _ = searcher.row_sums();
    crate::par_map(queries, |q| {
        let outcome = if use_ev {
            searcher.euclidean_ev(q, k, params)
        } else {
            searcher.euclidean_eq(q, k, params)
        };
        outcome.expect("search succeeds").trace
    })
}

/// Figure 4: pruning efficiency of Hq and Hh on the histogram collection
/// (k = 10, m = 8, dimensions in decreasing query order).
pub fn fig4(scale: ExperimentScale) -> Vec<PruningSeries> {
    let table = workloads::corel(scale);
    let queries = workloads::queries(&table, scale);
    let params = default_params(8);
    let hq = run_histogram(&table, &queries, 10, &params, false);
    let hh = run_histogram(&table, &queries, 10, &params, true);
    vec![
        aggregate_traces("Hq", &hq, table.rows(), table.dims(), 8),
        aggregate_traces("Hh", &hh, table.rows(), table.dims(), 8),
    ]
}

/// Figure 5: pruning efficiency of Eq and Ev on the same collection under
/// squared Euclidean distance.
pub fn fig5(scale: ExperimentScale) -> Vec<PruningSeries> {
    let table = workloads::corel(scale);
    let queries = workloads::queries(&table, scale);
    let params = default_params(8);
    let eq = run_euclidean(&table, &queries, 10, &params, false);
    let ev = run_euclidean(&table, &queries, 10, &params, true);
    vec![
        aggregate_traces("Eq", &eq, table.rows(), table.dims(), 8),
        aggregate_traces("Ev", &ev, table.rows(), table.dims(), 8),
    ]
}

/// Figure 6: effect of `k` on the pruning of Hq (k ∈ {1, 10, 100, 1000}).
pub fn fig6(scale: ExperimentScale) -> Vec<PruningSeries> {
    let table = workloads::corel(scale);
    let queries = workloads::queries(&table, scale);
    let params = default_params(8);
    let max_k = table.rows();
    [1usize, 10, 100, 1000]
        .iter()
        .filter(|&&k| k <= max_k)
        .map(|&k| {
            let traces = run_histogram(&table, &queries, k, &params, false);
            aggregate_traces(&format!("k={k}"), &traces, table.rows(), table.dims(), 8)
        })
        .collect()
}

/// Figure 7: effect of the dimension ordering on Hq (decreasing query value,
/// random, increasing query value).
pub fn fig7(scale: ExperimentScale) -> Vec<PruningSeries> {
    let table = workloads::corel(scale);
    let queries = workloads::queries(&table, scale);
    let orderings = [
        ("descending q", DimensionOrdering::QueryValueDescending),
        ("random", DimensionOrdering::Random { seed: 17 }),
        ("ascending q", DimensionOrdering::QueryValueAscending),
    ];
    orderings
        .into_iter()
        .map(|(label, ordering)| {
            let params =
                BondParams { schedule: BlockSchedule::Fixed(8), ordering, ..BondParams::default() };
            let traces = run_histogram(&table, &queries, 10, &params, false);
            aggregate_traces(label, &traces, table.rows(), table.dims(), 8)
        })
        .collect()
}

/// Figure 8: impact of dimensionality on Ev (26-, 52-, 166- and
/// 260-dimensional histogram collections).
pub fn fig8(scale: ExperimentScale) -> Vec<PruningSeries> {
    [26usize, 52, 166, 260]
        .iter()
        .map(|&dims| {
            let table = workloads::corel_with_dims(scale, dims);
            let queries = workloads::queries(&table, scale);
            let params = default_params((dims / 20).max(2));
            let traces = run_euclidean(&table, &queries, 10, &params, true);
            aggregate_traces(
                &format!("{dims} dims"),
                &traces,
                table.rows(),
                dims,
                (dims / 20).max(2),
            )
        })
        .collect()
}

/// Figure 9: Hq pruning on exact vs. 8-bit-quantized fragments.
pub fn fig9(scale: ExperimentScale) -> Vec<PruningSeries> {
    let table = workloads::corel(scale);
    let queries = workloads::queries(&table, scale);
    let params = default_params(8);
    let exact = run_histogram(&table, &queries, 10, &params, false);
    let quantized = QuantizedTable::from_table(&table, 8).expect("quantization succeeds");
    let compressed: Vec<PruneTrace> = queries
        .iter()
        .map(|q| {
            bond::compressed_filter_histogram(
                &quantized,
                q,
                10,
                BlockSchedule::Fixed(8),
                &DimensionOrdering::QueryValueDescending,
            )
            .expect("filter succeeds")
            .trace
        })
        .collect();
    vec![
        aggregate_traces("Hq exact", &exact, table.rows(), table.dims(), 8),
        aggregate_traces("Hq 8-bit codes", &compressed, table.rows(), table.dims(), 8),
    ]
}

/// Figure 10: effect of the cluster-center skew θ on Ev over the clustered
/// datasets of Section 7.5.
pub fn fig10(scale: ExperimentScale) -> Vec<PruningSeries> {
    [0.0f64, 0.5, 1.0, 2.0]
        .iter()
        .map(|&theta| {
            let table = workloads::clustered(scale, theta);
            let queries = workloads::queries(&table, scale);
            let params = default_params(8);
            let traces = run_euclidean(&table, &queries, 10, &params, true);
            aggregate_traces(&format!("theta={theta}"), &traces, table.rows(), table.dims(), 8)
        })
        .collect()
}

/// Figure 11: effect of the weight skew on weighted Euclidean search over
/// the θ = 0 clustered dataset. The series are labeled by the fraction of
/// total weight carried by the top 10 % of dimensions.
pub fn fig11(scale: ExperimentScale) -> Vec<PruningSeries> {
    let table = workloads::clustered(scale, 0.0);
    let queries = workloads::queries(&table, scale);
    let searcher = BondSearcher::new(&table);
    [0.1f64, 0.5, 0.75, 0.9, 0.99]
        .iter()
        .map(|&mass| {
            let weights = bond_datagen::concentrated_weights(table.dims(), 0.1, mass, 0x000F_1611);
            let params = default_params(8);
            let traces: Vec<PruneTrace> = crate::par_map(&queries, |q| {
                searcher
                    .weighted_euclidean(q, &weights, 10, &params)
                    .expect("search succeeds")
                    .trace
            });
            aggregate_traces(
                &format!("{:.0}% of weight on top 10% dims", mass * 100.0),
                &traces,
                table.rows(),
                table.dims(),
                8,
            )
        })
        .collect()
}

/// The paper's headline statistic (Section 7.1): the average number of
/// dimensions after which the candidate set first contained only the top-k
/// images, and the average fraction of images discarded after one fifth of
/// the dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineStats {
    /// Average fraction of the collection pruned after 20 % of the dims.
    pub pruned_after_fifth: f64,
    /// Average number of dimensions needed to isolate the top k.
    pub avg_dims_to_top_k: f64,
}

/// Computes the headline statistics for Hq on the histogram workload.
pub fn headline(scale: ExperimentScale) -> HeadlineStats {
    let table = workloads::corel(scale);
    let queries = workloads::queries(&table, scale);
    let params = default_params(8);
    let traces = run_histogram(&table, &queries, 10, &params, false);
    let rows = table.rows() as f64;
    let fifth = (table.dims() as f64 * 0.2).round() as usize;
    let pruned_after_fifth = traces
        .iter()
        .map(|t| 1.0 - t.candidates_after(fifth, table.rows()) as f64 / rows)
        .sum::<f64>()
        / traces.len() as f64;
    let avg_dims_to_top_k =
        traces.iter().map(|t| t.dims_to_reach(10).unwrap_or(table.dims()) as f64).sum::<f64>()
            / traces.len() as f64;
    HeadlineStats { pruned_after_fifth, avg_dims_to_top_k }
}

/// Sanity checks on the figure series used by both the experiments binary
/// and the integration tests: the qualitative claims of the paper that must
/// hold at any scale.
pub fn check_shapes(scale: ExperimentScale) -> Vec<(String, bool)> {
    let mut checks = Vec::new();
    let f4 = fig4(scale);
    let hq_late = f4[0].avg_survivors_at_fraction(0.5) / f4[0].total_rows as f64;
    checks.push((
        "fig4: Hq discards most of the collection by half of the dimensions".to_string(),
        hq_late < 0.1,
    ));
    let hh_fifth = f4[1].avg_survivors_at_fraction(0.2);
    let hq_fifth = f4[0].avg_survivors_at_fraction(0.2);
    checks
        .push(("fig4: Hh prunes at least as well as Hq".to_string(), hh_fifth <= hq_fifth * 1.05));

    let f5 = fig5(scale);
    let eq_late = f5[0].avg_survivors_at_fraction(0.8) / f5[0].total_rows as f64;
    let ev_late = f5[1].avg_survivors_at_fraction(0.8) / f5[1].total_rows as f64;
    checks.push(("fig5: Eq prunes hardly anything".to_string(), eq_late > 0.9));
    checks.push(("fig5: Ev prunes far more than Eq".to_string(), ev_late < eq_late * 0.5));

    let f7 = fig7(scale);
    let desc = f7[0].avg_survivors_at_fraction(0.3);
    let asc = f7[2].avg_survivors_at_fraction(0.3);
    checks.push((
        "fig7: descending-q ordering prunes earlier than ascending-q".to_string(),
        desc < asc,
    ));

    let f10 = fig10(scale);
    let uniform = f10[0].avg_survivors_at_fraction(0.5) / f10[0].total_rows as f64;
    let skewed =
        f10.last().unwrap().avg_survivors_at_fraction(0.5) / f10.last().unwrap().total_rows as f64;
    checks.push(("fig10: data skew favours pruning".to_string(), skewed < uniform));

    let f11 = fig11(scale);
    let uniform_w = f11[0].avg_survivors_at_fraction(0.5);
    let skewed_w = f11.last().unwrap().avg_survivors_at_fraction(0.5);
    checks.push((
        "fig11: strongly skewed weights prune better than uniform weights".to_string(),
        skewed_w < uniform_w,
    ));
    checks
}

/// Ensures the Eq rule exists in the public API (it is exercised in fig5);
/// kept as a compile-time anchor for the re-export.
#[allow(dead_code)]
fn _anchor() {
    let _ = EqRule::new();
    let _ = HistogramIntersection;
    let _ = SquaredEuclidean;
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: ExperimentScale = ExperimentScale::Small;

    #[test]
    fn fig2_statistics_are_skewed_and_normalized() {
        let f = fig2(SCALE);
        assert_eq!(f.mean_per_bin.len(), 166);
        assert!(f.mass_concentration_top10 > 0.5);
        // profile is non-increasing
        for w in f.mean_sorted_profile.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn fig4_prunes_fast_on_histogram_data() {
        let series = fig4(SCALE);
        assert_eq!(series.len(), 2);
        let hq = &series[0];
        // "more than 98% of the images are discarded after on average just
        // 1/5 of the dimensions" — allow a margin at the small test scale.
        let surviving = hq.avg_survivors_at_fraction(0.2) / hq.total_rows as f64;
        assert!(surviving < 0.15, "Hq leaves {surviving:.2} of the collection after 1/5 of dims");
        // best <= avg <= worst everywhere
        for i in 0..hq.dims.len() {
            assert!(hq.best[i] as f64 <= hq.avg[i] + 1e-9);
            assert!(hq.avg[i] <= hq.worst[i] as f64 + 1e-9);
        }
    }

    #[test]
    fn fig6_larger_k_prunes_later() {
        let series = fig6(SCALE);
        assert!(series.len() >= 3);
        let k1 = series[0].avg_survivors_at_fraction(0.3);
        let k100 = series[2].avg_survivors_at_fraction(0.3);
        assert!(k1 <= k100 * 1.2 + 5.0, "k=1 ({k1}) should not prune worse than k=100 ({k100})");
    }

    #[test]
    fn fig9_compressed_follows_exact_trend() {
        let series = fig9(SCALE);
        assert_eq!(series.len(), 2);
        let exact = series[0].avg_survivors_at_fraction(0.5);
        let codes = series[1].avg_survivors_at_fraction(0.5);
        // quantization slack can only leave more candidates, but the trend
        // must be similar (within the same order of magnitude)
        assert!(codes + 1.0 >= exact);
        assert!(codes < series[1].total_rows as f64 * 0.2);
    }

    #[test]
    fn qualitative_shape_checks_pass_at_small_scale() {
        for (name, ok) in check_shapes(SCALE) {
            assert!(ok, "shape check failed: {name}");
        }
    }

    #[test]
    fn headline_statistics() {
        let h = headline(SCALE);
        assert!(h.pruned_after_fifth > 0.85, "pruned {:.3} after 1/5 dims", h.pruned_after_fifth);
        assert!(h.avg_dims_to_top_k <= 166.0);
    }
}
