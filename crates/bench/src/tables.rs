//! Regeneration of the paper's tables: the worked example (Table 2) and the
//! response-time comparisons (Tables 3 and 4).

use std::time::Instant;

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering};
use bond_baselines::{sequential_scan, VaFile};
use bond_metrics::{
    CandidateState, DecomposableMetric, HhRule, HistogramIntersection, HqRule, PruningRule,
    SquaredEuclidean,
};
use vdstore::{QuantizedTable, RowMatrix};

use crate::{workloads, ExperimentScale};

/// Simple summary statistics over per-query response times (milliseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingStats {
    /// Fastest query.
    pub min_ms: f64,
    /// Slowest query.
    pub max_ms: f64,
    /// Mean over all queries.
    pub avg_ms: f64,
    /// Median over all queries.
    pub median_ms: f64,
}

impl TimingStats {
    /// Computes the statistics from raw per-query times in milliseconds.
    pub fn from_times(mut times: Vec<f64>) -> Self {
        assert!(!times.is_empty(), "need at least one measurement");
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = times.len();
        let median =
            if n % 2 == 1 { times[n / 2] } else { 0.5 * (times[n / 2 - 1] + times[n / 2]) };
        TimingStats {
            min_ms: times[0],
            max_ms: times[n - 1],
            avg_ms: times.iter().sum::<f64>() / n as f64,
            median_ms: median,
        }
    }
}

/// One row of a timing table.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingRow {
    /// Method name ("Hq", "SSH", "VA-file filter", ...).
    pub method: String,
    /// Response-time statistics across the query workload.
    pub stats: TimingStats,
}

/// One row of the worked example of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Histogram label ("h1" ... "h9").
    pub name: String,
    /// The histogram itself.
    pub histogram: Vec<f64>,
    /// Partial similarity `S(h⁻, q⁻)` for m = 2.
    pub s_minus: f64,
    /// Lower bound `S_min` under Hh.
    pub s_min: f64,
    /// Upper bound `S_max` under Hh.
    pub s_max: f64,
    /// Exact similarity `S(h, q)`.
    pub s_full: f64,
    /// Whether Hq prunes this histogram after the first iteration.
    pub pruned_by_hq: bool,
    /// Whether Hh prunes this histogram after the first iteration.
    pub pruned_by_hh: bool,
}

/// The collection of the worked example, exactly as printed in Table 2
/// (h1 is only partially legible in the paper; a histogram consistent with
/// its reported partial sums is used).
pub fn table2_collection() -> Vec<Vec<f64>> {
    vec![
        vec![0.1, 0.3, 0.4, 0.2],
        vec![0.05, 0.05, 0.9, 0.0],
        vec![0.8, 0.1, 0.05, 0.05],
        vec![0.2, 0.6, 0.1, 0.1],
        vec![0.7, 0.15, 0.15, 0.0],
        vec![0.925, 0.0, 0.0, 0.025],
        vec![0.55, 0.2, 0.15, 0.1],
        vec![0.05, 0.1, 0.05, 0.8],
        vec![0.45, 0.5, 0.05, 0.05],
    ]
}

/// The query of the worked example.
pub fn table2_query() -> Vec<f64> {
    vec![0.7, 0.15, 0.1, 0.05]
}

/// Recomputes every column of Table 2 (m = 2, k = 3).
pub fn table2() -> Vec<Table2Row> {
    let collection = table2_collection();
    let query = table2_query();
    let metric = HistogramIntersection;
    let scanned = [0usize, 1];
    let remaining = [2usize, 3];
    let mut hq = HqRule::new();
    let mut hh = HhRule::new();
    hq.prepare(&query, &remaining);
    hh.prepare(&query, &remaining);

    // Bounds for every histogram.
    let states: Vec<(f64, CandidateState)> = collection
        .iter()
        .map(|h| {
            let partial = metric.partial_score(&scanned, h, &query);
            (
                partial,
                CandidateState { partial, scanned_mass: h[0] + h[1], total_mass: h.iter().sum() },
            )
        })
        .collect();

    // κ values for k = 3.
    let mut hq_lowers: Vec<f64> = states.iter().map(|(p, _)| *p).collect();
    hq_lowers.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let kappa_hq = hq_lowers[2];
    let mut hh_lowers: Vec<f64> = states.iter().map(|(_, s)| hh.bounds(s).0).collect();
    hh_lowers.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let kappa_hh = hh_lowers[2];

    collection
        .iter()
        .enumerate()
        .map(|(i, h)| {
            let (partial, state) = &states[i];
            let (s_min, s_max) = hh.bounds(state);
            let (_, hq_upper) = hq.bounds(&CandidateState::partial_only(*partial));
            Table2Row {
                name: format!("h{}", i + 1),
                histogram: h.clone(),
                s_minus: *partial,
                s_min,
                s_max,
                s_full: metric.score(h, &query),
                pruned_by_hq: hq_upper < kappa_hq,
                pruned_by_hh: s_max < kappa_hh,
            }
        })
        .collect()
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1000.0
}

/// Table 3: response times of BOND (Hq, Hh, Ev) against sequential scan
/// (SSH, SSE) on the 166-dimensional histogram workload, k = 10.
pub fn table3(scale: ExperimentScale) -> Vec<TimingRow> {
    let table = workloads::corel(scale);
    let matrix = table.to_row_matrix();
    let queries = workloads::queries(&table, scale);
    let searcher = BondSearcher::new(&table);
    // materialize T(v) once up front so Ev timings do not include it,
    // mirroring the paper's setup where the sum table is part of the store
    let _ = searcher.row_sums();
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };
    let k = 10;

    let mut rows = Vec::new();
    let run = |label: &str, f: &dyn Fn(&[f64])| -> TimingRow {
        let times: Vec<f64> = queries.iter().map(|q| time_ms(|| f(q))).collect();
        TimingRow { method: label.to_string(), stats: TimingStats::from_times(times) }
    };
    rows.push(run("Hq", &|q| {
        searcher.histogram_intersection_hq(q, k, &params).expect("search succeeds");
    }));
    rows.push(run("Hh", &|q| {
        searcher.histogram_intersection_hh(q, k, &params).expect("search succeeds");
    }));
    rows.push(run("Ev", &|q| {
        searcher.euclidean_ev(q, k, &params).expect("search succeeds");
    }));
    rows.push(run("SSH (seq. scan, histogram)", &|q| {
        sequential_scan(&matrix, q, k, &HistogramIntersection);
    }));
    rows.push(run("SSE (seq. scan, Euclidean)", &|q| {
        sequential_scan(&matrix, q, k, &SquaredEuclidean);
    }));
    rows
}

/// The candidate counts and timings of Table 4: BOND-Hq on 8-bit compressed
/// fragments vs. a sequential scan of the equivalent VA-File, plus the
/// shared refinement step.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// Timing rows: compressed BOND filter, VA-File filter, refinement.
    pub rows: Vec<TimingRow>,
    /// Average number of candidates the BOND filter leaves for refinement.
    pub avg_candidates_bond: f64,
    /// Average number of candidates the VA-File filter leaves for refinement.
    pub avg_candidates_vafile: f64,
}

/// Table 4: approximate (8-bit) filtering, BOND vs. VA-File, with exact
/// refinement, k = 10.
pub fn table4(scale: ExperimentScale) -> Table4 {
    let table = workloads::corel(scale);
    let matrix = table.to_row_matrix();
    let queries = workloads::queries(&table, scale);
    let quantized = QuantizedTable::from_table(&table, 8).expect("quantization succeeds");
    let vafile = VaFile::build(&table, 8).expect("va-file build succeeds");
    let k = 10;

    let mut bond_filter_times = Vec::new();
    let mut va_filter_times = Vec::new();
    let mut refine_times = Vec::new();
    let mut bond_candidates = 0usize;
    let mut va_candidates = 0usize;
    for q in &queries {
        let mut filter = None;
        bond_filter_times.push(time_ms(|| {
            filter = Some(
                bond::compressed_filter_histogram(
                    &quantized,
                    q,
                    k,
                    BlockSchedule::Fixed(8),
                    &DimensionOrdering::QueryValueDescending,
                )
                .expect("filter succeeds"),
            );
        }));
        let filter = filter.expect("filter ran");
        bond_candidates += filter.candidates.len();

        let mut va = None;
        va_filter_times.push(time_ms(|| {
            va = Some(vafile.filter_histogram(q, k));
        }));
        va_candidates += va.expect("filter ran").0.len();

        // the refinement step is common to both approaches; time it on the
        // BOND candidate set
        refine_times.push(time_ms(|| {
            refine_histogram(&matrix, &filter.candidates, q, k);
        }));
    }
    let n = queries.len() as f64;
    Table4 {
        rows: vec![
            TimingRow {
                method: "filter step, BOND Hq on 8-bit codes".to_string(),
                stats: TimingStats::from_times(bond_filter_times),
            },
            TimingRow {
                method: "filter step, VA-File sequential scan".to_string(),
                stats: TimingStats::from_times(va_filter_times),
            },
            TimingRow {
                method: "refinement step (exact, candidates only)".to_string(),
                stats: TimingStats::from_times(refine_times),
            },
        ],
        avg_candidates_bond: bond_candidates as f64 / n,
        avg_candidates_vafile: va_candidates as f64 / n,
    }
}

fn refine_histogram(matrix: &RowMatrix, candidates: &[u32], query: &[f64], k: usize) {
    let metric = HistogramIntersection;
    let mut heap = vdstore::TopKLargest::new(k.min(candidates.len().max(1)));
    for &row in candidates {
        heap.push(row, metric.score(matrix.row(row), query));
    }
    let _ = heap.into_sorted_vec();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_stats_math() {
        let s = TimingStats::from_times(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 4.0);
        assert_eq!(s.avg_ms, 2.5);
        assert_eq!(s.median_ms, 2.5);
        let s = TimingStats::from_times(vec![5.0, 1.0, 3.0]);
        assert_eq!(s.median_ms, 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one measurement")]
    fn empty_times_panic() {
        let _ = TimingStats::from_times(vec![]);
    }

    #[test]
    fn table2_reproduces_the_paper_numbers() {
        let rows = table2();
        assert_eq!(rows.len(), 9);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        // Spot-check the rows that are clearly legible in the paper.
        let h3 = by_name("h3");
        assert!((h3.s_minus - 0.8).abs() < 1e-12);
        assert!((h3.s_min - 0.85).abs() < 1e-12);
        assert!((h3.s_max - 0.9).abs() < 1e-12);
        assert!((h3.s_full - 0.9).abs() < 1e-12);
        let h6 = by_name("h6");
        assert!((h6.s_minus - 0.7).abs() < 1e-12);
        assert!((h6.s_min - 0.725).abs() < 1e-12);
        assert!((h6.s_max - 0.725).abs() < 1e-12);
        let h5 = by_name("h5");
        assert!((h5.s_max - 1.0).abs() < 1e-12);
        assert!((h5.s_full - 0.95).abs() < 1e-12);
        // Hq prunes h1, h2, h4, h8; Hh additionally prunes h6 and h9.
        let pruned_hq: Vec<&str> =
            rows.iter().filter(|r| r.pruned_by_hq).map(|r| r.name.as_str()).collect();
        assert_eq!(pruned_hq, vec!["h1", "h2", "h4", "h8"]);
        let pruned_hh: Vec<&str> =
            rows.iter().filter(|r| r.pruned_by_hh).map(|r| r.name.as_str()).collect();
        assert_eq!(pruned_hh, vec!["h1", "h2", "h4", "h6", "h8", "h9"]);
    }

    #[test]
    fn table3_rows_have_sane_timings() {
        let rows = table3(ExperimentScale::Small);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.stats.min_ms >= 0.0);
            assert!(r.stats.min_ms <= r.stats.median_ms + 1e-9);
            assert!(r.stats.median_ms <= r.stats.max_ms + 1e-9);
        }
        assert!(rows.iter().any(|r| r.method.contains("SSH")));
    }

    #[test]
    fn table4_candidate_sets_are_small() {
        let t = table4(ExperimentScale::Small);
        assert_eq!(t.rows.len(), 3);
        // both filters must reduce the 2000-vector collection substantially
        assert!(t.avg_candidates_bond < 600.0, "bond filter left {}", t.avg_candidates_bond);
        assert!(t.avg_candidates_vafile < 600.0, "va filter left {}", t.avg_candidates_vafile);
        assert!(t.avg_candidates_bond >= 10.0);
    }
}
