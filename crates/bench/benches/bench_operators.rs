//! Micro-benchmarks of the storage-layer operators BOND is built from
//! (kfetch, uselect, bitmap iteration, quantization), plus the per-block
//! accumulation kernel. These are not a paper table; they document where the
//! per-iteration time goes and guard against regressions in the substrate.

use bond_bench::{workloads, ExperimentScale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdstore::{ops, Bitmap, QuantizedColumn};

fn bench_operators(c: &mut Criterion) {
    let table = workloads::corel(ExperimentScale::Small);
    let column = table.column(0).unwrap();
    let values = column.values();
    let rows = table.rows();

    let mut group = c.benchmark_group("operators");
    group.bench_function("kfetch_largest_k10", |b| {
        b.iter(|| black_box(ops::kfetch_largest(values, 10).unwrap()))
    });
    group.bench_function("uselect_bitmap", |b| {
        b.iter(|| black_box(ops::uselect_bitmap(values, 0.001, 1.0)))
    });
    group.bench_function("map_min_const", |b| {
        b.iter(|| black_box(ops::map_min_const(values, 0.05)))
    });
    group.bench_function("bitmap_iterate_half_full", |b| {
        let mut bitmap = Bitmap::new(rows);
        for r in (0..rows as u32).step_by(2) {
            bitmap.set(r);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for r in bitmap.iter() {
                acc += r as u64;
            }
            black_box(acc)
        })
    });
    group.bench_function("quantize_column_8bit", |b| {
        b.iter(|| black_box(QuantizedColumn::from_column(column, 8).unwrap()))
    });
    group.bench_function("accumulate_block", |b| {
        let mut partial = vec![0.0f64; rows];
        b.iter(|| {
            ops::accumulate(&mut partial, values).unwrap();
            black_box(&partial);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_operators
}
criterion_main!(benches);
