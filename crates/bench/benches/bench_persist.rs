//! Cold-open vs. warm-build: what the persistent segment store buys.
//!
//! ```text
//! cargo bench -p bond-bench --bench bench_persist
//! ```
//!
//! Builds a clustered collection, persists it as a v2 segment store, and
//! compares three ways of getting a serving engine:
//!
//! * **warm build** — the table is already in memory; the engine partitions
//!   it and computes per-segment statistics (one full scan).
//! * **cold open (heap)** — `EngineBuilder::open` decodes every fragment
//!   from disk into heap `Vec`s; stats come from the footer.
//! * **cold open (mmap)** — `EngineBuilder::open` maps the file and parses
//!   only the footer; data pages fault in lazily as the first batch scans.
//!
//! Each engine then serves the same query batch (uniform planning, so all
//! three answer bit-identically — verified) and the first-batch latency is
//! reported separately from the open latency, because under mmap that is
//! where the page-in cost moves. Ends with a machine-readable `BENCH_JSON`
//! line for the perf trajectory.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, EngineBuilder, RequestBatch, RuleKind};
use vdstore::StorageBackend;

struct Series {
    mode: &'static str,
    open_ms: f64,
    first_batch_ms: f64,
    steady_batch_ms: f64,
}

fn main() {
    let rows = 40_000;
    let dims = 32;
    let k = 10;
    let n_queries = 16;
    let partitions = 8;
    let reps = 3;

    let table = Arc::new(
        ClusteredConfig { clusters: 16, ..ClusteredConfig::small(rows, dims, 0.0) }
            .with_cluster_major(true)
            .generate(),
    );
    let queries = sample_queries(&table, n_queries, 4321);
    let batch = RequestBatch::from_queries(queries, k);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let dir = std::env::temp_dir().join(format!("bond_bench_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("store.bondvd");

    // persist once, from a throwaway engine
    let seed_engine = Engine::builder(table.clone())
        .partitions(partitions)
        .threads(1)
        .rule(RuleKind::EuclideanEv)
        .build()
        .expect("valid engine configuration");
    seed_engine.persist(&path).expect("store persists");
    let file_mb = std::fs::metadata(&path).map(|m| m.len() as f64 / 1e6).unwrap_or(0.0);
    println!(
        "persistence: {rows} rows x {dims} dims (clustered, cluster-major), {file_mb:.1} MB \
         store, {n_queries} queries, k = {k}, {partitions} partitions, {cores} cores",
    );

    let mut reference_hits = None;
    let mut series: Vec<Series> = Vec::new();
    for mode in ["warm_build", "cold_open_heap", "cold_open_mmap"] {
        let timer = Instant::now();
        let builder = match mode {
            "warm_build" => Engine::builder(table.clone()).partitions(partitions),
            "cold_open_heap" => {
                EngineBuilder::open_with(&path, StorageBackend::Heap).expect("heap open")
            }
            _ => EngineBuilder::open_with(&path, StorageBackend::Mapped).expect("mapped open"),
        };
        let engine = builder.threads(1).rule(RuleKind::EuclideanEv).build().expect("engine builds");
        let open_ms = timer.elapsed().as_secs_f64() * 1000.0;

        let timer = Instant::now();
        let first = engine.execute(&batch).expect("first batch executes");
        let first_batch_ms = timer.elapsed().as_secs_f64() * 1000.0;

        // bit-identity across all three engines (uniform planning)
        let hits: Vec<_> = first.queries.iter().map(|q| q.hits.clone()).collect();
        match &reference_hits {
            None => reference_hits = Some(hits),
            Some(reference) => {
                assert_eq!(&hits, reference, "{mode} must answer bit-identically")
            }
        }

        let timer = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(engine.execute(&batch).expect("batch executes"));
        }
        let steady_batch_ms = timer.elapsed().as_secs_f64() * 1000.0 / reps as f64;

        println!(
            "  {mode:>15}: {open_ms:>8.2} ms to engine, {first_batch_ms:>8.2} ms first batch, \
             {steady_batch_ms:>8.2} ms steady batch",
        );
        series.push(Series { mode, open_ms, first_batch_ms, steady_batch_ms });
    }

    let warm = &series[0];
    let mmap = &series[2];
    println!(
        "  cold mmap open vs warm build: {:.0}x faster to a planning-ready engine \
         ({:.2} ms vs {:.2} ms); first-batch page-in overhead {:.2} ms",
        warm.open_ms / mmap.open_ms.max(1e-6),
        mmap.open_ms,
        warm.open_ms,
        mmap.first_batch_ms - warm.first_batch_ms,
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"persist_cold_open\",\"rows\":{rows},\"dims\":{dims},\"k\":{k},\
         \"queries\":{n_queries},\"partitions\":{partitions},\"reps\":{reps},\"cores\":{cores},\
         \"file_mb\":{file_mb:.2},\"rule\":\"Ev\",\
         \"distribution\":\"clustered_cluster_major\",\"series\":[",
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"mode\":\"{}\",\"open_ms\":{:.4},\"first_batch_ms\":{:.4},\
             \"steady_batch_ms\":{:.4}}}",
            s.mode, s.open_ms, s.first_batch_ms, s.steady_batch_ms
        );
    }
    json.push_str("]}");
    println!("BENCH_JSON {json}");

    let _ = std::fs::remove_dir_all(&dir);
}
