//! Cold adaptive vs. warmed feedback planning on clustered data: batch
//! latency, scanned rows and zone-map skips.
//!
//! ```text
//! cargo bench -p bond-bench --bench bench_feedback
//! ```
//!
//! Generates `datagen`'s clustered distribution in the cluster-major layout
//! (the regime where a-priori moments mislead: contiguous row segments have
//! divergent statistics), then compares two engines on the same evaluation
//! batch: a cold `PlannerKind::Adaptive` engine (plans a-priori from
//! `SegmentStats`) and a `PlannerKind::Feedback` engine warmed with 100
//! queries first (plans from the accumulated per-segment prune traces).
//! Reports per-planner batch latency, scanned work and skip counts, the
//! feedback/adaptive work ratio, and two machine-readable `BENCH_JSON`
//! lines for the perf trajectory: the timing summary, then each engine's
//! full metrics-registry snapshot (`MetricsRegistry::render_json`).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, PlannerKind, RequestBatch, RuleKind};

struct Series {
    planner: &'static str,
    batch_ms: f64,
    ms_per_query: f64,
    contributions: u64,
    segments_skipped: usize,
    /// The engine's full metrics-registry snapshot after the timed reps.
    metrics_json: String,
}

fn main() {
    let rows = 40_000;
    let dims = 32;
    let k = 10;
    let n_queries = 16;
    let partitions = 8;
    let warming_queries = 100;
    let reps = 3;

    // Few clusters relative to the partition count: contiguous segments
    // cover a handful of clusters each — exactly where observed prune
    // behaviour outruns the a-priori moments.
    let table = Arc::new(
        ClusteredConfig { clusters: 16, ..ClusteredConfig::small(rows, dims, 0.0) }
            .with_cluster_major(true)
            .generate(),
    );
    let eval = RequestBatch::from_queries(sample_queries(&table, n_queries, 4321), k);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "feedback planning: {} rows x {dims} dims (clustered, cluster-major), \
         {n_queries} queries, k = {k}, {partitions} partitions, {warming_queries} warming \
         queries, {cores} cores",
        table.rows()
    );

    let build = |planner: PlannerKind| {
        Engine::builder(table.clone())
            .partitions(partitions)
            .threads(1) // isolate plan quality + skipping from parallel speedup
            .rule(RuleKind::EuclideanEv)
            .planner(planner)
            .build()
            .expect("valid engine configuration")
    };

    let mut series: Vec<Series> = Vec::new();
    for (name, planner) in
        [("adaptive_cold", PlannerKind::Adaptive), ("feedback_warm", PlannerKind::Feedback)]
    {
        let engine = build(planner);
        if planner == PlannerKind::Feedback {
            // warm the feedback store on a disjoint query sample
            let warming =
                RequestBatch::from_queries(sample_queries(&table, warming_queries, 99), k);
            engine.execute(&warming).expect("warming batch executes");
            let snapshot = engine.feedback_snapshot();
            println!(
                "  warmed on {warming_queries} queries: {} searches folded, {} segment skips \
                 observed",
                snapshot.total_searches(),
                snapshot.total_skips(),
            );
        }
        // untimed pass collects the work counters (and, for the adaptive
        // engine, mirrors the feedback engine's warm cache state)
        let outcome = engine.execute(&eval).expect("batch executes");
        let contributions: u64 = outcome.queries.iter().map(|q| q.contributions_evaluated()).sum();
        let segments_skipped: usize = outcome.queries.iter().map(|q| q.segments_skipped()).sum();

        let timer = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(engine.execute(&eval).expect("batch executes"));
        }
        let elapsed = timer.elapsed();
        let batch_ms = elapsed.as_secs_f64() * 1000.0 / reps as f64;
        let ms_per_query = batch_ms / eval.len() as f64;
        println!(
            "  {name:>13}: {batch_ms:>8.2} ms/batch, {ms_per_query:>6.2} ms/query, \
             {contributions:>12} contributions, {segments_skipped:>3} segment searches skipped",
        );
        series.push(Series {
            planner: name,
            batch_ms,
            ms_per_query,
            contributions,
            segments_skipped,
            metrics_json: engine.metrics().render_json(),
        });
    }

    let adaptive = &series[0];
    let feedback = &series[1];
    let work_ratio = feedback.contributions as f64 / adaptive.contributions.max(1) as f64;
    println!(
        "  warmed feedback vs cold adaptive: {:.2}x latency, {:.2}x scanned work, \
         {} vs {} segment searches skipped (of {})",
        feedback.batch_ms / adaptive.batch_ms,
        work_ratio,
        feedback.segments_skipped,
        adaptive.segments_skipped,
        n_queries * partitions,
    );

    // Machine-readable summary for the perf trajectory.
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"feedback_planning\",\"rows\":{},\"dims\":{dims},\"k\":{k},\
         \"queries\":{n_queries},\"partitions\":{partitions},\
         \"warming_queries\":{warming_queries},\"reps\":{reps},\"cores\":{cores},\
         \"rule\":\"Ev\",\"distribution\":\"clustered_cluster_major\",\
         \"work_ratio\":{work_ratio:.4},\"series\":[",
        table.rows()
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"planner\":\"{}\",\"batch_ms\":{:.4},\"ms_per_query\":{:.4},\
             \"contributions\":{},\"segments_skipped\":{}}}",
            s.planner, s.batch_ms, s.ms_per_query, s.contributions, s.segments_skipped
        );
    }
    json.push_str("]}");
    println!("BENCH_JSON {json}");

    // Second machine-readable line: each engine's metrics-registry
    // snapshot, keyed by planner. The warmed feedback engine's snapshot
    // carries non-zero `engine.segment.skipped` and
    // `planner.feedback.warm_segments`.
    let mut metrics = String::from("{\"bench\":\"feedback_planning_metrics\",\"registries\":{");
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            metrics.push(',');
        }
        let _ = write!(metrics, "\"{}\":{}", s.planner, s.metrics_json);
    }
    metrics.push_str("}}");
    println!("BENCH_JSON {metrics}");
}
