//! Throughput scaling of the parallel engine: queries/sec vs thread count.
//!
//! ```text
//! cargo bench -p bond-bench --bench bench_parallel
//! ```
//!
//! Runs the same query batch through `bond-exec` engines built with
//! 1, 2, 4, … worker threads (one partition per thread) and reports
//! queries/sec per configuration plus the speedup over the single-threaded
//! engine. Ends by printing a machine-readable JSON summary line (prefixed
//! `BENCH_JSON`) so the perf trajectory can be scraped across commits.
//!
//! Thread counts beyond the machine's cores are still measured — they show
//! the oversubscription plateau — but speedups are only meaningful up to
//! `available_parallelism`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bond_datagen::{sample_queries, CorelLikeConfig};
use bond_exec::{Engine, RequestBatch, RuleKind};

struct Series {
    threads: usize,
    partitions: usize,
    qps: f64,
    ms_per_query: f64,
    speedup: f64,
    contributions: u64,
    scan_bytes_per_sec: f64,
}

fn main() {
    let rows = 50_000;
    let dims = 32;
    let k = 10;
    let n_queries = 16;
    let reps = 3;

    let table = Arc::new(CorelLikeConfig::small(rows, dims).generate());
    let queries = sample_queries(&table, n_queries, 1234);
    let batch = RequestBatch::from_queries(queries, k);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "parallel scaling: {} rows x {dims} dims, {n_queries} queries, k = {k}, {cores} cores",
        table.rows()
    );

    let mut thread_counts = vec![1usize, 2, 4];
    if cores >= 8 {
        thread_counts.push(8);
    }

    let mut series: Vec<Series> = Vec::new();
    for &threads in &thread_counts {
        let engine = Engine::builder(table.clone())
            .partitions(threads)
            .threads(threads)
            .rule(RuleKind::HistogramHh)
            .build()
            .expect("valid engine configuration");
        // warm-up pass (untimed)
        let outcome = engine.execute(&batch).expect("batch executes");
        let contributions = outcome.queries.iter().map(|q| q.contributions_evaluated()).sum();

        let timer = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(engine.execute(&batch).expect("batch executes"));
        }
        let elapsed = timer.elapsed();
        let total_queries = (reps * batch.len()) as f64;
        let qps = total_queries / elapsed.as_secs_f64();
        let ms_per_query = elapsed.as_secs_f64() * 1000.0 / total_queries;
        let speedup = series.first().map_or(1.0, |base| qps / base.qps);
        // Effective scan bandwidth: every evaluated contribution reads one
        // f64 cell from a fragment, so bytes actually pulled through the
        // scan per second — a direct "how close to memory-bound" figure.
        let scan_bytes_per_sec = (contributions * reps as u64 * 8) as f64 / elapsed.as_secs_f64();
        println!(
            "  threads {threads:>2} ({:>2} partitions): {qps:>8.1} q/s, {ms_per_query:>6.2} ms/query, \
             speedup {speedup:>5.2}x, scan {:>6.2} GB/s",
            engine.partitions(),
            scan_bytes_per_sec / 1e9
        );
        series.push(Series {
            threads,
            partitions: engine.partitions(),
            qps,
            ms_per_query,
            speedup,
            contributions,
            scan_bytes_per_sec,
        });
    }

    // Machine-readable summary for the perf trajectory.
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"parallel_scaling\",\"rows\":{},\"dims\":{dims},\"k\":{k},\
         \"queries\":{n_queries},\"reps\":{reps},\"cores\":{cores},\"rule\":\"Hh\",\"series\":[",
        table.rows()
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"threads\":{},\"partitions\":{},\"qps\":{:.2},\"ms_per_query\":{:.4},\
             \"speedup\":{:.3},\"contributions\":{},\"scan_bytes_per_sec\":{:.0}}}",
            s.threads,
            s.partitions,
            s.qps,
            s.ms_per_query,
            s.speedup,
            s.contributions,
            s.scan_bytes_per_sec
        );
    }
    json.push_str("]}");
    println!("BENCH_JSON {json}");
}
