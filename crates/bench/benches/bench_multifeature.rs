//! Criterion bench for the Section 8.2 experiment: synchronized
//! multi-feature BOND search vs. per-feature search plus stream merging.

use bond::{
    BlockSchedule, BondParams, BondSearcher, DimensionOrdering, FeatureMetricKind, FeatureQuery,
    MultiFeatureSearcher,
};
use bond_baselines::{merge_streams, RankedStream};
use bond_bench::{workloads, ExperimentScale};
use bond_metrics::{DecomposableMetric, SquaredEuclidean, WeightedAverage};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdstore::topk::Scored;

fn bench_multifeature(c: &mut Criterion) {
    let scale = ExperimentScale::Small;
    let color = workloads::clustered_feature(scale, 64, 0xC0105);
    let texture = workloads::clustered_feature(scale, 128, 0x7E97);
    let color_queries = workloads::queries(&color, scale);
    let texture_queries = workloads::queries(&texture, scale);
    let k = 10;
    let aggregate = WeightedAverage::uniform(2).unwrap();

    let searcher = MultiFeatureSearcher::new(vec![&color, &texture]).unwrap();
    let color_searcher = BondSearcher::new(&color);
    let texture_searcher = BondSearcher::new(&texture);
    let _ = (color_searcher.row_sums(), texture_searcher.row_sums());
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };

    let mut group = c.benchmark_group("multifeature");
    group.bench_function("synchronized_bond", |b| {
        let mut i = 0;
        b.iter(|| {
            let idx = i % color_queries.len();
            i += 1;
            let queries = vec![
                FeatureQuery {
                    query: color_queries[idx].clone(),
                    metric: FeatureMetricKind::Euclidean,
                },
                FeatureQuery {
                    query: texture_queries[idx].clone(),
                    metric: FeatureMetricKind::Euclidean,
                },
            ];
            black_box(searcher.search(&queries, &aggregate, k, BlockSchedule::Fixed(8)).unwrap());
        })
    });
    group.bench_function("stream_merging_depth_4k", |b| {
        // the baseline with a generous (4·k) per-stream depth
        let depth = 4 * k;
        let mut i = 0;
        b.iter(|| {
            let idx = i % color_queries.len();
            i += 1;
            let cq = &color_queries[idx];
            let tq = &texture_queries[idx];
            let stream = |searcher: &BondSearcher<'_>, q: &[f64], dims: usize| {
                let outcome = searcher.euclidean_ev(q, depth, &params).unwrap();
                RankedStream::new(
                    outcome
                        .hits
                        .into_iter()
                        .map(|h| Scored {
                            row: h.row,
                            score: SquaredEuclidean::similarity_from_distance(h.score, dims),
                        })
                        .collect(),
                )
            };
            let color_stream = stream(&color_searcher, cq, color.dims());
            let texture_stream = stream(&texture_searcher, tq, texture.dims());
            let ra = |f: usize, row: u32| -> f64 {
                let (table, q) = if f == 0 { (&color, cq) } else { (&texture, tq) };
                let d = SquaredEuclidean.score(&table.row(row).unwrap(), q);
                SquaredEuclidean::similarity_from_distance(d, table.dims())
            };
            black_box(merge_streams(&[color_stream, texture_stream], &ra, &aggregate, k));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multifeature
}
criterion_main!(benches);
