//! Criterion bench for the Section 8.2 experiment: synchronized
//! multi-feature BOND search — sequential and through the engine — vs.
//! per-feature search plus stream merging. Ends with a machine-readable
//! `BENCH_JSON` line comparing latency and scanned work per evaluation
//! strategy on clustered data.

use bond::{
    BlockSchedule, BondParams, BondSearcher, DimensionOrdering, FeatureMetricKind, FeatureQuery,
    MultiFeatureSearcher,
};
use bond_baselines::{merge_streams, RankedStream};
use bond_bench::{workloads, ExperimentScale};
use bond_exec::{AggregateSpec, Engine, FeatureSpec, MultiFeatureSpec, QuerySpec};
use bond_metrics::{DecomposableMetric, SquaredEuclidean, WeightedAverage};
use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use vdstore::topk::Scored;

fn bench_multifeature(c: &mut Criterion) {
    let scale = ExperimentScale::Small;
    let color = workloads::clustered_feature(scale, 64, 0xC0105);
    let texture = workloads::clustered_feature(scale, 128, 0x7E97);
    let color_queries = workloads::queries(&color, scale);
    let texture_queries = workloads::queries(&texture, scale);
    let k = 10;
    let aggregate = WeightedAverage::uniform(2).unwrap();

    let searcher = MultiFeatureSearcher::new(vec![&color, &texture]).unwrap();
    let color_searcher = BondSearcher::new(&color);
    let texture_searcher = BondSearcher::new(&texture);
    let _ = (color_searcher.row_sums(), texture_searcher.row_sums());
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };

    let texture_shared = Arc::new(texture.clone());
    let engine = Engine::builder(color.clone()).partitions(8).threads(4).build().unwrap();
    let engine_spec = |idx: usize| {
        QuerySpec::multi_feature(
            MultiFeatureSpec::new(
                vec![
                    FeatureSpec::new(color_queries[idx].clone(), FeatureMetricKind::Euclidean),
                    FeatureSpec::external(
                        texture_queries[idx].clone(),
                        FeatureMetricKind::Euclidean,
                        texture_shared.clone(),
                    ),
                ],
                AggregateSpec::WeightedAverage(vec![0.5, 0.5]),
            ),
            k,
        )
    };

    let mut group = c.benchmark_group("multifeature");
    group.bench_function("engine_synchronized", |b| {
        let mut i = 0;
        b.iter(|| {
            let idx = i % color_queries.len();
            i += 1;
            black_box(engine.search_spec(&engine_spec(idx)).unwrap());
        })
    });
    group.bench_function("synchronized_bond", |b| {
        let mut i = 0;
        b.iter(|| {
            let idx = i % color_queries.len();
            i += 1;
            let queries = vec![
                FeatureQuery {
                    query: color_queries[idx].clone(),
                    metric: FeatureMetricKind::Euclidean,
                },
                FeatureQuery {
                    query: texture_queries[idx].clone(),
                    metric: FeatureMetricKind::Euclidean,
                },
            ];
            black_box(searcher.search(&queries, &aggregate, k, BlockSchedule::Fixed(8)).unwrap());
        })
    });
    group.bench_function("stream_merging_depth_4k", |b| {
        // the baseline with a generous (4·k) per-stream depth
        let depth = 4 * k;
        let mut i = 0;
        b.iter(|| {
            let idx = i % color_queries.len();
            i += 1;
            let cq = &color_queries[idx];
            let tq = &texture_queries[idx];
            let stream = |searcher: &BondSearcher<'_>, q: &[f64], dims: usize| {
                let outcome = searcher.euclidean_ev(q, depth, &params).unwrap();
                RankedStream::new(
                    outcome
                        .hits
                        .into_iter()
                        .map(|h| Scored {
                            row: h.row,
                            score: SquaredEuclidean::similarity_from_distance(h.score, dims),
                        })
                        .collect(),
                )
            };
            let color_stream = stream(&color_searcher, cq, color.dims());
            let texture_stream = stream(&texture_searcher, tq, texture.dims());
            let ra = |f: usize, row: u32| -> f64 {
                let (table, q) = if f == 0 { (&color, cq) } else { (&texture, tq) };
                let d = SquaredEuclidean.score(&table.row(row).unwrap(), q);
                SquaredEuclidean::similarity_from_distance(d, table.dims())
            };
            black_box(merge_streams(&[color_stream, texture_stream], &ra, &aggregate, k));
        })
    });
    group.finish();

    // One measured pass per strategy over the whole query set: latency plus
    // the scanned work (`(candidate, dimension)` cells) each evaluation
    // strategy actually touched, as a machine-readable summary line.
    let n = color_queries.len();
    let feature_queries = |idx: usize| {
        vec![
            FeatureQuery {
                query: color_queries[idx].clone(),
                metric: FeatureMetricKind::Euclidean,
            },
            FeatureQuery {
                query: texture_queries[idx].clone(),
                metric: FeatureMetricKind::Euclidean,
            },
        ]
    };

    let start = Instant::now();
    let mut engine_cells = 0u64;
    let mut engine_hits = Vec::new();
    for idx in 0..n {
        let outcome = engine.search_spec(&engine_spec(idx)).unwrap();
        engine_cells += outcome.contributions_evaluated();
        engine_hits.push(outcome.hits);
    }
    let engine_ms = start.elapsed().as_secs_f64() * 1000.0;

    let start = Instant::now();
    let mut sync_cells = 0u64;
    for (idx, expected) in engine_hits.iter().enumerate() {
        let sync =
            searcher.search(&feature_queries(idx), &aggregate, k, BlockSchedule::Fixed(8)).unwrap();
        sync_cells += sync.trace.contributions_evaluated;
        assert_eq!(&sync.hits, expected, "engine answers must be bit-identical");
    }
    let sync_ms = start.elapsed().as_secs_f64() * 1000.0;

    let start = Instant::now();
    let mut merge_cells = 0u64;
    for idx in 0..n {
        let cq = &color_queries[idx];
        let tq = &texture_queries[idx];
        let stream = |searcher: &BondSearcher<'_>, q: &[f64], dims: usize| {
            let outcome = searcher.euclidean_ev(q, 4 * k, &params).unwrap();
            let cells = outcome.trace.contributions_evaluated;
            let stream = RankedStream::new(
                outcome
                    .hits
                    .into_iter()
                    .map(|h| Scored {
                        row: h.row,
                        score: SquaredEuclidean::similarity_from_distance(h.score, dims),
                    })
                    .collect(),
            );
            (stream, cells)
        };
        let (color_stream, color_cells) = stream(&color_searcher, cq, color.dims());
        let (texture_stream, texture_cells) = stream(&texture_searcher, tq, texture.dims());
        merge_cells += color_cells + texture_cells;
        let random_cells = std::cell::Cell::new(0u64);
        let ra = |f: usize, row: u32| -> f64 {
            let (table, q) = if f == 0 { (&color, cq) } else { (&texture, tq) };
            random_cells.set(random_cells.get() + table.dims() as u64);
            let d = SquaredEuclidean.score(&table.row(row).unwrap(), q);
            SquaredEuclidean::similarity_from_distance(d, table.dims())
        };
        black_box(merge_streams(&[color_stream, texture_stream], &ra, &aggregate, k));
        merge_cells += random_cells.get();
    }
    let merge_ms = start.elapsed().as_secs_f64() * 1000.0;

    println!(
        "engine synchronized scan: {:.2} ms, {engine_cells} cells; sequential: {:.2} ms, \
         {sync_cells} cells; stream merging: {:.2} ms, {merge_cells} cells",
        engine_ms, sync_ms, merge_ms
    );
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"multifeature\",\"rows\":{},\"color_dims\":{},\"texture_dims\":{},\
         \"k\":{k},\"queries\":{n},\"aggregate\":\"weighted_average\",\
         \"distribution\":\"clustered\",\"series\":[\
         {{\"strategy\":\"engine_synchronized\",\"batch_ms\":{engine_ms:.4},\
         \"scanned_cells\":{engine_cells}}},\
         {{\"strategy\":\"sequential_synchronized\",\"batch_ms\":{sync_ms:.4},\
         \"scanned_cells\":{sync_cells}}},\
         {{\"strategy\":\"stream_merge\",\"batch_ms\":{merge_ms:.4},\
         \"scanned_cells\":{merge_cells}}}]}}",
        color.rows(),
        color.dims(),
        texture.dims(),
    );
    println!("BENCH_JSON {json}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multifeature
}
criterion_main!(benches);
