//! Uniform vs. Adaptive planning on clustered data: batch latency and
//! zone-map segment skipping.
//!
//! ```text
//! cargo bench -p bond-bench --bench bench_adaptive
//! ```
//!
//! Generates `datagen`'s clustered distribution in the cluster-major layout
//! (the append-in-batches regime where contiguous row segments have
//! divergent statistics), runs the same query batch through a
//! `PlannerKind::Uniform` and a `PlannerKind::Adaptive` engine, and reports
//! per-planner batch latency, scanned work and how many `query × segment`
//! searches the adaptive zone-map check skipped outright. Ends with a
//! machine-readable `BENCH_JSON` line for the perf trajectory.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, PlannerKind, RequestBatch, RuleKind};

struct Series {
    planner: &'static str,
    batch_ms: f64,
    ms_per_query: f64,
    contributions: u64,
    segments_skipped: usize,
}

fn main() {
    let rows = 40_000;
    let dims = 32;
    let k = 10;
    let n_queries = 16;
    let partitions = 8;
    let reps = 3;

    // Few clusters relative to the partition count: each contiguous segment
    // then covers a handful of clusters, its envelopes are narrow, and the
    // zone-map check has something to skip — the regime per-segment plans
    // are built for.
    let table = Arc::new(
        ClusteredConfig { clusters: 16, ..ClusteredConfig::small(rows, dims, 0.0) }
            .with_cluster_major(true)
            .generate(),
    );
    let queries = sample_queries(&table, n_queries, 4321);
    let batch = RequestBatch::from_queries(queries, k);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "adaptive planning: {} rows x {dims} dims (clustered, cluster-major), \
         {n_queries} queries, k = {k}, {partitions} partitions, {cores} cores",
        table.rows()
    );

    let mut series: Vec<Series> = Vec::new();
    for (name, planner) in [("uniform", PlannerKind::Uniform), ("adaptive", PlannerKind::Adaptive)]
    {
        let engine = Engine::builder(table.clone())
            .partitions(partitions)
            .threads(1) // isolate plan quality + skipping from parallel speedup
            .rule(RuleKind::EuclideanEv)
            .planner(planner)
            .build()
            .expect("valid engine configuration");
        // warm-up pass (untimed) also collects the work counters
        let outcome = engine.execute(&batch).expect("batch executes");
        let contributions: u64 = outcome.queries.iter().map(|q| q.contributions_evaluated()).sum();
        let segments_skipped: usize = outcome.queries.iter().map(|q| q.segments_skipped()).sum();

        let timer = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(engine.execute(&batch).expect("batch executes"));
        }
        let elapsed = timer.elapsed();
        let batch_ms = elapsed.as_secs_f64() * 1000.0 / reps as f64;
        let ms_per_query = batch_ms / batch.len() as f64;
        println!(
            "  {name:>8}: {batch_ms:>8.2} ms/batch, {ms_per_query:>6.2} ms/query, \
             {contributions:>12} contributions, {segments_skipped:>3} segment searches skipped",
        );
        series.push(Series {
            planner: name,
            batch_ms,
            ms_per_query,
            contributions,
            segments_skipped,
        });
    }

    let uniform = &series[0];
    let adaptive = &series[1];
    println!(
        "  adaptive vs uniform: {:.2}x latency, {:.2}x scanned work, {} of {} segment searches skipped",
        adaptive.batch_ms / uniform.batch_ms,
        adaptive.contributions as f64 / uniform.contributions.max(1) as f64,
        adaptive.segments_skipped,
        n_queries * partitions,
    );

    // Machine-readable summary for the perf trajectory.
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"adaptive_planning\",\"rows\":{},\"dims\":{dims},\"k\":{k},\
         \"queries\":{n_queries},\"partitions\":{partitions},\"reps\":{reps},\"cores\":{cores},\
         \"rule\":\"Ev\",\"distribution\":\"clustered_cluster_major\",\"series\":[",
        table.rows()
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"planner\":\"{}\",\"batch_ms\":{:.4},\"ms_per_query\":{:.4},\
             \"contributions\":{},\"segments_skipped\":{}}}",
            s.planner, s.batch_ms, s.ms_per_query, s.contributions, s.segments_skipped
        );
    }
    json.push_str("]}");
    println!("BENCH_JSON {json}");
}
