//! Criterion bench for Table 3: per-query response time of BOND (Hq, Hh,
//! Ev) against the sequential-scan baselines (SSH, SSE) on the Corel-like
//! histogram workload.

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering};
use bond_baselines::sequential_scan;
use bond_bench::{workloads, ExperimentScale};
use bond_metrics::{HistogramIntersection, SquaredEuclidean};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let scale = ExperimentScale::Small;
    let table = workloads::corel(scale);
    let matrix = table.to_row_matrix();
    let queries = workloads::queries(&table, scale);
    let searcher = BondSearcher::new(&table);
    let _ = searcher.row_sums();
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };
    let k = 10;

    let mut group = c.benchmark_group("table3");
    group.bench_function("bond_hq", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(searcher.histogram_intersection_hq(q, k, &params).unwrap());
        })
    });
    group.bench_function("bond_hh", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(searcher.histogram_intersection_hh(q, k, &params).unwrap());
        })
    });
    group.bench_function("bond_ev", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(searcher.euclidean_ev(q, k, &params).unwrap());
        })
    });
    group.bench_function("seqscan_ssh", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(sequential_scan(&matrix, q, k, &HistogramIntersection));
        })
    });
    group.bench_function("seqscan_sse", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(sequential_scan(&matrix, q, k, &SquaredEuclidean));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table3
}
criterion_main!(benches);
