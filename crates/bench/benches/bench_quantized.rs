//! Exact vs quantized-filter vs approximate scans on clustered data:
//! latency, exact cells scanned, filter selectivity and recall@k.
//!
//! ```text
//! cargo bench -p bond-bench --bench bench_quantized
//! ```
//!
//! Generates `datagen`'s clustered distribution in the cluster-major layout
//! and runs the same evaluation batch through one engine under its three
//! scan modes:
//!
//! * `exact` — the plain branch-and-bound scan over the `f64` fragments;
//! * `quantized_filter` — the branch-free `u8` code sweep first, exact
//!   refinement only for rows whose optimistic interval bound reaches κ
//!   (bit-identical answers, verified against the exact run);
//! * `approximate_8bit` — answers from the codes alone, with per-hit error
//!   bounds and recall@k measured against the exact answers.
//!
//! Reports per-mode latency, exact `f64` cells scanned, code cells swept
//! and filter selectivity, plus the headline `exact_cells_ratio` (exact
//! cells of the exact run over exact cells of the filtered run) on one
//! machine-readable `BENCH_JSON` line.
//!
//! A second section compares scan-kernel flavours head to head: the same
//! code sweep (`quantfilter::interval_scores_into`) runs once per
//! supported [`Kernel`] at 4 and 8 bits, asserts cross-kernel
//! bit-identity inline, and reports cells/sec per flavour plus the
//! dispatched-vs-scalar speedup in the same `BENCH_JSON` line.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bond::quantfilter::interval_scores_into;
use bond::{Kernel, QuantScratch};
use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, QuerySpec, RequestBatch, RuleKind, ScanMode};
use bond_metrics::SquaredEuclidean;
use vdstore::{SegmentStats, StoreCodes};

struct Series {
    mode: &'static str,
    batch_ms: f64,
    ms_per_query: f64,
    exact_cells: u64,
    filter_cells: u64,
    selectivity: f64,
    recall: f64,
    mean_error_bound: f64,
}

struct KernelSeries {
    bits: u8,
    kernel: &'static str,
    sweep_ms: f64,
    cells_per_sec: f64,
}

/// Runs the bare filter-phase sweep (LUT build + code sweep, no exact
/// refinement) over every segment for every query on one explicit
/// kernel flavour, and returns the per-row interval bounds as a
/// bit-pattern digest so flavours can be compared for exact identity.
fn sweep_all(
    codes: &StoreCodes,
    queries: &[Vec<f64>],
    kernel: Kernel,
    scratch: &mut QuantScratch,
    digest: Option<&mut Vec<u64>>,
) -> u64 {
    let metric = SquaredEuclidean;
    let mut cells = 0u64;
    let mut digest = digest;
    for query in queries {
        for si in 0..codes.n_segments() {
            let view = codes.segment_view(si).expect("segment view");
            cells += interval_scores_into(&view, &metric, query, kernel, scratch)
                .expect("sweep succeeds");
            if let Some(bits) = digest.as_deref_mut() {
                bits.extend(scratch.opt().iter().chain(scratch.pes()).map(|v| v.to_bits()));
            }
        }
    }
    cells
}

fn main() {
    let rows = 40_000;
    let dims = 32;
    let k = 10;
    let n_queries = 16;
    let partitions = 8;
    let reps = 3;

    let table = Arc::new(
        ClusteredConfig { clusters: 16, ..ClusteredConfig::small(rows, dims, 0.0) }
            .with_cluster_major(true)
            .generate(),
    );
    let queries = sample_queries(&table, n_queries, 4321);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "quantized scan: {} rows x {dims} dims (clustered, cluster-major), {n_queries} queries, \
         k = {k}, {partitions} partitions, {cores} cores",
        table.rows()
    );

    let engine = Engine::builder(table.clone())
        .partitions(partitions)
        .threads(1) // isolate scan-kernel work from parallel speedup
        .rule(RuleKind::EuclideanEv)
        .build()
        .expect("valid engine configuration");
    // encode once, outside the timed region — persisted stores get this
    // for free from the footer
    let encode_timer = Instant::now();
    engine.ensure_codes(8).expect("finite table quantizes");
    println!("  one-time 8-bit encode: {:.2} ms", encode_timer.elapsed().as_secs_f64() * 1000.0);

    let batch_for = |scan: Option<ScanMode>| {
        RequestBatch::from_specs(
            queries
                .iter()
                .map(|q| {
                    let spec = QuerySpec::new(q.clone(), k);
                    match scan {
                        Some(scan) => spec.scan_mode(scan),
                        None => spec,
                    }
                })
                .collect(),
        )
    };

    let exact_reference = engine.execute(&batch_for(None)).expect("exact batch executes");

    let mut series: Vec<Series> = Vec::new();
    for (mode, scan) in [
        ("exact", None),
        ("quantized_filter", Some(ScanMode::QuantizedFilter)),
        ("approximate_8bit", Some(ScanMode::ApproximateQuantized { bits: 8 })),
    ] {
        let batch = batch_for(scan);
        // untimed pass collects the work counters and checks the answers
        let outcome = engine.execute(&batch).expect("batch executes");
        let exact_cells: u64 = outcome.queries.iter().map(|q| q.contributions_evaluated()).sum();
        let filter_cells: u64 = outcome.queries.iter().map(|q| q.quant_filter_cells()).sum();
        let selectivities: Vec<f64> =
            outcome.queries.iter().filter_map(|q| q.quant_filter_selectivity()).collect();
        let selectivity = if selectivities.is_empty() {
            0.0
        } else {
            selectivities.iter().sum::<f64>() / selectivities.len() as f64
        };

        let mut recalled = 0usize;
        let mut bound_sum = 0.0f64;
        let mut bound_n = 0usize;
        for (got, reference) in outcome.queries.iter().zip(&exact_reference.queries) {
            recalled +=
                got.hits.iter().filter(|h| reference.hits.iter().any(|r| r.row == h.row)).count();
            if let Some(bounds) = &got.error_bounds {
                bound_sum += bounds.iter().sum::<f64>();
                bound_n += bounds.len();
            }
            if scan == Some(ScanMode::QuantizedFilter) {
                assert_eq!(got.hits, reference.hits, "quantized filter must stay bit-identical");
            }
        }
        let recall = recalled as f64 / (n_queries * k) as f64;
        let mean_error_bound = bound_sum / bound_n.max(1) as f64;

        let timer = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(engine.execute(&batch).expect("batch executes"));
        }
        let elapsed = timer.elapsed();
        let batch_ms = elapsed.as_secs_f64() * 1000.0 / reps as f64;
        let ms_per_query = batch_ms / batch.len() as f64;
        println!(
            "  {mode:>16}: {batch_ms:>8.2} ms/batch, {ms_per_query:>6.2} ms/query, \
             {exact_cells:>12} exact cells, {filter_cells:>12} code cells, \
             selectivity {selectivity:>6.4}, recall@{k} {recall:.3}",
        );
        series.push(Series {
            mode,
            batch_ms,
            ms_per_query,
            exact_cells,
            filter_cells,
            selectivity,
            recall,
            mean_error_bound,
        });
    }

    let exact = &series[0];
    let filtered = &series[1];
    let cells_ratio = exact.exact_cells as f64 / filtered.exact_cells.max(1) as f64;
    println!(
        "  quantized filter vs exact: {:.2}x latency, {:.1}x fewer exact cells \
         ({} -> {}), approximate recall@{k} {:.3}",
        filtered.batch_ms / exact.batch_ms,
        cells_ratio,
        exact.exact_cells,
        filtered.exact_cells,
        series[2].recall,
    );

    // --- kernel flavour comparison: the same sweep per ISA path --------
    // Bypasses the engine so the flavour is explicit per series (the
    // process-wide `BOND_KERNEL` dispatch latches once and can't be
    // varied afterwards); every flavour is checked bit-identical to the
    // scalar reference before its timed reps.
    let specs = table.partition_specs(partitions);
    let stats: Vec<SegmentStats> =
        specs.iter().map(|s| s.view(&table).expect("segment view").stats()).collect();
    let kernel_reps = 20;
    let active = Kernel::active();
    println!("  kernel sweep comparison (dispatched flavour: {}):", active.label());
    let mut kernel_series: Vec<KernelSeries> = Vec::new();
    for bits in [4u8, 8] {
        let codes =
            StoreCodes::build(&table, &specs, &stats, bits).expect("finite table quantizes");
        let flavours: Vec<Kernel> = Kernel::ALL.into_iter().filter(|k| k.is_supported()).collect();
        let mut reference: Option<Vec<u64>> = None;
        let mut cells = 0u64;
        let mut scratches: Vec<QuantScratch> = Vec::new();
        for &kernel in &flavours {
            let mut scratch = QuantScratch::new();
            // untimed warm pass: sizes the scratch, faults in the code
            // columns, and captures the bounds for the identity check
            let mut digest = Vec::new();
            cells = sweep_all(&codes, &queries, kernel, &mut scratch, Some(&mut digest));
            match &reference {
                Some(expected) => assert_eq!(
                    expected,
                    &digest,
                    "{} sweep must be bit-identical to scalar",
                    kernel.label()
                ),
                None => reference = Some(digest),
            }
            scratches.push(scratch);
        }
        // interleave the flavours rep by rep and keep each one's best
        // pass: on a shared host, load spikes would otherwise land on
        // whichever flavour happened to run during them
        let mut best = vec![f64::INFINITY; flavours.len()];
        for _ in 0..kernel_reps {
            for (f, &kernel) in flavours.iter().enumerate() {
                let timer = Instant::now();
                std::hint::black_box(sweep_all(&codes, &queries, kernel, &mut scratches[f], None));
                best[f] = best[f].min(timer.elapsed().as_secs_f64());
            }
        }
        for (f, &kernel) in flavours.iter().enumerate() {
            let sweep_ms = best[f] * 1000.0;
            let cells_per_sec = cells as f64 / best[f];
            println!(
                "    {:>6} @ {bits} bits: {sweep_ms:>7.2} ms/sweep-pass, {:>7.1} Mcells/s",
                kernel.label(),
                cells_per_sec / 1e6
            );
            kernel_series.push(KernelSeries {
                bits,
                kernel: kernel.label(),
                sweep_ms,
                cells_per_sec,
            });
        }
    }
    let cps = |bits: u8, label: &str| {
        kernel_series
            .iter()
            .find(|s| s.bits == bits && s.kernel == label)
            .map_or(0.0, |s| s.cells_per_sec)
    };
    let kernel_speedup_8bit = cps(8, active.label()) / cps(8, "scalar").max(f64::MIN_POSITIVE);
    let kernel_speedup_4bit = cps(4, active.label()) / cps(4, "scalar").max(f64::MIN_POSITIVE);
    println!(
        "    dispatched ({}) vs scalar: {kernel_speedup_4bit:.2}x cells/s at 4 bits, \
         {kernel_speedup_8bit:.2}x at 8 bits",
        active.label()
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"quantized_scan\",\"rows\":{},\"dims\":{dims},\"k\":{k},\
         \"queries\":{n_queries},\"partitions\":{partitions},\"reps\":{reps},\"cores\":{cores},\
         \"rule\":\"Ev\",\"bits\":8,\"distribution\":\"clustered_cluster_major\",\
         \"exact_cells_ratio\":{cells_ratio:.4},\"series\":[",
        table.rows()
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"mode\":\"{}\",\"batch_ms\":{:.4},\"ms_per_query\":{:.4},\
             \"exact_cells\":{},\"filter_cells\":{},\"selectivity\":{:.6},\
             \"recall\":{:.4},\"mean_error_bound\":{:.6}}}",
            s.mode,
            s.batch_ms,
            s.ms_per_query,
            s.exact_cells,
            s.filter_cells,
            s.selectivity,
            s.recall,
            s.mean_error_bound
        );
    }
    let _ = write!(
        json,
        "],\"active_kernel\":\"{}\",\"kernel_speedup_4bit\":{kernel_speedup_4bit:.4},\
         \"kernel_speedup_8bit\":{kernel_speedup_8bit:.4},\"kernels\":[",
        active.label()
    );
    for (i, s) in kernel_series.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"kernel\":\"{}\",\"bits\":{},\"sweep_ms\":{:.4},\"cells_per_sec\":{:.0}}}",
            s.kernel, s.bits, s.sweep_ms, s.cells_per_sec
        );
    }
    json.push_str("]}");
    println!("BENCH_JSON {json}");
}
