//! Exact vs quantized-filter vs approximate scans on clustered data:
//! latency, exact cells scanned, filter selectivity and recall@k.
//!
//! ```text
//! cargo bench -p bond-bench --bench bench_quantized
//! ```
//!
//! Generates `datagen`'s clustered distribution in the cluster-major layout
//! and runs the same evaluation batch through one engine under its three
//! scan modes:
//!
//! * `exact` — the plain branch-and-bound scan over the `f64` fragments;
//! * `quantized_filter` — the branch-free `u8` code sweep first, exact
//!   refinement only for rows whose optimistic interval bound reaches κ
//!   (bit-identical answers, verified against the exact run);
//! * `approximate_8bit` — answers from the codes alone, with per-hit error
//!   bounds and recall@k measured against the exact answers.
//!
//! Reports per-mode latency, exact `f64` cells scanned, code cells swept
//! and filter selectivity, plus the headline `exact_cells_ratio` (exact
//! cells of the exact run over exact cells of the filtered run) on one
//! machine-readable `BENCH_JSON` line.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, QuerySpec, RequestBatch, RuleKind, ScanMode};

struct Series {
    mode: &'static str,
    batch_ms: f64,
    ms_per_query: f64,
    exact_cells: u64,
    filter_cells: u64,
    selectivity: f64,
    recall: f64,
    mean_error_bound: f64,
}

fn main() {
    let rows = 40_000;
    let dims = 32;
    let k = 10;
    let n_queries = 16;
    let partitions = 8;
    let reps = 3;

    let table = Arc::new(
        ClusteredConfig { clusters: 16, ..ClusteredConfig::small(rows, dims, 0.0) }
            .with_cluster_major(true)
            .generate(),
    );
    let queries = sample_queries(&table, n_queries, 4321);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "quantized scan: {} rows x {dims} dims (clustered, cluster-major), {n_queries} queries, \
         k = {k}, {partitions} partitions, {cores} cores",
        table.rows()
    );

    let engine = Engine::builder(table.clone())
        .partitions(partitions)
        .threads(1) // isolate scan-kernel work from parallel speedup
        .rule(RuleKind::EuclideanEv)
        .build()
        .expect("valid engine configuration");
    // encode once, outside the timed region — persisted stores get this
    // for free from the footer
    let encode_timer = Instant::now();
    engine.ensure_codes(8).expect("finite table quantizes");
    println!("  one-time 8-bit encode: {:.2} ms", encode_timer.elapsed().as_secs_f64() * 1000.0);

    let batch_for = |scan: Option<ScanMode>| {
        RequestBatch::from_specs(
            queries
                .iter()
                .map(|q| {
                    let spec = QuerySpec::new(q.clone(), k);
                    match scan {
                        Some(scan) => spec.scan_mode(scan),
                        None => spec,
                    }
                })
                .collect(),
        )
    };

    let exact_reference = engine.execute(&batch_for(None)).expect("exact batch executes");

    let mut series: Vec<Series> = Vec::new();
    for (mode, scan) in [
        ("exact", None),
        ("quantized_filter", Some(ScanMode::QuantizedFilter)),
        ("approximate_8bit", Some(ScanMode::ApproximateQuantized { bits: 8 })),
    ] {
        let batch = batch_for(scan);
        // untimed pass collects the work counters and checks the answers
        let outcome = engine.execute(&batch).expect("batch executes");
        let exact_cells: u64 = outcome.queries.iter().map(|q| q.contributions_evaluated()).sum();
        let filter_cells: u64 = outcome.queries.iter().map(|q| q.quant_filter_cells()).sum();
        let selectivities: Vec<f64> =
            outcome.queries.iter().filter_map(|q| q.quant_filter_selectivity()).collect();
        let selectivity = if selectivities.is_empty() {
            0.0
        } else {
            selectivities.iter().sum::<f64>() / selectivities.len() as f64
        };

        let mut recalled = 0usize;
        let mut bound_sum = 0.0f64;
        let mut bound_n = 0usize;
        for (got, reference) in outcome.queries.iter().zip(&exact_reference.queries) {
            recalled +=
                got.hits.iter().filter(|h| reference.hits.iter().any(|r| r.row == h.row)).count();
            if let Some(bounds) = &got.error_bounds {
                bound_sum += bounds.iter().sum::<f64>();
                bound_n += bounds.len();
            }
            if scan == Some(ScanMode::QuantizedFilter) {
                assert_eq!(got.hits, reference.hits, "quantized filter must stay bit-identical");
            }
        }
        let recall = recalled as f64 / (n_queries * k) as f64;
        let mean_error_bound = bound_sum / bound_n.max(1) as f64;

        let timer = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(engine.execute(&batch).expect("batch executes"));
        }
        let elapsed = timer.elapsed();
        let batch_ms = elapsed.as_secs_f64() * 1000.0 / reps as f64;
        let ms_per_query = batch_ms / batch.len() as f64;
        println!(
            "  {mode:>16}: {batch_ms:>8.2} ms/batch, {ms_per_query:>6.2} ms/query, \
             {exact_cells:>12} exact cells, {filter_cells:>12} code cells, \
             selectivity {selectivity:>6.4}, recall@{k} {recall:.3}",
        );
        series.push(Series {
            mode,
            batch_ms,
            ms_per_query,
            exact_cells,
            filter_cells,
            selectivity,
            recall,
            mean_error_bound,
        });
    }

    let exact = &series[0];
    let filtered = &series[1];
    let cells_ratio = exact.exact_cells as f64 / filtered.exact_cells.max(1) as f64;
    println!(
        "  quantized filter vs exact: {:.2}x latency, {:.1}x fewer exact cells \
         ({} -> {}), approximate recall@{k} {:.3}",
        filtered.batch_ms / exact.batch_ms,
        cells_ratio,
        exact.exact_cells,
        filtered.exact_cells,
        series[2].recall,
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"quantized_scan\",\"rows\":{},\"dims\":{dims},\"k\":{k},\
         \"queries\":{n_queries},\"partitions\":{partitions},\"reps\":{reps},\"cores\":{cores},\
         \"rule\":\"Ev\",\"bits\":8,\"distribution\":\"clustered_cluster_major\",\
         \"exact_cells_ratio\":{cells_ratio:.4},\"series\":[",
        table.rows()
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"mode\":\"{}\",\"batch_ms\":{:.4},\"ms_per_query\":{:.4},\
             \"exact_cells\":{},\"filter_cells\":{},\"selectivity\":{:.6},\
             \"recall\":{:.4},\"mean_error_bound\":{:.6}}}",
            s.mode,
            s.batch_ms,
            s.ms_per_query,
            s.exact_cells,
            s.filter_cells,
            s.selectivity,
            s.recall,
            s.mean_error_bound
        );
    }
    json.push_str("]}");
    println!("BENCH_JSON {json}");
}
