//! Criterion bench for Table 4: the filter step on 8-bit approximations —
//! BOND-Hq on compressed fragments vs. a sequential VA-File scan — plus the
//! shared exact refinement step.

use bond::{BlockSchedule, DimensionOrdering};
use bond_baselines::VaFile;
use bond_bench::{workloads, ExperimentScale};
use bond_metrics::{DecomposableMetric, HistogramIntersection};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdstore::QuantizedTable;

fn bench_table4(c: &mut Criterion) {
    let scale = ExperimentScale::Small;
    let table = workloads::corel(scale);
    let matrix = table.to_row_matrix();
    let queries = workloads::queries(&table, scale);
    let quantized = QuantizedTable::from_table(&table, 8).unwrap();
    let vafile = VaFile::build(&table, 8).unwrap();
    let k = 10;

    let mut group = c.benchmark_group("table4");
    group.bench_function("bond_hq_compressed_filter", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(
                bond::compressed_filter_histogram(
                    &quantized,
                    q,
                    k,
                    BlockSchedule::Fixed(8),
                    &DimensionOrdering::QueryValueDescending,
                )
                .unwrap(),
            );
        })
    });
    group.bench_function("vafile_filter", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(vafile.filter_histogram(q, k));
        })
    });
    group.bench_function("refinement_step", |b| {
        // refine a precomputed candidate set (the first query's) with exact values
        let candidates = bond::compressed_filter_histogram(
            &quantized,
            &queries[0],
            k,
            BlockSchedule::Fixed(8),
            &DimensionOrdering::QueryValueDescending,
        )
        .unwrap()
        .candidates;
        b.iter(|| {
            let metric = HistogramIntersection;
            let mut heap = vdstore::TopKLargest::new(k);
            for &row in &candidates {
                heap.push(row, metric.score(matrix.row(row), &queries[0]));
            }
            black_box(heap.into_sorted_vec());
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table4
}
criterion_main!(benches);
