//! Relational-algebra programs whose final operator is an engine k-NN.
//!
//! Section 6.1 of the paper frames BOND as an ordinary algebraic plan —
//! selects and joins feed a k-NN step with no special index structure.
//! [`KnnProgram`] reproduces that composition on top of the execution
//! engine: each [`SelectStep`] runs `bond-relalg`'s `uselect` over one
//! dimensional fragment, the qualifying OIDs are materialised as
//! eligibility bitmaps ([`bond_relalg::candidates_to_bitmap`]) and
//! AND-composed, and the combined bitmap becomes exactly the
//! [`QuerySpec::filter`] pushed into [`Engine::execute`]. Filter pushdown
//! from relational predicates and predicate-filtered k-NN are therefore
//! the *same* engine path, and a program with no selects degenerates into
//! a plain top-k request whose answer matches the pure-MIL
//! `bond_relalg::run_bond_hq` formulation.
//!
//! Like [`bond_relalg::BondHqProgram`], every executed program records the
//! MIL-style statements it issued, so plans remain inspectable.

use std::sync::Arc;

use bond::Result;
use bond_relalg::ops;
use vdstore::bat::Bat;
use vdstore::Bitmap;

use crate::batch::{QueryOutcome, QuerySpec};
use crate::engine::Engine;
use crate::rules::RuleKind;

/// One relational range predicate over a dimensional fragment:
/// `σ(lo ≤ H<dim> ≤ hi)`, evaluated with `uselect` before the k-NN step.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStep {
    /// The dimension (fragment) the predicate ranges over.
    pub dim: usize,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

/// A relational program that pipes zero or more range selects into an
/// engine-executed k-NN operator.
///
/// ```
/// use bond_exec::{Engine, KnnProgram};
/// use vdstore::DecomposedTable;
///
/// let vectors: Vec<Vec<f64>> = (0..60)
///     .map(|i| vec![i as f64 / 60.0, 1.0 - i as f64 / 60.0])
///     .collect();
/// let table = DecomposedTable::from_vectors("demo", &vectors).unwrap();
/// let engine = Engine::builder(table).partitions(3).build().unwrap();
///
/// // σ(H0 ≥ 0.5) ⋉ knn(q, 3): only rows past the predicate compete.
/// let run = KnnProgram::knn(vec![0.9, 0.1], 3)
///     .select(0, 0.5, 1.0)
///     .execute(&engine)
///     .unwrap();
/// assert_eq!(run.outcome.hits.len(), 3);
/// assert!(run.outcome.hits.iter().all(|h| h.row >= 30));
/// assert_eq!(run.eligible_rows, 30);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnnProgram {
    query: Vec<f64>,
    k: usize,
    selects: Vec<SelectStep>,
    rule: Option<RuleKind>,
}

/// The result of executing a [`KnnProgram`] on an [`Engine`].
#[derive(Debug, Clone)]
pub struct RelationalRun {
    /// The k-NN operator's answer (hits, per-segment runs, traces).
    pub outcome: QueryOutcome,
    /// The MIL-style statements executed, in order.
    pub script: Vec<String>,
    /// Rows eligible after all selects (table rows when there are none).
    pub eligible_rows: usize,
}

impl KnnProgram {
    /// Starts a program whose final operator is `knn(query, k)`.
    pub fn knn(query: Vec<f64>, k: usize) -> Self {
        KnnProgram { query, k, selects: Vec::new(), rule: None }
    }

    /// Appends the range select `σ(lo ≤ H<dim> ≤ hi)` ahead of the k-NN
    /// step. Selects compose conjunctively, in the order added.
    pub fn select(mut self, dim: usize, lo: f64, hi: f64) -> Self {
        self.selects.push(SelectStep { dim, lo, hi });
        self
    }

    /// Overrides the engine's pruning rule for the k-NN operator.
    pub fn rule(mut self, rule: RuleKind) -> Self {
        self.rule = Some(rule);
        self
    }

    /// The select steps, in execution order.
    pub fn selects(&self) -> &[SelectStep] {
        &self.selects
    }

    /// Executes the program: runs every select through the algebraic
    /// `uselect` operator, pushes the AND-composed candidate bitmap into
    /// the engine as the k-NN operator's filter, and returns the answer
    /// with the executed script.
    ///
    /// # Errors
    ///
    /// Everything [`Engine::execute`] rejects at admission — dimension
    /// mismatches, invalid `k`, and [`bond::BondError::InvalidFilter`]
    /// when the selects leave no live row eligible.
    pub fn execute(&self, engine: &Engine) -> Result<RelationalRun> {
        let table = engine.table();
        let rows = table.rows();
        let mut script = Vec::new();
        let mut combined: Option<Bitmap> = None;

        for (i, step) in self.selects.iter().enumerate() {
            // The fragment as a dense BAT (Figure 3a), selected with the
            // same physical operator the MIL plan uses.
            let fragment = Bat::dense(table.column(step.dim)?.values().to_vec());
            script.push(format!("C{i} := H{}.uselect({:.6}, {:.6});", step.dim, step.lo, step.hi));
            let candidates = ops::uselect_range(&fragment, step.lo, step.hi);
            let bitmap = ops::candidates_to_bitmap(&candidates, rows)?;
            combined = Some(match combined {
                None => {
                    script.push(format!("F := C{i}.bitmap({rows});"));
                    bitmap
                }
                Some(mut acc) => {
                    script.push(format!("F := F.and(C{i}.bitmap({rows}));"));
                    acc.and_with(&bitmap);
                    acc
                }
            });
        }

        let eligible_rows = combined.as_ref().map(Bitmap::count).unwrap_or(rows);
        let mut spec = QuerySpec::new(self.query.clone(), self.k);
        if let Some(rule) = &self.rule {
            spec = spec.rule(rule.clone());
        }
        if let Some(bitmap) = combined {
            script.push(format!("R := knn(F, Q, k={});", self.k));
            spec = spec.filter_shared(Arc::new(bitmap));
        } else {
            script.push(format!("R := knn(Q, k={});", self.k));
        }
        let outcome = engine.search_spec(&spec)?;
        Ok(RelationalRun { outcome, script, eligible_rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bond::BondError;
    use bond_relalg::run_bond_hq;
    use vdstore::{DecomposedTable, RowId};

    fn table(rows: usize, dims: usize) -> DecomposedTable {
        let vectors: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                let mut v: Vec<f64> =
                    (0..dims).map(|d| ((r * 29 + d * 13) % 83) as f64 + 1.0).collect();
                let total: f64 = v.iter().sum();
                v.iter_mut().for_each(|x| *x /= total);
                v
            })
            .collect();
        DecomposedTable::from_vectors("t", &vectors).unwrap()
    }

    #[test]
    fn programs_without_selects_match_the_pure_mil_formulation() {
        let t = table(200, 8);
        let query = t.row(17).unwrap();
        let engine = Engine::builder(t.clone()).partitions(3).threads(2).build().unwrap();
        let run =
            KnnProgram::knn(query.clone(), 5).rule(RuleKind::HistogramHq).execute(&engine).unwrap();
        let mil = run_bond_hq(&t, &query, 5).unwrap();
        assert_eq!(run.outcome.hits, mil.hits);
        assert_eq!(run.eligible_rows, 200);
        assert!(run.script.last().unwrap().starts_with("R := knn(Q"));
    }

    #[test]
    fn select_pushdown_matches_brute_force_filter_then_scan() {
        let t = table(300, 6);
        let query = t.row(41).unwrap();
        let engine = Engine::builder(t.clone()).partitions(4).threads(2).build().unwrap();
        let program = KnnProgram::knn(query.clone(), 7).select(0, 0.1, 0.2).select(2, 0.0, 0.25);
        let run = program.execute(&engine).unwrap();

        // Brute force: evaluate the predicates row by row, then exact-scan.
        let eligible: Vec<RowId> = (0..300)
            .filter(|&r| {
                let v = t.row(r).unwrap();
                (0.1..=0.2).contains(&v[0]) && (0.0..=0.25).contains(&v[2])
            })
            .collect();
        assert_eq!(run.eligible_rows, eligible.len());
        assert!(!eligible.is_empty());
        let mut heap = vdstore::TopKLargest::new(7);
        for &r in &eligible {
            let v = t.row(r).unwrap();
            let score: f64 = v.iter().zip(&query).map(|(a, b)| a.min(*b)).sum();
            heap.push(r, score);
        }
        // Same rows and ranks; scores agree up to summation-order drift
        // (the engine accumulates in its own dimension order).
        let expected = heap.into_sorted_vec();
        assert_eq!(run.outcome.hits.len(), expected.len());
        for (got, want) in run.outcome.hits.iter().zip(&expected) {
            assert_eq!(got.row, want.row);
            assert!((got.score - want.score).abs() < 1e-9);
        }
        assert!(run.script.iter().any(|s| s.contains("H0.uselect")));
        assert!(run.script.iter().any(|s| s.contains("F := F.and(C1.bitmap(300));")));
        assert!(run.script.last().unwrap().starts_with("R := knn(F"));
    }

    #[test]
    fn empty_selections_and_bad_dims_fail_at_admission() {
        let t = table(50, 4);
        let query = t.row(0).unwrap();
        let engine = Engine::builder(t).partitions(2).threads(1).build().unwrap();
        let empty = KnnProgram::knn(query.clone(), 1).select(0, 2.0, 3.0);
        assert!(matches!(empty.execute(&engine), Err(BondError::InvalidFilter(_))));
        let bad_dim = KnnProgram::knn(query, 1).select(9, 0.0, 1.0);
        assert!(matches!(bad_dim.execute(&engine), Err(BondError::Storage(_))));
    }
}
